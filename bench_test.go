package slicc

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"slicc/internal/trace"
	"slicc/internal/workload"
)

// Benchmarks regenerating each paper experiment (quick-size workloads so a
// full `go test -bench=. -benchmem` pass stays tractable; run
// `cmd/experiments` without -quick for the full-size EXPERIMENTS.md
// numbers). Each benchmark reports a headline metric from the experiment it
// reproduces so regressions in *results*, not just runtime, are visible.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := Experiment(id, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the cache-size/miss-classification sweep.
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure2 regenerates the replacement-policy comparison.
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFigure3 regenerates the reuse-class breakdown.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure7 regenerates the fill-up_t x matched_t exploration.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates the dilution_t sweep.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates the bloom-filter accuracy sweep.
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates the per-policy MPKI comparison.
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates the overall performance comparison.
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkBPKI regenerates the Section 5.8 broadcast-rate measurement.
func BenchmarkBPKI(b *testing.B) { benchExperiment(b, "bpki") }

// BenchmarkEngineMemoizedExperiment measures a memoized experiment replay:
// after the warm-up run every simulation is served from the engine's dedup
// cache, so this tracks the bookkeeping overhead of the parallel engine
// rather than simulator speed.
func BenchmarkEngineMemoizedExperiment(b *testing.B) {
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Experiment(context.Background(), "fig3", true, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Experiment(context.Background(), "fig3", true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the workload-parameter table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the system-parameter table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates the hardware-cost table.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// --- headline-result benchmarks ---------------------------------------------

// benchCfg is the shared medium-size configuration for result benchmarks.
func benchCfg(bench Benchmark, policy Policy) Config {
	return Config{Benchmark: bench, Policy: policy, Threads: 32, Seed: 9, Scale: 0.4}
}

// BenchmarkHeadlineTPCC measures the paper's headline comparison (baseline
// vs SLICC-SW on TPC-C) and reports the achieved speedup and I-MPKI
// reduction as benchmark metrics.
func BenchmarkHeadlineTPCC(b *testing.B) {
	var speedup, reduction float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCC1, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		sw, err := Run(benchCfg(TPCC1, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		speedup = sw.Speedup(base)
		reduction = 1 - sw.IMPKI/base.IMPKI
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(100*reduction, "%I-miss-reduction")
}

// BenchmarkSimulatorThroughput measures raw simulator speed in simulated
// instructions per second (the practical limit on experiment sizes).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instr uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(benchCfg(TPCE, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		instr = r.Instructions
	}
	b.ReportMetric(float64(instr), "sim-instructions/op")
}

// --- ablation benchmarks (design choices called out in DESIGN.md) -----------

// BenchmarkAblationExactVsBloomSearch compares SLICC's bloom-signature
// remote search against exact tag probing: the signature should cost almost
// nothing in result quality (Figure 9's point).
func BenchmarkAblationExactVsBloomSearch(b *testing.B) {
	var bloomS, exactS float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCC1, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		bl, err := Run(benchCfg(TPCC1, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(TPCC1, SLICCSW)
		cfg.SLICC.ExactSearch = true
		ex, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bloomS, exactS = bl.Speedup(base), ex.Speedup(base)
	}
	b.ReportMetric(bloomS, "bloom-speedup")
	b.ReportMetric(exactS, "exact-speedup")
}

// BenchmarkAblationIdleFallback measures the contribution of Q.3's
// migrate-to-idle-core fallback.
func BenchmarkAblationIdleFallback(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCC1, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		on, err := Run(benchCfg(TPCC1, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(TPCC1, SLICCSW)
		cfg.SLICC.DisableIdleFallback = true
		off, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		with, without = on.Speedup(base), off.Speedup(base)
	}
	b.ReportMetric(with, "with-idle-fallback")
	b.ReportMetric(without, "without-idle-fallback")
}

// BenchmarkAblationTeams compares type-aware team scheduling (SLICC-SW)
// against the type-oblivious policy on the same workload.
func BenchmarkAblationTeams(b *testing.B) {
	var sw, oblivious float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCE, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		s, err := Run(benchCfg(TPCE, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		o, err := Run(benchCfg(TPCE, SLICC))
		if err != nil {
			b.Fatal(err)
		}
		sw, oblivious = s.Speedup(base), o.Speedup(base)
	}
	b.ReportMetric(sw, "teams-speedup")
	b.ReportMetric(oblivious, "oblivious-speedup")
}

// BenchmarkAblationDilution contrasts the dilution gate's paper setting
// against migrating immediately when the cache fills (dilution disabled).
func BenchmarkAblationDilution(b *testing.B) {
	var tuned, immediate float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCC1, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		t, err := Run(benchCfg(TPCC1, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(TPCC1, SLICCSW)
		cfg.SLICC.DilutionT = -1
		im, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuned, immediate = t.Speedup(base), im.Speedup(base)
	}
	b.ReportMetric(tuned, "dilution10-speedup")
	b.ReportMetric(immediate, "no-dilution-speedup")
}

// BenchmarkAblationYieldOnStay measures the future-work STEPS+SLICC
// combination (yield locally when no migration destination exists) against
// plain SLICC-SW.
func BenchmarkAblationYieldOnStay(b *testing.B) {
	var plain, combined float64
	for i := 0; i < b.N; i++ {
		base, err := Run(benchCfg(TPCC1, Baseline))
		if err != nil {
			b.Fatal(err)
		}
		p, err := Run(benchCfg(TPCC1, SLICCSW))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(TPCC1, SLICCSW)
		cfg.SLICC.YieldOnStay = true
		c, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		plain, combined = p.Speedup(base), c.Speedup(base)
	}
	b.ReportMetric(plain, "slicc-sw-speedup")
	b.ReportMetric(combined, "with-yield-speedup")
}

// --- trace container benchmarks ---------------------------------------------

// benchTraceWorkload is the capture subject for the trace-format
// benchmarks: a medium TPC-C slice (~a few hundred thousand ops).
func benchTraceWorkload() workload.Config {
	return workload.Config{Kind: workload.TPCC1, Threads: 8, Seed: 9, Scale: 0.2}
}

// benchCapture writes the benchmark workload to a container once per run
// and returns its path, size, and total op count.
func benchCapture(b *testing.B) (string, int64, uint64) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.trace")
	w := workload.New(benchTraceWorkload())
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	c, err := trace.OpenWorkload(path)
	if err != nil {
		b.Fatal(err)
	}
	ops := c.Ops()
	c.Close()
	return path, st.Size(), ops
}

// BenchmarkTraceEncode measures whole-workload capture throughput
// (generator -> delta encoding -> container bytes); bytes/s is the
// container output rate.
func BenchmarkTraceEncode(b *testing.B) {
	w := workload.New(benchTraceWorkload())
	path := filepath.Join(b.TempDir(), "enc.trace")
	var size int64
	for i := 0; i < b.N; i++ {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if size == 0 {
			st, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			size = st.Size()
			b.SetBytes(size)
		}
	}
}

// BenchmarkTraceDecode measures streaming replay throughput: every thread
// of the container is drained through a FileSource. ops/s is the figure
// that bounds how fast trace-driven simulation can possibly go.
func BenchmarkTraceDecode(b *testing.B) {
	path, size, totalOps := benchCapture(b)
	c, err := trace.OpenWorkload(path)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n uint64
		for ti := 0; ti < c.NumThreads(); ti++ {
			src := c.Source(ti)
			for {
				if _, ok := src.Next(); !ok {
					break
				}
				n++
			}
			if err := src.Err(); err != nil {
				b.Fatal(err)
			}
		}
		if n != totalOps {
			b.Fatalf("replayed %d ops, want %d", n, totalOps)
		}
	}
	b.ReportMetric(float64(totalOps)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkTraceReplaySim measures a full simulation driven from a
// recorded container (the TracePath path through the engine), against
// which BenchmarkSimulatorThroughput's synthetic-source runs compare.
func BenchmarkTraceReplaySim(b *testing.B) {
	path, _, _ := benchCapture(b)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(Config{TracePath: path, Policy: SLICCSW})
		if err != nil {
			b.Fatal(err)
		}
		instr = r.Instructions
	}
	b.ReportMetric(float64(instr), "sim-instructions/op")
}
