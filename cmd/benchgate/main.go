// Command benchgate is the CI performance-regression gate: it reads `go
// test -bench` output on stdin, compares every benchmark that reports a
// rate metric (instr/s, cells/s) against the latest BENCH_SIM.json point
// that records it, and exits non-zero when a rate falls below the recorded
// floor by more than the tolerance.
//
//	go test -run '^$' -bench 'BenchmarkMachineRun|BenchmarkSweepBatch' \
//	    -benchtime 3x ./internal/sim/ ./internal/sweep/ |
//	  benchgate -baseline BENCH_SIM.json -tolerance 0.5 -min-batch-ratio 0.75
//
// Absolute rates vary across hosts — CI runners are slower and noisier
// than the dev box BENCH_SIM.json is recorded on — so the tolerance is
// deliberately generous: the gate catches falling off a cliff (a fast path
// silently disabled, an accidental O(n) in the hot loop), not percent-level
// drift. The -min-batch-ratio check is host-independent: it compares
// BenchmarkSweepBatch/batched against .../scalar from the same run and
// fails when the lockstep batch path regresses relative to the scalar path
// it must at least match.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_SIM.json", "benchmark trajectory file holding the recorded floors")
		tol      = flag.Float64("tolerance", 0.35, "allowed fractional shortfall vs the recorded rate (0.35 = fail below 65%)")
		minRatio = flag.Float64("min-batch-ratio", 0, "minimum BenchmarkSweepBatch batched/scalar rate ratio (0 disables)")
	)
	flag.Parse()

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	floors, err := latestFloors(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}
	failures := gate(os.Stdout, results, floors, *tol, *minRatio)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) below floor\n", failures)
		os.Exit(1)
	}
}

// benchResult is one benchmark line's rate metrics (unit → value), e.g.
// {"instr/s": 1.5e7}.
type benchResult map[string]float64

// rateUnits are the higher-is-better metrics the gate checks, mapped to
// the keys BENCH_SIM.json records them under.
var rateUnits = map[string]string{
	"instr/s": "instr_s",
	"cells/s": "cells_s",
}

// parseBench extracts benchmark names and their rate metrics from `go test
// -bench` output. A line looks like:
//
//	BenchmarkMachineRun/base-16  3  221508045 ns/op  15421476 instr/s  ...
//
// The -N GOMAXPROCS suffix is stripped so names match BENCH_SIM.json keys.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := benchResult{}
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if _, ok := rateUnits[fields[i+1]]; ok {
				res[fields[i+1]] = v
			}
		}
		if len(res) > 0 {
			// -count>1 repeats a benchmark; keep the best run (rates are
			// higher-is-better and noise only pushes them down).
			if prev, ok := out[name]; ok {
				for u, v := range res {
					if v > prev[u] {
						prev[u] = v
					}
				}
			} else {
				out[name] = res
			}
		}
	}
	return out, sc.Err()
}

// latestFloors returns, for every benchmark name in the trajectory file,
// the rate metrics of the LAST point that records it — the floor the next
// change is gated against.
func latestFloors(data []byte) (map[string]benchResult, error) {
	var doc struct {
		Points []struct {
			Benchmarks map[string]map[string]float64 `json:"benchmarks"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	floors := map[string]benchResult{}
	for _, p := range doc.Points {
		for name, metrics := range p.Benchmarks {
			res := benchResult{}
			for unit, key := range rateUnits {
				if v, ok := metrics[key]; ok {
					res[unit] = v
				}
			}
			if len(res) > 0 {
				floors[name] = res // later points overwrite earlier ones
			}
		}
	}
	return floors, nil
}

// gate prints a verdict table and returns the failure count. Benchmarks
// with no recorded floor pass (reported as such); the batched/scalar ratio
// check runs when minRatio > 0 and both SweepBatch series are present.
func gate(w io.Writer, results, floors map[string]benchResult, tol, minRatio float64) int {
	failures := 0
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	// Stable output order without importing sort's full machinery: small n.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		for unit, got := range results[name] {
			base, ok := floors[name][unit]
			if !ok {
				fmt.Fprintf(w, "PASS  %s  %.0f %s (no recorded floor)\n", name, got, unit)
				continue
			}
			floor := base * (1 - tol)
			if got < floor {
				failures++
				fmt.Fprintf(w, "FAIL  %s  %.0f %s < floor %.0f (recorded %.0f, tolerance %.0f%%)\n",
					name, got, unit, floor, base, tol*100)
			} else {
				fmt.Fprintf(w, "PASS  %s  %.0f %s (floor %.0f)\n", name, got, unit, floor)
			}
		}
	}
	if minRatio > 0 {
		b, okB := results["BenchmarkSweepBatch/batched"]["cells/s"]
		s, okS := results["BenchmarkSweepBatch/scalar"]["cells/s"]
		switch {
		case !okB || !okS:
			failures++
			fmt.Fprintf(w, "FAIL  batched/scalar ratio: BenchmarkSweepBatch series missing from input\n")
		case b < s*minRatio:
			failures++
			fmt.Fprintf(w, "FAIL  batched/scalar ratio %.2f < %.2f (batched %.3f, scalar %.3f cells/s)\n",
				b/s, minRatio, b, s)
		default:
			fmt.Fprintf(w, "PASS  batched/scalar ratio %.2f (>= %.2f)\n", b/s, minRatio)
		}
	}
	return failures
}
