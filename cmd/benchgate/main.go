// Command benchgate is the CI performance-regression gate: it reads `go
// test -bench` output on stdin, compares every benchmark metric it knows
// against the latest baseline point that records it, and exits non-zero
// when a metric regresses past the tolerance.
//
//	go test -run '^$' -bench 'BenchmarkMachineRun|BenchmarkSweepBatch' \
//	    -benchtime 3x ./internal/sim/ ./internal/sweep/ |
//	  benchgate -baseline BENCH_SIM.json -tolerance 0.5 -min-batch-ratio 0.75
//
//	go test -run '^$' -bench 'BenchmarkStore(Cold|Warm)Run' -benchtime 3x . ;
//	go test -run '^$' -bench . ./internal/store/ ;  # concatenated on stdin
//	  benchgate -baseline BENCH_STORE.json -min-warm-speedup 20
//
// Two metric directions are gated. Rates (instr/s, cells/s, MB/s) are
// higher-is-better and fail below floor = recorded * (1 - tolerance);
// times (ns/op) are lower-is-better and fail above ceiling = recorded *
// (1 + time-tolerance). Absolute numbers vary across hosts — CI runners
// are slower and noisier than the dev box the baselines are recorded on —
// so both tolerances are deliberately generous: the gate catches falling
// off a cliff (a fast path silently disabled, an accidental O(n) in the
// hot loop), not percent-level drift.
//
// The ratio checks are host-independent, comparing two series from the
// same run on the same machine: -min-batch-ratio fails when the lockstep
// batch path regresses relative to the scalar path it must at least
// match, and -min-warm-speedup fails when a store-warmed run is no longer
// at least N times faster than a cold one — the guard on the store's
// whole reason to exist, and the contract crash/resume is built on.
// -min-mem-speedup holds the store's in-memory hot tier at N times a disk
// hit (store.BenchmarkGetHit vs BenchmarkGetHitMem), and
// -min-respcache-speedup holds both of sliccd's warm-GET fast paths —
// cached response bytes and If-None-Match 304s — at N times the uncached
// marshal (server.BenchmarkServerWarmGet sub-benchmarks).
//
// -baseline takes a comma-separated list of trajectory files. Baseline
// names may carry a "pkg." prefix (e.g. "store.BenchmarkPut" for
// ./internal/store) to disambiguate benchmarks from different packages;
// results match them by bare name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_SIM.json", "comma-separated benchmark trajectory file(s) holding the recorded baselines")
		tol      = flag.Float64("tolerance", 0.35, "allowed fractional shortfall vs a recorded rate (0.35 = fail below 65%)")
		timeTol  = flag.Float64("time-tolerance", 4.0, "allowed fractional slowdown vs a recorded ns/op (4.0 = fail above 5x)")
		minRatio = flag.Float64("min-batch-ratio", 0, "minimum BenchmarkSweepBatch batched/scalar rate ratio (0 disables)")
		minWarm  = flag.Float64("min-warm-speedup", 0, "minimum BenchmarkStoreColdRun/BenchmarkStoreWarmRun ns/op ratio (0 disables)")
		minMem   = flag.Float64("min-mem-speedup", 0, "minimum BenchmarkGetHit/BenchmarkGetHitMem ns/op ratio — disk vs memory-tier store hit (0 disables)")
		minResp  = flag.Float64("min-respcache-speedup", 0, "minimum BenchmarkServerWarmGet uncached/cached and uncached/notmodified ns/op ratios (0 disables)")
	)
	flag.Parse()

	floors := map[string]benchResult{}
	for _, path := range strings.Split(*baseline, ",") {
		data, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := latestFloors(data, floors); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", path, err)
			os.Exit(2)
		}
	}
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}
	failures := gate(os.Stdout, results, floors, *tol, *timeTol, *minRatio, *minWarm, *minMem, *minResp)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) below floor\n", failures)
		os.Exit(1)
	}
}

// benchResult is one benchmark line's gated metrics (unit → value), e.g.
// {"instr/s": 1.5e7, "ns/op": 2.2e8}.
type benchResult map[string]float64

// units maps every gated metric to its baseline-file key and direction.
// Rates are higher-is-better; ns/op is lower-is-better.
var units = map[string]struct {
	key          string
	higherBetter bool
}{
	"instr/s": {"instr_s", true},
	"cells/s": {"cells_s", true},
	"MB/s":    {"mb_s", true},
	"ns/op":   {"ns_op", false},
}

// parseBench extracts benchmark names and their gated metrics from `go
// test -bench` output. A line looks like:
//
//	BenchmarkMachineRun/base-16  3  221508045 ns/op  15421476 instr/s  ...
//
// The -N GOMAXPROCS suffix is stripped so names match baseline keys.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := benchResult{}
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if _, ok := units[fields[i+1]]; ok {
				res[fields[i+1]] = v
			}
		}
		if len(res) > 0 {
			// -count>1 repeats a benchmark; keep the best run in each
			// metric's direction (noise only makes results worse).
			if prev, ok := out[name]; ok {
				for u, v := range res {
					if units[u].higherBetter == (v > prev[u]) {
						prev[u] = v
					}
				}
			} else {
				out[name] = res
			}
		}
	}
	return out, sc.Err()
}

// latestFloors merges, for every benchmark name in the trajectory file,
// the metrics of the LAST point that records it — the baseline the next
// change is gated against — into floors. Prefixed names ("store.BenchmarkPut")
// are also indexed under their bare benchmark name, which is what
// parseBench produces; an explicit bare entry wins over an alias.
func latestFloors(data []byte, floors map[string]benchResult) error {
	var doc struct {
		Points []struct {
			// any, not float64: metric maps also carry "note" strings.
			Benchmarks map[string]map[string]any `json:"benchmarks"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	bare := map[string]bool{} // names recorded without a pkg prefix
	for _, p := range doc.Points {
		for name, metrics := range p.Benchmarks {
			res := benchResult{}
			for unit, u := range units {
				if v, ok := metrics[u.key].(float64); ok {
					res[unit] = v
				}
			}
			if len(res) == 0 {
				continue
			}
			floors[name] = res // later points overwrite earlier ones
			if strings.HasPrefix(name, "Benchmark") {
				bare[name] = true
			}
		}
	}
	for name, res := range floors {
		if i := strings.Index(name, ".Benchmark"); i > 0 {
			if alias := name[i+1:]; !bare[alias] {
				floors[alias] = res
			}
		}
	}
	return nil
}

// gate prints a verdict table and returns the failure count. Benchmarks
// with no recorded baseline pass (reported as such); the host-independent
// ratio checks run when their flags are > 0.
func gate(w io.Writer, results, floors map[string]benchResult, tol, timeTol, minRatio, minWarm, minMem, minResp float64) int {
	failures := 0
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	// Stable output order without importing sort's full machinery: small n.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		for unit, got := range results[name] {
			base, ok := floors[name][unit]
			if !ok {
				fmt.Fprintf(w, "PASS  %s  %.0f %s (no recorded floor)\n", name, got, unit)
				continue
			}
			if units[unit].higherBetter {
				floor := base * (1 - tol)
				if got < floor {
					failures++
					fmt.Fprintf(w, "FAIL  %s  %.0f %s < floor %.0f (recorded %.0f, tolerance %.0f%%)\n",
						name, got, unit, floor, base, tol*100)
				} else {
					fmt.Fprintf(w, "PASS  %s  %.0f %s (floor %.0f)\n", name, got, unit, floor)
				}
			} else {
				ceiling := base * (1 + timeTol)
				if got > ceiling {
					failures++
					fmt.Fprintf(w, "FAIL  %s  %.0f %s > ceiling %.0f (recorded %.0f, tolerance %.0fx)\n",
						name, got, unit, ceiling, base, 1+timeTol)
				} else {
					fmt.Fprintf(w, "PASS  %s  %.0f %s (ceiling %.0f)\n", name, got, unit, ceiling)
				}
			}
		}
	}
	if minRatio > 0 {
		b, okB := results["BenchmarkSweepBatch/batched"]["cells/s"]
		s, okS := results["BenchmarkSweepBatch/scalar"]["cells/s"]
		switch {
		case !okB || !okS:
			failures++
			fmt.Fprintf(w, "FAIL  batched/scalar ratio: BenchmarkSweepBatch series missing from input\n")
		case b < s*minRatio:
			failures++
			fmt.Fprintf(w, "FAIL  batched/scalar ratio %.2f < %.2f (batched %.3f, scalar %.3f cells/s)\n",
				b/s, minRatio, b, s)
		default:
			fmt.Fprintf(w, "PASS  batched/scalar ratio %.2f (>= %.2f)\n", b/s, minRatio)
		}
	}
	if minWarm > 0 {
		failures += speedup(w, results, "warm-store",
			"BenchmarkStoreColdRun", "BenchmarkStoreWarmRun", minWarm)
	}
	if minMem > 0 {
		failures += speedup(w, results, "mem-tier hit",
			"BenchmarkGetHit", "BenchmarkGetHitMem", minMem)
	}
	if minResp > 0 {
		failures += speedup(w, results, "response-cache",
			"BenchmarkServerWarmGet/uncached", "BenchmarkServerWarmGet/cached", minResp)
		failures += speedup(w, results, "not-modified",
			"BenchmarkServerWarmGet/uncached", "BenchmarkServerWarmGet/notmodified", minResp)
	}
	return failures
}

// speedup checks the host-independent ns/op ratio slow/fast >= min, both
// series coming from the same run on the same machine. Returns 1 on
// failure (either series missing, or ratio below min), 0 on pass.
func speedup(w io.Writer, results map[string]benchResult, label, slow, fast string, min float64) int {
	s, okS := results[slow]["ns/op"]
	f, okF := results[fast]["ns/op"]
	switch {
	case !okS || !okF || f <= 0:
		fmt.Fprintf(w, "FAIL  %s speedup: %s or %s missing from input\n", label, slow, fast)
		return 1
	case s/f < min:
		fmt.Fprintf(w, "FAIL  %s speedup %.1fx < %.1fx (%s %.0f, %s %.0f ns/op)\n",
			label, s/f, min, slow, s, fast, f)
		return 1
	default:
		fmt.Fprintf(w, "PASS  %s speedup %.1fx (>= %.1fx)\n", label, s/f, min)
		return 0
	}
}
