package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: slicc/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMachineRun/base-16         	       5	 221508045 ns/op	  15421476 instr/s	 4490329 B/op	     359 allocs/op
BenchmarkMachineRun/slicc-16        	       4	 260007174 ns/op	  13142892 instr/s	 4632249 B/op	     832 allocs/op
BenchmarkSweepBatch/batched-16      	       3	 833589463 ns/op	         5.998 cells/s
BenchmarkSweepBatch/batched-16      	       3	 900785234 ns/op	         5.551 cells/s
BenchmarkSweepBatch/scalar-16       	       3	 887012126 ns/op	         5.637 cells/s
PASS
`

const sampleBaseline = `{
  "points": [
    {
      "benchmarks": {
        "BenchmarkMachineRun/base": { "ns_op": 350569454, "instr_s": 9743279 }
      }
    },
    {
      "benchmarks": {
        "BenchmarkMachineRun/base": { "ns_op": 221508045, "instr_s": 15421476 },
        "BenchmarkMachineRun/slicc": { "ns_op": 260007174, "instr_s": 13142892 },
        "BenchmarkSweepBatch/batched": { "cells_s": 5.998 },
        "BenchmarkSweepBatch/scalar": { "cells_s": 5.637 }
      }
    }
  ]
}`

// sampleStoreBench is concatenated output of the root-package store-path
// benches and the internal/store micro benches — BENCH_STORE.json's shape.
const sampleStoreBench = `pkg: slicc
BenchmarkStoreColdRun-16    	       3	  50053181 ns/op	 7394033 B/op	   13398 allocs/op
BenchmarkStoreWarmRun-16    	      12	     94437 ns/op	   28897 B/op	     485 allocs/op
PASS
pkg: slicc/internal/store
BenchmarkPut-16             	   10000	    110289 ns/op	  37.14 MB/s	    5671 B/op	      15 allocs/op
BenchmarkGetHit-16          	  130000	      8921 ns/op	 459.12 MB/s	    5720 B/op	      10 allocs/op
BenchmarkGetHitMem-16       	 9000000	       121 ns/op	33851.20 MB/s	       0 B/op	       0 allocs/op
PASS
pkg: slicc/internal/server
BenchmarkServerWarmGet/uncached-16     	   80000	     14832 ns/op	    9321 B/op	      63 allocs/op
BenchmarkServerWarmGet/cached-16       	  400000	      2716 ns/op	    1544 B/op	      18 allocs/op
BenchmarkServerWarmGet/notmodified-16  	  500000	      2231 ns/op	    1322 B/op	      16 allocs/op
PASS
`

const sampleStoreBaseline = `{
  "points": [
    {
      "benchmarks": {
        "BenchmarkStoreColdRun": { "ns_op": 50053181 },
        "BenchmarkStoreWarmRun": { "ns_op": 94437 },
        "store.BenchmarkPut": { "ns_op": 110289, "mb_s": 37.14 },
        "store.BenchmarkGetHit": { "ns_op": 8921, "mb_s": 459.12 }
      }
    }
  ]
}`

func loadFloors(t *testing.T, docs ...string) map[string]benchResult {
	t.Helper()
	floors := map[string]benchResult{}
	for _, doc := range docs {
		if err := latestFloors([]byte(doc), floors); err != nil {
			t.Fatal(err)
		}
	}
	return floors
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkMachineRun/base"]["instr/s"]; v != 15421476 {
		t.Fatalf("base instr/s = %v, want 15421476 (GOMAXPROCS suffix must be stripped)", v)
	}
	// -count repeats keep the best run per metric direction: the higher
	// rate and the lower time.
	if v := got["BenchmarkSweepBatch/batched"]["cells/s"]; v != 5.998 {
		t.Fatalf("batched cells/s = %v, want best-of-runs 5.998", v)
	}
	if v := got["BenchmarkSweepBatch/batched"]["ns/op"]; v != 833589463 {
		t.Fatalf("batched ns/op = %v, want best-of-runs 833589463", v)
	}
	if _, ok := got["BenchmarkMachineRun/base"]["B/op"]; ok {
		t.Fatal("B/op is not a gated metric")
	}
}

func TestParseBenchStoreMetrics(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleStoreBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkStoreWarmRun"]["ns/op"]; v != 94437 {
		t.Fatalf("warm ns/op = %v", v)
	}
	if v := got["BenchmarkPut"]["MB/s"]; v != 37.14 {
		t.Fatalf("put MB/s = %v", v)
	}
}

func TestLatestFloors(t *testing.T) {
	floors := loadFloors(t, sampleBaseline)
	// The LATEST point recording a benchmark wins.
	if v := floors["BenchmarkMachineRun/base"]["instr/s"]; v != 15421476 {
		t.Fatalf("base floor = %v, want the later point's 15421476", v)
	}
	if v := floors["BenchmarkSweepBatch/batched"]["cells/s"]; v != 5.998 {
		t.Fatalf("batched floor = %v, want 5.998", v)
	}
}

func TestLatestFloorsMergesBaselinesAndAliasesPrefixes(t *testing.T) {
	floors := loadFloors(t, sampleBaseline, sampleStoreBaseline)
	// Both files contribute (comma-separated -baseline merges them)...
	if _, ok := floors["BenchmarkMachineRun/base"]; !ok {
		t.Fatal("first baseline lost in merge")
	}
	if v := floors["BenchmarkStoreWarmRun"]["ns/op"]; v != 94437 {
		t.Fatalf("warm floor = %v", v)
	}
	// ...and "store."-prefixed names gate the bare names parseBench emits.
	if v := floors["BenchmarkPut"]["MB/s"]; v != 37.14 {
		t.Fatalf("store.BenchmarkPut alias floor = %v, want 37.14", v)
	}
	if v := floors["store.BenchmarkPut"]["MB/s"]; v != 37.14 {
		t.Fatal("prefixed name itself must stay resolvable")
	}
}

func TestGate(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleBench))
	floors := loadFloors(t, sampleBaseline)

	var out strings.Builder
	if n := gate(&out, results, floors, 0.35, 4.0, 0.75, 0, 0, 0); n != 0 {
		t.Fatalf("clean run failed %d gate(s):\n%s", n, out.String())
	}

	// A collapsed rate must fail: drop base to half its floor-with-tolerance.
	results["BenchmarkMachineRun/base"]["instr/s"] = 15421476 * 0.3
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 4.0, 0, 0, 0, 0); n != 1 {
		t.Fatalf("regressed run reported %d failures, want 1:\n%s", n, out.String())
	}

	// A blown-up time must fail its ceiling: 6x the recorded ns/op is past
	// the 5x the default time tolerance allows.
	results["BenchmarkMachineRun/base"]["instr/s"] = 15421476
	results["BenchmarkMachineRun/base"]["ns/op"] = 221508045 * 6
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 4.0, 0, 0, 0, 0); n != 1 {
		t.Fatalf("slow run reported %d failures, want 1:\n%s", n, out.String())
	}
	results["BenchmarkMachineRun/base"]["ns/op"] = 221508045

	// A batched path regressing far below scalar must trip the ratio check
	// even when its absolute floor (with tolerance) still passes.
	results["BenchmarkSweepBatch/batched"]["cells/s"] = 5.637 * 0.70
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 4.0, 0.75, 0, 0, 0); n != 1 {
		t.Fatalf("batch-ratio regression reported %d failures, want 1:\n%s", n, out.String())
	}

	// Unknown benchmarks pass (no recorded floor yet).
	delete(floors, "BenchmarkSweepBatch/batched")
	results["BenchmarkSweepBatch/batched"]["cells/s"] = 5.998
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 4.0, 0.75, 0, 0, 0); n != 0 {
		t.Fatalf("unknown benchmark failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no recorded floor") {
		t.Fatalf("missing no-floor note:\n%s", out.String())
	}
}

func TestGateWarmSpeedup(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleStoreBench))
	floors := loadFloors(t, sampleStoreBaseline)

	var out strings.Builder
	if n := gate(&out, results, floors, 0.35, 4.0, 0, 20, 0, 0); n != 0 {
		t.Fatalf("clean store run failed %d gate(s):\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "warm-store speedup") {
		t.Fatalf("warm-speedup check not reported:\n%s", out.String())
	}

	// The win this gate protects is ~500x; a warm run degraded to 10x cold
	// (store effectively bypassed) must fail even though absolute times,
	// with their generous host tolerance, could still pass.
	results["BenchmarkStoreWarmRun"]["ns/op"] = results["BenchmarkStoreColdRun"]["ns/op"] / 10
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 20, 0, 0); n != 1 {
		t.Fatalf("degraded warm run reported %d failures, want 1:\n%s", n, out.String())
	}

	// Missing series is a failure, not a silent pass.
	delete(results, "BenchmarkStoreWarmRun")
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 20, 0, 0); n != 1 {
		t.Fatalf("missing warm series reported %d failures, want 1:\n%s", n, out.String())
	}
}

func TestGateMemSpeedup(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleStoreBench))
	floors := loadFloors(t, sampleStoreBaseline)

	// Sample: disk hit 8921 ns vs mem hit 121 ns, ~74x — passes >= 5x.
	var out strings.Builder
	if n := gate(&out, results, floors, 0.35, 4.0, 0, 0, 5, 0); n != 0 {
		t.Fatalf("clean mem-tier run failed %d gate(s):\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "mem-tier hit speedup") {
		t.Fatalf("mem-speedup check not reported:\n%s", out.String())
	}

	// A mem hit degraded to disk speed (tier silently disabled) must fail
	// even though its absolute time would pass any host tolerance.
	results["BenchmarkGetHitMem"]["ns/op"] = results["BenchmarkGetHit"]["ns/op"] * 0.5
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 0, 5, 0); n != 1 {
		t.Fatalf("degraded mem tier reported %d failures, want 1:\n%s", n, out.String())
	}

	// Missing series fails loudly.
	delete(results, "BenchmarkGetHitMem")
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 0, 5, 0); n != 1 {
		t.Fatalf("missing mem series reported %d failures, want 1:\n%s", n, out.String())
	}
}

func TestGateRespCacheSpeedup(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleStoreBench))
	floors := loadFloors(t, sampleStoreBaseline)

	// Sample: uncached 14832 ns vs cached 2716 / 304 2231 — both >= 5x.
	var out strings.Builder
	if n := gate(&out, results, floors, 0.35, 4.0, 0, 0, 0, 5); n != 0 {
		t.Fatalf("clean response-cache run failed %d gate(s):\n%s", n, out.String())
	}
	for _, want := range []string{"response-cache speedup", "not-modified speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in report:\n%s", want, out.String())
		}
	}

	// The flag gates BOTH ratios: a slow 304 path alone must fail.
	results["BenchmarkServerWarmGet/notmodified"]["ns/op"] =
		results["BenchmarkServerWarmGet/uncached"]["ns/op"] * 0.5
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 0, 0, 5); n != 1 {
		t.Fatalf("degraded 304 path reported %d failures, want 1:\n%s", n, out.String())
	}

	// Missing sub-benchmarks fail both ratio checks loudly.
	delete(results, "BenchmarkServerWarmGet/uncached")
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 1000, 0, 0, 0, 5); n != 2 {
		t.Fatalf("missing uncached series reported %d failures, want 2:\n%s", n, out.String())
	}
}
