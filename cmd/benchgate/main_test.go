package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: slicc/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMachineRun/base-16         	       5	 221508045 ns/op	  15421476 instr/s	 4490329 B/op	     359 allocs/op
BenchmarkMachineRun/slicc-16        	       4	 260007174 ns/op	  13142892 instr/s	 4632249 B/op	     832 allocs/op
BenchmarkSweepBatch/batched-16      	       3	 833589463 ns/op	         5.998 cells/s
BenchmarkSweepBatch/batched-16      	       3	 900785234 ns/op	         5.551 cells/s
BenchmarkSweepBatch/scalar-16       	       3	 887012126 ns/op	         5.637 cells/s
PASS
`

const sampleBaseline = `{
  "points": [
    {
      "benchmarks": {
        "BenchmarkMachineRun/base": { "ns_op": 350569454, "instr_s": 9743279 }
      }
    },
    {
      "benchmarks": {
        "BenchmarkMachineRun/base": { "ns_op": 221508045, "instr_s": 15421476 },
        "BenchmarkMachineRun/slicc": { "ns_op": 260007174, "instr_s": 13142892 },
        "BenchmarkSweepBatch/batched": { "cells_s": 5.998 },
        "BenchmarkSweepBatch/scalar": { "cells_s": 5.637 }
      }
    }
  ]
}`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkMachineRun/base"]["instr/s"]; v != 15421476 {
		t.Fatalf("base instr/s = %v, want 15421476 (GOMAXPROCS suffix must be stripped)", v)
	}
	// -count repeats keep the best rate.
	if v := got["BenchmarkSweepBatch/batched"]["cells/s"]; v != 5.998 {
		t.Fatalf("batched cells/s = %v, want best-of-runs 5.998", v)
	}
	if _, ok := got["BenchmarkMachineRun/base"]["ns/op"]; ok {
		t.Fatal("ns/op is not a rate metric and must not be gated")
	}
}

func TestLatestFloors(t *testing.T) {
	floors, err := latestFloors([]byte(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	// The LATEST point recording a benchmark wins.
	if v := floors["BenchmarkMachineRun/base"]["instr/s"]; v != 15421476 {
		t.Fatalf("base floor = %v, want the later point's 15421476", v)
	}
	if v := floors["BenchmarkSweepBatch/batched"]["cells/s"]; v != 5.998 {
		t.Fatalf("batched floor = %v, want 5.998", v)
	}
}

func TestGate(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleBench))
	floors, _ := latestFloors([]byte(sampleBaseline))

	var out strings.Builder
	if n := gate(&out, results, floors, 0.35, 0.75); n != 0 {
		t.Fatalf("clean run failed %d gate(s):\n%s", n, out.String())
	}

	// A collapsed rate must fail: drop base to half its floor-with-tolerance.
	results["BenchmarkMachineRun/base"]["instr/s"] = 15421476 * 0.3
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 0); n != 1 {
		t.Fatalf("regressed run reported %d failures, want 1:\n%s", n, out.String())
	}

	// A batched path regressing far below scalar must trip the ratio check
	// even when its absolute floor (with tolerance) still passes.
	results["BenchmarkMachineRun/base"]["instr/s"] = 15421476
	results["BenchmarkSweepBatch/batched"]["cells/s"] = 5.637 * 0.70
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 0.75); n != 1 {
		t.Fatalf("batch-ratio regression reported %d failures, want 1:\n%s", n, out.String())
	}

	// Unknown benchmarks pass (no recorded floor yet).
	delete(floors, "BenchmarkSweepBatch/batched")
	results["BenchmarkSweepBatch/batched"]["cells/s"] = 5.998
	out.Reset()
	if n := gate(&out, results, floors, 0.35, 0.75); n != 0 {
		t.Fatalf("unknown benchmark failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no recorded floor") {
		t.Fatalf("missing no-floor note:\n%s", out.String())
	}
}
