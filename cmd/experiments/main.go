// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all -quick
//	experiments -run fig7 -out fig7.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"slicc"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		run    = flag.String("run", "all", "experiment id or 'all'")
		quick  = flag.Bool("quick", false, "shrink workloads ~20x for a fast smoke run")
		seed   = flag.Int64("seed", 1, "workload seed")
		out    = flag.String("out", "", "write results to this file instead of stdout")
		asJSON = flag.Bool("json", false, "emit JSON instead of aligned text tables")
	)
	flag.Parse()

	if *list {
		for _, id := range slicc.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	ids := []string{*run}
	if *run == "all" {
		ids = slicc.ExperimentIDs()
	}
	collected := map[string][]slicc.ExperimentTable{}
	for _, id := range ids {
		start := time.Now()
		tables, err := slicc.Experiment(id, *quick, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			collected[id] = tables
		} else {
			for _, t := range tables {
				t.Format(w)
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
