// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all -quick
//	experiments -run all -quick -j 8 -progress
//	experiments -run fig7 -out fig7.txt
//
// Experiments share one engine: their simulations run on -j workers,
// identical simulations are deduplicated across experiments, and the table
// output is byte-identical for any -j.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"slicc"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "all", "experiment id or 'all'")
		quick    = flag.Bool("quick", false, "shrink workloads ~20x for a fast smoke run")
		seed     = flag.Int64("seed", 1, "workload seed")
		tracePth = flag.String("trace", "", "replay every benchmark from this recorded trace container (see docs/TRACES.md)")
		out      = flag.String("out", "", "write results to this file instead of stdout")
		asJSON   = flag.Bool("json", false, "emit JSON instead of aligned text tables")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		progress = flag.Bool("progress", false, "report live simulation progress on stderr")
		storeDir = flag.String("store", "", "persist results in the content-addressed store at this directory; a warm store re-renders without simulating (see docs/SERVICE.md)")
		storeMB  = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		verbose  = flag.Bool("v", false, "report wall-clock and simulated instructions/sec on exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (perf tuning)")
	)
	flag.Parse()

	// stopProfile must also run on the failure path below, which exits via
	// os.Exit and would skip a deferred stop, truncating the profile.
	stopProfile := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopProfile = pprof.StopCPUProfile
		defer stopProfile()
	}

	if *list {
		for _, id := range slicc.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := slicc.EngineOptions{Workers: *workers, StoreDir: *storeDir, StoreMaxBytes: *storeMB << 20}
	if *progress {
		opts.Progress = func(done, scheduled int) {
			fmt.Fprintf(os.Stderr, "\rsimulations %d/%d ", done, scheduled)
		}
	}
	engine, err := slicc.NewEngine(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	ids := []string{*run}
	if *run == "all" {
		ids = slicc.ExperimentIDs()
	}

	// Run every experiment concurrently on the shared engine — the engine
	// bounds simulation parallelism at -j workers and dedups identical
	// simulations across experiments — then emit output in stable id order.
	type outcome struct {
		tables []slicc.ExperimentTable
		err    error
		// doneAt is the completion offset from launch. Experiments run
		// concurrently and share workers, so a per-experiment duration
		// would mostly measure waiting on the pool; the completion
		// timeline is the honest number.
		doneAt time.Duration
	}
	outcomes := make([]outcome, len(ids))
	var wg sync.WaitGroup
	start := time.Now()
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			opts := slicc.ExperimentOptions{Quick: *quick, Seed: *seed, TracePath: *tracePth}
			tables, err := engine.ExperimentWith(context.Background(), id, opts)
			outcomes[i] = outcome{tables: tables, err: err, doneAt: time.Since(start)}
		}(i, id)
	}
	wg.Wait()
	if *progress {
		fmt.Fprintln(os.Stderr)
	}

	// Emit every successful experiment and report every failure: one bad id
	// must not suppress the others' output, but any failure makes the whole
	// invocation exit non-zero.
	var failures []string
	collected := map[string][]slicc.ExperimentTable{}
	for i, id := range ids {
		o := outcomes[i]
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, o.err)
			failures = append(failures, id)
			continue
		}
		if *asJSON {
			collected[id] = o.tables
		} else {
			for _, t := range o.tables {
				t.Format(w)
			}
		}
		fmt.Fprintf(os.Stderr, "%s done at +%v\n", id, o.doneAt.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failures = append(failures, "(json encoding)")
		}
	}
	stats := engine.Stats()
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "total %v: %d simulations executed, %d deduplicated, %d store hits, %d workloads synthesized (%d reused)\n",
		elapsed.Round(time.Millisecond),
		stats.SimsExecuted, stats.DedupHits, stats.StoreHits, stats.WorkloadsBuilt, stats.WorkloadHits)
	if *verbose {
		// Wall-clock and simulation rate from one command: the numbers the
		// BENCH_SIM.json trajectory tracks.
		fmt.Fprintf(os.Stderr, "perf: %.3fs wall-clock, %d instructions simulated, %.2fM instr/s\n",
			elapsed.Seconds(), stats.InstructionsSimulated,
			float64(stats.InstructionsSimulated)/elapsed.Seconds()/1e6)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed: %s\n", len(failures), strings.Join(failures, ", "))
		engine.Close() // os.Exit skips the deferred close
		stopProfile()  // ... and the deferred profile stop
		os.Exit(1)
	}
}
