// Command experiments regenerates the paper's tables and figures, and runs
// declarative parameter sweeps.
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all -quick
//	experiments -run all -quick -j 8 -progress
//	experiments -run fig7 -out fig7.txt
//	experiments -sweep spec.json -store ./store
//	experiments -sweep spec.json -csv -out cells.csv
//	experiments -sweep spec.json -watch
//	echo '{"preset":"fig7-thresholds"}' | experiments -sweep -
//
// Experiments share one engine: their simulations run on -j workers,
// identical simulations are deduplicated across experiments, and the table
// output is byte-identical for any -j. A -sweep run expands the JSON spec
// (see EXPERIMENTS.md "Sweeps") into its cell cross-product on the same
// engine, so sweeps share dedup and the persistent store with everything
// else; a store-warmed rerun executes zero simulations.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"slicc"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and sweep presets, then exit")
		run      = flag.String("run", "all", "experiment id or 'all'")
		sweepPth = flag.String("sweep", "", "run the parameter sweep declared in this JSON spec file ('-' reads stdin) instead of -run")
		asCSV    = flag.Bool("csv", false, "with -sweep: emit the per-cell results as CSV")
		nobatch  = flag.Bool("nobatch", false, "with -sweep: simulate cells one by one instead of in lockstep batches (for measuring the batching win; output is byte-identical)")
		watch    = flag.Bool("watch", false, "with -sweep: print a progress line per finished cell on stderr (runs cells on the scalar path; output is byte-identical)")
		quick    = flag.Bool("quick", false, "shrink workloads ~20x for a fast smoke run")
		seed     = flag.Int64("seed", 1, "workload seed")
		tracePth = flag.String("trace", "", "replay every benchmark from this recorded trace container (see docs/TRACES.md)")
		out      = flag.String("out", "", "write results to this file instead of stdout")
		asJSON   = flag.Bool("json", false, "emit JSON instead of aligned text tables")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		progress = flag.Bool("progress", false, "report live simulation progress on stderr")
		storeDir = flag.String("store", "", "persist results in the content-addressed store at this directory; a warm store re-renders without simulating (see docs/SERVICE.md)")
		storeMB  = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		storeMem = flag.Int64("store-mem-mb", 0, "serve repeated store reads from an in-memory hot tier of this many MB (0 = disabled)")
		verbose  = flag.Bool("v", false, "report wall-clock and simulated instructions/sec on exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (perf tuning)")
	)
	flag.Parse()

	// stopProfile must also run on the failure path below, which exits via
	// os.Exit and would skip a deferred stop, truncating the profile.
	stopProfile := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopProfile = pprof.StopCPUProfile
		defer stopProfile()
	}

	if *list {
		for _, id := range slicc.ExperimentIDs() {
			fmt.Println(id)
		}
		for _, name := range slicc.SweepPresets() {
			fmt.Printf("sweep:%s\n", name)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := slicc.EngineOptions{Workers: *workers, StoreDir: *storeDir, StoreMaxBytes: *storeMB << 20, StoreMemBytes: *storeMem << 20}
	if *progress {
		opts.Progress = func(done, scheduled int) {
			fmt.Fprintf(os.Stderr, "\rsimulations %d/%d ", done, scheduled)
		}
	}
	engine, err := slicc.NewEngine(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	if *sweepPth != "" {
		// The experiment-shaping flags do not apply to sweeps (a spec
		// carries its own seeds/scales axes and has no trace form); refuse
		// them rather than silently running something the user did not ask
		// for.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "quick", "seed", "trace", "run":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "-sweep does not combine with %s: set the sweep's axes in the spec instead (see EXPERIMENTS.md \"Sweeps\")\n",
				strings.Join(conflicts, ", "))
			engine.Close() // os.Exit skips the deferred close
			stopProfile()
			os.Exit(2)
		}
		start := time.Now()
		err := runSweep(engine, *sweepPth, w, *asJSON, *asCSV, *nobatch, *watch)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		reportStats(engine, start, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			engine.Close() // os.Exit skips the deferred close
			stopProfile()
			os.Exit(1)
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = slicc.ExperimentIDs()
	}

	// Run every experiment concurrently on the shared engine — the engine
	// bounds simulation parallelism at -j workers and dedups identical
	// simulations across experiments — then emit output in stable id order.
	type outcome struct {
		tables []slicc.ExperimentTable
		err    error
		// doneAt is the completion offset from launch. Experiments run
		// concurrently and share workers, so a per-experiment duration
		// would mostly measure waiting on the pool; the completion
		// timeline is the honest number.
		doneAt time.Duration
	}
	outcomes := make([]outcome, len(ids))
	var wg sync.WaitGroup
	start := time.Now()
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			opts := slicc.ExperimentOptions{Quick: *quick, Seed: *seed, TracePath: *tracePth}
			tables, err := engine.ExperimentWith(context.Background(), id, opts)
			outcomes[i] = outcome{tables: tables, err: err, doneAt: time.Since(start)}
		}(i, id)
	}
	wg.Wait()
	if *progress {
		fmt.Fprintln(os.Stderr)
	}

	// Emit every successful experiment and report every failure: one bad id
	// must not suppress the others' output, but any failure makes the whole
	// invocation exit non-zero.
	var failures []string
	collected := map[string][]slicc.ExperimentTable{}
	for i, id := range ids {
		o := outcomes[i]
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, o.err)
			failures = append(failures, id)
			continue
		}
		if *asJSON {
			collected[id] = o.tables
		} else {
			for _, t := range o.tables {
				t.Format(w)
			}
		}
		fmt.Fprintf(os.Stderr, "%s done at +%v\n", id, o.doneAt.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failures = append(failures, "(json encoding)")
		}
	}
	reportStats(engine, start, *verbose)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed: %s\n", len(failures), strings.Join(failures, ", "))
		engine.Close() // os.Exit skips the deferred close
		stopProfile()  // ... and the deferred profile stop
		os.Exit(1)
	}
}

// runSweep loads the JSON sweep spec at path ("-" for stdin), runs it on
// the shared engine, and emits the result as an aligned table (default),
// JSON, or CSV. With watch, every finished cell prints a progress line on
// stderr as it lands (sliccd streams the same events over SSE).
func runSweep(engine *slicc.Engine, path string, w io.Writer, asJSON, asCSV, nobatch, watch bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var spec slicc.SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("decoding sweep spec %s: %w", path, err)
	}
	runFn := engine.Sweep
	if nobatch {
		runFn = engine.SweepUnbatched
	}
	if watch {
		runFn = func(ctx context.Context, spec slicc.SweepSpec) (*slicc.SweepResult, error) {
			return engine.SweepStream(ctx, spec, func(ev slicc.SweepEvent) {
				if ev.Type != slicc.SweepEventCell {
					return
				}
				served := "simulated"
				if ev.StoreHit {
					served = "store hit"
				}
				fmt.Fprintf(os.Stderr, "cell %d/%d  %s/%s  %.0f cycles  %.3fx  (%s)\n",
					ev.Completed, ev.Total, ev.Cell.Workload, ev.Cell.Policy,
					ev.Cell.Cycles, ev.Cell.Speedup, served)
			})
		}
	}
	res, err := runFn(context.Background(), spec)
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case asCSV:
		return res.WriteCSV(w)
	default:
		t := slicc.SweepTable(res)
		t.Format(w)
		return nil
	}
}

// reportStats prints the engine's work counters (and with verbose the
// simulation rate the BENCH_SIM.json trajectory tracks) on stderr.
func reportStats(engine *slicc.Engine, start time.Time, verbose bool) {
	stats := engine.Stats()
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "total %v: %d simulations executed, %d deduplicated, %d store hits, %d workloads synthesized (%d reused)\n",
		elapsed.Round(time.Millisecond),
		stats.SimsExecuted, stats.DedupHits, stats.StoreHits, stats.WorkloadsBuilt, stats.WorkloadHits)
	if verbose {
		fmt.Fprintf(os.Stderr, "perf: %.3fs wall-clock, %d instructions simulated, %.2fM instr/s\n",
			elapsed.Seconds(), stats.InstructionsSimulated,
			float64(stats.InstructionsSimulated)/elapsed.Seconds()/1e6)
		if stats.BatchesExecuted > 0 {
			amort := float64(stats.BatchOpsServed) / float64(stats.BatchOpsDecoded+1)
			fmt.Fprintf(os.Stderr, "batch: %d cells in %d lockstep batches, %d ops decoded once for %d served (%.1fx decode amortization)\n",
				stats.CellsBatched, stats.BatchesExecuted,
				stats.BatchOpsDecoded, stats.BatchOpsServed, amort)
		}
	}
}
