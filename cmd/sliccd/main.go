// Command sliccd serves the slicc simulation engine over HTTP: submit
// simulations and parameter sweeps, poll results, and render the paper's
// experiments, all on one shared engine whose results persist in a
// content-addressed store.
//
//	sliccd -store /var/lib/slicc/store
//	sliccd -addr 127.0.0.1:8080 -store ./store -j 8 -timeout 5m
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulations?wait=1 \
//	     -d '{"Benchmark":"tpcc1","Policy":"slicc-sw","Threads":64}'
//	curl -s -X POST localhost:8080/v1/sweeps?wait=1 \
//	     -d '{"preset":"scenario-families","threads":[40],"scales":[0.35]}'
//	curl -s localhost:8080/v1/experiments/fig11?quick=1
//
// The listen address is printed on stdout once the socket is open (use
// -addr 127.0.0.1:0 to let the OS pick a free port). SIGINT/SIGTERM drain
// the server gracefully: the listener closes, in-flight requests get a
// shutdown grace period, background simulations abort, and the engine —
// store and cached trace containers included — is closed.
//
// See docs/SERVICE.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"slicc"
	"slicc/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		storeDir = flag.String("store", "", "persist results in the content-addressed store at this directory")
		storeMB  = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		timeout  = flag.Duration("timeout", 2*time.Minute, "request timeout for experiment runs and ?wait=1 polls")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	if err := run(*addr, *storeDir, *storeMB, *workers, *timeout, *grace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, storeMB int64, workers int, timeout, grace time.Duration) error {
	eng, err := slicc.NewEngine(slicc.EngineOptions{
		Workers:       workers,
		StoreDir:      storeDir,
		StoreMaxBytes: storeMB << 20,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	srv := server.New(eng, server.Options{Timeout: timeout})
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout — it is the service's one piece of
	// machine-readable startup output, which scripts (and the smoke test)
	// parse to find a dynamically assigned port.
	fmt.Printf("sliccd listening on %s\n", ln.Addr())
	if storeDir != "" {
		fmt.Fprintf(os.Stderr, "result store at %s\n", storeDir)
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sliccd: %v, draining (grace %v)\n", sig, grace)
	case err := <-errc:
		return fmt.Errorf("sliccd: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("sliccd: shutdown: %w", err)
	}
	// Abort background simulations before the engine (and its store) close.
	srv.Close()
	return nil
}
