// Command sliccd serves the slicc simulation engine over HTTP: submit
// simulations and parameter sweeps, poll results, and render the paper's
// experiments, all on one shared engine whose results persist in a
// content-addressed store.
//
//	sliccd -store /var/lib/slicc/store
//	sliccd -addr 127.0.0.1:8080 -store ./store -j 8 -timeout 5m
//	sliccd -store ./store -distributed   # + sliccworker fleet (see cmd/sliccworker)
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulations?wait=1 \
//	     -d '{"Benchmark":"tpcc1","Policy":"slicc-sw","Threads":64}'
//	curl -s -X POST localhost:8080/v1/sweeps?wait=1 \
//	     -d '{"preset":"scenario-families","threads":[40],"scales":[0.35]}'
//	curl -s localhost:8080/v1/experiments/fig11?quick=1
//
// The listen address is printed on stdout once the socket is open (use
// -addr 127.0.0.1:0 to let the OS pick a free port). SIGINT/SIGTERM drain
// the server gracefully: the listener closes, in-flight requests get a
// shutdown grace period, background simulations abort, and the engine —
// store and cached trace containers included — is closed.
//
// See docs/SERVICE.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"slicc"
	"slicc/internal/queue"
	"slicc/internal/server"
	"slicc/internal/telemetry"
)

// options carries the parsed flag set into run.
type options struct {
	addr       string
	storeDir   string
	storeMB    int64
	storeMemMB int64
	workers    int
	timeout    time.Duration
	grace      time.Duration
	logFormat  string
	logLevel   string
	pprof      bool

	distributed   bool
	queueDir      string
	queueLeaseTTL time.Duration
	queueAttempts int
	queueBackoff  time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		storeDir = flag.String("store", "", "persist results in the content-addressed store at this directory")
		storeMB  = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		storeMem = flag.Int64("store-mem-mb", 0, "serve repeated store reads from an in-memory hot tier of this many MB (0 = disabled)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		timeout  = flag.Duration("timeout", 2*time.Minute, "request timeout for experiment runs and ?wait=1 polls")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		logFmt   = flag.String("log-format", "text", "structured log format on stderr: text or json")
		logLvl   = flag.String("log-level", "info", "log level: debug, info, warn or error (debug includes spans and per-cell sweep progress)")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")

		distributed = flag.Bool("distributed", false, "enqueue sweep cells onto the durable job queue for the sliccworker fleet instead of executing them in-process (requires -store)")
		queueDir    = flag.String("queue", "", "durable job queue directory (default <store>/queue)")
		queueTTL    = flag.Duration("queue-lease-ttl", 30*time.Second, "lease visibility timeout: an unrenewed lease expires and the cell is retried")
		queueTries  = flag.Int("queue-max-attempts", 3, "failed attempts (worker failures and lease expirations) before a cell dead-letters")
		queueWait   = flag.Duration("queue-backoff", time.Second, "delay before a failed cell's first retry (doubles per attempt)")
	)
	flag.Parse()

	opts := options{
		addr: *addr, storeDir: *storeDir, storeMB: *storeMB, storeMemMB: *storeMem, workers: *workers,
		timeout: *timeout, grace: *grace,
		logFormat: *logFmt, logLevel: *logLvl, pprof: *pprofOn,
		distributed: *distributed, queueDir: *queueDir,
		queueLeaseTTL: *queueTTL, queueAttempts: *queueTries, queueBackoff: *queueWait,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	// Logs go to stderr: stdout stays reserved for the one-line listen
	// address that scripts parse.
	logger, err := telemetry.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return fmt.Errorf("sliccd: %w", err)
	}
	// Distributed mode: open the durable job queue and hand the engine a
	// dispatcher, so sweeps enqueue cells for the sliccworker fleet
	// instead of executing them here. The store stays mandatory — it is
	// how worker results come back.
	var q *queue.Queue
	if o.distributed {
		if o.storeDir == "" {
			return errors.New("sliccd: -distributed requires -store (the shared store carries worker results)")
		}
		qdir := o.queueDir
		if qdir == "" {
			qdir = filepath.Join(o.storeDir, "queue")
		}
		var err error
		q, err = queue.Open(qdir, queue.Options{
			MaxAttempts: o.queueAttempts,
			LeaseTTL:    o.queueLeaseTTL,
			Backoff:     o.queueBackoff,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		defer q.Close()
	}

	engOpts := slicc.EngineOptions{
		Workers:       o.workers,
		StoreDir:      o.storeDir,
		StoreMaxBytes: o.storeMB << 20,
		StoreMemBytes: o.storeMemMB << 20,
		Logger:        logger,
	}
	if q != nil {
		engOpts.Remote = &queue.Dispatcher{Q: q}
	}
	eng, err := slicc.NewEngine(engOpts)
	if err != nil {
		return err
	}
	defer eng.Close()

	srv := server.New(eng, server.Options{Timeout: o.timeout, Logger: logger, Pprof: o.pprof, Queue: q})
	defer srv.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout — it is the service's one piece of
	// machine-readable startup output, which scripts (and the smoke test)
	// parse to find a dynamically assigned port.
	fmt.Printf("sliccd listening on %s\n", ln.Addr())
	logger.Info("sliccd started", "addr", ln.Addr().String(), "store", o.storeDir,
		"workers", o.workers, "pprof", o.pprof, "distributed", o.distributed)

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("sliccd draining", "signal", sig.String(), "grace", o.grace.String())
	case err := <-errc:
		return fmt.Errorf("sliccd: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("sliccd: shutdown: %w", err)
	}
	// Abort background simulations before the engine (and its store) close.
	srv.Close()
	return nil
}
