// Command sliccsim runs a single simulation configuration and prints its
// metrics. It is the smallest way to poke at the reproduction:
//
//	sliccsim -workload tpcc1 -policy slicc-sw -threads 64
//	sliccsim -workload tpce -policy base -classify
//	sliccsim -workload tpcc1 -policy slicc-sw -compare
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"slicc"
)

var benchmarks = map[string]slicc.Benchmark{
	"tpcc1":     slicc.TPCC1,
	"tpcc10":    slicc.TPCC10,
	"tpce":      slicc.TPCE,
	"mapreduce": slicc.MapReduce,
}

var policies = map[string]slicc.Policy{
	"base":     slicc.Baseline,
	"nextline": slicc.NextLine,
	"slicc":    slicc.SLICC,
	"slicc-pp": slicc.SLICCPp,
	"slicc-sw": slicc.SLICCSW,
	"pif":      slicc.PIF,
	"stream":   slicc.StreamPrefetch,
	"steps":    slicc.STEPS,
}

// keys lists a flag-value map's names, sorted so help and error text is
// deterministic (map iteration order is not).
func keys[M map[string]V, V any](m M) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ", ")
}

func main() {
	var (
		workloadName = flag.String("workload", "tpcc1", "benchmark: "+keys(benchmarks))
		tracePath    = flag.String("trace", "", "replay this recorded trace container instead of a synthetic benchmark (see docs/TRACES.md)")
		policyName   = flag.String("policy", "slicc-sw", "policy: "+keys(policies))
		threads      = flag.Int("threads", 64, "transactions/tasks (0 = benchmark default)")
		seed         = flag.Int64("seed", 1, "workload seed")
		scale        = flag.Float64("scale", 1, "per-transaction work multiplier")
		cores        = flag.Int("cores", 16, "core count")
		l1i          = flag.Int("l1i", 32, "L1-I size in KB")
		l1d          = flag.Int("l1d", 32, "L1-D size in KB")
		classify     = flag.Bool("classify", false, "report 3C miss classification")
		compare      = flag.Bool("compare", false, "also run the baseline and report speedup")
		fillUp       = flag.Int("fillup", 0, "SLICC fill-up_t (0 = paper default 256)")
		matched      = flag.Int("matched", 0, "SLICC matched_t (0 = paper default 4)")
		dilution     = flag.Int("dilution", 0, "SLICC dilution_t (0 = paper default 10, -1 = disabled)")
		events       = flag.Int("events", 0, "print the first N migration/context-switch events")
	)
	flag.Parse()

	var bench slicc.Benchmark
	if *tracePath == "" {
		var ok bool
		bench, ok = benchmarks[*workloadName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n", *workloadName, keys(benchmarks))
			os.Exit(2)
		}
	}
	policy, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q (have %s)\n", *policyName, keys(policies))
		os.Exit(2)
	}

	cfg := slicc.Config{
		Benchmark: bench,
		TracePath: *tracePath,
		Policy:    policy,
		Threads:   *threads,
		Seed:      *seed,
		Scale:     *scale,
		Cores:     *cores,
		L1IKB:     *l1i,
		L1DKB:     *l1d,
		Classify:  *classify,
		LogEvents: *events > 0,
		SLICC:     slicc.Params{FillUpT: *fillUp, MatchedT: *matched, DilutionT: *dilution},
	}

	// With -compare, the policy and baseline simulations run in parallel
	// (CompareContext shares one synthesized workload between them).
	runCompare := *compare && policy != slicc.Baseline
	var r, base slicc.Result
	if runCompare {
		rs, err := slicc.CompareContext(context.Background(), cfg, policy, slicc.Baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, base = rs[0], rs[1]
	} else {
		var err error
		r, err = slicc.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if r.TracePath != "" {
		fmt.Printf("workload      trace %s\n", r.TracePath)
	} else {
		fmt.Printf("workload      %s\n", r.Benchmark)
	}
	fmt.Printf("policy        %s\n", r.Policy)
	fmt.Printf("instructions  %d\n", r.Instructions)
	fmt.Printf("cycles        %.0f\n", r.Cycles)
	fmt.Printf("I-MPKI        %.2f\n", r.IMPKI)
	fmt.Printf("D-MPKI        %.2f\n", r.DMPKI)
	if *classify {
		fmt.Printf("I 3C          compulsory %.2f / capacity %.2f / conflict %.2f\n",
			r.ICompulsoryMPKI, r.ICapacityMPKI, r.IConflictMPKI)
		fmt.Printf("D 3C          compulsory %.2f / capacity %.2f / conflict %.2f\n",
			r.DCompulsoryMPKI, r.DCapacityMPKI, r.DConflictMPKI)
	}
	fmt.Printf("migrations    %d", r.Migrations)
	if r.Migrations > 0 {
		fmt.Printf(" (every %.0f instructions)", r.InstrPerMigration)
	}
	fmt.Println()
	if r.BPKI > 0 {
		fmt.Printf("search BPKI   %.3f\n", r.BPKI)
	}
	if *events > 0 {
		fmt.Printf("first %d scheduling events:\n", *events)
		for i, e := range r.Events {
			if i >= *events {
				break
			}
			kind := "migrate"
			if e.Switch {
				kind = "switch "
			}
			fmt.Printf("  cycle %10.0f  thread %4d  %s core %2d -> %2d\n",
				e.Cycle, e.ThreadID, kind, e.From, e.To)
		}
	}

	if runCompare {
		fmt.Printf("speedup       %.3fx over baseline (%.0f cycles)\n", r.Speedup(base), base.Cycles)
		fmt.Printf("I-MPKI change %+.1f%%\n", 100*(r.IMPKI/base.IMPKI-1))
		fmt.Printf("D-MPKI change %+.1f%%\n", 100*(r.DMPKI/base.DMPKI-1))
	}
}
