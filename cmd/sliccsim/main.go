// Command sliccsim runs a single simulation configuration and prints its
// metrics. It is the smallest way to poke at the reproduction:
//
//	sliccsim -workload tpcc1 -policy slicc-sw -threads 64
//	sliccsim -workload tpce -policy base -classify
//	sliccsim -workload tpcc1 -policy slicc-sw -compare
//	sliccsim -workload tpcc1 -policy slicc-sw -json | jq .Result.IMPKI
//	sliccsim -store ./store -workload tpcc10 -policy pif
//
// With -store, results persist in the content-addressed result store (the
// same store cmd/experiments and sliccd use): re-running an identical
// configuration — even from another process or binary — prints without
// simulating. -json emits the same slicc.Result encoding the sliccd API
// returns.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"slicc"
)

func main() {
	var (
		workloadName = flag.String("workload", "tpcc1", "benchmark: "+strings.Join(slicc.BenchmarkNames(), ", "))
		tracePath    = flag.String("trace", "", "replay this recorded trace container instead of a synthetic benchmark (see docs/TRACES.md)")
		policyName   = flag.String("policy", "slicc-sw", "policy: "+strings.Join(slicc.PolicyNames(), ", "))
		threads      = flag.Int("threads", 64, "transactions/tasks (0 = benchmark default)")
		seed         = flag.Int64("seed", 1, "workload seed")
		scale        = flag.Float64("scale", 1, "per-transaction work multiplier")
		cores        = flag.Int("cores", 16, "core count")
		l1i          = flag.Int("l1i", 32, "L1-I size in KB")
		l1d          = flag.Int("l1d", 32, "L1-D size in KB")
		classify     = flag.Bool("classify", false, "report 3C miss classification")
		compare      = flag.Bool("compare", false, "also run the baseline and report speedup")
		fillUp       = flag.Int("fillup", 0, "SLICC fill-up_t (0 = paper default 256)")
		matched      = flag.Int("matched", 0, "SLICC matched_t (0 = paper default 4)")
		dilution     = flag.Int("dilution", 0, "SLICC dilution_t (0 = paper default 10, -1 = disabled)")
		events       = flag.Int("events", 0, "print the first N migration/context-switch events")
		asJSON       = flag.Bool("json", false, "emit the result as JSON (the sliccd wire encoding) instead of text")
		storeDir     = flag.String("store", "", "persist results in the content-addressed store at this directory (see docs/SERVICE.md)")
		storeMB      = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		storeMem     = flag.Int64("store-mem-mb", 0, "serve repeated store reads from an in-memory hot tier of this many MB (0 = disabled)")
	)
	flag.Parse()

	var bench slicc.Benchmark
	if *tracePath == "" {
		var err error
		bench, err = slicc.ParseBenchmark(*workloadName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	policy, err := slicc.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := slicc.Config{
		Benchmark: bench,
		TracePath: *tracePath,
		Policy:    policy,
		Threads:   *threads,
		Seed:      *seed,
		Scale:     *scale,
		Cores:     *cores,
		L1IKB:     *l1i,
		L1DKB:     *l1d,
		Classify:  *classify,
		LogEvents: *events > 0,
		SLICC:     slicc.Params{FillUpT: *fillUp, MatchedT: *matched, DilutionT: *dilution},
	}

	// All runs go through an engine so -store works uniformly; without
	// -store this is the same fresh in-memory pool slicc.Run would use.
	engine, err := slicc.NewEngine(slicc.EngineOptions{StoreDir: *storeDir, StoreMaxBytes: *storeMB << 20, StoreMemBytes: *storeMem << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	// With -compare, the policy and baseline simulations run in parallel
	// (the engine shares one synthesized workload between them).
	runCompare := *compare && policy != slicc.Baseline
	var r, base slicc.Result
	if runCompare {
		rs, err := engine.Compare(context.Background(), cfg, policy, slicc.Baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, base = rs[0], rs[1]
	} else {
		r, err = engine.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *asJSON {
		printJSON(r, base, runCompare)
		return
	}
	printText(r, base, runCompare, *classify, *events)
}

// jsonOutput is the machine-readable result envelope: Result uses exactly
// the encoding the sliccd API returns for a simulation.
type jsonOutput struct {
	Result   slicc.Result
	Baseline *slicc.Result `json:",omitempty"`
	Speedup  float64       `json:",omitempty"`
}

func printJSON(r, base slicc.Result, compared bool) {
	out := jsonOutput{Result: r}
	if compared {
		b := base
		out.Baseline = &b
		out.Speedup = r.Speedup(base)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printText(r, base slicc.Result, compared, classify bool, events int) {
	if r.TracePath != "" {
		fmt.Printf("workload      trace %s\n", r.TracePath)
	} else {
		fmt.Printf("workload      %s\n", r.Benchmark)
	}
	fmt.Printf("policy        %s\n", r.Policy)
	fmt.Printf("instructions  %d\n", r.Instructions)
	fmt.Printf("cycles        %.0f\n", r.Cycles)
	fmt.Printf("I-MPKI        %.2f\n", r.IMPKI)
	fmt.Printf("D-MPKI        %.2f\n", r.DMPKI)
	if classify {
		fmt.Printf("I 3C          compulsory %.2f / capacity %.2f / conflict %.2f\n",
			r.ICompulsoryMPKI, r.ICapacityMPKI, r.IConflictMPKI)
		fmt.Printf("D 3C          compulsory %.2f / capacity %.2f / conflict %.2f\n",
			r.DCompulsoryMPKI, r.DCapacityMPKI, r.DConflictMPKI)
	}
	fmt.Printf("migrations    %d", r.Migrations)
	if r.Migrations > 0 {
		fmt.Printf(" (every %.0f instructions)", r.InstrPerMigration)
	}
	fmt.Println()
	if r.BPKI > 0 {
		fmt.Printf("search BPKI   %.3f\n", r.BPKI)
	}
	if events > 0 {
		fmt.Printf("first %d scheduling events:\n", events)
		for i, e := range r.Events {
			if i >= events {
				break
			}
			kind := "migrate"
			if e.Switch {
				kind = "switch "
			}
			fmt.Printf("  cycle %10.0f  thread %4d  %s core %2d -> %2d\n",
				e.Cycle, e.ThreadID, kind, e.From, e.To)
		}
	}

	if compared {
		fmt.Printf("speedup       %.3fx over baseline (%.0f cycles)\n", r.Speedup(base), base.Cycles)
		fmt.Printf("I-MPKI change %+.1f%%\n", 100*(r.IMPKI/base.IMPKI-1))
		fmt.Printf("D-MPKI change %+.1f%%\n", 100*(r.DMPKI/base.DMPKI-1))
	}
}
