// Command sliccworker is a sliccd fleet member: it leases queued sweep
// cells from a distributed control plane (sliccd -distributed), executes
// them through the ordinary engine machinery, publishes results into the
// shared content-addressed store, and acknowledges the lease. Scale a
// sweep horizontally by pointing more sliccworkers at the same control
// plane and store:
//
//	sliccd -addr 127.0.0.1:8080 -store /var/lib/slicc/store -distributed &
//	sliccworker -server http://127.0.0.1:8080 -store /var/lib/slicc/store -j 8
//
// The store is the result transport and the checkpoint: a SIGKILLed
// worker loses nothing (its leases expire and the cells are retried),
// and a worker that crashed after publishing turns the retry into an
// instant store hit. SIGINT/SIGTERM stop leasing, let in-flight cells
// finish or abandon, and exit 0.
//
// See docs/SERVICE.md for the queue API and lease protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"slicc/internal/telemetry"
	"slicc/internal/worker"
)

func main() {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "control plane base URL (sliccd -distributed)")
		storeDir  = flag.String("store", "", "shared content-addressed store directory (required; same store as the control plane)")
		storeMB   = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		storeMem  = flag.Int64("store-mem-mb", 0, "serve repeated store reads from an in-memory hot tier of this many MB (0 = disabled)")
		workers   = flag.Int("j", runtime.GOMAXPROCS(0), "concurrently leased jobs")
		poll      = flag.Duration("poll", 10*time.Second, "lease long-poll wait per request")
		heartbeat = flag.Duration("heartbeat", 0, "lease renewal interval (0 derives a third of the lease window)")
		name      = flag.String("name", "", "worker label in leases and control-plane logs (default worker-<pid>)")
		logFmt    = flag.String("log-format", "text", "structured log format on stderr: text or json")
		logLvl    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		failSub   = flag.String("fail-substr", "", "fault injection for tests: fail leased jobs whose id or payload contains this substring")
	)
	flag.Parse()

	if err := run(options{
		server: *server, storeDir: *storeDir, storeMB: *storeMB, storeMemMB: *storeMem,
		workers: *workers, poll: *poll, heartbeat: *heartbeat, name: *name,
		logFormat: *logFmt, logLevel: *logLvl, failSubstr: *failSub,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// options carries the parsed flag set into run.
type options struct {
	server     string
	storeDir   string
	storeMB    int64
	storeMemMB int64
	workers    int
	poll       time.Duration
	heartbeat  time.Duration
	name       string
	logFormat  string
	logLevel   string
	failSubstr string
}

func run(o options) error {
	logger, err := telemetry.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return fmt.Errorf("sliccworker: %w", err)
	}
	w, err := worker.New(worker.Options{
		Server:        o.server,
		StoreDir:      o.storeDir,
		StoreMaxBytes: o.storeMB << 20,
		StoreMemBytes: o.storeMemMB << 20,
		Workers:       o.workers,
		Poll:          o.poll,
		Heartbeat:     o.heartbeat,
		Name:          o.name,
		FailSubstr:    o.failSubstr,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	defer w.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One machine-readable startup line on stdout, mirroring sliccd's
	// "listening on" contract, so harnesses know the lease loop is up.
	fmt.Printf("sliccworker polling %s\n", o.server)
	logger.Info("sliccworker started", "server", o.server, "store", o.storeDir,
		"workers", o.workers, "poll", o.poll.String())

	err = w.Run(ctx)
	st := w.Stats()
	logger.Info("sliccworker stopped",
		"completed", st.Completed, "failed", st.Failed, "abandoned", st.Abandoned)
	return err
}
