// Command tracegen inspects, captures and verifies workload traces.
//
//	tracegen -workload tpcc1 -summary            # per-type footprints and mix
//	tracegen -workload tpce -thread 3 -n 20      # print a thread's first ops
//	tracegen -workload tpcc1 -thread 0 -dump t0.trace    # single-thread v1 export
//	tracegen -workload tpcc1 -dump-all wl.trace          # whole-workload v2 container
//	tracegen -info wl.trace                              # print a container's header
//	tracegen -workload tpcc1 -verify wl.trace            # diff replay vs regeneration
//	tracegen -workload tpcc1 -dump-all wl.trace -store ./store   # capture + warm the result store
//
// A container written by -dump-all replays through the simulator via
// slicc.Config.TracePath (or sliccsim/experiments -trace), producing
// results identical to running the captured workload directly. The binary
// formats are specified byte-by-byte in docs/TRACES.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"slicc"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

func main() {
	var (
		kindName = flag.String("workload", "tpcc1", "workload: "+strings.Join(workload.KindTokens(), ", "))
		threads  = flag.Int("threads", 32, "thread count")
		seed     = flag.Int64("seed", 1, "workload seed")
		scale    = flag.Float64("scale", 1, "work multiplier")
		summary  = flag.Bool("summary", false, "print workload summary and exit")
		threadID = flag.Int("thread", -1, "thread to inspect")
		n        = flag.Int("n", 32, "ops to print for -thread")
		dump     = flag.String("dump", "", "write the selected thread's full trace to this file (v1 format)")
		dumpAll  = flag.String("dump-all", "", "capture the entire workload to this container file (v2 format)")
		info     = flag.String("info", "", "print the header of this trace container and exit")
		verify   = flag.String("verify", "", "replay this container and diff it against the regenerated workload")
		analyze  = flag.Bool("analyze", false, "print a reuse-distance analysis of the selected thread")
		storeDir = flag.String("store", "", "after -dump-all/-verify, run a baseline replay of the container on a store-backed engine, warming the result store at this directory (see docs/SERVICE.md)")
		storeMB  = flag.Int64("store-max-mb", 0, "evict least-recently-used store entries past this many MB (0 = unlimited)")
		storeMem = flag.Int64("store-mem-mb", 0, "serve repeated store reads from an in-memory hot tier of this many MB (0 = disabled)")
	)
	flag.Parse()

	// -info needs no workload synthesis: it reads only the container header.
	if *info != "" {
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
		return
	}

	kind, err := workload.ParseKind(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w := workload.New(workload.Config{Kind: kind, Threads: *threads, Seed: *seed, Scale: *scale})

	if *dumpAll != "" {
		if err := dumpWorkload(w, *dumpAll); err != nil {
			fatal(err)
		}
		if *verify == "" {
			if err := warmStore(*storeDir, *storeMB, *storeMem, *dumpAll); err != nil {
				fatal(err)
			}
			return
		}
	}
	if *verify != "" {
		if err := verifyContainer(w, *verify); err != nil {
			fatal(err)
		}
		if err := warmStore(*storeDir, *storeMB, *storeMem, *verify); err != nil {
			fatal(err)
		}
		return
	}

	if *summary || *threadID < 0 {
		fmt.Printf("workload %s: %d segments, %d types, %d threads\n",
			w.Name, len(w.Segments), len(w.Types), len(w.Threads()))
		mix := map[string]int{}
		for _, th := range w.Threads() {
			mix[th.TypeName]++
		}
		for ti := range w.Types {
			ty := &w.Types[ti]
			fmt.Printf("  %-18s weight %.3f  footprint %6d KB  instances %d  ~%d instr/txn\n",
				ty.Name, ty.Weight, w.TypeFootprintBytes(ti)/1024, mix[ty.Name],
				w.EstimateInstructions(ti))
		}
		if *threadID < 0 {
			return
		}
	}

	if *threadID >= len(w.Threads()) {
		fmt.Fprintf(os.Stderr, "thread %d out of range (%d threads)\n", *threadID, len(w.Threads()))
		os.Exit(2)
	}
	th := w.Threads()[*threadID]
	fmt.Printf("thread %d: type %s\n", th.ID, th.TypeName)

	if *analyze {
		a := trace.Analyze(th.New(), 2_000_000)
		a.Print(os.Stdout)
		fmt.Println("hottest instruction blocks:")
		for _, bc := range trace.TopBlocks(th.New(), 2_000_000, 5) {
			fmt.Printf("  block %#x: %d accesses\n", bc.Block, bc.Count)
		}
		return
	}

	if *dump != "" {
		ops := trace.Record(th.New(), 0)
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, ops); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d ops to %s\n", len(ops), *dump)
		return
	}

	src := th.New()
	for i := 0; i < *n; i++ {
		op, ok := src.Next()
		if !ok {
			fmt.Println("(end of thread)")
			break
		}
		line := fmt.Sprintf("%6d  pc=%#x", i, op.PC)
		if op.HasData {
			rw := "ld"
			if op.IsWrite {
				rw = "st"
			}
			line += fmt.Sprintf("  %s=%#x", rw, op.DataAddr)
		}
		fmt.Println(line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// warmStore replays the container at path once under the baseline policy on
// a store-backed engine, so the capture's first simulation result (keyed by
// the container's content digest) is already persisted when experiments or
// sliccd later replay the same recording. A no-op without -store.
func warmStore(dir string, maxMB, memMB int64, path string) error {
	if dir == "" {
		return nil
	}
	eng, err := slicc.NewEngine(slicc.EngineOptions{StoreDir: dir, StoreMaxBytes: maxMB << 20, StoreMemBytes: memMB << 20})
	if err != nil {
		return err
	}
	defer eng.Close()
	r, err := eng.Run(context.Background(), slicc.Config{TracePath: path, Policy: slicc.Baseline})
	if err != nil {
		return err
	}
	stats := eng.Stats()
	verb := "simulated"
	if stats.StoreHits > 0 {
		verb = "already stored"
	}
	fmt.Printf("store %s: baseline replay %s (%d instructions, %.0f cycles)\n",
		dir, verb, r.Instructions, r.Cycles)
	return nil
}

// dumpWorkload captures every thread of w into a v2 container at path.
func dumpWorkload(w *workload.Workload, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	c, err := trace.OpenWorkload(path)
	if err != nil {
		return fmt.Errorf("re-opening just-written container: %w", err)
	}
	defer c.Close()
	fmt.Printf("wrote %s: %d threads, %d ops, %d bytes (%.2f bytes/op)\n",
		path, c.NumThreads(), c.Ops(), st.Size(), float64(st.Size())/float64(c.Ops()))
	return nil
}

// printInfo decodes and prints a container's header without touching the
// op streams.
func printInfo(path string) error {
	c, err := trace.OpenWorkload(path)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("container     %s\n", path)
	fmt.Printf("format        v%d\n", c.Version())
	fmt.Printf("workload      %s\n", c.Name())
	fmt.Printf("threads       %d\n", c.NumThreads())
	fmt.Printf("total ops     %d\n", c.Ops())
	fmt.Printf("file size     %d bytes (%.2f bytes/op)\n", st.Size(), float64(st.Size())/float64(c.Ops()))
	types := map[string]int{}
	for i := 0; i < c.NumThreads(); i++ {
		types[c.Meta(i).TypeName]++
	}
	fmt.Printf("type mix      ")
	first := true
	for i := 0; i < c.NumThreads(); i++ {
		name := c.Meta(i).TypeName
		if cnt, ok := types[name]; ok {
			if !first {
				fmt.Printf(", ")
			}
			fmt.Printf("%s x%d", name, cnt)
			delete(types, name)
			first = false
		}
	}
	fmt.Println()
	return nil
}

// verifyContainer replays every thread of the container at path and diffs
// it, op by op, against the regenerated synthetic workload w. A clean
// verify proves the capture is a faithful, losslessly decodable recording
// of the workload the flags describe.
func verifyContainer(w *workload.Workload, path string) error {
	c, err := trace.OpenWorkload(path)
	if err != nil {
		return err
	}
	defer c.Close()
	gen := w.Threads()
	if c.NumThreads() != len(gen) {
		return fmt.Errorf("verify: container has %d threads, workload has %d (same -threads/-seed/-scale?)",
			c.NumThreads(), len(gen))
	}
	var total uint64
	for i := 0; i < c.NumThreads(); i++ {
		m := c.Meta(i)
		if m.ID != gen[i].ID || m.Type != gen[i].Type || m.TypeName != gen[i].TypeName {
			return fmt.Errorf("verify: thread %d metadata mismatch: container (id=%d type=%d %q), workload (id=%d type=%d %q)",
				i, m.ID, m.Type, m.TypeName, gen[i].ID, gen[i].Type, gen[i].TypeName)
		}
		rec := c.Source(i)
		ref := gen[i].New()
		var op uint64
		for {
			got, okGot := rec.Next()
			want, okWant := ref.Next()
			if okGot != okWant {
				return fmt.Errorf("verify: thread %d length mismatch at op %d (container ended: %v, generator ended: %v)",
					i, op, !okGot, !okWant)
			}
			if !okGot {
				break
			}
			if got != want {
				return fmt.Errorf("verify: thread %d op %d mismatch: replayed %+v, regenerated %+v", i, op, got, want)
			}
			op++
		}
		if err := rec.Err(); err != nil {
			return fmt.Errorf("verify: thread %d stream: %w", i, err)
		}
		total += op
	}
	fmt.Printf("verify ok: %d threads, %d ops replay identically\n", c.NumThreads(), total)
	return nil
}
