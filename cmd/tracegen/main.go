// Command tracegen inspects and exports the synthetic workload traces.
//
//	tracegen -workload tpcc1 -summary            # per-type footprints and mix
//	tracegen -workload tpce -thread 3 -n 20      # print a thread's first ops
//	tracegen -workload tpcc1 -thread 0 -dump t0.trace   # binary export
package main

import (
	"flag"
	"fmt"
	"os"

	"slicc/internal/trace"
	"slicc/internal/workload"
)

var kinds = map[string]workload.Kind{
	"tpcc1":     workload.TPCC1,
	"tpcc10":    workload.TPCC10,
	"tpce":      workload.TPCE,
	"mapreduce": workload.MapReduce,
}

func main() {
	var (
		kindName = flag.String("workload", "tpcc1", "benchmark: tpcc1, tpcc10, tpce, mapreduce")
		threads  = flag.Int("threads", 32, "thread count")
		seed     = flag.Int64("seed", 1, "workload seed")
		scale    = flag.Float64("scale", 1, "work multiplier")
		summary  = flag.Bool("summary", false, "print workload summary and exit")
		threadID = flag.Int("thread", -1, "thread to inspect")
		n        = flag.Int("n", 32, "ops to print for -thread")
		dump     = flag.String("dump", "", "write the selected thread's full trace to this file")
		analyze  = flag.Bool("analyze", false, "print a reuse-distance analysis of the selected thread")
	)
	flag.Parse()

	kind, ok := kinds[*kindName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kindName)
		os.Exit(2)
	}
	w := workload.New(workload.Config{Kind: kind, Threads: *threads, Seed: *seed, Scale: *scale})

	if *summary || *threadID < 0 {
		fmt.Printf("workload %s: %d segments, %d types, %d threads\n",
			w.Name, len(w.Segments), len(w.Types), len(w.Threads()))
		mix := map[string]int{}
		for _, th := range w.Threads() {
			mix[th.TypeName]++
		}
		for ti := range w.Types {
			ty := &w.Types[ti]
			fmt.Printf("  %-18s weight %.3f  footprint %6d KB  instances %d  ~%d instr/txn\n",
				ty.Name, ty.Weight, w.TypeFootprintBytes(ti)/1024, mix[ty.Name],
				w.EstimateInstructions(ti))
		}
		if *threadID < 0 {
			return
		}
	}

	if *threadID >= len(w.Threads()) {
		fmt.Fprintf(os.Stderr, "thread %d out of range (%d threads)\n", *threadID, len(w.Threads()))
		os.Exit(2)
	}
	th := w.Threads()[*threadID]
	fmt.Printf("thread %d: type %s\n", th.ID, th.TypeName)

	if *analyze {
		a := trace.Analyze(th.New(), 2_000_000)
		a.Print(os.Stdout)
		fmt.Println("hottest instruction blocks:")
		for _, bc := range trace.TopBlocks(th.New(), 2_000_000, 5) {
			fmt.Printf("  block %#x: %d accesses\n", bc.Block, bc.Count)
		}
		return
	}

	if *dump != "" {
		ops := trace.Record(th.New(), 0)
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, ops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d ops to %s\n", len(ops), *dump)
		return
	}

	src := th.New()
	for i := 0; i < *n; i++ {
		op, ok := src.Next()
		if !ok {
			fmt.Println("(end of thread)")
			break
		}
		line := fmt.Sprintf("%6d  pc=%#x", i, op.PC)
		if op.HasData {
			rw := "ld"
			if op.IsWrite {
				rw = "st"
			}
			line += fmt.Sprintf("  %s=%#x", rw, op.DataAddr)
		}
		fmt.Println(line)
	}
}
