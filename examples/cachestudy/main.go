// cachestudy reproduces the paper's motivation study (Section 2) on a small
// scale: why do OLTP workloads miss in the L1-I, and why don't bigger caches
// or smarter replacement policies solve it?
//
// It prints (a) the Figure 1 story — instruction misses are capacity misses
// that vanish only with impractically large caches, while data misses are
// compulsory and insensitive to cache size — and (b) the Figure 3 story —
// threads of the same transaction type share nearly all their code, which
// is the reuse SLICC's collectives harvest.
package main

import (
	"fmt"
	"log"

	"slicc"
)

func main() {
	fmt.Println("Why OLTP thrashes the L1-I (TPC-C, conventional scheduling)")
	fmt.Println()
	fmt.Printf("%8s %8s %8s %8s %8s | %8s %8s\n",
		"L1-I KB", "I-MPKI", "comp", "cap", "conf", "D-MPKI", "D-comp")

	for _, kb := range []int{16, 32, 64, 128, 256, 512} {
		cfg := slicc.Config{
			Benchmark: slicc.TPCC1,
			Policy:    slicc.Baseline,
			Threads:   32,
			Seed:      5,
			Scale:     0.5,
			L1IKB:     kb,
			Classify:  true,
		}
		r, err := slicc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8.2f %8.2f %8.2f %8.2f | %8.2f %8.2f\n",
			kb, r.IMPKI, r.ICompulsoryMPKI, r.ICapacityMPKI, r.IConflictMPKI,
			r.DMPKI, r.DCompulsoryMPKI)
	}

	fmt.Println("\nInstruction blocks shared across threads (Figure 3 view):")
	cfg := slicc.Config{
		Benchmark:  slicc.TPCC1,
		Policy:     slicc.SLICCSW,
		Threads:    48,
		Seed:       5,
		Scale:      0.4,
		TrackReuse: true,
	}
	r, err := slicc.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s single %5.1f%%  few %5.1f%%  most %5.1f%%\n",
		"global:", 100*r.ReuseGlobal.Single, 100*r.ReuseGlobal.Few, 100*r.ReuseGlobal.Most)
	fmt.Printf("%-16s single %5.1f%%  few %5.1f%%  most %5.1f%%\n",
		"per txn type:", 100*r.ReusePerType.Single, 100*r.ReusePerType.Few, 100*r.ReusePerType.Most)
	fmt.Println("\nSame-type transactions execute nearly identical code: one thread's")
	fmt.Println("fetches can warm caches for all the others — SLICC's opportunity.")
}
