// latency examines SLICC from the database operator's perspective: miss
// rates are the architect's metric, but OLTP lives and dies by transaction
// latency. This example reports service-time percentiles under each policy
// and evaluates the paper's future-work idea (SLICC + STEPS-style local
// yielding) that trades a little median latency for throughput.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slicc"
)

func main() {
	base := slicc.Config{
		Benchmark: slicc.TPCC1,
		Threads:   64,
		Seed:      3,
		Scale:     0.5,
	}

	type variant struct {
		name string
		cfg  slicc.Config
	}
	yield := base
	yield.Policy = slicc.SLICCSW
	yield.SLICC.YieldOnStay = true
	variants := []variant{
		{"Base", withPolicy(base, slicc.Baseline)},
		{"SLICC", withPolicy(base, slicc.SLICC)},
		{"SLICC-SW", withPolicy(base, slicc.SLICCSW)},
		{"SW+Yield", yield},
	}

	var baseline slicc.Result
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tthroughput\tp50 latency\tp95 latency\tmigrations\tyields")
	for i, v := range variants {
		r, err := slicc.Run(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = r
		}
		fmt.Fprintf(tw, "%s\t%.3fx\t%.0f\t%.0f\t%d\t%d\n",
			v.name, r.Speedup(baseline),
			r.TxnLatencyP50, r.TxnLatencyP95, r.Migrations, r.ContextSwitches)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLatencies are cycles from first dispatch to commit. SLICC trades a")
	fmt.Println("little per-transaction queueing (migrations wait behind running")
	fmt.Println("threads) for much higher throughput; the future-work yield variant")
	fmt.Println("converts failed migrations into useful local context switches.")
}

func withPolicy(cfg slicc.Config, p slicc.Policy) slicc.Config {
	cfg.Policy = p
	return cfg
}
