// oltpserver simulates the scenario from the paper's introduction: an OLTP
// server machine ("brokerage house" / "wholesale supplier") whose worker
// threads thrash their instruction caches. It evaluates every scheduling
// and prefetching option on the paper's four workloads and prints a
// Figure 11-style scoreboard, including the robustness control (MapReduce
// must not regress). The scenario families beyond the paper are covered by
// examples/sweepstudy instead.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slicc"
)

func main() {
	policies := []slicc.Policy{
		slicc.Baseline, slicc.NextLine,
		slicc.SLICC, slicc.SLICCPp, slicc.SLICCSW, slicc.PIF,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "workload")
	for _, p := range policies {
		fmt.Fprintf(tw, "\t%s", p)
	}
	fmt.Fprintln(tw, "\tbest")

	// The paper's Table 1 set; slicc.Benchmarks() would add the scenario
	// families, which have their own example.
	for _, bench := range []slicc.Benchmark{slicc.TPCC1, slicc.TPCC10, slicc.TPCE, slicc.MapReduce} {
		cfg := slicc.Config{
			Benchmark: bench,
			Threads:   48,
			Seed:      7,
			Scale:     0.5,
		}
		results, err := slicc.Compare(cfg, policies...)
		if err != nil {
			log.Fatal(err)
		}
		base := results[0]
		fmt.Fprintf(tw, "%s", bench)
		bestIdx := 0
		for i, r := range results {
			speed := r.Speedup(base)
			fmt.Fprintf(tw, "\t%.3f", speed)
			if speed > results[bestIdx].Speedup(base) {
				bestIdx = i
			}
		}
		fmt.Fprintf(tw, "\t%s\n", policies[bestIdx])
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSpeedups over the conventional scheduler. SLICC variants win without")
	fmt.Println("prefetcher storage; PIF is the paper's 512KB upper-bound model.")
}
