// paramtuning explores SLICC's three thresholds the way Section 5.2 of the
// paper does: fill-up_t (when is a cache "full"), matched_t (how much
// evidence before migrating towards a remote segment) and dilution_t (how
// many recent misses before migration is even considered). It prints the
// miniature Figure 7/8 sweeps and highlights the chosen operating point.
package main

import (
	"fmt"
	"log"

	"slicc"
)

func main() {
	base := slicc.Config{
		Benchmark: slicc.TPCC1,
		Threads:   48,
		Seed:      11,
		Scale:     0.5,
	}
	baseline, err := slicc.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: I-MPKI %.2f, %.0f cycles\n\n", baseline.IMPKI, baseline.Cycles)

	fmt.Println("fill-up_t x matched_t (dilution disabled, ideal search) — Figure 7:")
	fmt.Printf("%10s %10s %8s %8s %8s\n", "fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup")
	for _, fillUp := range []int{128, 256, 512} {
		for _, matched := range []int{2, 4, 8} {
			cfg := base
			cfg.Policy = slicc.SLICCSW
			cfg.SLICC = slicc.Params{FillUpT: fillUp, MatchedT: matched, DilutionT: -1, ExactSearch: true}
			r, err := slicc.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10d %10d %8.2f %8.2f %8.3f\n",
				fillUp, matched, r.IMPKI, r.DMPKI, r.Speedup(baseline))
		}
	}

	fmt.Println("\ndilution_t sweep (fill-up_t=256, matched_t=4) — Figure 8:")
	fmt.Printf("%10s %8s %12s %8s\n", "dilution_t", "I-MPKI", "migrations", "speedup")
	bestDil, bestSpeed := 0, 0.0
	for _, dil := range []int{2, 6, 10, 16, 24, 30} {
		cfg := base
		cfg.Policy = slicc.SLICCSW
		cfg.SLICC = slicc.Params{DilutionT: dil}
		r, err := slicc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		speed := r.Speedup(baseline)
		fmt.Printf("%10d %8.2f %12d %8.3f\n", dil, r.IMPKI, r.Migrations, speed)
		if speed > bestSpeed {
			bestDil, bestSpeed = dil, speed
		}
	}
	fmt.Printf("\nbest dilution_t here: %d (%.3fx). The paper settles on 10 with\n", bestDil, bestSpeed)
	fmt.Println("fill-up_t=256 and matched_t=4 — the library's defaults.")
}
