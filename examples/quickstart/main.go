// Quickstart: reproduce the paper's headline result in ~20 lines — SLICC-SW
// cuts L1 instruction misses on TPC-C and speeds the workload up, at a
// hardware cost of under 1KB per core.
package main

import (
	"fmt"
	"log"

	"slicc"
)

func main() {
	cfg := slicc.Config{
		Benchmark: slicc.TPCC1,
		Threads:   64,
		Seed:      42,
	}

	results, err := slicc.Compare(cfg, slicc.Baseline, slicc.SLICCSW)
	if err != nil {
		log.Fatal(err)
	}
	base, sw := results[0], results[1]

	fmt.Printf("TPC-C on 16 cores, %d transactions\n\n", base.ThreadsFinished)
	fmt.Printf("%-10s %10s %8s %8s %12s\n", "policy", "cycles", "I-MPKI", "D-MPKI", "migrations")
	for _, r := range results {
		fmt.Printf("%-10s %10.0f %8.2f %8.2f %12d\n", r.Policy, r.Cycles, r.IMPKI, r.DMPKI, r.Migrations)
	}

	fmt.Printf("\nSLICC-SW: %.2fx speedup, %.0f%% fewer instruction misses, %+.0f%% data misses\n",
		sw.Speedup(base), 100*(1-sw.IMPKI/base.IMPKI), 100*(sw.DMPKI/base.DMPKI-1))
	fmt.Printf("hardware budget: %d bytes per core (PIF needs ~40KB)\n",
		slicc.HardwareCostBytes(slicc.Params{}, 16, true))
}
