// sweepstudy walks through the parameter-sweep subsystem end to end: it
// declares a study over the scenario workload families (docs/WORKLOADS.md)
// as a SweepSpec, runs it on a store-backed engine, renders the per-cell
// table, inspects the best cell, exports CSV, and reruns the sweep to show
// the persistent store serving the entire study without simulating.
//
// The same spec works everywhere: written as JSON it drives
// `experiments -sweep spec.json` and `POST /v1/sweeps` on sliccd.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"slicc"
)

func main() {
	// A sweep is the cross product of its axes: 3 workloads x 3 L1-I
	// sizes x 2 policies = 18 cells here (plus one baseline simulation
	// per workload-machine group, added automatically for speedups).
	// Axes with one value keep the study small; lists multiply it. Small
	// threads and scale keep this example in seconds; drop those two
	// lines for a full-size study.
	spec := slicc.SweepSpec{
		Name:      "scenario families vs policy and L1-I size",
		Workloads: []string{"phased", "skewed", "microservice"},
		Policies:  []string{"nextline", "slicc-sw"},
		L1IKB:     slicc.SweepInts(16, 32, 64),
		Threads:   slicc.SweepInts(24),
		Scales:    slicc.SweepFloats(0.2),
		Objective: "speedup",
	}

	// The engine memoizes by content: within this run, identical cells
	// simulate once, and with StoreDir every result persists on disk.
	dir := filepath.Join(os.TempDir(), "sweepstudy-store")
	eng, err := slicc.NewEngine(slicc.EngineOptions{StoreDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	// Per-cell table: every cell carries its full configuration, so the
	// table is self-describing (the same rows WriteCSV exports).
	t := slicc.SweepTable(res)
	t.Format(os.Stdout)

	// Best-cell selection follows the spec's objective; baselines are
	// simulated per (workload, machine) group automatically.
	if best := res.Best(); best != nil {
		fmt.Printf("best cell: %s under %s with a %dKB L1-I — %.3fx over baseline (I-MPKI %.2f)\n",
			best.Workload, best.Policy, best.L1IKB, best.Speedup, best.IMPKI)
	}

	// CSV export for notebooks/spreadsheets.
	csvPath := filepath.Join(os.TempDir(), "sweepstudy.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("cells exported to %s\n", csvPath)

	// The JSON form of the spec is what the CLI and sliccd accept.
	js, _ := json.Marshal(spec)
	fmt.Printf("\nthis study as a CLI/API spec:\n  %s\n", js)

	// Rerun the identical sweep: the store answers every cell, so nothing
	// simulates — this is what makes large design-space explorations
	// iterate cheaply (and what a second process or sliccd would see too).
	before := eng.Stats().SimsExecuted
	if _, err := eng.Sweep(context.Background(), spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rerun executed %d simulations (store + dedup served the rest)\n",
		eng.Stats().SimsExecuted-before)
}
