// sweepwatch is the SDK quickstart: it submits a sweep to a running
// sliccd, watches per-cell progress live over the service's event stream
// (Server-Sent Events), and renders the final table — all through the
// sdk package, no hand-rolled HTTP.
//
// Start a server, then watch a study:
//
//	go run ./cmd/sliccd -addr 127.0.0.1:8080 -store /tmp/slicc-store &
//	go run ./examples/sweepwatch -addr http://127.0.0.1:8080
//	go run ./examples/sweepwatch -addr http://127.0.0.1:8080 -spec study.json
//
// The watcher is crash-proof by construction, not by effort: sdk.WatchSweep
// rides out dropped connections (SSE reconnect with Last-Event-ID replays
// the gap) and even a killed-and-restarted server (sweep ids are content
// keys, so re-POSTing the spec resumes it, with already-finished cells
// served from the store). Kill the server mid-run, start it again on the
// same store, and this program neither notices nor repeats work — each
// cell still prints exactly once. docs/SERVICE.md § "Sweep event stream"
// documents the contract.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"slicc"
	"slicc/sdk"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of a running sliccd")
		specPath = flag.String("spec", "", "JSON sweep spec file (default: a built-in 3x2 policy study)")
	)
	flag.Parse()

	// The same spec JSON drives Engine.Sweep, `experiments -sweep` and
	// POST /v1/sweeps; the SDK takes it as the typed slicc.SweepSpec.
	spec := slicc.SweepSpec{
		Name:      "policy vs workload, watched live",
		Workloads: []string{"tpcc1", "phased", "skewed"},
		Policies:  []string{"base", "slicc-sw"},
		Threads:   slicc.SweepInts(16),
		Scales:    slicc.SweepFloats(0.2),
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			log.Fatalf("decoding %s: %v", *specPath, err)
		}
	}

	client := sdk.New(*addr)

	// WatchSweep submits the spec and streams completions: one callback
	// per finished cell, exactly once, however the connection fares.
	hits := 0
	res, err := client.WatchSweep(context.Background(), spec, func(ev slicc.SweepEvent) {
		if ev.Type != slicc.SweepEventCell {
			return
		}
		served := "simulated"
		if ev.StoreHit {
			served, hits = "store hit", hits+1
		}
		fmt.Printf("cell %d/%d  %-14s %-9s %.3fx  (%s)\n",
			ev.Completed, ev.Total, ev.Cell.Workload, ev.Cell.Policy, ev.Cell.Speedup, served)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	t := slicc.SweepTable(res)
	t.Format(os.Stdout)
	if hits > 0 {
		fmt.Printf("%d of %d cells served from the store — rerun this watch and all of them will be\n",
			hits, len(res.Cells))
	} else {
		fmt.Println("rerun this watch: the store now serves every cell without simulating")
	}

	// The plain request/response API sees the same resource the stream
	// fed: useful for dashboards that poll instead of subscribing.
	id, err := spec.Key()
	if err != nil {
		log.Fatal(err)
	}
	sw, err := client.Sweep(context.Background(), id, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service state: sweep %s %s (%d/%d cells)\n", sw.ID[:12], sw.Status, sw.Completed, sw.Total)

	// Poll again: the sweep is done, so the client sent the ETag it just
	// saw and the service answered 304 Not Modified — no body on the
	// wire, no marshaling on the server, same typed result here.
	sw2, err := client.Sweep(context.Background(), id, false)
	if err != nil {
		log.Fatal(err)
	}
	if sw2.NotModified {
		fmt.Println("second poll: 304 Not Modified — replayed from the client's ETag cache")
	}
}
