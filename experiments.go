package slicc

import (
	"fmt"
	"io"
	"sort"

	"slicc/internal/experiments"
)

// ExperimentTable is a formatted experiment result (one table or figure
// panel from the paper's evaluation).
type ExperimentTable struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t ExperimentTable) Format(w io.Writer) {
	it := experiments.Table{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	it.Format(w)
}

func fromInternal(ts ...experiments.Table) []ExperimentTable {
	out := make([]ExperimentTable, len(ts))
	for i, t := range ts {
		out[i] = ExperimentTable{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	}
	return out
}

// experimentRunners maps experiment ids to their implementations.
var experimentRunners = map[string]func(experiments.Options) []ExperimentTable{
	"fig1":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure1(o)...) },
	"fig2":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure2(o)) },
	"fig3":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure3(o)) },
	"fig7":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure7(o)) },
	"fig8":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure8(o)) },
	"fig9":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure9(o)) },
	"fig10": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure10(o)) },
	"fig11": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Figure11(o)) },
	"bpki":  func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.BPKI(o)) },
	"tlb":   func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.TLBEffects(o)) },
	"steps": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.RelatedWork(o)) },
	"scaling": func(o experiments.Options) []ExperimentTable {
		return fromInternal(experiments.Scaling(o))
	},
	"table1": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Table1()) },
	"table2": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Table2()) },
	"table3": func(o experiments.Options) []ExperimentTable { return fromInternal(experiments.Table3()) },
}

// ExperimentIDs lists the available experiment identifiers in stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Experiment regenerates one of the paper's tables/figures by id ("fig1"
// .. "fig11", "table1".."table3", "bpki") or one of the extension studies
// ("tlb", "steps", "scaling"). Quick mode shrinks workloads by
// roughly 20x for smoke runs; full mode reproduces the EXPERIMENTS.md
// numbers. The seed defaults to 1.
func Experiment(id string, quick bool, seed int64) ([]ExperimentTable, error) {
	run, ok := experimentRunners[id]
	if !ok {
		return nil, fmt.Errorf("slicc: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return run(experiments.Options{Quick: quick, Seed: seed}), nil
}
