package slicc

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"

	"slicc/internal/experiments"
	"slicc/internal/runner"
	"slicc/internal/store"
)

// ExperimentTable is a formatted experiment result (one table or figure
// panel from the paper's evaluation).
type ExperimentTable struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t ExperimentTable) Format(w io.Writer) {
	it := experiments.Table{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	it.Format(w)
}

func fromInternal(ts ...experiments.Table) []ExperimentTable {
	out := make([]ExperimentTable, len(ts))
	for i, t := range ts {
		out[i] = ExperimentTable{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	}
	return out
}

// one adapts a single-table experiment to the runner signature.
func one(f func(experiments.Options) (experiments.Table, error)) func(experiments.Options) ([]ExperimentTable, error) {
	return func(o experiments.Options) ([]ExperimentTable, error) {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		return fromInternal(t), nil
	}
}

// static adapts a simulation-free table to the runner signature.
func static(f func() experiments.Table) func(experiments.Options) ([]ExperimentTable, error) {
	return func(experiments.Options) ([]ExperimentTable, error) {
		return fromInternal(f()), nil
	}
}

// experimentRunners maps experiment ids to their implementations.
var experimentRunners = map[string]func(experiments.Options) ([]ExperimentTable, error){
	"fig1": func(o experiments.Options) ([]ExperimentTable, error) {
		ts, err := experiments.Figure1(o)
		if err != nil {
			return nil, err
		}
		return fromInternal(ts...), nil
	},
	"fig2":    one(experiments.Figure2),
	"fig3":    one(experiments.Figure3),
	"fig7":    one(experiments.Figure7),
	"fig8":    one(experiments.Figure8),
	"fig9":    one(experiments.Figure9),
	"fig10":   one(experiments.Figure10),
	"fig11":   one(experiments.Figure11),
	"bpki":    one(experiments.BPKI),
	"tlb":     one(experiments.TLBEffects),
	"steps":   one(experiments.RelatedWork),
	"scaling": one(experiments.Scaling),
	"table1":  static(experiments.Table1),
	"table2":  static(experiments.Table2),
	"table3":  static(experiments.Table3),
}

// ExperimentIDs lists the available experiment identifiers in stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// EngineOptions configures an experiment engine.
type EngineOptions struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// Progress, if set, is called as simulations are scheduled and
	// completed, with engine-lifetime counts. It may be called from
	// multiple goroutines.
	Progress func(done, scheduled int)
	// StoreDir, when non-empty, backs the engine's memoization with the
	// persistent result store rooted at this directory (created if
	// needed): results are written there as simulations complete and
	// identical simulations — in any later process, or concurrently in
	// another process sharing the directory — are served from disk
	// instead of executing. See docs/SERVICE.md for the store's layout
	// and on-disk format.
	StoreDir string
	// StoreMaxBytes bounds the store directory's size (0 = unlimited);
	// least-recently-used entries are evicted past the budget.
	StoreMaxBytes int64
	// StoreMemBytes bounds the store's sharded in-memory hot tier
	// (0 = disabled): repeated reads of the same result are served from
	// memory with no disk I/O or checksum work. Safe to enable alongside
	// other processes sharing the directory — entries are immutable, so
	// the tier can never serve stale bytes.
	StoreMemBytes int64
	// Logger receives engine lifecycle events (store evictions today).
	// Nil is silent. Request-scoped logging and tracing travel through
	// the ctx passed to Run/Sweep/Experiment instead, so library use
	// stays zero-configuration.
	Logger *slog.Logger
	// Remote, when set, executes sweep cells on a distributed worker
	// fleet instead of the local pool: a cell that misses the persistent
	// store is handed to Remote (keyed by its content key, payload the
	// canonical job JSON) and its result read back from the store once
	// the fleet resolves it. Requires StoreDir — the shared store is the
	// result transport. Only Sweep/SweepStream route through Remote;
	// single simulations and experiments stay local, so the control
	// plane keeps answering them even with no workers connected.
	Remote RemoteRunner
}

// RemoteRunner executes jobs on a remote fleet; see EngineOptions.Remote.
// Execute must return once the job's result is in the engine's store
// under key, or with an error when the job cannot be resolved (a
// dead-lettered poison job's error carries its retry chain). sliccd's
// queue dispatcher is the production implementation.
type RemoteRunner interface {
	Execute(ctx context.Context, key string, job []byte) error
}

// EngineStats snapshots an engine's work counters.
type EngineStats struct {
	// SimsRequested / SimsExecuted count requested versus actually
	// executed simulations; the difference went to the dedup cache or the
	// persistent store.
	SimsRequested, SimsExecuted int
	// DedupHits counts simulations served by an identical earlier (or
	// concurrent) one.
	DedupHits int
	// StoreHits / StorePuts count simulations served from / recorded to
	// the persistent store (zero without StoreDir). At any quiescent
	// point SimsRequested == SimsExecuted + DedupHits + StoreHits +
	// SimsRemote.
	StoreHits, StorePuts int
	// SimsRemote counts simulations resolved by the distributed worker
	// fleet (EngineOptions.Remote) rather than executed locally; the
	// store carried their results back.
	SimsRemote int
	// WorkloadsBuilt / WorkloadHits count workload-synthesis cache
	// misses/hits.
	WorkloadsBuilt, WorkloadHits int
	// InstructionsSimulated is the total instruction count across executed
	// simulations (store/dedup hits add nothing).
	InstructionsSimulated uint64
	// CellsBatched / BatchesExecuted count simulations that ran inside
	// lockstep sweep batches (a subset of SimsExecuted) and the batch
	// passes that ran them.
	CellsBatched, BatchesExecuted int
	// BatchOpsDecoded counts trace ops decoded once into shared batch
	// tables; BatchOpsServed the instructions batched simulations executed
	// from them. Served/decoded is the decode amortization the batching
	// bought — the scalar path decodes every served op per cell.
	BatchOpsDecoded, BatchOpsServed uint64
}

// Engine runs experiments on a shared worker pool. Simulations are
// deduplicated by content and memoized for the engine's lifetime, so
// experiments that share configurations (every figure re-measures the
// 32KB/32KB baseline machine) pay for them once. Table output is
// byte-identical for any worker count. An Engine is safe for concurrent
// use; cross-experiment dedup works even between concurrent Experiment
// calls.
type Engine struct {
	pool  *runner.Pool
	store *store.Store // nil without EngineOptions.StoreDir
	// remote executes sweep cells on the worker fleet when set
	// (EngineOptions.Remote); nil runs everything locally.
	remote runner.Remote
}

// NewEngine builds an experiment engine. The error is non-nil only when
// EngineOptions.StoreDir is set and the store cannot be opened. Callers
// that configure a store (or replay trace containers) should Close the
// engine when done with it.
func NewEngine(o EngineOptions) (*Engine, error) {
	if o.Remote != nil && o.StoreDir == "" {
		return nil, fmt.Errorf("slicc: EngineOptions.Remote requires StoreDir (the shared store carries remote results back)")
	}
	ropts := runner.Options{Workers: o.Workers, OnProgress: o.Progress}
	var st *store.Store
	if o.StoreDir != "" {
		var err error
		st, err = store.Open(o.StoreDir, store.Options{MaxBytes: o.StoreMaxBytes, MemBytes: o.StoreMemBytes, Logger: o.Logger})
		if err != nil {
			return nil, fmt.Errorf("slicc: opening result store: %w", err)
		}
		ropts.Memo = runner.NewStoreMemo(st)
	}
	e := &Engine{pool: runner.New(ropts), store: st}
	if o.Remote != nil {
		e.remote = o.Remote
	}
	return e, nil
}

// Close releases the engine's long-lived resources: cached trace-container
// file handles (which otherwise stay open for the engine's lifetime) and
// the persistent result store. Call it after outstanding Run/Experiment
// calls return; the engine must not be used afterwards.
func (e *Engine) Close() error {
	err := e.pool.Close()
	if e.store != nil {
		if serr := e.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// Run executes one simulation on the engine's shared pool, with the
// engine's full memoization stack: an identical simulation already executed
// by this engine — or present in the persistent store — does not run again.
func (e *Engine) Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	rs, err := e.pool.Run(ctx, []runner.Job{cfg.job()})
	if err != nil {
		return Result{}, err
	}
	return cfg.result(rs[0]), nil
}

// Compare runs the same benchmark under several policies on the engine's
// shared pool and returns results in order (see CompareContext).
func (e *Engine) Compare(ctx context.Context, base Config, policies ...Policy) ([]Result, error) {
	return compareOn(ctx, e.pool, base, policies...)
}

// ExperimentOptions parameterizes ExperimentWith beyond the quick/seed
// pair of Experiment.
type ExperimentOptions struct {
	// Quick shrinks workloads ~20x for smoke runs.
	Quick bool
	// Seed drives workload synthesis (default 1).
	Seed int64
	// TracePath, when set, replays every simulated benchmark from the
	// recorded trace container at this path instead of its synthetic
	// workload (see Config.TracePath and docs/TRACES.md). Benchmark-
	// labelled rows then all describe the recorded workload.
	TracePath string
}

// Experiment regenerates one of the paper's tables/figures by id ("fig1"
// .. "fig11", "table1".."table3", "bpki") or one of the extension studies
// ("tlb", "steps", "scaling"). Quick mode shrinks workloads by roughly 20x
// for smoke runs; full mode reproduces the EXPERIMENTS.md numbers. The
// seed defaults to 1. Cancelling ctx aborts in-flight simulations and
// returns ctx.Err().
func (e *Engine) Experiment(ctx context.Context, id string, quick bool, seed int64) ([]ExperimentTable, error) {
	return e.ExperimentWith(ctx, id, ExperimentOptions{Quick: quick, Seed: seed})
}

// ExperimentWith is Experiment with the full option set — most notably
// replaying a recorded trace through the experiment grid via TracePath.
func (e *Engine) ExperimentWith(ctx context.Context, id string, o ExperimentOptions) ([]ExperimentTable, error) {
	run, ok := experimentRunners[id]
	if !ok {
		return nil, fmt.Errorf("slicc: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	// Simulation-free experiments (table1-3) never consult ctx; check it
	// here so cancellation behaves uniformly across ids.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return run(experiments.Options{Quick: o.Quick, Seed: o.Seed, TracePath: o.TracePath, Ctx: ctx, Pool: e.pool})
}

// StoreStats snapshots the engine's persistent result store and its
// in-memory hot tier (mirrors store.Stats).
type StoreStats struct {
	// Entries / Bytes describe the shared store directory: entry-file
	// count and their total size.
	Entries int
	Bytes   int64
	// DiskEvictions counts entries this engine's store evicted from disk
	// under its StoreMaxBytes budget (process-local).
	DiskEvictions int64
	// Memory-tier occupancy and counters (zero when StoreMemBytes is
	// unset); see store.Stats for field semantics.
	MemEntries   int
	MemBytes     int64
	MemEvictions int64
	MemHits      int64
	MemMisses    int64
	NegativeHits int64
}

// StoreDir returns the engine's store directory, "" when the engine runs
// without a persistent store.
func (e *Engine) StoreDir() string {
	if e.store == nil {
		return ""
	}
	return e.store.Dir()
}

// StoreStats scans the engine's store directory and reports entry count,
// total bytes, and this engine's eviction count. ok is false when the
// engine has no store (EngineOptions.StoreDir unset). The scan reads the
// directory listing; it is cheap enough for a stats endpoint or metrics
// scrape, not for a per-job path.
func (e *Engine) StoreStats() (stats StoreStats, ok bool) {
	if e.store == nil {
		return StoreStats{}, false
	}
	st, err := e.store.Stats()
	mirror := StoreStats{
		DiskEvictions: st.DiskEvictions,
		MemEntries:    st.MemEntries,
		MemBytes:      st.MemBytes,
		MemEvictions:  st.MemEvictions,
		MemHits:       st.MemHits,
		MemMisses:     st.MemMisses,
		NegativeHits:  st.NegativeHits,
	}
	if err != nil {
		// A concurrently deleted or unreadable directory reports as
		// empty; the health endpoint is where degradation is surfaced.
		return mirror, true
	}
	mirror.Entries, mirror.Bytes = st.Entries, st.Bytes
	return mirror, true
}

// Stats returns the engine's dedup/cache counters.
func (e *Engine) Stats() EngineStats {
	s := e.pool.Stats()
	return EngineStats{
		SimsRequested:         s.JobsRequested,
		SimsExecuted:          s.JobsExecuted,
		DedupHits:             s.DedupHits,
		StoreHits:             s.StoreHits,
		StorePuts:             s.StorePuts,
		SimsRemote:            s.JobsRemote,
		WorkloadsBuilt:        s.WorkloadsBuilt,
		WorkloadHits:          s.WorkloadHits,
		InstructionsSimulated: s.Instructions,
		CellsBatched:          s.JobsBatched,
		BatchesExecuted:       s.BatchesExecuted,
		BatchOpsDecoded:       s.BatchOpsDecoded,
		BatchOpsServed:        s.BatchOpsServed,
	}
}

// Experiment is the original serial-era entry point, kept as a wrapper: it
// runs the experiment on a fresh engine with default parallelism and no
// cancellation. Use an Engine to share the dedup cache across experiments
// or to control worker count, persistence and cancellation.
func Experiment(id string, quick bool, seed int64) ([]ExperimentTable, error) {
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.Experiment(context.Background(), id, quick, seed)
}
