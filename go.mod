module slicc

go 1.24
