package slicc

import (
	"fmt"
	"hash/fnv"
	"testing"

	"slicc/internal/trace"
	"slicc/internal/workload"
)

// TestGoldenWorkloadStreams pins a hash of each benchmark's generated
// instruction stream. The simulator's comparisons are only valid because
// every policy replays the *identical* workload; this test makes any
// accidental change to the generators (ordering, rng consumption, layout)
// fail loudly. If you change the generators on purpose, update the hashes
// and note it in EXPERIMENTS.md (all measured numbers shift).
func TestGoldenWorkloadStreams(t *testing.T) {
	golden := map[workload.Kind]string{}
	for _, kind := range workload.Kinds() {
		w := workload.New(workload.Config{Kind: kind, Threads: 8, Seed: 1, Scale: 0.2})
		h := fnv.New64a()
		for _, th := range w.Threads() {
			src := th.New()
			for i := 0; i < 5000; i++ {
				op, ok := src.Next()
				if !ok {
					break
				}
				var buf [18]byte
				putU64(buf[0:], op.PC)
				putU64(buf[8:], op.DataAddr)
				if op.HasData {
					buf[16] = 1
				}
				if op.IsWrite {
					buf[17] = 1
				}
				h.Write(buf[:])
			}
		}
		golden[kind] = fmt.Sprintf("%016x", h.Sum64())
	}
	want := map[workload.Kind]string{
		workload.TPCC1:     "e196afd895bf367c",
		workload.TPCC10:    "c3d47b21e0d90867",
		workload.TPCE:      "2d078f8365a374b0",
		workload.MapReduce: "f30c692d295f84e2",
	}
	for kind, wantHash := range want {
		if golden[kind] != wantHash {
			t.Errorf("%v stream hash = %s, want %s (generator behaviour changed)",
				kind, golden[kind], wantHash)
		}
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// TestHeadlineShapes runs the paper's headline comparison at a size where
// the shapes are stable and asserts every qualitative claim the README
// makes. Skipped under -short (about a minute).
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size integration run")
	}
	cfg := Config{Benchmark: TPCC1, Threads: 96, Seed: 1}
	rs, err := Compare(cfg, Baseline, NextLine, SLICC, SLICCPp, SLICCSW)
	if err != nil {
		t.Fatal(err)
	}
	base, nl, ob, pp, sw := rs[0], rs[1], rs[2], rs[3], rs[4]

	// Baseline character: OLTP thrash.
	if base.IMPKI < 30 || base.IMPKI > 45 {
		t.Errorf("baseline I-MPKI %.1f outside the calibrated band", base.IMPKI)
	}
	// SLICC-SW headline: large I-miss cut, small D-miss cost, real speedup.
	if cut := 1 - sw.IMPKI/base.IMPKI; cut < 0.30 {
		t.Errorf("SLICC-SW I-MPKI cut %.0f%% < 30%%", 100*cut)
	}
	if rise := sw.DMPKI/base.DMPKI - 1; rise < 0 || rise > 0.20 {
		t.Errorf("SLICC-SW D-MPKI change %.0f%% outside (0,20%%)", 100*rise)
	}
	if sp := sw.Speedup(base); sp < 1.25 {
		t.Errorf("SLICC-SW speedup %.3f < 1.25", sp)
	}
	// Paper's policy ordering: Base < SLICC <= Pp <= SW (with slack).
	if ob.Speedup(base) < 1.1 {
		t.Errorf("oblivious SLICC speedup %.3f < 1.1", ob.Speedup(base))
	}
	if sw.Cycles > ob.Cycles*1.02 {
		t.Errorf("SLICC-SW (%.0f cycles) not at least as good as oblivious (%.0f)", sw.Cycles, ob.Cycles)
	}
	if pp.Migrations == 0 || sw.Migrations == 0 {
		t.Error("type-aware variants did not migrate")
	}
	// Migration cadence in a plausible band (paper: every ~3.2K instr).
	if sw.InstrPerMigration < 1000 || sw.InstrPerMigration > 50000 {
		t.Errorf("instructions/migration %.0f implausible", sw.InstrPerMigration)
	}
	_ = nl
}

// TestMapReduceRobustnessFull asserts the paper's robustness claim at
// medium size. Skipped under -short.
func TestMapReduceRobustnessFull(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size integration run")
	}
	cfg := Config{Benchmark: MapReduce, Threads: 150, Seed: 1}
	rs, err := Compare(cfg, Baseline, SLICC, SLICCSW)
	if err != nil {
		t.Fatal(err)
	}
	base := rs[0]
	for _, r := range rs[1:] {
		if ratio := r.Cycles / base.Cycles; ratio > 1.03 {
			t.Errorf("%v slowed MapReduce by %.1f%%", r.Policy, 100*(ratio-1))
		}
	}
	if rs[1].Migrations != 0 {
		t.Errorf("oblivious SLICC migrated %d times on a cache-resident workload", rs[1].Migrations)
	}
}

// TestTrace building block: the generated workloads expose the Section 2
// reuse property through the analysis tooling.
func TestWorkloadReuseBeyondCache(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 4, Seed: 1, Scale: 1})
	// Pick a NewOrder thread (type 0) — its loop body exceeds one cache.
	for _, th := range w.Threads() {
		if th.Type != 0 {
			continue
		}
		a := trace.Analyze(th.New(), 400_000)
		if a.IFootprintKB < 100 {
			t.Fatalf("NewOrder footprint %dKB too small", a.IFootprintKB)
		}
		// Intra-line references dominate raw counts; judge the A-B-C-A
		// pattern on non-trivial reuse: of re-references with distance of
		// at least a few blocks, most must lie beyond a 32KB LRU.
		nontrivial := a.ReuseBeyond(4)
		beyond := a.ReuseBeyond(512)
		if nontrivial == 0 || beyond/nontrivial < 0.5 {
			t.Fatalf("beyond-cache share of non-trivial reuse = %.2f (%.4f / %.4f); the A-B-C-A pattern is missing",
				beyond/nontrivial, beyond, nontrivial)
		}
		return
	}
	t.Skip("no NewOrder thread in sample")
}
