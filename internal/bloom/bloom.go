// Package bloom implements the partial-address bloom filter SLICC uses as an
// approximate cache signature (Section 4.2.3 of the paper, after Peir et al.
// [23]). Each core maintains one filter summarizing its L1-I contents; remote
// cache segment searches probe the filter instead of the cache, avoiding
// contention with the core's own fetches.
//
// The filter must support evictions, so it is backed by per-bit saturating
// reference counts (a counting bloom filter): inserting a block increments
// the counters its hashes select, evicting decrements them, and a block is
// reported present when all its counters are non-zero.
//
// When the filter's index is wider than the cache's set index, aliasing can
// only happen between blocks of the same set, which is what makes the small
// 2K-bit configuration in Figure 9 accurate to >99%.
package bloom

import "fmt"

// Config sizes a filter.
type Config struct {
	// Bits is the number of filter buckets. Must be a power of two.
	// The paper's Figure 9 sweeps 512..8192; 2048 is the default used in
	// the rest of the evaluation.
	Bits int
	// Hashes is the number of index functions (default 2).
	Hashes int
	// CounterBits caps each bucket's reference count (default 8, i.e. a
	// saturating 8-bit counter; saturation makes deletes conservative).
	CounterBits int
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 2048
	}
	if c.Hashes == 0 {
		c.Hashes = 2
	}
	if c.CounterBits == 0 {
		c.CounterBits = 8
	}
	return c
}

// Filter is a counting partial-address bloom filter over cache block
// addresses.
type Filter struct {
	cfg     Config
	mask    uint64
	max     uint32
	counts  []uint32
	entries int
}

// New builds a filter; it panics if Bits is not a power of two (static
// misconfiguration).
func New(cfg Config) *Filter {
	cfg = cfg.withDefaults()
	if cfg.Bits <= 0 || cfg.Bits&(cfg.Bits-1) != 0 {
		panic(fmt.Sprintf("bloom: Bits %d must be a positive power of two", cfg.Bits))
	}
	if cfg.Hashes < 1 {
		panic("bloom: need at least one hash")
	}
	return &Filter{
		cfg:    cfg,
		mask:   uint64(cfg.Bits - 1),
		max:    uint32(1)<<cfg.CounterBits - 1,
		counts: make([]uint32, cfg.Bits),
	}
}

// Config returns the filter's configuration with defaults applied.
func (f *Filter) Config() Config { return f.cfg }

// SizeBits returns the nominal hardware size in bits (one presence bit per
// bucket, which is what the paper's Figure 9 and Table 3 count; the
// reference counters are bookkeeping to support eviction).
func (f *Filter) SizeBits() int { return f.cfg.Bits }

// index computes the i-th bucket for a block address. The hash mixes the
// block address with a per-function odd multiplier (Knuth multiplicative
// hashing); bucket 0 uses the low "partial address" bits directly so that a
// filter wider than the cache set index preserves the same-set aliasing
// property the paper relies on.
func (f *Filter) index(block uint64, i int) uint64 {
	if i == 0 {
		return block & f.mask
	}
	h := block * (0x9e3779b97f4a7c15 + uint64(i)*2)
	h ^= h >> 29
	return h & f.mask
}

// Insert records a block.
func (f *Filter) Insert(block uint64) {
	f.entries++
	for i := 0; i < f.cfg.Hashes; i++ {
		idx := f.index(block, i)
		if f.counts[idx] < f.max {
			f.counts[idx]++
		}
	}
}

// Remove erases one reference to a block. Removing a block that was never
// inserted can underflow other blocks' evidence, so callers must pair every
// Remove with a prior Insert; the cache's OnInsert/OnEvict hooks guarantee
// this. Saturated counters are left untouched (conservative: may yield false
// positives, never false negatives for resident blocks).
func (f *Filter) Remove(block uint64) {
	if f.entries > 0 {
		f.entries--
	}
	for i := 0; i < f.cfg.Hashes; i++ {
		idx := f.index(block, i)
		if f.counts[idx] > 0 && f.counts[idx] < f.max {
			f.counts[idx]--
		}
	}
}

// Contains reports whether the block may be present. False positives are
// possible; false negatives are not (for properly paired Insert/Remove).
func (f *Filter) Contains(block uint64) bool {
	for i := 0; i < f.cfg.Hashes; i++ {
		if f.counts[f.index(block, i)] == 0 {
			return false
		}
	}
	return true
}

// Entries returns the net number of inserted blocks.
func (f *Filter) Entries() int { return f.entries }

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.counts {
		f.counts[i] = 0
	}
	f.entries = 0
}

// AccuracyTracker measures how often a filter agrees with ground truth, the
// metric of the paper's Figure 9 ("an access is accurate if the bloom filter
// and the cache agree on whether this is a hit or a miss").
type AccuracyTracker struct {
	Checks uint64
	Agree  uint64
}

// Record notes one comparison.
func (a *AccuracyTracker) Record(filterSaysHit, cacheHit bool) {
	a.Checks++
	if filterSaysHit == cacheHit {
		a.Agree++
	}
}

// Accuracy returns the agreement ratio in [0,1]; 1 for an untouched tracker.
func (a *AccuracyTracker) Accuracy() float64 {
	if a.Checks == 0 {
		return 1
	}
	return float64(a.Agree) / float64(a.Checks)
}
