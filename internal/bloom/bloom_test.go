package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slicc/internal/cache"
)

func TestInsertContains(t *testing.T) {
	f := New(Config{Bits: 512})
	f.Insert(42)
	if !f.Contains(42) {
		t.Fatal("inserted block not found")
	}
	if f.Entries() != 1 {
		t.Fatalf("Entries = %d", f.Entries())
	}
}

func TestRemove(t *testing.T) {
	f := New(Config{Bits: 512})
	f.Insert(42)
	f.Remove(42)
	if f.Contains(42) {
		t.Fatal("removed block still present")
	}
	if f.Entries() != 0 {
		t.Fatalf("Entries = %d", f.Entries())
	}
}

func TestDoubleInsertSingleRemove(t *testing.T) {
	f := New(Config{Bits: 512})
	f.Insert(7)
	f.Insert(7)
	f.Remove(7)
	if !f.Contains(7) {
		t.Fatal("block with one outstanding reference reported absent")
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{{Bits: 100}, {Bits: -4}, {Bits: 64, Hashes: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReset(t *testing.T) {
	f := New(Config{Bits: 512})
	for b := uint64(0); b < 100; b++ {
		f.Insert(b)
	}
	f.Reset()
	if f.Entries() != 0 {
		t.Fatal("entries survived reset")
	}
	miss := 0
	for b := uint64(0); b < 100; b++ {
		if !f.Contains(b) {
			miss++
		}
	}
	if miss != 100 {
		t.Fatalf("%d/100 blocks still present after reset", 100-miss)
	}
}

func TestSizeBits(t *testing.T) {
	f := New(Config{Bits: 2048})
	if f.SizeBits() != 2048 {
		t.Fatalf("SizeBits = %d", f.SizeBits())
	}
}

// Property: no false negatives under any interleaving of paired
// insert/remove operations.
func TestPropNoFalseNegatives(t *testing.T) {
	f := func(ops []uint16) bool {
		fl := New(Config{Bits: 1024})
		resident := map[uint64]int{}
		for _, op := range ops {
			block := uint64(op % 256)
			if op&0x8000 != 0 && resident[block] > 0 {
				fl.Remove(block)
				resident[block]--
			} else {
				fl.Insert(block)
				resident[block]++
			}
		}
		for block, n := range resident {
			if n > 0 && !fl.Contains(block) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Entries never goes negative and matches the insert/remove
// balance.
func TestPropEntriesBalance(t *testing.T) {
	f := func(ops []uint8) bool {
		fl := New(Config{Bits: 256})
		want := 0
		for _, op := range ops {
			if op&1 == 0 {
				fl.Insert(uint64(op))
				want++
			} else {
				fl.Remove(uint64(op))
				if want > 0 {
					want--
				}
			}
		}
		return fl.Entries() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAccuracyImprovesWithSize reproduces the Figure 9 trend in miniature: a
// filter mirroring a 32KB cache gets more accurate as it grows.
func TestAccuracyImprovesWithSize(t *testing.T) {
	acc := make(map[int]float64)
	for _, bits := range []int{512, 8192} {
		c := cache.New(cache.Config{SizeBytes: 32 * 1024, BlockBytes: 64, Ways: 8})
		f := New(Config{Bits: bits})
		c.OnInsert = f.Insert
		c.OnEvict = f.Remove
		var tr AccuracyTracker
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200000; i++ {
			addr := uint64(rng.Intn(2048)) * 64 // 128KB footprint: 4x the cache
			filterHit := f.Contains(c.BlockAddr(addr))
			res := c.Access(addr, false)
			tr.Record(filterHit, res.Hit)
		}
		acc[bits] = tr.Accuracy()
	}
	if acc[8192] < acc[512] {
		t.Fatalf("accuracy did not improve with size: 512b=%.4f 8192b=%.4f", acc[512], acc[8192])
	}
	if acc[8192] < 0.99 {
		t.Fatalf("8K-bit filter accuracy %.4f < 0.99", acc[8192])
	}
}

func TestAccuracyTrackerEmpty(t *testing.T) {
	var tr AccuracyTracker
	if tr.Accuracy() != 1 {
		t.Fatal("empty tracker should report 1")
	}
	tr.Record(true, false)
	if tr.Accuracy() != 0 {
		t.Fatal("one disagreement should report 0")
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	f := New(Config{Bits: 2048})
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
		f.Remove(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(Config{Bits: 2048})
	for i := uint64(0); i < 512; i++ {
		f.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i) & 1023)
	}
}
