// Package cache implements the set-associative cache models used throughout
// the SLICC reproduction: private L1 instruction and data caches with a
// selectable replacement policy (LRU and the insertion/re-reference policies
// the paper evaluates in Figure 2), optional compulsory/capacity/conflict
// miss classification (Figure 1), and the probe/invalidate hooks the
// simulator's coherence directory and SLICC's signature search require.
//
// Caches operate on byte addresses; internally everything is tracked at
// cache-block granularity. All state is deterministic: policies that need
// randomness (BIP, BRRIP) draw from a seeded source in Config.
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Kind selects a replacement policy.
type Kind int

// Replacement policies evaluated by the paper (Section 2.1.2, Figure 2).
const (
	LRU Kind = iota
	LIP
	BIP
	DIP
	SRRIP
	BRRIP
	DRRIP
)

var kindNames = [...]string{"LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns all supported replacement policy kinds in Figure 2 order.
func Kinds() []Kind {
	return []Kind{LRU, LIP, BIP, DIP, SRRIP, BRRIP, DRRIP}
}

// Config describes a cache instance.
type Config struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// BlockBytes*Ways and yield a power-of-two set count.
	SizeBytes int
	// BlockBytes is the cache block (line) size. Must be a power of two.
	BlockBytes int
	// Ways is the associativity.
	Ways int
	// Policy is the replacement policy.
	Policy Kind
	// HitLatency is the load-to-use latency in cycles.
	HitLatency int
	// Classify enables compulsory/capacity/conflict classification via an
	// infinite-cache filter and a fully-associative LRU shadow of the same
	// capacity (Hill & Smith). It costs memory proportional to the
	// footprint, so it is off by default.
	Classify bool
	// BIPEpsilonLog2 is log2 of the inverse probability that BIP/BRRIP
	// insert a block with high priority (default 5, i.e. 1/32).
	BIPEpsilonLog2 int
	// DuelLeaderStride spaces the set-dueling leader sets for DIP/DRRIP
	// (default 32: set 0, 32, 64... lead policy A; set 1, 33, ... policy B).
	DuelLeaderStride int
	// PSELBits sizes the set-dueling policy selector counter (default 10).
	PSELBits int
	// Seed seeds the policy randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.HitLatency == 0 {
		c.HitLatency = 3
	}
	if c.BIPEpsilonLog2 == 0 {
		c.BIPEpsilonLog2 = 5
	}
	if c.DuelLeaderStride == 0 {
		c.DuelLeaderStride = 32
	}
	if c.PSELBits == 0 {
		c.PSELBits = 10
	}
	return c
}

// MissClass classifies a miss per Hill & Smith's 3C model.
type MissClass int

// Miss classes. ClassNone marks hits.
const (
	ClassNone MissClass = iota
	ClassCompulsory
	ClassCapacity
	ClassConflict
)

func (m MissClass) String() string {
	switch m {
	case ClassNone:
		return "none"
	case ClassCompulsory:
		return "compulsory"
	case ClassCapacity:
		return "capacity"
	case ClassConflict:
		return "conflict"
	}
	return fmt.Sprintf("MissClass(%d)", int(m))
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
	Evictions  uint64
	Fills      uint64 // prefetch fills (not demand misses)
	Invalidate uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result reports the outcome of a single access.
type Result struct {
	Hit bool
	// Class is the 3C class of a miss (ClassNone on hits, or when
	// classification is disabled it is ClassCapacity for non-first-touch
	// misses as a cheap approximation).
	Class MissClass
	// Evicted is the block address (not byte address) of the victim,
	// valid only when EvictedValid is true.
	Evicted      uint64
	EvictedValid bool
}

// set is one associative set in structure-of-arrays layout: the tags of
// its ways are a contiguous uint64 run (an 8-way set's tag scan touches
// exactly one host cache line), validity is a bitmask in the set header,
// and the replacement metadata (recency position for the LRU family, RRPV
// for the RRIP family) lives in a parallel byte run touched only by
// replacement updates. The layout matters because the simulated machine's
// caches are probed a couple of times per simulated instruction and are
// far bigger than the host's upper cache levels: the probe's memory
// traffic is the hot path. The valid bitmask caps associativity at 64
// ways (enforced by New).
type set struct {
	idx   int
	tags  []uint64
	meta  []uint8
	valid uint64 // bit w = way w holds a valid line
	// mru is a lookup hint: the way of the set's most recent hit or
	// insert. It short-circuits the way scan for repeat references and is
	// pure acceleration — replacement state never reads it.
	mru uint8
}

func (s *set) isValid(w int) bool { return s.valid>>uint(w)&1 != 0 }
func (s *set) ways() int          { return len(s.tags) }

// Cache is a set-associative cache model.
type Cache struct {
	cfg        Config
	sets       []set
	numSets    int
	setMask    uint64
	blockShift uint
	policy     policy
	rng        *rand.Rand
	stats      Stats

	// lastBlock tracks the most recently accessed block: consecutive
	// accesses to one block (sequential instruction fetch through a line,
	// a data run through a row) form one *touch episode*, and replacement
	// state updates once per episode. This models the line/fill buffer in
	// front of a real L1 and is what lets insertion-position policies
	// (LIP/BIP/RRIP) behave as designed: without it, the second fetch of
	// every 16-instruction line would instantly promote it to MRU and no
	// policy could differ from LRU. For true LRU the episode rule is a
	// no-op (re-promoting the same block is idempotent).
	lastBlock uint64
	haveLast  bool

	// Classification shadows (nil unless cfg.Classify).
	seen   *u64set
	shadow *faShadow

	// OnEvict, if set, is invoked with the block address of every victim
	// (demand or invalidation). SLICC uses it to keep bloom signatures in
	// sync with cache contents.
	OnEvict func(block uint64)
	// OnInsert mirrors OnEvict for newly inserted blocks.
	OnInsert func(block uint64)
}

// New builds a cache. It panics on geometrically impossible configurations;
// configurations are static inputs, so this is a programming error, not a
// runtime condition.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if cfg.SizeBytes <= 0 {
		panic("cache: SizeBytes must be positive")
	}
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic("cache: BlockBytes must be a power of two")
	}
	lineCount := cfg.SizeBytes / cfg.BlockBytes
	if lineCount%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: %d blocks not divisible by %d ways", lineCount, cfg.Ways))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("cache: %d ways exceeds the model's 64-way limit", cfg.Ways))
	}
	numSets := lineCount / cfg.Ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", numSets))
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, numSets),
		numSets: numSets,
		setMask: uint64(numSets - 1),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	c.blockShift = log2(uint64(cfg.BlockBytes))
	tags := make([]uint64, numSets*cfg.Ways)
	meta := make([]uint8, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i].idx = i
		c.sets[i].tags = tags[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		c.sets[i].meta = meta[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		// The LRU-family policies maintain meta as a recency permutation of
		// 0..Ways-1; seed it so promote() rotations preserve the invariant.
		for w := range c.sets[i].meta {
			c.sets[i].meta[w] = uint8(w)
		}
	}
	c.policy = newPolicy(c)
	if cfg.Classify {
		c.seen = newU64Set()
		c.shadow = newFAShadow(lineCount)
	}
	return c
}

// log2 returns floor(log2(v)); callers pass power-of-two geometry values.
func log2(v uint64) uint {
	if v <= 1 {
		return 0
	}
	return uint(bits.Len64(v) - 1)
}

// Config returns the configuration the cache was built with (with defaults
// applied).
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// NumBlocks returns the total number of blocks (lines).
func (c *Cache) NumBlocks() int { return c.numSets * c.cfg.Ways }

// HitLatency returns the configured hit latency in cycles.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

// BlockAddr converts a byte address to its block address.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift }

func (c *Cache) setIndex(block uint64) uint64 { return block & c.setMask }

// Access performs a demand access for the byte address. The write flag only
// matters to callers (the cache itself is a presence model); it is accepted
// here so data-cache call sites read naturally.
func (c *Cache) Access(addr uint64, write bool) Result {
	_ = write
	block := c.BlockAddr(addr)
	c.stats.Accesses++

	// Same touch episode: the last access left this block resident (a hit
	// found it, a miss inserted it), and between two *consecutive* accesses
	// to one block nothing can have removed it — any other Access would
	// have retargeted lastBlock, and the two removal paths that bypass
	// Access (Fill evicting it, InvalidateBlock) clear haveLast. The
	// episode rule already skips the replacement update here, so the whole
	// way scan can be skipped too; this is the common case for sequential
	// fetch through a line and for data runs through a row.
	if c.haveLast && c.lastBlock == block {
		c.stats.Hits++
		if c.shadow != nil {
			c.shadow.access(block)
		}
		return Result{Hit: true}
	}

	s := &c.sets[c.setIndex(block)]
	if way := findWay(s, block); way >= 0 {
		c.stats.Hits++
		if !c.haveLast || c.lastBlock != block {
			c.policy.onHit(s, way)
		}
		c.lastBlock, c.haveLast = block, true
		if c.shadow != nil {
			c.shadow.access(block)
		}
		return Result{Hit: true}
	}
	c.lastBlock, c.haveLast = block, true

	c.stats.Misses++
	class := c.classify(block)
	res := Result{Class: class}
	res.Evicted, res.EvictedValid = c.insert(s, block, false)
	return res
}

// classify assigns the 3C class for a missing block and updates shadows.
func (c *Cache) classify(block uint64) MissClass {
	if c.seen == nil {
		return ClassCapacity
	}
	var class MissClass
	if c.seen.add(block) {
		class = ClassCompulsory
	} else if c.shadow.contains(block) {
		// The fully-associative cache of equal capacity would have hit:
		// the miss is due to limited associativity.
		class = ClassConflict
	} else {
		class = ClassCapacity
	}
	c.shadow.access(block)
	switch class {
	case ClassCompulsory:
		c.stats.Compulsory++
	case ClassCapacity:
		c.stats.Capacity++
	case ClassConflict:
		c.stats.Conflict++
	}
	return class
}

// insert places block into set s, evicting the policy's victim if the set is
// full. It returns the victim block address if a valid line was evicted.
// lowPri inserts at the policy's lowest priority (prefetch fills).
func (c *Cache) insert(s *set, block uint64, lowPri bool) (evicted uint64, evictedValid bool) {
	way := c.policy.victim(s)
	if s.isValid(way) {
		evicted, evictedValid = s.tags[way], true
		c.stats.Evictions++
		if c.haveLast && c.lastBlock == evicted {
			// A Fill can evict the episode block behind Access's back; the
			// same-block fast path must not report it resident afterwards.
			c.haveLast = false
		}
		if c.OnEvict != nil {
			c.OnEvict(evicted)
		}
	}
	s.tags[way] = block
	s.valid |= 1 << uint(way)
	s.mru = uint8(way)
	if lowPri {
		c.policy.onFill(s, way)
	} else {
		c.policy.onInsert(s, way)
	}
	if c.OnInsert != nil {
		c.OnInsert(block)
	}
	return evicted, evictedValid
}

// Fill inserts the block containing addr without counting a demand access.
// Prefetchers use it; fills are counted in Stats.Fills and inserted at the
// replacement policy's lowest priority, so an unreferenced prefetch is the
// next victim. It is a no-op if the block is already present (its
// replacement state is left untouched, so useless prefetch traffic cannot
// promote a block).
func (c *Cache) Fill(addr uint64) (evicted uint64, evictedValid bool) {
	block := c.BlockAddr(addr)
	s := &c.sets[c.setIndex(block)]
	if findWay(s, block) >= 0 {
		return 0, false
	}
	c.stats.Fills++
	if c.shadow != nil {
		c.seen.add(block)
		c.shadow.access(block)
	}
	return c.insert(s, block, true)
}

// Contains probes for the block containing addr with no side effects on
// replacement state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	block := c.BlockAddr(addr)
	return findWay(&c.sets[c.setIndex(block)], block) >= 0
}

// ContainsBlock probes by block address with no side effects.
func (c *Cache) ContainsBlock(block uint64) bool {
	return findWay(&c.sets[c.setIndex(block)], block) >= 0
}

// Invalidate removes the block containing addr, returning whether it was
// present. Coherence invalidations land here.
func (c *Cache) Invalidate(addr uint64) bool {
	return c.InvalidateBlock(c.BlockAddr(addr))
}

// InvalidateBlock removes a block by block address.
func (c *Cache) InvalidateBlock(block uint64) bool {
	s := &c.sets[c.setIndex(block)]
	way := findWay(s, block)
	if way < 0 {
		return false
	}
	s.valid &^= 1 << uint(way)
	if c.haveLast && c.lastBlock == block {
		c.haveLast = false
	}
	c.stats.Invalidate++
	if c.OnEvict != nil {
		c.OnEvict(block)
	}
	return true
}

// Blocks appends the block addresses of all valid lines to dst and returns
// it. The order is set-major and not meaningful.
func (c *Cache) Blocks(dst []uint64) []uint64 {
	for i := range c.sets {
		s := &c.sets[i]
		for w, tag := range s.tags {
			if s.isValid(w) {
				dst = append(dst, tag)
			}
		}
	}
	return dst
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.sets {
		n += bits.OnesCount64(c.sets[i].valid)
	}
	return n
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes counters but keeps contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line and resets policy metadata. Statistics and
// classification shadows are preserved (a flush does not unsee blocks).
func (c *Cache) Flush() {
	for i := range c.sets {
		s := &c.sets[i]
		s.valid = 0
		for w := range s.meta {
			s.tags[w] = 0
			s.meta[w] = uint8(w)
		}
	}
	c.haveLast = false
}

func findWay(s *set, block uint64) int {
	if w := int(s.mru); w < len(s.tags) && s.tags[w] == block && s.isValid(w) {
		return w
	}
	for w, tag := range s.tags {
		if tag == block && s.isValid(w) {
			s.mru = uint8(w)
			return w
		}
	}
	return -1
}
