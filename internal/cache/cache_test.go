package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small(policy Kind) *Cache {
	return New(Config{SizeBytes: 1024, BlockBytes: 64, Ways: 4, Policy: policy, Classify: true})
}

func TestNewGeometry(t *testing.T) {
	c := New(Config{SizeBytes: 32 * 1024, BlockBytes: 64, Ways: 8})
	if got := c.NumSets(); got != 64 {
		t.Fatalf("NumSets = %d, want 64", got)
	}
	if got := c.NumBlocks(); got != 512 {
		t.Fatalf("NumBlocks = %d, want 512", got)
	}
	if c.BlockAddr(0x1000) != 0x40 {
		t.Fatalf("BlockAddr(0x1000) = %#x, want 0x40", c.BlockAddr(0x1000))
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0},
		{SizeBytes: 1024, BlockBytes: 48, Ways: 4},     // non power-of-two block
		{SizeBytes: 3 * 1024, BlockBytes: 64, Ways: 8}, // 48 blocks / 8 ways = 6 sets, not pow2
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(LRU)
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("first access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	// Same block, different byte offset.
	if r := c.Access(0x13f, false); !r.Hit {
		t.Fatal("same-block access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompulsoryClassification(t *testing.T) {
	c := small(LRU)
	r := c.Access(0, false)
	if r.Class != ClassCompulsory {
		t.Fatalf("first touch class = %v, want compulsory", r.Class)
	}
}

func TestCapacityClassification(t *testing.T) {
	c := small(LRU) // 16 blocks total
	// Stream over 64 distinct blocks twice: the second pass misses are
	// capacity misses (even the FA cache of 16 blocks would miss).
	for pass := 0; pass < 2; pass++ {
		for b := uint64(0); b < 64; b++ {
			r := c.Access(b*64, false)
			if r.Hit {
				t.Fatalf("pass %d block %d unexpectedly hit", pass, b)
			}
			if pass == 1 && r.Class != ClassCapacity {
				t.Fatalf("pass 1 block %d class = %v, want capacity", b, r.Class)
			}
		}
	}
}

func TestConflictClassification(t *testing.T) {
	// 4-way cache with 4 sets: 5 blocks mapping to one set overflow its
	// associativity while total footprint (5) fits in 16 FA blocks.
	c := small(LRU)
	sets := uint64(c.NumSets())
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 5; i++ {
			c.Access(i*sets*64, false) // all map to set 0
		}
	}
	st := c.Stats()
	if st.Conflict == 0 {
		t.Fatalf("no conflict misses recorded: %+v", st)
	}
	if st.Capacity != 0 {
		t.Fatalf("unexpected capacity misses: %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := small(LRU)
	sets := uint64(c.NumSets())
	addr := func(i uint64) uint64 { return i * sets * 64 } // all in set 0
	for i := uint64(0); i < 4; i++ {
		c.Access(addr(i), false)
	}
	c.Access(addr(0), false) // promote 0 to MRU; LRU is now 1
	r := c.Access(addr(4), false)
	if !r.EvictedValid || r.Evicted != c.BlockAddr(addr(1)) {
		t.Fatalf("evicted %#x (valid=%v), want block of addr(1)", r.Evicted, r.EvictedValid)
	}
	if !c.Contains(addr(0)) {
		t.Fatal("recently used block was evicted")
	}
}

func TestLIPInsertsAtLRU(t *testing.T) {
	c := small(LIP)
	sets := uint64(c.NumSets())
	addr := func(i uint64) uint64 { return i * sets * 64 }
	for i := uint64(0); i < 4; i++ {
		c.Access(addr(i), false)
	}
	// Set is full; a new block is inserted at LRU and must be the next
	// victim if not re-referenced.
	c.Access(addr(4), false)
	r := c.Access(addr(5), false)
	if !r.EvictedValid || r.Evicted != c.BlockAddr(addr(4)) {
		t.Fatalf("LIP evicted %#x, want the block just inserted", r.Evicted)
	}
}

func TestLIPHitPromotes(t *testing.T) {
	c := small(LIP)
	sets := uint64(c.NumSets())
	addr := func(i uint64) uint64 { return i * sets * 64 }
	for i := uint64(0); i < 5; i++ {
		c.Access(addr(i), false)
	}
	// addr(4) sits at LRU. Its insertion access and a re-touch form one
	// episode, so break the episode with another block first, then touch
	// addr(4) to promote it to MRU.
	if r := c.Access(addr(0), false); !r.Hit {
		t.Fatal("expected hit on addr(0)")
	}
	if r := c.Access(addr(4), false); !r.Hit {
		t.Fatal("expected hit")
	}
	r := c.Access(addr(6), false)
	if r.Evicted == c.BlockAddr(addr(4)) {
		t.Fatal("LIP evicted a just-promoted block")
	}
}

func TestBIPMostlyInsertsAtLRU(t *testing.T) {
	c := small(BIP)
	sets := uint64(c.NumSets())
	addr := func(i uint64) uint64 { return i * sets * 64 }
	for i := uint64(0); i < 4; i++ {
		c.Access(addr(i), false)
	}
	lruEvictions := 0
	const n = 1000
	for i := uint64(0); i < n; i++ {
		r := c.Access(addr(100+i), false)
		if r.EvictedValid && r.Evicted == c.BlockAddr(addr(100+i-1)) {
			lruEvictions++
		}
	}
	// With epsilon = 1/32, the vast majority of inserts land at LRU and are
	// immediately evicted by the next insert.
	if lruEvictions < n*8/10 {
		t.Fatalf("BIP evicted previous insert only %d/%d times", lruEvictions, n)
	}
	if lruEvictions == n-1 {
		t.Fatal("BIP never inserted at MRU; epsilon path untested")
	}
}

func TestSRRIPVictimSelection(t *testing.T) {
	c := small(SRRIP)
	sets := uint64(c.NumSets())
	addr := func(i uint64) uint64 { return i * sets * 64 }
	for i := uint64(0); i < 4; i++ {
		c.Access(addr(i), false)
	}
	// Re-reference 0..2 so their RRPV drops to 0; 3 stays at rrpvMax-1 and
	// must be chosen over the re-referenced lines.
	for i := uint64(0); i < 3; i++ {
		c.Access(addr(i), false)
	}
	r := c.Access(addr(4), false)
	if !r.EvictedValid || r.Evicted != c.BlockAddr(addr(3)) {
		t.Fatalf("SRRIP evicted %#x, want addr(3) block", r.Evicted)
	}
}

func TestDIPDuelsBetweenLRUAndBIP(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 1024, BlockBytes: 64, Ways: 4, Policy: DIP})
	// A cyclic working set slightly larger than the cache thrashes LRU;
	// DIP should converge towards BIP and beat pure LRU.
	lru := New(Config{SizeBytes: 64 * 1024, BlockBytes: 64, Ways: 4, Policy: LRU})
	blocks := uint64(lru.NumBlocks())
	for pass := 0; pass < 30; pass++ {
		for b := uint64(0); b < blocks+blocks/4; b++ {
			c.Access(b*64, false)
			lru.Access(b*64, false)
		}
	}
	if c.Stats().Misses >= lru.Stats().Misses {
		t.Fatalf("DIP misses (%d) not better than LRU (%d) on thrashing loop",
			c.Stats().Misses, lru.Stats().Misses)
	}
}

func TestDRRIPOnThrashingLoop(t *testing.T) {
	dr := New(Config{SizeBytes: 64 * 1024, BlockBytes: 64, Ways: 4, Policy: DRRIP})
	lru := New(Config{SizeBytes: 64 * 1024, BlockBytes: 64, Ways: 4, Policy: LRU})
	blocks := uint64(lru.NumBlocks())
	for pass := 0; pass < 30; pass++ {
		for b := uint64(0); b < blocks*2; b++ {
			dr.Access(b*64, false)
			lru.Access(b*64, false)
		}
	}
	if dr.Stats().Misses > lru.Stats().Misses {
		t.Fatalf("DRRIP misses (%d) worse than LRU (%d) on 2x thrashing loop",
			dr.Stats().Misses, lru.Stats().Misses)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(LRU)
	c.Access(0x200, false)
	if !c.Invalidate(0x200) {
		t.Fatal("Invalidate returned false for present block")
	}
	if c.Contains(0x200) {
		t.Fatal("block survived invalidation")
	}
	if c.Invalidate(0x200) {
		t.Fatal("Invalidate returned true for absent block")
	}
	if r := c.Access(0x200, false); r.Hit {
		t.Fatal("hit after invalidation")
	}
}

func TestFill(t *testing.T) {
	c := small(LRU)
	c.Fill(0x300)
	if !c.Contains(0x300) {
		t.Fatal("fill did not insert")
	}
	if r := c.Access(0x300, false); !r.Hit {
		t.Fatal("access after fill missed")
	}
	st := c.Stats()
	if st.Fills != 1 || st.Misses != 0 {
		t.Fatalf("stats after fill = %+v", st)
	}
	// Filling a resident block is a no-op.
	c.Fill(0x300)
	if c.Stats().Fills != 1 {
		t.Fatal("duplicate fill counted")
	}
}

func TestOnEvictOnInsertHooks(t *testing.T) {
	c := small(LRU)
	var inserted, evicted []uint64
	c.OnInsert = func(b uint64) { inserted = append(inserted, b) }
	c.OnEvict = func(b uint64) { evicted = append(evicted, b) }
	sets := uint64(c.NumSets())
	for i := uint64(0); i < 5; i++ {
		c.Access(i*sets*64, false) // one set, forces one eviction
	}
	if len(inserted) != 5 {
		t.Fatalf("inserted hook fired %d times, want 5", len(inserted))
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted hook fired %d times, want 1", len(evicted))
	}
	c.InvalidateBlock(inserted[4])
	if len(evicted) != 2 {
		t.Fatal("invalidation did not fire evict hook")
	}
}

func TestBlocksAndValidCount(t *testing.T) {
	c := small(LRU)
	for i := uint64(0); i < 10; i++ {
		c.Access(i*64, false)
	}
	if got := c.ValidCount(); got != 10 {
		t.Fatalf("ValidCount = %d, want 10", got)
	}
	blocks := c.Blocks(nil)
	if len(blocks) != 10 {
		t.Fatalf("Blocks returned %d entries", len(blocks))
	}
	seen := map[uint64]bool{}
	for _, b := range blocks {
		if seen[b] {
			t.Fatalf("duplicate block %#x", b)
		}
		seen[b] = true
		if !c.ContainsBlock(b) {
			t.Fatalf("Blocks reported non-resident block %#x", b)
		}
	}
}

func TestFlushPreservesStats(t *testing.T) {
	c := small(LRU)
	c.Access(0x40, false)
	c.Flush()
	if c.ValidCount() != 0 {
		t.Fatal("flush left valid lines")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("flush cleared stats")
	}
	// Post-flush access misses but the block has been seen: not compulsory.
	if r := c.Access(0x40, false); r.Hit || r.Class == ClassCompulsory {
		t.Fatalf("post-flush access = %+v", r)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("bad name for kind %d: %q", int(k), k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("out-of-range Kind String")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty MissRate not 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
}

// --- property-based tests ---------------------------------------------------

// Property: an access immediately followed by an access to the same address
// always hits, for every policy.
func TestPropAccessThenHit(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		f := func(addrs []uint64) bool {
			c := New(Config{SizeBytes: 2048, BlockBytes: 64, Ways: 4, Policy: k, Seed: 7})
			for _, a := range addrs {
				c.Access(a, false)
				if !c.Access(a, false).Hit {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("policy %v: %v", k, err)
		}
	}
}

// Property: valid line count never exceeds capacity and Contains agrees with
// the demand stream (a resident block set tracked externally).
func TestPropOccupancyBounded(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		f := func(addrs []uint64) bool {
			c := New(Config{SizeBytes: 1024, BlockBytes: 64, Ways: 2, Policy: k, Seed: 3})
			for _, a := range addrs {
				c.Access(a, false)
				if c.ValidCount() > c.NumBlocks() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("policy %v: %v", k, err)
		}
	}
}

// Property: hits+misses == accesses and 3C classes partition misses.
func TestPropStatsConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 1024, BlockBytes: 64, Ways: 4, Policy: LRU, Classify: true})
		for i := 0; i < int(n)+1; i++ {
			c.Access(uint64(rng.Intn(256))*64, rng.Intn(2) == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses &&
			s.Compulsory+s.Capacity+s.Conflict == s.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the LRU stack metadata is always a permutation of 0..ways-1.
func TestPropLRUStackIsPermutation(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{SizeBytes: 1024, BlockBytes: 64, Ways: 4, Policy: LRU})
		for _, a := range addrs {
			c.Access(uint64(a)*64, false)
		}
		for si := range c.sets {
			var mask uint
			for _, m := range c.sets[si].meta {
				if m >= uint8(c.cfg.Ways) {
					return false
				}
				mask |= 1 << m
			}
			if mask != (1<<c.cfg.Ways)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: classification shadow never exceeds its capacity.
func TestPropShadowBounded(t *testing.T) {
	f := func(addrs []uint32) bool {
		sh := newFAShadow(16)
		for _, a := range addrs {
			sh.access(uint64(a))
			if sh.len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShadowLRUOrder(t *testing.T) {
	sh := newFAShadow(3)
	sh.access(1)
	sh.access(2)
	sh.access(3)
	sh.access(1) // 1 is MRU, 2 is LRU
	sh.access(4) // evicts 2
	if sh.contains(2) {
		t.Fatal("LRU entry survived")
	}
	for _, b := range []uint64{1, 3, 4} {
		if !sh.contains(b) {
			t.Fatalf("block %d missing", b)
		}
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	c := New(Config{SizeBytes: 32 * 1024, BlockBytes: 64, Ways: 8, Policy: LRU})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(4096)) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&8191], false)
	}
}

func BenchmarkAccessDRRIP(b *testing.B) {
	c := New(Config{SizeBytes: 32 * 1024, BlockBytes: 64, Ways: 8, Policy: DRRIP})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(4096)) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&8191], false)
	}
}
