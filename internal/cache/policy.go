package cache

// policy is the per-set replacement behaviour. Implementations mutate the
// per-line meta field: for the LRU family it is a recency stack position
// (0 = MRU, Ways-1 = LRU); for the RRIP family it is the re-reference
// prediction value (0 = near-immediate, rrpvMax = distant).
type policy interface {
	onHit(s *set, way int)
	victim(s *set) int
	onInsert(s *set, way int)
	// onFill inserts at low priority: prefetched blocks that are not
	// referenced promptly should be the first to go.
	onFill(s *set, way int)
}

func newPolicy(c *Cache) policy {
	switch c.cfg.Policy {
	case LRU:
		return &stackPolicy{c: c, insertAt: insertMRU}
	case LIP:
		return &stackPolicy{c: c, insertAt: insertLRU}
	case BIP:
		return &stackPolicy{c: c, insertAt: insertBimodal}
	case DIP:
		return newDuel(c,
			&stackPolicy{c: c, insertAt: insertMRU},
			&stackPolicy{c: c, insertAt: insertBimodal})
	case SRRIP:
		return &rripPolicy{c: c, bimodal: false}
	case BRRIP:
		return &rripPolicy{c: c, bimodal: true}
	case DRRIP:
		return newDuel(c,
			&rripPolicy{c: c, bimodal: false},
			&rripPolicy{c: c, bimodal: true})
	default:
		panic("cache: unknown policy " + c.cfg.Policy.String())
	}
}

// --- LRU / LIP / BIP -------------------------------------------------------

type insertMode int

const (
	insertMRU insertMode = iota
	insertLRU
	insertBimodal // LRU except with probability 2^-BIPEpsilonLog2 at MRU
)

// stackPolicy implements true-LRU ordering with a configurable insertion
// position, covering LRU, LIP and BIP from Qureshi et al. [24].
type stackPolicy struct {
	c        *Cache
	insertAt insertMode
}

// promote moves way to stack position pos, shifting intervening lines down.
func promote(s *set, way int, pos uint8) {
	old := s.meta[way]
	if old == pos {
		return
	}
	if old > pos {
		for w, m := range s.meta {
			if m >= pos && m < old {
				s.meta[w] = m + 1
			}
		}
	} else {
		for w, m := range s.meta {
			if m > old && m <= pos {
				s.meta[w] = m - 1
			}
		}
	}
	s.meta[way] = pos
}

func (p *stackPolicy) onHit(s *set, way int) { promote(s, way, 0) }

func (p *stackPolicy) victim(s *set) int {
	// Invalid lines first: keep their stack positions intact so the meta
	// permutation stays consistent.
	if s.valid != 1<<uint(s.ways())-1 {
		for w := 0; w < s.ways(); w++ {
			if !s.isValid(w) {
				return w
			}
		}
	}
	lru := 0
	for w, m := range s.meta {
		if m > s.meta[lru] {
			lru = w
		}
	}
	return lru
}

func (p *stackPolicy) onFill(s *set, way int) {
	promote(s, way, uint8(s.ways()-1))
}

func (p *stackPolicy) onInsert(s *set, way int) {
	mode := p.insertAt
	if mode == insertBimodal {
		if p.c.rng.Intn(1<<p.c.cfg.BIPEpsilonLog2) == 0 {
			mode = insertMRU
		} else {
			mode = insertLRU
		}
	}
	switch mode {
	case insertMRU:
		promote(s, way, 0)
	case insertLRU:
		promote(s, way, uint8(s.ways()-1))
	}
}

// --- SRRIP / BRRIP ---------------------------------------------------------

const rrpvMax = 3 // 2-bit RRPV per Jaleel et al. [12]

// rripPolicy implements static (SRRIP) and bimodal (BRRIP) re-reference
// interval prediction with hit-priority promotion.
type rripPolicy struct {
	c       *Cache
	bimodal bool
}

func (p *rripPolicy) onHit(s *set, way int) { s.meta[way] = 0 }

func (p *rripPolicy) victim(s *set) int {
	if s.valid != 1<<uint(s.ways())-1 {
		for w := 0; w < s.ways(); w++ {
			if !s.isValid(w) {
				return w
			}
		}
	}
	for {
		for w, m := range s.meta {
			if m >= rrpvMax {
				return w
			}
		}
		for w := range s.meta {
			s.meta[w]++
		}
	}
}

func (p *rripPolicy) onFill(s *set, way int) {
	s.meta[way] = rrpvMax
}

func (p *rripPolicy) onInsert(s *set, way int) {
	if p.bimodal && p.c.rng.Intn(1<<p.c.cfg.BIPEpsilonLog2) != 0 {
		// BRRIP predicts a distant re-reference interval for most blocks,
		// protecting the resident fraction of a thrashing footprint.
		s.meta[way] = rrpvMax
		return
	}
	s.meta[way] = rrpvMax - 1 // SRRIP "long" interval
}

// --- Set dueling (DIP, DRRIP) ----------------------------------------------

// duelPolicy implements set dueling: a handful of leader sets are dedicated
// to each component policy and their misses steer a saturating selector
// (PSEL); follower sets obey the currently winning policy.
type duelPolicy struct {
	c       *Cache
	a, b    policy
	psel    int
	pselMax int
	stride  int
}

func newDuel(c *Cache, a, b policy) *duelPolicy {
	max := 1<<c.cfg.PSELBits - 1
	return &duelPolicy{c: c, a: a, b: b, psel: max / 2, pselMax: max, stride: c.cfg.DuelLeaderStride}
}

// leader returns +1 if the set leads policy a, -1 for policy b, 0 follower.
func (p *duelPolicy) leader(s *set) int {
	switch s.idx % p.stride {
	case 0:
		return +1
	case 1:
		return -1
	}
	return 0
}

func (p *duelPolicy) active(s *set) policy {
	switch p.leader(s) {
	case +1:
		return p.a
	case -1:
		return p.b
	}
	if p.psel >= (p.pselMax+1)/2 {
		return p.b
	}
	return p.a
}

func (p *duelPolicy) onHit(s *set, way int) { p.active(s).onHit(s, way) }

func (p *duelPolicy) victim(s *set) int {
	// A miss in a leader set is evidence against its policy.
	switch p.leader(s) {
	case +1:
		if p.psel < p.pselMax {
			p.psel++
		}
	case -1:
		if p.psel > 0 {
			p.psel--
		}
	}
	return p.active(s).victim(s)
}

func (p *duelPolicy) onInsert(s *set, way int) { p.active(s).onInsert(s, way) }

func (p *duelPolicy) onFill(s *set, way int) { p.active(s).onFill(s, way) }
