package cache

// faShadow is a fully-associative LRU cache of block addresses with the same
// capacity as the real cache. It exists solely to classify misses: a block
// that misses in the set-associative cache but would have hit in the
// fully-associative one is a conflict miss; otherwise (and not first touch)
// it is a capacity miss (Hill & Smith, "Evaluating associativity in CPU
// caches").
type faShadow struct {
	capacity int
	nodes    map[uint64]*faNode
	head     *faNode // MRU
	tail     *faNode // LRU
}

type faNode struct {
	block      uint64
	prev, next *faNode
}

func newFAShadow(capacity int) *faShadow {
	if capacity <= 0 {
		panic("cache: shadow capacity must be positive")
	}
	return &faShadow{
		capacity: capacity,
		nodes:    make(map[uint64]*faNode, capacity+1),
	}
}

func (f *faShadow) contains(block uint64) bool {
	_, ok := f.nodes[block]
	return ok
}

// access touches block, inserting or promoting it to MRU, evicting LRU on
// overflow.
func (f *faShadow) access(block uint64) {
	if n, ok := f.nodes[block]; ok {
		f.unlink(n)
		f.pushFront(n)
		return
	}
	n := &faNode{block: block}
	f.nodes[block] = n
	f.pushFront(n)
	if len(f.nodes) > f.capacity {
		lru := f.tail
		f.unlink(lru)
		delete(f.nodes, lru.block)
	}
}

func (f *faShadow) len() int { return len(f.nodes) }

func (f *faShadow) pushFront(n *faNode) {
	n.prev = nil
	n.next = f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *faShadow) unlink(n *faNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
