package cache

import "slicc/internal/oatable"

// faShadow is a fully-associative LRU cache of block addresses with the same
// capacity as the real cache. It exists solely to classify misses: a block
// that misses in the set-associative cache but would have hit in the
// fully-associative one is a conflict miss; otherwise (and not first touch)
// it is a capacity miss (Hill & Smith, "Evaluating associativity in CPU
// caches").
//
// It is consulted on every access of a classifying cache, so the structure
// is flat: nodes live in a fixed arena linked by indices, and the
// block->node lookup is an open-addressing table — no per-access map
// hashing or node allocation.
type faShadow struct {
	capacity int
	tab      oatable.Table[int32]
	nodes    []faNode
	head     int32 // MRU, -1 when empty
	tail     int32 // LRU, -1 when empty
}

type faNode struct {
	block      uint64
	prev, next int32 // arena indices, -1 terminates
}

func newFAShadow(capacity int) *faShadow {
	if capacity <= 0 {
		panic("cache: shadow capacity must be positive")
	}
	f := &faShadow{
		capacity: capacity,
		nodes:    make([]faNode, 0, capacity),
		head:     -1,
		tail:     -1,
	}
	f.tab.Init(oatable.CapFor(capacity))
	return f
}

func (f *faShadow) contains(block uint64) bool {
	_, ok := f.tab.Get(block)
	return ok
}

// access touches block, inserting or promoting it to MRU, evicting LRU on
// overflow.
func (f *faShadow) access(block uint64) {
	if i, ok := f.tab.Get(block); ok {
		f.unlink(i)
		f.pushFront(i)
		return
	}
	var i int32
	if len(f.nodes) < f.capacity {
		i = int32(len(f.nodes))
		f.nodes = append(f.nodes, faNode{block: block})
	} else {
		// Full: reuse the LRU node for the new block.
		i = f.tail
		f.unlink(i)
		f.tab.Del(f.nodes[i].block)
		f.nodes[i].block = block
	}
	f.tab.Put(block, i)
	f.pushFront(i)
}

func (f *faShadow) len() int { return len(f.nodes) }

func (f *faShadow) pushFront(i int32) {
	n := &f.nodes[i]
	n.prev = -1
	n.next = f.head
	if f.head >= 0 {
		f.nodes[f.head].prev = i
	}
	f.head = i
	if f.tail < 0 {
		f.tail = i
	}
}

func (f *faShadow) unlink(i int32) {
	n := &f.nodes[i]
	if n.prev >= 0 {
		f.nodes[n.prev].next = n.next
	} else {
		f.head = n.next
	}
	if n.next >= 0 {
		f.nodes[n.next].prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

// u64set is an append-only open-addressing set of block addresses (the
// classifier's "ever seen" filter; first touches are compulsory misses).
// Deletion-free, so it stays local instead of using oatable.Table.
type u64set struct {
	keys    []uint64
	mask    uint64
	n       int
	hasZero bool
}

func newU64Set() *u64set {
	s := &u64set{}
	s.keys = make([]uint64, 1<<10)
	s.mask = uint64(len(s.keys) - 1)
	return s
}

// add inserts k and reports whether it was absent.
func (s *u64set) add(k uint64) (added bool) {
	if k == 0 {
		added = !s.hasZero
		s.hasZero = true
		return added
	}
	if s.n >= len(s.keys)-len(s.keys)/4 {
		old := s.keys
		s.keys = make([]uint64, len(old)*2)
		s.mask = uint64(len(s.keys) - 1)
		s.n = 0
		for _, kk := range old {
			if kk != 0 {
				s.add(kk)
			}
		}
	}
	i := oatable.Mix(k) & s.mask
	for {
		kk := s.keys[i]
		if kk == k {
			return false
		}
		if kk == 0 {
			s.keys[i] = k
			s.n++
			return true
		}
		i = (i + 1) & s.mask
	}
}
