// Package cpu provides the per-core timing model. The paper simulates
// 6-wide out-of-order cores on Zesto; reproducing a cycle-level OoO pipeline
// is neither possible nor necessary here (see DESIGN.md): SLICC's effect is
// a cache phenomenon, and the paper's own argument (Section 3.3) is about
// the *relative* cost of instruction vs data misses. This model captures
// exactly that asymmetry:
//
//   - instruction-miss latency stalls the front end fully (and then some:
//     the FetchBubble factor models pipeline refill after the fetch unit
//     starves), while
//   - data-miss latency is largely hidden by out-of-order execution
//     (DataOverlap is the hidden fraction).
//
// The calibration targets the paper's measurements: OLTP baselines spend
// ~80% of their time in memory stalls, and instruction stalls are 70-85%
// of stall cycles (Tözün et al., cited as [28]).
package cpu

// Config parameterizes the timing model.
type Config struct {
	// BaseCPI is the no-stall cycles-per-instruction of the 6-wide core
	// (default 0.5).
	BaseCPI float64
	// DataOverlap is the fraction of a data miss's latency hidden by ILP
	// (default 0.7).
	DataOverlap float64
	// FetchBubble scales instruction-miss latency to account for pipeline
	// refill after fetch starvation (default 2.6, calibrated so the
	// baseline spends ~80% of its time in memory stalls with instruction
	// stalls 70-85% of stall cycles, the measurements the paper cites).
	FetchBubble float64
	// MigrationBaseCycles is the fixed cost of a hardware thread
	// migration: draining the pipeline and writing the architectural
	// register file (default 100, in the spirit of Thread Motion's
	// microsecond-free hardware context transfer).
	MigrationBaseCycles int
	// ContextBytes is the architectural state transferred through the L2
	// on migration (default 256: 16 GPRs + SIMD subset + PC/flags, in
	// cache blocks).
	ContextBytes int
}

// WithDefaults fills zero fields with the baseline configuration.
func (c Config) WithDefaults() Config {
	if c.BaseCPI == 0 {
		c.BaseCPI = 0.5
	}
	if c.DataOverlap == 0 {
		c.DataOverlap = 0.7
	}
	if c.FetchBubble == 0 {
		c.FetchBubble = 2.6
	}
	if c.MigrationBaseCycles == 0 {
		c.MigrationBaseCycles = 100
	}
	if c.ContextBytes == 0 {
		c.ContextBytes = 256
	}
	return c
}

// Timing computes cycle costs from the config.
type Timing struct {
	cfg Config
}

// NewTiming builds a timing model.
func NewTiming(cfg Config) Timing { return Timing{cfg: cfg.WithDefaults()} }

// Config returns the configuration with defaults applied.
func (t Timing) Config() Config { return t.cfg }

// InstrCycles returns the cycle cost of one instruction given the added
// latency of its instruction fetch miss and data miss (either may be zero
// for hits; hit latencies are considered pipelined into BaseCPI). The
// computation is branchless on purpose — hit/miss patterns are data-
// dependent and sit in the simulator's innermost loop; a zero latency
// contributes an exact +0.0, so the result is bit-identical to the guarded
// form.
func (t Timing) InstrCycles(imissLat, dmissLat int) float64 {
	c := t.cfg.BaseCPI + float64(imissLat)*t.cfg.FetchBubble
	return c + float64(dmissLat)*(1-t.cfg.DataOverlap)
}

// MigrationCycles returns the latency of migrating a thread whose context
// is staged through the L2 (Section 4.4): fixed drain/save cost plus
// writing and re-reading ContextBytes in blocks of blockBytes at l2Latency
// each, plus the NoC round trip.
func (t Timing) MigrationCycles(nocRoundTrip, l2Latency, blockBytes int) int {
	blocks := (t.cfg.ContextBytes + blockBytes - 1) / blockBytes
	return t.cfg.MigrationBaseCycles + 2*blocks*l2Latency + nocRoundTrip
}
