package cpu

import (
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.BaseCPI != 0.5 || cfg.DataOverlap != 0.7 || cfg.FetchBubble != 2.6 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.MigrationBaseCycles != 100 || cfg.ContextBytes != 256 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestInstrCyclesHit(t *testing.T) {
	tm := NewTiming(Config{})
	if got := tm.InstrCycles(0, 0); got != 0.5 {
		t.Fatalf("hit cost = %v, want BaseCPI", got)
	}
}

func TestInstrCyclesIMissFullyExposed(t *testing.T) {
	tm := NewTiming(Config{})
	got := tm.InstrCycles(20, 0)
	want := 0.5 + 20*2.6
	if got != want {
		t.Fatalf("imiss cost = %v, want %v", got, want)
	}
}

func TestInstrCyclesDMissMostlyHidden(t *testing.T) {
	tm := NewTiming(Config{})
	got := tm.InstrCycles(0, 100)
	want := 0.5 + 100*0.3
	if got-want > 1e-9 || want-got > 1e-9 {
		t.Fatalf("dmiss cost = %v, want %v", got, want)
	}
}

// The asymmetry the model exists for: an instruction miss of equal latency
// must cost more than a data miss.
func TestIMissCostsMoreThanDMiss(t *testing.T) {
	tm := NewTiming(Config{})
	for lat := 1; lat <= 200; lat *= 2 {
		if tm.InstrCycles(lat, 0) <= tm.InstrCycles(0, lat) {
			t.Fatalf("latency %d: imiss not more expensive than dmiss", lat)
		}
	}
}

func TestMigrationCycles(t *testing.T) {
	tm := NewTiming(Config{})
	// 256B context = 4 blocks of 64B: 2*4 L2 accesses + base + noc.
	got := tm.MigrationCycles(8, 16, 64)
	want := 100 + 2*4*16 + 8
	if got != want {
		t.Fatalf("migration cycles = %d, want %d", got, want)
	}
}

// Property: costs are monotone in both miss latencies.
func TestPropMonotone(t *testing.T) {
	tm := NewTiming(Config{})
	f := func(a, b uint8) bool {
		i1 := tm.InstrCycles(int(a), 0)
		i2 := tm.InstrCycles(int(a)+1, 0)
		d1 := tm.InstrCycles(0, int(b))
		d2 := tm.InstrCycles(0, int(b)+1)
		return i2 > i1 && d2 > d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
