// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each Figure*/Table* function is written in two
// phases: it first *declares* the simulations it needs as runner jobs, then
// formats result tables from the completed results. All simulation ordering
// lives in the job list, so table output is byte-identical for any worker
// count, and identical jobs shared between figures (the 32KB/32KB baseline
// machine, most prominently) simulate only once per runner pool.
// EXPERIMENTS.md records paper-reported values next to values measured from
// this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"slicc/internal/prefetch"
	"slicc/internal/runner"
	"slicc/internal/sim"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// Options scales the experiments. The zero value runs the full-size
// configuration serially; Quick shrinks workloads for fast smoke runs
// (tests, CI), and Pool/Ctx plug the experiment into a shared parallel
// engine.
type Options struct {
	// Quick shrinks thread counts and per-transaction work (~20x faster).
	Quick bool
	// Seed drives workload synthesis (default 1).
	Seed int64
	// Threads overrides the per-benchmark thread count (0 = default).
	Threads int
	// Scale overrides the per-transaction work multiplier (0 = default).
	Scale float64
	// TracePath, when set, replaces every benchmark with the recorded
	// trace container at this path: each figure's simulations replay the
	// trace instead of synthesizing workloads, so any externally captured
	// trace can be pushed through the paper's experiment grid. Benchmark
	// rows then all describe the same recorded workload (and dedup
	// collapses their simulations), which is the point: the benchmark axis
	// is replaced by the capture.
	TracePath string
	// Ctx cancels in-flight simulations (nil = run to completion).
	Ctx context.Context
	// Pool executes the declared jobs. nil uses a private single-worker
	// pool: serial execution, dedup only within the experiment.
	Pool *runner.Pool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Threads == 0 {
		if o.Quick {
			o.Threads = 40
		} else {
			o.Threads = 160
		}
	}
	if o.Scale == 0 {
		if o.Quick {
			o.Scale = 0.35
		} else {
			o.Scale = 1
		}
	}
	return o
}

// workloadCfg declares the benchmark at the options' size. MapReduce keeps
// its 300 tasks in full runs (the paper's configuration). With TracePath
// set, every benchmark resolves to the recorded trace instead.
func (o Options) workloadCfg(kind workload.Kind) workload.Config {
	if o.TracePath != "" {
		return workload.Config{TracePath: o.TracePath}
	}
	threads := o.Threads
	if kind == workload.MapReduce && !o.Quick {
		threads = 300
	}
	if kind == workload.MapReduce && o.Quick {
		threads = 80
	}
	return workload.Config{Kind: kind, Threads: threads, Seed: o.Seed, Scale: o.Scale}
}

// run executes the declared jobs on the options' pool (or a private serial
// one) and returns results in declaration order.
func (o Options) run(jobs []runner.Job) ([]runner.Result, error) {
	pool := o.Pool
	if pool == nil {
		pool = runner.New(runner.Options{Workers: 1})
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return pool.Run(ctx, jobs)
}

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// --- shared job declaration helpers -----------------------------------------

// defaultMachine returns the Table 2 baseline machine configuration.
func defaultMachine() sim.Config {
	return sim.Config{Cores: 16}
}

// baselineJob declares a baseline-scheduler simulation.
func baselineJob(w workload.Config, m sim.Config) runner.Job {
	return runner.Job{Workload: w, Machine: m, Policy: runner.PolicySpec{Kind: runner.Baseline}}
}

// sliccJob declares a SLICC simulation (the config's Variant selects
// oblivious/Pp/SW).
func sliccJob(w workload.Config, m sim.Config, scfg slicc.Config) runner.Job {
	return runner.Job{Workload: w, Machine: m, Policy: runner.PolicySpec{Kind: runner.SLICC, SLICC: scfg}}
}

// policyJob declares a simulation under any declarative policy kind.
func policyJob(w workload.Config, m sim.Config, kind runner.PolicyKind) runner.Job {
	return runner.Job{Workload: w, Machine: m, Policy: runner.PolicySpec{Kind: kind}}
}

// pifMachine is the paper's PIF upper bound: a 512KB L1-I retaining the
// 32KB cache's 3-cycle latency (Section 5.6).
func pifMachine() sim.Config {
	cfg := defaultMachine()
	cfg.L1I = prefetch.PIFUpperBoundL1I(cfg.L1I)
	return cfg
}

func f(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
