// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each Figure*/Table* function runs the necessary
// simulations and returns formatted result tables whose rows correspond to
// the bars/series the paper plots. EXPERIMENTS.md records paper-reported
// values next to values measured from this package.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"slicc/internal/prefetch"
	"slicc/internal/sched"
	"slicc/internal/sim"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// Options scales the experiments. The zero value runs the full-size
// configuration; Quick shrinks workloads for fast smoke runs (tests, CI).
type Options struct {
	// Quick shrinks thread counts and per-transaction work (~20x faster).
	Quick bool
	// Seed drives workload synthesis (default 1).
	Seed int64
	// Threads overrides the per-benchmark thread count (0 = default).
	Threads int
	// Scale overrides the per-transaction work multiplier (0 = default).
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Threads == 0 {
		if o.Quick {
			o.Threads = 40
		} else {
			o.Threads = 160
		}
	}
	if o.Scale == 0 {
		if o.Quick {
			o.Scale = 0.35
		} else {
			o.Scale = 1
		}
	}
	return o
}

// workloadFor synthesizes the benchmark at the options' size. MapReduce
// keeps its 300 tasks in full runs (the paper's configuration).
func (o Options) workloadFor(kind workload.Kind) *workload.Workload {
	threads := o.Threads
	if kind == workload.MapReduce && !o.Quick {
		threads = 300
	}
	if kind == workload.MapReduce && o.Quick {
		threads = 80
	}
	return workload.New(workload.Config{Kind: kind, Threads: threads, Seed: o.Seed, Scale: o.Scale})
}

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// --- shared run helpers ------------------------------------------------------

// defaultMachine returns the Table 2 baseline machine configuration.
func defaultMachine() sim.Config {
	return sim.Config{Cores: 16}
}

func runBaseline(w *workload.Workload, cfg sim.Config) sim.Result {
	return sim.New(cfg, sched.NewBaseline(), nil, w.Threads()).Run()
}

func runSLICC(w *workload.Workload, cfg sim.Config, scfg slicc.Config) sim.Result {
	return sim.New(cfg, slicc.New(scfg), nil, w.Threads()).Run()
}

// pifMachine is the paper's PIF upper bound: a 512KB L1-I retaining the
// 32KB cache's 3-cycle latency (Section 5.6).
func pifMachine() sim.Config {
	cfg := defaultMachine()
	cfg.L1I = prefetch.PIFUpperBoundL1I(cfg.L1I)
	return cfg
}

func f(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
