package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"slicc/internal/runner"
)

var quick = Options{Quick: true, Seed: 7}

// skipShort skips the simulation-heavy shape tests under -short; the fast
// structural coverage (TestTableFormat, the static tables, and the tiny
// TestParallelDeterminism) still runs.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-heavy experiment (run without -short)")
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func cell(t *testing.T, tab Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tab.Title, row, col)
	}
	return tab.Rows[row][col]
}

func toF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		Title:  "X",
		Note:   "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	out := buf.String()
	for _, want := range []string{"## X", "n\n", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// TestParallelDeterminism is the core guarantee of the two-phase rewrite:
// the formatted output of an experiment is byte-identical whether its jobs
// run serially or on many workers. Tiny workloads keep it fast enough for
// -short.
func TestParallelDeterminism(t *testing.T) {
	tiny := Options{Quick: true, Threads: 8, Scale: 0.08, Seed: 3}
	render := func(workers int) string {
		opt := tiny
		opt.Pool = runner.New(runner.Options{Workers: workers})
		tab, err := Figure8(opt)
		check(t, err)
		var buf bytes.Buffer
		tab.Format(&buf)
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("Figure8 output differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Figure 8") {
		t.Fatalf("unexpected output:\n%s", serial)
	}
}

// TestSharedPoolDedup checks that experiments sharing one pool dedup their
// common simulations (Figure 10 and Figure 11 both measure the baseline
// machine and the three SLICC variants on every workload).
func TestSharedPoolDedup(t *testing.T) {
	skipShort(t)
	opt := Options{Quick: true, Threads: 8, Scale: 0.08, Seed: 3}
	opt.Pool = runner.New(runner.Options{Workers: 4})
	_, err := Figure10(opt)
	check(t, err)
	before := opt.Pool.Stats()
	_, err = Figure11(opt)
	check(t, err)
	after := opt.Pool.Stats()
	// Figure 11 re-declares 4 baseline + 12 SLICC jobs Figure 10 already ran.
	if gained := after.DedupHits - before.DedupHits; gained < 16 {
		t.Fatalf("cross-experiment dedup hits = %d, want >= 16", gained)
	}
}

func TestFigure1Shape(t *testing.T) {
	skipShort(t)
	tables, err := Figure1(quick)
	check(t, err)
	if len(tables) != 3 {
		t.Fatalf("Figure1 returned %d tables", len(tables))
	}
	tpcc := tables[0]
	if len(tpcc.Rows) != 11 {
		t.Fatalf("Figure1 TPC-C has %d rows, want 11", len(tpcc.Rows))
	}
	// At quick size, runs are too short for the 3C shares to converge
	// (compulsory is inflated); assert only the monotone trend here. The
	// full-shape assertions live in TestFigure1FullShape.
	if m512 := toF(t, cell(t, tpcc, 5, 2)); m512 >= toF(t, cell(t, tpcc, 0, 2)) {
		t.Errorf("512KB I-MPKI %f not below 32KB", m512)
	}
	// D-MPKI must be essentially insensitive to L1-D growth (compulsory
	// dominated): compare 32KB (row 0) with the largest L1-D (last row).
	d32, d512 := toF(t, cell(t, tpcc, 0, 6)), toF(t, cell(t, tpcc, 10, 6))
	if d512 < 0.5*d32 {
		t.Errorf("D-MPKI dropped from %f to %f with larger L1-D; should be compulsory-bound", d32, d512)
	}
}

// TestFigure1FullShape verifies the Section 2 claims (capacity-dominated
// instruction misses, compulsory-dominated data misses) at a size where the
// shares converge. Skipped under -short.
func TestFigure1FullShape(t *testing.T) {
	skipShort(t)
	tables, err := Figure1(Options{Threads: 64, Scale: 1, Seed: 7})
	check(t, err)
	tpcc := tables[0]
	iCap, iComp := toF(t, cell(t, tpcc, 0, 4)), toF(t, cell(t, tpcc, 0, 3))
	if iCap <= iComp {
		t.Errorf("I capacity (%f) not dominating compulsory (%f)", iCap, iComp)
	}
	dComp, dCap := toF(t, cell(t, tpcc, 0, 7)), toF(t, cell(t, tpcc, 0, 8))
	if dComp <= dCap {
		t.Errorf("D compulsory (%f) not dominating capacity (%f)", dComp, dCap)
	}
	if m512 := toF(t, cell(t, tpcc, 5, 2)); m512 > toF(t, cell(t, tpcc, 0, 2))/3 {
		t.Errorf("512KB I-MPKI %f not well below 32KB", m512)
	}
}

func TestFigure2Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure2(quick)
	check(t, err)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// TPC-C LRU MPKI should be in the thrashing range and the best policy
	// within a modest improvement (paper: ~8%).
	lru := toF(t, cell(t, tab, 0, 1))
	if lru < 20 || lru > 55 {
		t.Errorf("TPC-C LRU I-MPKI %f out of range", lru)
	}
	imp := toF(t, cell(t, tab, 0, 8))
	if imp < 0 || imp > 30 {
		t.Errorf("best-policy improvement %f%% implausible", imp)
	}
}

func TestFigure3Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure3(quick)
	check(t, err)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 0; i < 4; i += 2 {
		global := toF(t, cell(t, tab, i, 4))
		perType := toF(t, cell(t, tab, i+1, 4))
		if perType < global {
			t.Errorf("row %d: per-type 'most' (%f) below global (%f)", i, perType, global)
		}
		if perType < 80 {
			t.Errorf("row %d: per-type 'most' only %f%%; same-type threads should share nearly all code", i, perType)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure7(quick)
	check(t, err)
	// 2 workloads x (1 base + 2x3 grid) rows.
	if len(tab.Rows) != 2*(1+6) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every SLICC configuration must reduce I-MPKI versus its base row.
	base := toF(t, cell(t, tab, 0, 3))
	for i := 1; i <= 6; i++ {
		if got := toF(t, cell(t, tab, i, 3)); got >= base {
			t.Errorf("fill-up/matched row %d: I-MPKI %f not below base %f", i, got, base)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure8(quick)
	check(t, err)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Migrations must decrease as dilution_t grows.
	first, _ := strconv.Atoi(cell(t, tab, 0, 4))
	last, _ := strconv.Atoi(cell(t, tab, 3, 4))
	if last > first {
		t.Errorf("migrations grew with dilution_t: %d -> %d", first, last)
	}
}

func TestFigure9Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure9(quick)
	check(t, err)
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Accuracy must be high and non-decreasing in filter size per workload.
	for w := 0; w < 2; w++ {
		lo := toF(t, cell(t, tab, w*5, 2))
		hi := toF(t, cell(t, tab, w*5+4, 2))
		if hi < lo {
			t.Errorf("workload %d: accuracy decreased with size (%f -> %f)", w, lo, hi)
		}
		if lo < 90 {
			t.Errorf("workload %d: 512-bit accuracy %f%% too low", w, lo)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure10(quick)
	check(t, err)
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For each OLTP workload, SLICC-SW's I-MPKI must be below base.
	for w := 0; w < 3; w++ {
		base := toF(t, cell(t, tab, w*4, 2))
		sw := toF(t, cell(t, tab, w*4+3, 2))
		if sw >= base {
			t.Errorf("workload row %d: SLICC-SW I-MPKI %f not below base %f", w, sw, base)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	skipShort(t)
	tab, err := Figure11(quick)
	check(t, err)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for w := 0; w < 3; w++ { // the three OLTP rows
		sw := toF(t, cell(t, tab, w, 5))
		ob := toF(t, cell(t, tab, w, 3))
		if sw < 1.05 {
			t.Errorf("row %d: SLICC-SW speedup %f too small", w, sw)
		}
		if sw < ob-0.1 {
			// A small inversion is tolerated at quick size; full-size runs
			// keep SW ahead (see EXPERIMENTS.md).
			t.Errorf("row %d: SLICC-SW (%f) far worse than oblivious (%f)", w, sw, ob)
		}
	}
	// MapReduce (row 3) must be essentially unaffected by SLICC.
	if mr := toF(t, cell(t, tab, 3, 5)); mr < 0.93 {
		t.Errorf("SLICC-SW slowed MapReduce to %f", mr)
	}
}

func TestBPKIShape(t *testing.T) {
	skipShort(t)
	tab, err := BPKI(quick)
	check(t, err)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		ob := toF(t, cell(t, tab, i, 1))
		sw := toF(t, cell(t, tab, i, 3))
		if ob <= 0 {
			t.Errorf("row %d: oblivious BPKI not positive", i)
		}
		if sw > 10 {
			t.Errorf("row %d: SW BPKI %f implausibly high", i, sw)
		}
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if cell(t, tab, 0, 0) != "TPC-C-1" || cell(t, tab, 3, 0) != "MapReduce" {
		t.Fatal("workload names wrong")
	}
}

func TestTable2(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable3(t *testing.T) {
	tab := Table3()
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "7728" || last[2] != "966" {
		t.Fatalf("grand total row = %v, want 7728 bits / 966 bytes", last)
	}
}

func TestTLBEffectsShape(t *testing.T) {
	skipShort(t)
	tab, err := TLBEffects(quick)
	check(t, err)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// D-TLB MPKI must rise (or at least not fall much) under migration and
	// I-TLB must stay in the same ballpark as the baseline.
	for w := 0; w < 2; w++ {
		baseD := toF(t, cell(t, tab, w*3, 3))
		swD := toF(t, cell(t, tab, w*3+2, 3))
		if swD < baseD*0.9 {
			t.Errorf("workload %d: D-TLB MPKI fell from %f to %f under SLICC-SW", w, baseD, swD)
		}
	}
}

func TestRelatedWorkShape(t *testing.T) {
	skipShort(t)
	tab, err := RelatedWork(quick)
	check(t, err)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for w := 0; w < 2; w++ {
		base := toF(t, cell(t, tab, w*4, 2))
		steps := toF(t, cell(t, tab, w*4+1, 2))
		csp := toF(t, cell(t, tab, w*4+2, 2))
		sw := toF(t, cell(t, tab, w*4+3, 2))
		if steps >= base {
			t.Errorf("workload %d: STEPS I-MPKI %f not below base %f", w, steps, base)
		}
		if sw >= base {
			t.Errorf("workload %d: SLICC-SW I-MPKI %f not below base %f", w, sw, base)
		}
		// CSP only fragments system code: its reduction must be smaller
		// than SLICC-SW's (the paper's Section 6 criticism).
		if sw >= csp {
			t.Errorf("workload %d: SLICC-SW I-MPKI %f not below CSP %f", w, sw, csp)
		}
	}
}

func TestScalingShape(t *testing.T) {
	skipShort(t)
	tab, err := Scaling(quick)
	check(t, err)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// SLICC's I-MPKI should improve with more cores (a bigger collective).
	few := toF(t, cell(t, tab, 0, 3))
	many := toF(t, cell(t, tab, 3, 3))
	if many > few {
		t.Errorf("SW I-MPKI grew with cores: %f (4 cores) -> %f (32 cores)", few, many)
	}
}
