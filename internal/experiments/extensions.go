package experiments

import (
	"fmt"

	"slicc/internal/runner"
	"slicc/internal/sim"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// TLBEffects reproduces the Section 5.5 side observation: with thread
// migration, D-TLB misses rise by roughly 8-11% while I-TLB misses stay
// within ±0.5% of the baseline.
func TLBEffects(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}
	variants := []slicc.Variant{slicc.Oblivious, slicc.SW}

	tlbMachine := defaultMachine()
	tlbMachine.EnableTLB = true
	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs, baselineJob(w, tlbMachine))
		for _, variant := range variants {
			jobs = append(jobs, sliccJob(w, tlbMachine, slicc.DefaultConfig(variant)))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Section 5.5 — TLB effects of migration (64-entry I/D TLBs)",
		Note:   "Migration re-walks data pages on the destination core; instruction pages are shared anyway.",
		Header: []string{"workload", "policy", "I-TLB MPKI", "D-TLB MPKI", "I-TLB vs base", "D-TLB vs base"},
	}
	group := 1 + len(variants)
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		table.Rows = append(table.Rows, []string{
			kind.String(), "Base", f3(base.ITLBMPKI()), f3(base.DTLBMPKI()), "-", "-"})
		for vi, variant := range variants {
			r := rs[ki*group+1+vi].Sim
			table.Rows = append(table.Rows, []string{
				kind.String(), variant.String(), f3(r.ITLBMPKI()), f3(r.DTLBMPKI()),
				pct(r.ITLBMPKI()/base.ITLBMPKI() - 1), pct(r.DTLBMPKI()/base.DTLBMPKI() - 1),
			})
		}
	}
	return table, nil
}

// RelatedWork compares SLICC's space-domain pipelining with the two
// migration/multiplexing systems the paper discusses in Section 6: STEPS
// (time-domain chunk sharing on one core) and CSP (migration for system
// code only).
func RelatedWork(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs,
			baselineJob(w, defaultMachine()),
			policyJob(w, defaultMachine(), runner.STEPS),
			policyJob(w, defaultMachine(), runner.CSP),
			sliccJob(w, defaultMachine(), slicc.DefaultConfig(slicc.SW)),
		)
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Related work (extension) — time-domain (STEPS) vs space-domain (SLICC) pipelining",
		Note:   "STEPS shares chunks by context switching on one core; SLICC spreads segments over many caches.",
		Header: []string{"workload", "policy", "I-MPKI", "D-MPKI", "switches", "migrations", "speedup"},
	}
	const group = 4
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		add := func(r sim.Result) {
			table.Rows = append(table.Rows, []string{
				kind.String(), r.Policy, f(r.IMPKI()), f(r.DMPKI()),
				fmt.Sprint(r.ContextSwitches), fmt.Sprint(r.Migrations),
				f3(r.SpeedupOver(base)),
			})
		}
		for j := 0; j < group; j++ {
			add(rs[ki*group+j].Sim)
		}
	}
	return table, nil
}

// scalingCores is the extension's core-count sweep.
var scalingCores = []int{4, 8, 16, 32}

// Scaling (extension) measures SLICC-SW's benefit as the core count grows:
// more cores mean more aggregate L1-I for the collective (the paper's
// Section 2 argument that footprints fit "the aggregate capacity of even
// small scale chip multiprocessors").
func Scaling(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1}

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		for _, cores := range scalingCores {
			cfg := defaultMachine()
			cfg.Cores = cores
			cfg.TorusWidth, cfg.TorusHeight = 0, 0 // re-derive for the core count
			jobs = append(jobs,
				baselineJob(w, cfg),
				sliccJob(w, cfg, slicc.DefaultConfig(slicc.SW)))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Scaling (extension) — SLICC-SW speedup vs core count",
		Note:   "Aggregate L1-I grows with cores; so does the collective's reach.",
		Header: []string{"workload", "cores", "base I-MPKI", "SW I-MPKI", "speedup"},
	}
	i := 0
	for _, kind := range kinds {
		for _, cores := range scalingCores {
			base, r := rs[i].Sim, rs[i+1].Sim
			i += 2
			table.Rows = append(table.Rows, []string{
				kind.String(), fmt.Sprint(cores), f(base.IMPKI()), f(r.IMPKI()),
				f3(r.SpeedupOver(base)),
			})
		}
	}
	return table, nil
}
