package experiments

import (
	"fmt"

	"slicc/internal/sched"
	"slicc/internal/sim"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// TLBEffects reproduces the Section 5.5 side observation: with thread
// migration, D-TLB misses rise by roughly 8-11% while I-TLB misses stay
// within ±0.5% of the baseline.
func TLBEffects(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Section 5.5 — TLB effects of migration (64-entry I/D TLBs)",
		Note:   "Migration re-walks data pages on the destination core; instruction pages are shared anyway.",
		Header: []string{"workload", "policy", "I-TLB MPKI", "D-TLB MPKI", "I-TLB vs base", "D-TLB vs base"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		cfg := defaultMachine()
		cfg.EnableTLB = true
		base := runBaseline(w, cfg)
		table.Rows = append(table.Rows, []string{
			w.Name, "Base", f3(base.ITLBMPKI()), f3(base.DTLBMPKI()), "-", "-"})
		for _, variant := range []slicc.Variant{slicc.Oblivious, slicc.SW} {
			r := runSLICC(w, cfg, slicc.DefaultConfig(variant))
			table.Rows = append(table.Rows, []string{
				w.Name, variant.String(), f3(r.ITLBMPKI()), f3(r.DTLBMPKI()),
				pct(r.ITLBMPKI()/base.ITLBMPKI() - 1), pct(r.DTLBMPKI()/base.DTLBMPKI() - 1),
			})
		}
	}
	return table
}

// RelatedWork compares SLICC's space-domain pipelining with the two
// migration/multiplexing systems the paper discusses in Section 6: STEPS
// (time-domain chunk sharing on one core) and CSP (migration for system
// code only).
func RelatedWork(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Related work (extension) — time-domain (STEPS) vs space-domain (SLICC) pipelining",
		Note:   "STEPS shares chunks by context switching on one core; SLICC spreads segments over many caches.",
		Header: []string{"workload", "policy", "I-MPKI", "D-MPKI", "switches", "migrations", "speedup"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		base := runBaseline(w, defaultMachine())
		add := func(r sim.Result) {
			table.Rows = append(table.Rows, []string{
				w.Name, r.Policy, f(r.IMPKI()), f(r.DMPKI()),
				fmt.Sprint(r.ContextSwitches), fmt.Sprint(r.Migrations),
				f3(r.SpeedupOver(base)),
			})
		}
		add(base)
		add(sim.New(defaultMachine(), sched.NewSTEPS(), nil, w.Threads()).Run())
		var ranges []sched.BlockRange
		for _, r := range w.SharedRanges() {
			ranges = append(ranges, sched.BlockRange{Lo: r[0], Hi: r[1]})
		}
		add(sim.New(defaultMachine(), sched.NewCSP(ranges), nil, w.Threads()).Run())
		add(runSLICC(w, defaultMachine(), slicc.DefaultConfig(slicc.SW)))
	}
	return table
}

// Scaling (extension) measures SLICC-SW's benefit as the core count grows:
// more cores mean more aggregate L1-I for the collective (the paper's
// Section 2 argument that footprints fit "the aggregate capacity of even
// small scale chip multiprocessors").
func Scaling(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Scaling (extension) — SLICC-SW speedup vs core count",
		Note:   "Aggregate L1-I grows with cores; so does the collective's reach.",
		Header: []string{"workload", "cores", "base I-MPKI", "SW I-MPKI", "speedup"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1} {
		w := opt.workloadFor(kind)
		for _, cores := range []int{4, 8, 16, 32} {
			cfg := defaultMachine()
			cfg.Cores = cores
			cfg.TorusWidth, cfg.TorusHeight = 0, 0 // re-derive for the core count
			base := runBaseline(w, cfg)
			r := runSLICC(w, cfg, slicc.DefaultConfig(slicc.SW))
			table.Rows = append(table.Rows, []string{
				w.Name, fmt.Sprint(cores), f(base.IMPKI()), f(r.IMPKI()),
				f3(r.SpeedupOver(base)),
			})
		}
	}
	return table
}
