package experiments

import (
	"fmt"

	"slicc/internal/bloom"
	"slicc/internal/cache"
	"slicc/internal/prefetch"
	"slicc/internal/sched"
	"slicc/internal/sim"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// cactiLatency approximates CACTI 6 access latencies (cycles at 2.5GHz) for
// L1 cache sizes, as the paper uses to scale Figure 1's speedups.
func cactiLatency(sizeKB int) int {
	switch {
	case sizeKB <= 16:
		return 2
	case sizeKB <= 32:
		return 3
	case sizeKB <= 64:
		return 4
	case sizeKB <= 128:
		return 5
	case sizeKB <= 256:
		return 6
	default:
		return 8
	}
}

// figure1Sizes is the paper's 16KB-512KB sweep.
var figure1Sizes = []int{16, 32, 64, 128, 256, 512}

// Figure1 reproduces the L1 miss breakdown and speedup vs cache size: for
// each workload, the L1-I size sweeps with L1-D fixed at 32KB, then vice
// versa. Misses are split compulsory/capacity/conflict and speedup is
// relative to the 32KB/32KB baseline with CACTI-scaled latencies.
func Figure1(opt Options) []Table {
	opt = opt.withDefaults()
	var tables []Table
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE, workload.MapReduce} {
		w := opt.workloadFor(kind)
		var baseCycles float64
		table := Table{
			Title:  fmt.Sprintf("Figure 1 — %s: L1 MPKI breakdown and speedup vs cache size", w.Name),
			Header: []string{"sweep", "KB", "I-MPKI", "I-comp", "I-cap", "I-conf", "D-MPKI", "D-comp", "D-cap", "D-conf", "speedup"},
		}
		run := func(sweep string, ikb, dkb int) {
			cfg := defaultMachine()
			cfg.L1I = cache.Config{SizeBytes: ikb * 1024, HitLatency: cactiLatency(ikb), Classify: true}
			cfg.L1D = cache.Config{SizeBytes: dkb * 1024, HitLatency: cactiLatency(dkb), Classify: true}
			r := runBaseline(w, cfg)
			if sweep == "L1-I" && ikb == 32 {
				baseCycles = r.Cycles
			}
			speedup := "-"
			if baseCycles > 0 {
				speedup = f3(baseCycles / r.Cycles)
			}
			ki := float64(r.Instructions) / 1000
			table.Rows = append(table.Rows, []string{
				sweep, fmt.Sprint(ikb*boolToInt(sweep == "L1-I") + dkb*boolToInt(sweep == "L1-D")),
				f(r.IMPKI()), f(float64(r.ICompulsory) / ki), f(float64(r.ICapacity) / ki), f(float64(r.IConflict) / ki),
				f(r.DMPKI()), f(float64(r.DCompulsory) / ki), f(float64(r.DCapacity) / ki), f(float64(r.DConflict) / ki),
				speedup,
			})
		}
		// Establish the 32KB/32KB baseline first so every row has a speedup.
		run("L1-I", 32, 32)
		for _, kb := range figure1Sizes {
			if kb != 32 {
				run("L1-I", kb, 32)
			}
		}
		for _, kb := range figure1Sizes {
			if kb != 32 {
				run("L1-D", 32, kb)
			}
		}
		table.Note = "Capacity misses dominate instructions; compulsory dominates data (Section 2.1.1)."
		tables = append(tables, table)
	}
	return tables
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Figure2 reproduces the replacement-policy comparison: I-MPKI at 32KB for
// LRU, LIP, BIP, DIP, SRRIP, BRRIP and DRRIP.
func Figure2(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 2 — I-MPKI with different cache replacement policies (32KB L1-I)",
		Note:   "Best non-LRU policies reduce misses by only a few percent (the paper reports 8% for BRRIP/DRRIP).",
		Header: []string{"workload", "LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP", "best vs LRU"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE, workload.MapReduce} {
		w := opt.workloadFor(kind)
		row := []string{w.Name}
		var lru, best float64
		for _, policy := range cache.Kinds() {
			cfg := defaultMachine()
			cfg.L1I.Policy = policy
			r := runBaseline(w, cfg)
			m := r.IMPKI()
			if policy == cache.LRU {
				lru, best = m, m
			} else if m < best {
				best = m
			}
			row = append(row, f(m))
		}
		row = append(row, pct(1-best/lru))
		table.Rows = append(table.Rows, row)
	}
	return table
}

// Figure3 reproduces the instruction-block reuse breakdown: the share of
// instruction accesses to blocks touched by a single thread, few (<=60%)
// threads, or most threads — globally and judged within each transaction
// type.
func Figure3(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 3 — instruction accesses by block reuse class",
		Note:   "Per-type sharing approaches 100% 'most': same-type transactions run nearly identical code.",
		Header: []string{"workload", "view", "single", "few", "most"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		cfg := defaultMachine()
		cfg.TrackReuse = true
		m := sim.New(cfg, slicc.New(slicc.DefaultConfig(slicc.SW)), nil, w.Threads())
		m.Run()
		g := m.Reuse().Global()
		p := m.Reuse().PerType()
		table.Rows = append(table.Rows,
			[]string{w.Name, "Global", pct(g.Single), pct(g.Few), pct(g.Most)},
			[]string{w.Name, "Per Transaction", pct(p.Single), pct(p.Few), pct(p.Most)})
	}
	return table
}

// figure7FillUps and figure7Matched are the paper's threshold grids.
var (
	figure7FillUps = []int{128, 256, 384, 512}
	figure7Matched = []int{2, 4, 6, 8, 10}
)

// Figure7 explores fill-up_t x matched_t with dilution_t=0 and idealized
// (exact, uncharged) remote tag search, exactly as Section 5.2 does.
func Figure7(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 7 — MPKI and speedup vs fill-up_t and matched_t (dilution_t=0, ideal search)",
		Note:   "The paper finds little sensitivity to fill-up_t and best performance at matched_t=4.",
		Header: []string{"workload", "fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"},
	}
	fillUps, matched := figure7FillUps, figure7Matched
	if opt.Quick {
		fillUps, matched = []int{128, 256}, []int{2, 4, 8}
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		base := runBaseline(w, defaultMachine())
		table.Rows = append(table.Rows, []string{w.Name, "Base", "-", f(base.IMPKI()), f(base.DMPKI()), "1.000"})
		for _, fu := range fillUps {
			for _, mt := range matched {
				cfg := slicc.Config{
					Variant:     slicc.SW,
					FillUpT:     fu,
					MatchedT:    mt,
					DilutionT:   0,
					ExactSearch: true,
				}.WithDefaults()
				r := runSLICC(w, defaultMachine(), cfg)
				table.Rows = append(table.Rows, []string{
					w.Name, fmt.Sprint(fu), fmt.Sprint(mt),
					f(r.IMPKI()), f(r.DMPKI()), f3(r.SpeedupOver(base)),
				})
			}
		}
	}
	return table
}

// Figure8 sweeps dilution_t with fill-up_t=256 and matched_t=4.
func Figure8(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 8 — MPKI and speedup vs dilution_t (fill-up_t=256, matched_t=4)",
		Note:   "Moderate dilution thresholds balance migration overhead against I-MPKI; very large values choke migration.",
		Header: []string{"workload", "dilution_t", "I-MPKI", "D-MPKI", "migrations", "speedup"},
	}
	dilutions := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if opt.Quick {
		dilutions = []int{2, 10, 20, 30}
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		base := runBaseline(w, defaultMachine())
		for _, dil := range dilutions {
			cfg := slicc.Config{Variant: slicc.SW, DilutionT: dil, CountSearchBroadcasts: true}.WithDefaults()
			r := runSLICC(w, defaultMachine(), cfg)
			table.Rows = append(table.Rows, []string{
				w.Name, fmt.Sprint(dil),
				f(r.IMPKI()), f(r.DMPKI()), fmt.Sprint(r.Migrations), f3(r.SpeedupOver(base)),
			})
		}
	}
	return table
}

// figure9Bits is the paper's 512..8192-bit filter sweep.
var figure9Bits = []int{512, 1024, 2048, 4096, 8192}

// Figure9 measures partial-address bloom filter accuracy: for every L1-I
// access of a baseline replay, the filter's answer is compared with the
// cache's actual hit/miss.
func Figure9(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 9 — partial-address bloom filter accuracy vs size (32KB L1-I)",
		Note:   "The 2K-bit filter reaches ~99% agreement, the configuration used everywhere else.",
		Header: []string{"workload", "bits", "accuracy"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		for _, bits := range figure9Bits {
			c := cache.New(cache.Config{SizeBytes: 32 * 1024})
			filt := bloom.New(bloom.Config{Bits: bits})
			c.OnInsert = filt.Insert
			c.OnEvict = filt.Remove
			var tr bloom.AccuracyTracker
			// Replay a sample of threads through one cache+filter pair.
			threads := w.Threads()
			n := len(threads)
			if n > 8 {
				n = 8
			}
			for _, th := range threads[:n] {
				src := th.New()
				for {
					op, ok := src.Next()
					if !ok {
						break
					}
					filterHit := filt.Contains(c.BlockAddr(op.PC))
					res := c.Access(op.PC, false)
					tr.Record(filterHit, res.Hit)
				}
			}
			table.Rows = append(table.Rows, []string{w.Name, fmt.Sprint(bits), pct(tr.Accuracy())})
		}
	}
	return table
}

// Figure10 reports L1 I- and D-MPKI for the baseline and all three SLICC
// variants across the four workloads.
func Figure10(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 10 — L1 I-MPKI and D-MPKI per policy",
		Note:   "SLICC-SW cuts instruction misses most; data misses rise only slightly. MapReduce is unaffected.",
		Header: []string{"workload", "policy", "I-MPKI", "D-MPKI", "I vs base", "D vs base", "migrations"},
	}
	for _, kind := range workload.Kinds() {
		w := opt.workloadFor(kind)
		base := runBaseline(w, defaultMachine())
		table.Rows = append(table.Rows, []string{
			w.Name, "Base", f(base.IMPKI()), f(base.DMPKI()), "-", "-", "0"})
		for _, variant := range []slicc.Variant{slicc.Oblivious, slicc.Pp, slicc.SW} {
			r := runSLICC(w, defaultMachine(), slicc.DefaultConfig(variant))
			table.Rows = append(table.Rows, []string{
				w.Name, variant.String(), f(r.IMPKI()), f(r.DMPKI()),
				pct(r.IMPKI()/base.IMPKI() - 1), pct(r.DMPKI()/base.DMPKI() - 1),
				fmt.Sprint(r.Migrations),
			})
		}
	}
	return table
}

// Figure11 reports overall performance: baseline, next-line prefetcher,
// the three SLICC variants, the paper's PIF upper bound (512KB L1-I at 32KB
// latency), and — as an extension — a finite-storage PIF-style stream
// prefetcher ("PIF-40KB").
func Figure11(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Figure 11 — speedup over baseline",
		Note:   "PIF here is the paper's upper-bound model; PIF-40KB is a finite-history stream prefetcher at PIF's storage budget (extension).",
		Header: []string{"workload", "Base", "Next-Line", "SLICC", "SLICC-Pp", "SLICC-SW", "PIF", "PIF-40KB"},
	}
	for _, kind := range workload.Kinds() {
		w := opt.workloadFor(kind)
		base := runBaseline(w, defaultMachine())
		nl := sim.New(defaultMachine(), sched.NewBaseline(), prefetch.NewNextLine(), w.Threads()).Run()
		ob := runSLICC(w, defaultMachine(), slicc.DefaultConfig(slicc.Oblivious))
		pp := runSLICC(w, defaultMachine(), slicc.DefaultConfig(slicc.Pp))
		sw := runSLICC(w, defaultMachine(), slicc.DefaultConfig(slicc.SW))
		pif := runBaseline(w, pifMachine())
		stream := sim.New(defaultMachine(), sched.NewBaseline(), prefetch.NewStream(), w.Threads()).Run()
		table.Rows = append(table.Rows, []string{
			w.Name, "1.000",
			f3(nl.SpeedupOver(base)), f3(ob.SpeedupOver(base)), f3(pp.SpeedupOver(base)),
			f3(sw.SpeedupOver(base)), f3(pif.SpeedupOver(base)), f3(stream.SpeedupOver(base)),
		})
	}
	return table
}

// BPKI reports the Section 5.8 remote-segment-search broadcast rates.
func BPKI(opt Options) Table {
	opt = opt.withDefaults()
	table := Table{
		Title:  "Section 5.8 — search broadcasts per kilo-instruction (BPKI)",
		Note:   "Type-aware variants search less: teams keep threads near their segments.",
		Header: []string{"workload", "SLICC", "SLICC-Pp", "SLICC-SW", "instr/migration (SW)"},
	}
	for _, kind := range []workload.Kind{workload.TPCC1, workload.TPCE} {
		w := opt.workloadFor(kind)
		row := []string{w.Name}
		var swRes sim.Result
		for _, variant := range []slicc.Variant{slicc.Oblivious, slicc.Pp, slicc.SW} {
			r := runSLICC(w, defaultMachine(), slicc.DefaultConfig(variant))
			row = append(row, f3(r.BPKI()))
			if variant == slicc.SW {
				swRes = r
			}
		}
		row = append(row, fmt.Sprintf("%.0f", swRes.InstrPerMigration()))
		table.Rows = append(table.Rows, row)
	}
	return table
}
