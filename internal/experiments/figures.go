package experiments

import (
	"fmt"

	"slicc/internal/cache"
	"slicc/internal/runner"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// cactiLatency approximates CACTI 6 access latencies (cycles at 2.5GHz) for
// L1 cache sizes, as the paper uses to scale Figure 1's speedups.
func cactiLatency(sizeKB int) int {
	switch {
	case sizeKB <= 16:
		return 2
	case sizeKB <= 32:
		return 3
	case sizeKB <= 64:
		return 4
	case sizeKB <= 128:
		return 5
	case sizeKB <= 256:
		return 6
	default:
		return 8
	}
}

// figure1Sizes is the paper's 16KB-512KB sweep.
var figure1Sizes = []int{16, 32, 64, 128, 256, 512}

// Figure1 reproduces the L1 miss breakdown and speedup vs cache size: for
// each workload, the L1-I size sweeps with L1-D fixed at 32KB, then vice
// versa. Misses are split compulsory/capacity/conflict and speedup is
// relative to the 32KB/32KB baseline with CACTI-scaled latencies.
func Figure1(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE, workload.MapReduce}

	// Phase 1: declare one baseline job per (workload, sweep point). The
	// 32KB/32KB machine leads each group so every row has a speedup
	// reference.
	type rowSpec struct {
		sweep    string
		ikb, dkb int
	}
	specs := []rowSpec{{"L1-I", 32, 32}}
	for _, kb := range figure1Sizes {
		if kb != 32 {
			specs = append(specs, rowSpec{"L1-I", kb, 32})
		}
	}
	for _, kb := range figure1Sizes {
		if kb != 32 {
			specs = append(specs, rowSpec{"L1-D", 32, kb})
		}
	}
	var jobs []runner.Job
	for _, kind := range kinds {
		for _, s := range specs {
			cfg := defaultMachine()
			cfg.L1I = cache.Config{SizeBytes: s.ikb * 1024, HitLatency: cactiLatency(s.ikb), Classify: true}
			cfg.L1D = cache.Config{SizeBytes: s.dkb * 1024, HitLatency: cactiLatency(s.dkb), Classify: true}
			jobs = append(jobs, baselineJob(opt.workloadCfg(kind), cfg))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return nil, err
	}

	// Phase 2: format.
	var tables []Table
	for ki, kind := range kinds {
		table := Table{
			Title:  fmt.Sprintf("Figure 1 — %s: L1 MPKI breakdown and speedup vs cache size", kind),
			Note:   "Capacity misses dominate instructions; compulsory dominates data (Section 2.1.1).",
			Header: []string{"sweep", "KB", "I-MPKI", "I-comp", "I-cap", "I-conf", "D-MPKI", "D-comp", "D-cap", "D-conf", "speedup"},
		}
		baseCycles := rs[ki*len(specs)].Sim.Cycles
		for si, s := range specs {
			r := rs[ki*len(specs)+si].Sim
			speedup := "-"
			if baseCycles > 0 {
				speedup = f3(baseCycles / r.Cycles)
			}
			ki2 := float64(r.Instructions) / 1000
			kb := s.ikb
			if s.sweep == "L1-D" {
				kb = s.dkb
			}
			table.Rows = append(table.Rows, []string{
				s.sweep, fmt.Sprint(kb),
				f(r.IMPKI()), f(float64(r.ICompulsory) / ki2), f(float64(r.ICapacity) / ki2), f(float64(r.IConflict) / ki2),
				f(r.DMPKI()), f(float64(r.DCompulsory) / ki2), f(float64(r.DCapacity) / ki2), f(float64(r.DConflict) / ki2),
				speedup,
			})
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// Figure2 reproduces the replacement-policy comparison: I-MPKI at 32KB for
// LRU, LIP, BIP, DIP, SRRIP, BRRIP and DRRIP.
func Figure2(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE, workload.MapReduce}
	policies := cache.Kinds()

	var jobs []runner.Job
	for _, kind := range kinds {
		for _, policy := range policies {
			cfg := defaultMachine()
			cfg.L1I.Policy = policy
			jobs = append(jobs, baselineJob(opt.workloadCfg(kind), cfg))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 2 — I-MPKI with different cache replacement policies (32KB L1-I)",
		Note:   "Best non-LRU policies reduce misses by only a few percent (the paper reports 8% for BRRIP/DRRIP).",
		Header: []string{"workload", "LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP", "best vs LRU"},
	}
	for ki, kind := range kinds {
		row := []string{kind.String()}
		var lru, best float64
		for pi, policy := range policies {
			m := rs[ki*len(policies)+pi].Sim.IMPKI()
			if policy == cache.LRU {
				lru, best = m, m
			} else if m < best {
				best = m
			}
			row = append(row, f(m))
		}
		row = append(row, pct(1-best/lru))
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// Figure3 reproduces the instruction-block reuse breakdown: the share of
// instruction accesses to blocks touched by a single thread, few (<=60%)
// threads, or most threads — globally and judged within each transaction
// type.
func Figure3(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}

	var jobs []runner.Job
	for _, kind := range kinds {
		cfg := defaultMachine()
		cfg.TrackReuse = true
		jobs = append(jobs, sliccJob(opt.workloadCfg(kind), cfg, slicc.DefaultConfig(slicc.SW)))
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 3 — instruction accesses by block reuse class",
		Note:   "Per-type sharing approaches 100% 'most': same-type transactions run nearly identical code.",
		Header: []string{"workload", "view", "single", "few", "most"},
	}
	for ki, kind := range kinds {
		g, p := rs[ki].ReuseGlobal, rs[ki].ReusePerType
		table.Rows = append(table.Rows,
			[]string{kind.String(), "Global", pct(g.Single), pct(g.Few), pct(g.Most)},
			[]string{kind.String(), "Per Transaction", pct(p.Single), pct(p.Few), pct(p.Most)})
	}
	return table, nil
}

// figure7FillUps and figure7Matched are the paper's threshold grids.
var (
	figure7FillUps = []int{128, 256, 384, 512}
	figure7Matched = []int{2, 4, 6, 8, 10}
)

// Figure7 explores fill-up_t x matched_t with dilution_t=0 and idealized
// (exact, uncharged) remote tag search, exactly as Section 5.2 does.
func Figure7(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}
	fillUps, matched := figure7FillUps, figure7Matched
	if opt.Quick {
		fillUps, matched = []int{128, 256}, []int{2, 4, 8}
	}

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs, baselineJob(w, defaultMachine()))
		for _, fu := range fillUps {
			for _, mt := range matched {
				cfg := slicc.Config{
					Variant:     slicc.SW,
					FillUpT:     fu,
					MatchedT:    mt,
					DilutionT:   0,
					ExactSearch: true,
				}.WithDefaults()
				jobs = append(jobs, sliccJob(w, defaultMachine(), cfg))
			}
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 7 — MPKI and speedup vs fill-up_t and matched_t (dilution_t=0, ideal search)",
		Note:   "The paper finds little sensitivity to fill-up_t and best performance at matched_t=4.",
		Header: []string{"workload", "fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"},
	}
	group := 1 + len(fillUps)*len(matched)
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		table.Rows = append(table.Rows, []string{kind.String(), "Base", "-", f(base.IMPKI()), f(base.DMPKI()), "1.000"})
		i := ki*group + 1
		for _, fu := range fillUps {
			for _, mt := range matched {
				r := rs[i].Sim
				i++
				table.Rows = append(table.Rows, []string{
					kind.String(), fmt.Sprint(fu), fmt.Sprint(mt),
					f(r.IMPKI()), f(r.DMPKI()), f3(r.SpeedupOver(base)),
				})
			}
		}
	}
	return table, nil
}

// Figure8 sweeps dilution_t with fill-up_t=256 and matched_t=4.
func Figure8(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}
	dilutions := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if opt.Quick {
		dilutions = []int{2, 10, 20, 30}
	}

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs, baselineJob(w, defaultMachine()))
		for _, dil := range dilutions {
			cfg := slicc.Config{Variant: slicc.SW, DilutionT: dil, CountSearchBroadcasts: true}.WithDefaults()
			jobs = append(jobs, sliccJob(w, defaultMachine(), cfg))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 8 — MPKI and speedup vs dilution_t (fill-up_t=256, matched_t=4)",
		Note:   "Moderate dilution thresholds balance migration overhead against I-MPKI; very large values choke migration.",
		Header: []string{"workload", "dilution_t", "I-MPKI", "D-MPKI", "migrations", "speedup"},
	}
	group := 1 + len(dilutions)
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		for di, dil := range dilutions {
			r := rs[ki*group+1+di].Sim
			table.Rows = append(table.Rows, []string{
				kind.String(), fmt.Sprint(dil),
				f(r.IMPKI()), f(r.DMPKI()), fmt.Sprint(r.Migrations), f3(r.SpeedupOver(base)),
			})
		}
	}
	return table, nil
}

// figure9Bits is the paper's 512..8192-bit filter sweep.
var figure9Bits = []int{512, 1024, 2048, 4096, 8192}

// figure9SampleThreads bounds the replayed thread sample per filter size.
const figure9SampleThreads = 8

// Figure9 measures partial-address bloom filter accuracy: for every L1-I
// access of a baseline replay, the filter's answer is compared with the
// cache's actual hit/miss.
func Figure9(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}

	var jobs []runner.Job
	for _, kind := range kinds {
		for _, bits := range figure9Bits {
			jobs = append(jobs, runner.Job{
				Kind:          runner.KindBloomAccuracy,
				Workload:      opt.workloadCfg(kind),
				Cache:         cache.Config{SizeBytes: 32 * 1024},
				BloomBits:     bits,
				SampleThreads: figure9SampleThreads,
			})
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 9 — partial-address bloom filter accuracy vs size (32KB L1-I)",
		Note:   "The 2K-bit filter reaches ~99% agreement, the configuration used everywhere else.",
		Header: []string{"workload", "bits", "accuracy"},
	}
	i := 0
	for _, kind := range kinds {
		for _, bits := range figure9Bits {
			table.Rows = append(table.Rows, []string{kind.String(), fmt.Sprint(bits), pct(rs[i].BloomAccuracy)})
			i++
		}
	}
	return table, nil
}

// figure10Variants are the SLICC variants of Figures 10/11 in bar order.
var figure10Variants = []slicc.Variant{slicc.Oblivious, slicc.Pp, slicc.SW}

// Figure10 reports L1 I- and D-MPKI for the baseline and all three SLICC
// variants across the four workloads.
func Figure10(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := workload.Kinds()

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs, baselineJob(w, defaultMachine()))
		for _, variant := range figure10Variants {
			jobs = append(jobs, sliccJob(w, defaultMachine(), slicc.DefaultConfig(variant)))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 10 — L1 I-MPKI and D-MPKI per policy",
		Note:   "SLICC-SW cuts instruction misses most; data misses rise only slightly. MapReduce is unaffected.",
		Header: []string{"workload", "policy", "I-MPKI", "D-MPKI", "I vs base", "D vs base", "migrations"},
	}
	group := 1 + len(figure10Variants)
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		table.Rows = append(table.Rows, []string{
			kind.String(), "Base", f(base.IMPKI()), f(base.DMPKI()), "-", "-", "0"})
		for vi, variant := range figure10Variants {
			r := rs[ki*group+1+vi].Sim
			table.Rows = append(table.Rows, []string{
				kind.String(), variant.String(), f(r.IMPKI()), f(r.DMPKI()),
				pct(r.IMPKI()/base.IMPKI() - 1), pct(r.DMPKI()/base.DMPKI() - 1),
				fmt.Sprint(r.Migrations),
			})
		}
	}
	return table, nil
}

// Figure11 reports overall performance: baseline, next-line prefetcher,
// the three SLICC variants, the paper's PIF upper bound (512KB L1-I at 32KB
// latency), and — as an extension — a finite-storage PIF-style stream
// prefetcher ("PIF-40KB").
func Figure11(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := workload.Kinds()

	var jobs []runner.Job
	for _, kind := range kinds {
		w := opt.workloadCfg(kind)
		jobs = append(jobs,
			baselineJob(w, defaultMachine()),
			policyJob(w, defaultMachine(), runner.NextLine),
			sliccJob(w, defaultMachine(), slicc.DefaultConfig(slicc.Oblivious)),
			sliccJob(w, defaultMachine(), slicc.DefaultConfig(slicc.Pp)),
			sliccJob(w, defaultMachine(), slicc.DefaultConfig(slicc.SW)),
			baselineJob(w, pifMachine()),
			policyJob(w, defaultMachine(), runner.Stream),
		)
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Figure 11 — speedup over baseline",
		Note:   "PIF here is the paper's upper-bound model; PIF-40KB is a finite-history stream prefetcher at PIF's storage budget (extension).",
		Header: []string{"workload", "Base", "Next-Line", "SLICC", "SLICC-Pp", "SLICC-SW", "PIF", "PIF-40KB"},
	}
	const group = 7
	for ki, kind := range kinds {
		base := rs[ki*group].Sim
		row := []string{kind.String(), "1.000"}
		for j := 1; j < group; j++ {
			row = append(row, f3(rs[ki*group+j].Sim.SpeedupOver(base)))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// BPKI reports the Section 5.8 remote-segment-search broadcast rates.
func BPKI(opt Options) (Table, error) {
	opt = opt.withDefaults()
	kinds := []workload.Kind{workload.TPCC1, workload.TPCE}

	var jobs []runner.Job
	for _, kind := range kinds {
		for _, variant := range figure10Variants {
			jobs = append(jobs, sliccJob(opt.workloadCfg(kind), defaultMachine(), slicc.DefaultConfig(variant)))
		}
	}
	rs, err := opt.run(jobs)
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Title:  "Section 5.8 — search broadcasts per kilo-instruction (BPKI)",
		Note:   "Type-aware variants search less: teams keep threads near their segments.",
		Header: []string{"workload", "SLICC", "SLICC-Pp", "SLICC-SW", "instr/migration (SW)"},
	}
	group := len(figure10Variants)
	for ki, kind := range kinds {
		row := []string{kind.String()}
		for vi := range figure10Variants {
			row = append(row, f3(rs[ki*group+vi].Sim.BPKI()))
		}
		sw := rs[ki*group+group-1].Sim
		row = append(row, fmt.Sprintf("%.0f", sw.InstrPerMigration()))
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}
