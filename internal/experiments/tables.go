package experiments

import (
	"fmt"

	"slicc/internal/cpu"
	"slicc/internal/mem"
	"slicc/internal/slicc"
	"slicc/internal/workload"
)

// Table1 reproduces the workload parameter table.
func Table1() Table {
	t := Table{
		Title:  "Table 1 — workload parameters",
		Header: []string{"workload", "description", "modeled data footprint", "types", "tasks (paper)"},
	}
	rows := []struct {
		kind workload.Kind
		desc string
		db   string
		n    string
	}{
		{workload.TPCC1, "Wholesale supplier, 1 warehouse", "84 MB", "1K txns"},
		{workload.TPCC10, "Wholesale supplier, 10 warehouses", "1 GB", "1K txns"},
		{workload.TPCE, "Brokerage house, 1000 customers", "20 GB", "1K txns"},
		{workload.MapReduce, "Text analytics over Wikipedia articles", "12 GB", "300 tasks"},
	}
	for _, r := range rows {
		w := workload.New(workload.Config{Kind: r.kind, Threads: 1, Seed: 1})
		t.Rows = append(t.Rows, []string{
			w.Name, r.desc, r.db, fmt.Sprint(len(w.Types)), r.n,
		})
	}
	return t
}

// Table2 reproduces the system parameter table from the simulator's
// default configuration.
func Table2() Table {
	// WithDefaults so the displayed torus shape is the derived 4x4, not the
	// zero value.
	m := defaultMachine().WithDefaults()
	mm := mem.Config{}
	c := cpu.Config{}.WithDefaults()
	// Defaults applied by the respective packages.
	mcfg := memDefaults(mm)
	t := Table{
		Title:  "Table 2 — system parameters (modeled)",
		Header: []string{"component", "configuration"},
	}
	t.Rows = [][]string{
		{"Cores", fmt.Sprintf("%d out-of-order (modeled: base CPI %.2f, data-miss overlap %.0f%%, fetch-bubble x%.1f)", 16, c.BaseCPI, c.DataOverlap*100, c.FetchBubble)},
		{"Private L1", "32KB I + 32KB D per core, 64B blocks, 8-way, 3-cycle, MESI for L1-D"},
		{"L2 NUCA", fmt.Sprintf("shared %dMB (1MB/core), 16-way, %d banks, %d-cycle hit", mcfg.L2SizeBytes>>20, mcfg.Banks, mcfg.L2HitLatency)},
		{"Interconnect", fmt.Sprintf("%dx%d 2D torus, %d-cycle hop", m.TorusWidth, m.TorusHeight, 1)},
		{"Memory", fmt.Sprintf("flat %d-cycle latency (42ns at 2.5GHz)", mcfg.MemLatency)},
		{"Migration", fmt.Sprintf("%d-cycle base + context staged via L2 (%dB)", c.MigrationBaseCycles, c.ContextBytes)},
	}
	t.Note = "The paper's Zesto pipeline/DDR3 details are replaced by the calibrated model of internal/cpu (see DESIGN.md)."
	return t
}

// memDefaults surfaces the mem package defaults for display.
func memDefaults(cfg mem.Config) mem.Config {
	h := mem.New(cfg, nil)
	return h.Config()
}

// Table3 reproduces the hardware storage budget.
func Table3() Table {
	cost := slicc.HardwareCost(slicc.DefaultConfig(slicc.SW), 16)
	t := Table{
		Title:  "Table 3 — SLICC hardware storage cost (16 cores, matched_t=4)",
		Header: []string{"component", "bits", "bytes"},
	}
	row := func(name string, bits int) []string {
		return []string{name, fmt.Sprint(bits), fmt.Sprintf("%.0f", float64(bits)/8)}
	}
	t.Rows = [][]string{
		row("Missed-Tag Queue (MTQ)", cost.MTQ),
		row("Miss Shift-Vector (MSV)", cost.MSV),
		row("Cache signature (bloom)", cost.BloomSignature),
		row("Cache Monitor Unit total", cost.CacheMonitor),
		row("Thread queue (30 entries)", cost.ThreadQueue),
		row("Team management table (60 entries)", cost.TeamTable),
		row("Grand total", cost.Total),
	}
	t.Note = fmt.Sprintf("Grand total %d bytes vs PIF's ~40KB per core: %.1f%% relative overhead.",
		cost.TotalBytes(), 100*float64(cost.TotalBytes())/(40*1024))
	return t
}
