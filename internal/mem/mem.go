// Package mem models the levels below the private L1s: a shared, banked
// NUCA L2 (Table 2: 1MB per core, 16-way, 16 banks, 16-cycle hit latency)
// and a DDR3-like main memory modeled as a flat access latency (Table 2:
// 42ns, which at 2.5GHz is ~105 core cycles).
//
// The L2 is a real cache model (it filters misses and produces realistic
// L2-hit vs memory-hit latency mixes), banked by block address; NUCA-ness is
// charged as NoC hops from the requesting core to the bank's home node.
package mem

import (
	"slicc/internal/cache"
	"slicc/internal/noc"
)

// Config describes the shared memory hierarchy.
type Config struct {
	// L2SizeBytes is the aggregate shared L2 capacity (default 16MB: 1MB
	// per core on the 16-core baseline).
	L2SizeBytes int
	// L2Ways is the L2 associativity (default 16).
	L2Ways int
	// BlockBytes is the line size shared with the L1s (default 64).
	BlockBytes int
	// L2HitLatency is the bank access latency in cycles (default 16).
	L2HitLatency int
	// Banks is the number of L2 banks (default 16, one per node).
	Banks int
	// MemLatency is the flat main-memory latency in cycles (default 105,
	// i.e. 42ns at 2.5GHz).
	MemLatency int
}

func (c Config) withDefaults() Config {
	if c.L2SizeBytes == 0 {
		c.L2SizeBytes = 16 << 20
	}
	if c.L2Ways == 0 {
		c.L2Ways = 16
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	if c.L2HitLatency == 0 {
		c.L2HitLatency = 16
	}
	if c.Banks == 0 {
		c.Banks = 16
	}
	if c.MemLatency == 0 {
		c.MemLatency = 105
	}
	return c
}

// Stats aggregates hierarchy activity.
type Stats struct {
	L2Accesses uint64
	L2Hits     uint64
	L2Misses   uint64
	MemReads   uint64
}

// Hierarchy is the shared L2 + memory below all cores.
type Hierarchy struct {
	cfg   Config
	l2    *cache.Cache
	torus *noc.Torus
	stats Stats
}

// New builds the hierarchy. The torus is used only for NUCA distance; it may
// be shared with the rest of the machine.
func New(cfg Config, torus *noc.Torus) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{
		cfg:   cfg,
		torus: torus,
		l2: cache.New(cache.Config{
			SizeBytes:  cfg.L2SizeBytes,
			BlockBytes: cfg.BlockBytes,
			Ways:       cfg.L2Ways,
			Policy:     cache.LRU,
			HitLatency: cfg.L2HitLatency,
		}),
	}
	return h
}

// Config returns the configuration with defaults applied.
func (h *Hierarchy) Config() Config { return h.cfg }

// bankOf spreads blocks across banks; banks are homed on nodes round-robin.
func (h *Hierarchy) bankOf(block uint64) int {
	return int(block % uint64(h.cfg.Banks))
}

// HomeNode returns the node a block's bank lives on.
func (h *Hierarchy) HomeNode(block uint64) int {
	if h.torus == nil {
		return 0
	}
	return h.bankOf(block) % h.torus.Nodes()
}

// FetchLatency serves an L1 miss for the block containing addr issued by
// core. It returns the total added latency: NoC round trip to the home bank
// plus L2 hit latency, plus memory latency on an L2 miss. The L2 state is
// updated (miss fills).
func (h *Hierarchy) FetchLatency(core int, addr uint64) int {
	h.stats.L2Accesses++
	lat := 0
	if h.torus != nil {
		block := addr / uint64(h.cfg.BlockBytes)
		home := h.HomeNode(block)
		lat += h.torus.Latency(core, home) * 2 // request + response
	}
	res := h.l2.Access(addr, false)
	lat += h.cfg.L2HitLatency
	if res.Hit {
		h.stats.L2Hits++
		return lat
	}
	h.stats.L2Misses++
	h.stats.MemReads++
	return lat + h.cfg.MemLatency
}

// Contains probes the L2 without side effects.
func (h *Hierarchy) Contains(addr uint64) bool { return h.l2.Contains(addr) }

// Stats returns a copy of the hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// L2Stats exposes the underlying L2 cache statistics.
func (h *Hierarchy) L2Stats() cache.Stats { return h.l2.Stats() }

// ResetStats zeroes counters, preserving contents.
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.l2.ResetStats()
}
