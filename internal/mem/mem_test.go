package mem

import (
	"testing"
	"testing/quick"

	"slicc/internal/noc"
)

func TestColdFetchPaysMemoryLatency(t *testing.T) {
	h := New(Config{}, nil)
	lat := h.FetchLatency(0, 0x1000)
	want := h.cfg.L2HitLatency + h.cfg.MemLatency
	if lat != want {
		t.Fatalf("cold fetch latency = %d, want %d", lat, want)
	}
	st := h.Stats()
	if st.L2Misses != 1 || st.MemReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWarmFetchHitsL2(t *testing.T) {
	h := New(Config{}, nil)
	h.FetchLatency(0, 0x1000)
	lat := h.FetchLatency(0, 0x1000)
	if lat != h.cfg.L2HitLatency {
		t.Fatalf("warm fetch latency = %d, want %d", lat, h.cfg.L2HitLatency)
	}
	if h.Stats().L2Hits != 1 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestNUCADistanceCharged(t *testing.T) {
	torus := noc.New(4, 4, 1)
	h := New(Config{}, torus)
	// Find an address homed away from core 0 and verify the round trip is
	// charged on top of the L2 hit latency.
	addr := uint64(0)
	for ; h.HomeNode(addr/64) == 0; addr += 64 {
	}
	h.FetchLatency(0, addr) // warm
	lat := h.FetchLatency(0, addr)
	home := h.HomeNode(addr / 64)
	want := h.cfg.L2HitLatency + 2*torus.PeekLatency(0, home)
	if lat != want {
		t.Fatalf("NUCA fetch latency = %d, want %d", lat, want)
	}
}

func TestContains(t *testing.T) {
	h := New(Config{}, nil)
	if h.Contains(0x40) {
		t.Fatal("empty L2 contains block")
	}
	h.FetchLatency(0, 0x40)
	if !h.Contains(0x40) {
		t.Fatal("fetched block missing from L2")
	}
}

func TestResetStats(t *testing.T) {
	h := New(Config{}, nil)
	h.FetchLatency(0, 0)
	h.ResetStats()
	if h.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
	if !h.Contains(0) {
		t.Fatal("reset dropped contents")
	}
}

// Property: latency is always at least the L2 hit latency and at most
// L2 + memory + 2*diameter.
func TestPropLatencyBounds(t *testing.T) {
	torus := noc.New(4, 4, 1)
	h := New(Config{}, torus)
	f := func(core uint8, addr uint32) bool {
		c := int(core) % 16
		lat := h.FetchLatency(c, uint64(addr))
		min := h.cfg.L2HitLatency
		max := h.cfg.L2HitLatency + h.cfg.MemLatency + 2*torus.MaxDistance()
		return lat >= min && lat <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: bank homing is stable and within range.
func TestPropHomeNodeStable(t *testing.T) {
	torus := noc.New(4, 4, 1)
	h := New(Config{}, torus)
	f := func(block uint32) bool {
		n := h.HomeNode(uint64(block))
		return n >= 0 && n < torus.Nodes() && n == h.HomeNode(uint64(block))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
