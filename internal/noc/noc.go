// Package noc models the on-chip interconnect of the simulated machine: a
// 2D torus (4x4 for the paper's 16-core configuration, Table 2) with a fixed
// per-hop latency. The model is latency- and traffic-accounting only — the
// paper charges hop latency for cache/migration traffic and reports SLICC's
// search overhead as broadcasts per kilo-instruction (Section 5.8) — so no
// flit-level contention is simulated.
package noc

import "fmt"

// Torus is a width x height 2D torus.
//
// All distances are precomputed at construction into flat src x dst tables,
// so the per-message accessors on the simulator's hot path (Latency,
// PeekLatency, Distance, Broadcast) are array loads and counter updates —
// no modular wrap arithmetic per call. The tables cost O(nodes^2) ints,
// which for the paper's machines (16-64 nodes) is a few KB.
type Torus struct {
	width, height int
	hopLatency    int
	nodes         int
	// dist[a*nodes+b] is the hop count from a to b; lat is dist scaled by
	// hopLatency.
	dist []int
	lat  []int
	// bcastLat[src] is the worst-case broadcast latency from src (farthest
	// distance x hopLatency); bcastHops[src] is the total hops a broadcast
	// from src costs, the amount Broadcast accounts.
	bcastLat  []int
	bcastHops []uint64
	stats     Stats
}

// Stats counts interconnect traffic by message class.
type Stats struct {
	// Messages is the total point-to-point message count.
	Messages uint64
	// Hops is the total hop count across all messages.
	Hops uint64
	// Broadcasts counts broadcast operations (each reaching all other
	// nodes). SLICC's remote segment searches land here.
	Broadcasts uint64
	// SearchBroadcasts counts only SLICC tag-search broadcasts, the BPKI
	// numerator of Section 5.8.
	SearchBroadcasts uint64
}

// New builds a torus; hopLatency is in cycles (Table 2: 1).
func New(width, height, hopLatency int) *Torus {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("noc: invalid torus %dx%d", width, height))
	}
	if hopLatency < 0 {
		panic("noc: negative hop latency")
	}
	t := &Torus{width: width, height: height, hopLatency: hopLatency, nodes: width * height}
	n := t.nodes
	t.dist = make([]int, n*n)
	t.lat = make([]int, n*n)
	t.bcastLat = make([]int, n)
	t.bcastHops = make([]uint64, n)
	for a := 0; a < n; a++ {
		ax, ay := t.coord(a)
		max := 0
		var hops uint64
		for b := 0; b < n; b++ {
			bx, by := t.coord(b)
			d := wrapDist(ax, bx, width) + wrapDist(ay, by, height)
			t.dist[a*n+b] = d
			t.lat[a*n+b] = d * hopLatency
			if b != a {
				hops += uint64(d)
				if d > max {
					max = d
				}
			}
		}
		t.bcastLat[a] = max * hopLatency
		t.bcastHops[a] = hops
	}
	return t
}

// Nodes returns the node count.
func (t *Torus) Nodes() int { return t.nodes }

// coord maps a node index to torus coordinates row-major.
func (t *Torus) coord(node int) (x, y int) {
	return node % t.width, node / t.width
}

// Distance returns the minimal hop count between two nodes, using the
// wrap-around links in each dimension.
func (t *Torus) Distance(a, b int) int {
	if a < 0 || a >= t.nodes || b < 0 || b >= t.nodes {
		panic(fmt.Sprintf("noc: node out of range: %d,%d of %d", a, b, t.nodes))
	}
	return t.dist[a*t.nodes+b]
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Latency returns the cycle cost of a message from a to b and accounts it.
func (t *Torus) Latency(a, b int) int {
	d := t.Distance(a, b)
	t.stats.Messages++
	t.stats.Hops += uint64(d)
	return t.lat[a*t.nodes+b]
}

// PeekLatency returns the cycle cost without recording traffic (used for
// modeling decisions, e.g. choosing the nearest idle core).
func (t *Torus) PeekLatency(a, b int) int {
	if a < 0 || a >= t.nodes || b < 0 || b >= t.nodes {
		panic(fmt.Sprintf("noc: node out of range: %d,%d of %d", a, b, t.nodes))
	}
	return t.lat[a*t.nodes+b]
}

// Broadcast accounts a broadcast from src to all other nodes and returns the
// worst-case latency (distance to the farthest node), which is when the
// initiator can act on all replies. The per-node fan-out is accounted from
// the precomputed totals: one message per other node, their summed hop
// count, same numbers the explicit loop produced.
func (t *Torus) Broadcast(src int, search bool) int {
	if src < 0 || src >= t.nodes {
		panic(fmt.Sprintf("noc: node out of range: %d of %d", src, t.nodes))
	}
	t.stats.Broadcasts++
	if search {
		t.stats.SearchBroadcasts++
	}
	t.stats.Messages += uint64(t.nodes - 1)
	t.stats.Hops += t.bcastHops[src]
	return t.bcastLat[src]
}

// MaxDistance returns the torus diameter in hops.
func (t *Torus) MaxDistance() int {
	return t.width/2 + t.height/2
}

// Stats returns a copy of the accumulated traffic counters.
func (t *Torus) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *Torus) ResetStats() { t.stats = Stats{} }
