// Package noc models the on-chip interconnect of the simulated machine: a
// 2D torus (4x4 for the paper's 16-core configuration, Table 2) with a fixed
// per-hop latency. The model is latency- and traffic-accounting only — the
// paper charges hop latency for cache/migration traffic and reports SLICC's
// search overhead as broadcasts per kilo-instruction (Section 5.8) — so no
// flit-level contention is simulated.
package noc

import "fmt"

// Torus is a width x height 2D torus.
type Torus struct {
	width, height int
	hopLatency    int
	stats         Stats
}

// Stats counts interconnect traffic by message class.
type Stats struct {
	// Messages is the total point-to-point message count.
	Messages uint64
	// Hops is the total hop count across all messages.
	Hops uint64
	// Broadcasts counts broadcast operations (each reaching all other
	// nodes). SLICC's remote segment searches land here.
	Broadcasts uint64
	// SearchBroadcasts counts only SLICC tag-search broadcasts, the BPKI
	// numerator of Section 5.8.
	SearchBroadcasts uint64
}

// New builds a torus; hopLatency is in cycles (Table 2: 1).
func New(width, height, hopLatency int) *Torus {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("noc: invalid torus %dx%d", width, height))
	}
	if hopLatency < 0 {
		panic("noc: negative hop latency")
	}
	return &Torus{width: width, height: height, hopLatency: hopLatency}
}

// Nodes returns the node count.
func (t *Torus) Nodes() int { return t.width * t.height }

// coord maps a node index to torus coordinates row-major.
func (t *Torus) coord(node int) (x, y int) {
	return node % t.width, node / t.width
}

// Distance returns the minimal hop count between two nodes, using the
// wrap-around links in each dimension.
func (t *Torus) Distance(a, b int) int {
	if a < 0 || a >= t.Nodes() || b < 0 || b >= t.Nodes() {
		panic(fmt.Sprintf("noc: node out of range: %d,%d of %d", a, b, t.Nodes()))
	}
	ax, ay := t.coord(a)
	bx, by := t.coord(b)
	dx := wrapDist(ax, bx, t.width)
	dy := wrapDist(ay, by, t.height)
	return dx + dy
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Latency returns the cycle cost of a message from a to b and accounts it.
func (t *Torus) Latency(a, b int) int {
	d := t.Distance(a, b)
	t.stats.Messages++
	t.stats.Hops += uint64(d)
	return d * t.hopLatency
}

// PeekLatency returns the cycle cost without recording traffic (used for
// modeling decisions, e.g. choosing the nearest idle core).
func (t *Torus) PeekLatency(a, b int) int {
	return t.Distance(a, b) * t.hopLatency
}

// Broadcast accounts a broadcast from src to all other nodes and returns the
// worst-case latency (distance to the farthest node), which is when the
// initiator can act on all replies.
func (t *Torus) Broadcast(src int, search bool) int {
	t.stats.Broadcasts++
	if search {
		t.stats.SearchBroadcasts++
	}
	max := 0
	for n := 0; n < t.Nodes(); n++ {
		if n == src {
			continue
		}
		d := t.Distance(src, n)
		t.stats.Messages++
		t.stats.Hops += uint64(d)
		if d > max {
			max = d
		}
	}
	return max * t.hopLatency
}

// MaxDistance returns the torus diameter in hops.
func (t *Torus) MaxDistance() int {
	return t.width/2 + t.height/2
}

// Stats returns a copy of the accumulated traffic counters.
func (t *Torus) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *Torus) ResetStats() { t.stats = Stats{} }
