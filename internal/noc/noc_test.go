package noc

import (
	"testing"
	"testing/quick"
)

func TestDistanceBasics(t *testing.T) {
	tr := New(4, 4, 1)
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wrap in x: 0 -> 3 is one hop backwards
		{0, 12, 1}, // wrap in y
		{0, 5, 2},
		{0, 10, 4}, // diameter of 4x4 torus = 2+2
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := tr.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMaxDistance(t *testing.T) {
	if got := New(4, 4, 1).MaxDistance(); got != 4 {
		t.Fatalf("MaxDistance = %d, want 4", got)
	}
}

func TestLatencyScalesWithHopLatency(t *testing.T) {
	tr := New(4, 4, 3)
	if got := tr.Latency(0, 5); got != 6 {
		t.Fatalf("Latency(0,5) = %d, want 6", got)
	}
	st := tr.Stats()
	if st.Messages != 1 || st.Hops != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeekLatencyDoesNotAccount(t *testing.T) {
	tr := New(4, 4, 1)
	tr.PeekLatency(0, 5)
	if tr.Stats().Messages != 0 {
		t.Fatal("PeekLatency recorded traffic")
	}
}

func TestBroadcast(t *testing.T) {
	tr := New(4, 4, 1)
	lat := tr.Broadcast(0, true)
	if lat != tr.MaxDistance() {
		t.Fatalf("broadcast latency %d, want diameter %d", lat, tr.MaxDistance())
	}
	st := tr.Stats()
	if st.Broadcasts != 1 || st.SearchBroadcasts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Messages != 15 {
		t.Fatalf("broadcast sent %d messages, want 15", st.Messages)
	}
	tr.Broadcast(3, false)
	if tr.Stats().SearchBroadcasts != 1 {
		t.Fatal("non-search broadcast counted as search")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0,4,1) did not panic")
			}
		}()
		New(0, 4, 1)
	}()
	tr := New(2, 2, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Distance out of range did not panic")
			}
		}()
		tr.Distance(0, 9)
	}()
}

// Property: distance is symmetric, non-negative, bounded by the diameter,
// and zero iff a == b.
func TestPropDistanceMetric(t *testing.T) {
	tr := New(4, 4, 1)
	f := func(a, b uint8) bool {
		x, y := int(a)%16, int(b)%16
		d := tr.Distance(x, y)
		if d != tr.Distance(y, x) {
			return false
		}
		if d < 0 || d > tr.MaxDistance() {
			return false
		}
		return (d == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality holds on the torus.
func TestPropTriangleInequality(t *testing.T) {
	tr := New(4, 4, 1)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%16, int(b)%16, int(c)%16
		return tr.Distance(x, z) <= tr.Distance(x, y)+tr.Distance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResetStats(t *testing.T) {
	tr := New(4, 4, 1)
	tr.Latency(0, 1)
	tr.ResetStats()
	if tr.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
}
