// Package oatable provides the open-addressing uint64-keyed hash table the
// simulator's hot paths share: power-of-two capacity, linear probing, and
// tombstone-free backward-shift deletion, so probe chains stay short no
// matter how many keys have come and gone. The L1-D coherence directory
// (internal/sim) and the miss-classification shadow (internal/cache) are
// both built on it — the deletion compaction is the easiest open-
// addressing code to get subtly wrong, so it lives exactly once.
//
// A zero key is legal and carried in a dedicated side slot (zero marks
// empty slots internally). The zero value of Table is not ready to use;
// call Init.
package oatable

// Mix scatters a uint64 key (the splitmix64 finalizer). Sequential block
// or address keys would otherwise pile whole ranges into one probe chain.
func Mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Table maps uint64 keys to V values.
type Table[V any] struct {
	keys []uint64
	vals []V
	mask uint64
	// n counts live entries excluding the zero-key side slot; the table
	// grows once n reaches growAt (3/4 load).
	n      int
	growAt int

	zeroVal V
	hasZero bool
}

// Init sizes the table; capacity must be a power of two. Init discards any
// previous contents.
func (t *Table[V]) Init(capacity int) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("oatable: capacity must be a positive power of two")
	}
	t.keys = make([]uint64, capacity)
	t.vals = make([]V, capacity)
	t.mask = uint64(capacity - 1)
	t.n = 0
	t.growAt = capacity - capacity/4
	var zero V
	t.zeroVal = zero
	t.hasZero = false
}

// Len returns the live entry count.
func (t *Table[V]) Len() int {
	n := t.n
	if t.hasZero {
		n++
	}
	return n
}

// Get returns k's value and whether it is present. An absent key returns
// the zero V, so value types with a meaningful zero (bit masks) can skip
// the bool.
func (t *Table[V]) Get(k uint64) (V, bool) {
	if k == 0 {
		return t.zeroVal, t.hasZero
	}
	i := Mix(k) & t.mask
	for {
		kk := t.keys[i]
		if kk == k {
			return t.vals[i], true
		}
		if kk == 0 {
			var zero V
			return zero, false
		}
		i = (i + 1) & t.mask
	}
}

// Ref returns a pointer to k's value, inserting a zero value if absent —
// the one-probe upsert primitive (`*t.Ref(k) |= bit`). The pointer is
// invalidated by any subsequent insert or delete.
func (t *Table[V]) Ref(k uint64) *V {
	if k == 0 {
		t.hasZero = true
		return &t.zeroVal
	}
	if t.n >= t.growAt {
		t.grow()
	}
	i := Mix(k) & t.mask
	for {
		kk := t.keys[i]
		if kk == k {
			return &t.vals[i]
		}
		if kk == 0 {
			t.keys[i] = k
			t.n++
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// Put inserts or overwrites k's value.
func (t *Table[V]) Put(k uint64, v V) { *t.Ref(k) = v }

// Del removes k (a no-op when absent). The tail of the probe cluster is
// shifted back over the vacated slot: an entry at j may fill the hole at i
// only if its home slot is not in the cyclic range (i, j] — otherwise
// moving it would put it before its home and lookups would miss it.
func (t *Table[V]) Del(k uint64) {
	var zero V
	if k == 0 {
		t.zeroVal, t.hasZero = zero, false
		return
	}
	i := Mix(k) & t.mask
	for {
		kk := t.keys[i]
		if kk == 0 {
			return // absent
		}
		if kk == k {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		j = (j + 1) & t.mask
		kk := t.keys[j]
		if kk == 0 {
			break
		}
		home := Mix(kk) & t.mask
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.keys[i] = kk
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.vals[i] = zero
	t.n--
}

func (t *Table[V]) grow() {
	oldK, oldV := t.keys, t.vals
	zeroVal, hasZero := t.zeroVal, t.hasZero
	t.Init(len(oldK) * 2)
	t.zeroVal, t.hasZero = zeroVal, hasZero
	for i, k := range oldK {
		if k != 0 {
			t.Put(k, oldV[i])
		}
	}
}

// CapFor returns a power-of-two capacity holding n entries at a
// comfortable load factor.
func CapFor(n int) int {
	c := 16
	for c < n*2 {
		c *= 2
	}
	return c
}
