package oatable

import (
	"math/rand"
	"testing"
)

// TestTableBasics exercises the core operations, including the zero-key
// side slot.
func TestTableBasics(t *testing.T) {
	var tab Table[uint64]
	tab.Init(8)
	if v, ok := tab.Get(42); v != 0 || ok {
		t.Fatalf("empty get = %d,%v", v, ok)
	}
	tab.Put(42, 7)
	*tab.Ref(42) |= 8
	if v, ok := tab.Get(42); v != 15 || !ok {
		t.Fatalf("get after put+or = %d,%v, want 15", v, ok)
	}
	*tab.Ref(0) |= 1
	if v, ok := tab.Get(0); v != 1 || !ok {
		t.Fatalf("zero-key get = %d,%v, want 1", v, ok)
	}
	tab.Del(0)
	if _, ok := tab.Get(0); ok {
		t.Fatal("zero key present after del")
	}
	tab.Del(42)
	if _, ok := tab.Get(42); ok || tab.Len() != 0 {
		t.Fatalf("del left key, len %d", tab.Len())
	}
	tab.Del(42) // deleting an absent key is a no-op
}

// TestTableGrowth inserts past several growth thresholds and checks the
// zero slot survives rehashing.
func TestTableGrowth(t *testing.T) {
	var tab Table[uint64]
	tab.Init(8)
	tab.Put(0, 99)
	const n = 10_000
	for i := uint64(1); i <= n; i++ {
		tab.Put(i, i*3)
	}
	if tab.Len() != n+1 {
		t.Fatalf("len = %d, want %d", tab.Len(), n+1)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := tab.Get(i); v != i*3 || !ok {
			t.Fatalf("get(%d) = %d,%v, want %d", i, v, ok, i*3)
		}
	}
	if v, ok := tab.Get(0); v != 99 || !ok {
		t.Fatalf("zero entry lost across growth: %d,%v", v, ok)
	}
}

// TestTableMatchesMap drives the table and a reference map with the same
// random operation stream — including heavy deletion, which exercises the
// backward-shift compaction — and requires identical contents.
func TestTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tab Table[uint64]
	tab.Init(8)
	ref := map[uint64]uint64{}
	// A small key universe forces constant collision/delete churn.
	key := func() uint64 { return uint64(rng.Intn(200)) }
	for i := 0; i < 50_000; i++ {
		switch rng.Intn(4) {
		case 0:
			k, v := key(), rng.Uint64()
			tab.Put(k, v)
			ref[k] = v
		case 1:
			k, bit := key(), uint64(1)<<uint(rng.Intn(64))
			*tab.Ref(k) |= bit
			ref[k] |= bit
		case 2:
			k := key()
			tab.Del(k)
			delete(ref, k)
		default:
			k := key()
			got, ok := tab.Get(k)
			want, wantOK := ref[k]
			if got != want || ok != wantOK {
				t.Fatalf("step %d: get(%d) = %d,%v, want %d,%v", i, k, got, ok, want, wantOK)
			}
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", tab.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := tab.Get(k); got != want || !ok {
			t.Fatalf("final get(%d) = %d,%v, want %d", k, got, ok, want)
		}
	}
}

// TestTableInt32Values instantiates the table at a second value type (the
// classification shadow's shape).
func TestTableInt32Values(t *testing.T) {
	var tab Table[int32]
	tab.Init(16)
	for i := int32(0); i < 100; i++ {
		tab.Put(uint64(i)*7, i)
	}
	for i := int32(0); i < 100; i += 3 {
		tab.Del(uint64(i) * 7)
	}
	for i := int32(0); i < 100; i++ {
		v, ok := tab.Get(uint64(i) * 7)
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
		} else if !ok || v != i {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
}
