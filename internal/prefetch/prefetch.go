// Package prefetch implements the instruction prefetchers SLICC is compared
// against in Figure 11: a next-line prefetcher and PIF [5]. The paper
// models PIF as an upper bound — a 512KB L1-I with 32KB latency plus a
// 40KB-per-core storage charge — and that model is provided here as a
// machine configuration (PIFUpperBoundL1I). A stream-buffer style temporal
// prefetcher (Stream) is included as an extension beyond the paper for
// ablation studies.
package prefetch

import (
	"slicc/internal/cache"
	"slicc/internal/sim"
)

// PIFStorageBytesPerCore is the paper's quoted PIF hardware cost (~40KB per
// core), against which Table 3 compares SLICC's 966 bytes (2.4%).
const PIFStorageBytesPerCore = 40 * 1024

// NextLine prefetches block B+1 whenever block B is fetched, the classic
// sequential instruction prefetcher of Figure 11's "Next-Line" bar.
type NextLine struct {
	// Degree is how many sequential blocks to prefetch ahead (default 1).
	Degree int
}

// NewNextLine returns a next-line prefetcher of degree 1.
func NewNextLine() *NextLine { return &NextLine{Degree: 1} }

// Name implements sim.Prefetcher.
func (p *NextLine) Name() string { return "Next-Line" }

// OnFetch implements sim.Prefetcher: a miss-triggered sequential prefetch
// (prefetching on every access would let the L1 hit stream preload entire
// regions, far beyond what a real next-line unit achieves on branchy code).
func (p *NextLine) OnFetch(m *sim.Machine, core int, pc uint64, miss bool) {
	if !miss {
		return
	}
	deg := p.Degree
	if deg <= 0 {
		deg = 1
	}
	blockBytes := uint64(m.L1I(core).Config().BlockBytes)
	base := pc &^ (blockBytes - 1)
	for i := 1; i <= deg; i++ {
		m.PrefetchInstr(core, base+uint64(i)*blockBytes)
	}
}

// PIFUpperBoundL1I returns the L1-I configuration modeling PIF's
// near-perfect miss coverage exactly as the paper does (Section 5.6): a
// 512KB instruction cache retaining the 32KB cache's latency.
func PIFUpperBoundL1I(base cache.Config) cache.Config {
	cfg := base
	cfg.SizeBytes = 512 * 1024
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 3
	}
	return cfg
}

// Stream is a simple temporal-stream instruction prefetcher (an extension
// beyond the paper, in the spirit of TIFS/PIF's record-and-replay): it
// records the miss sequence and, on a miss that matches a recorded
// position, replays the following blocks.
type Stream struct {
	// Depth is how many successors to replay per trigger (default 4).
	Depth int
	// HistoryBlocks caps the recorded miss log (default 8192 blocks,
	// roughly PIF's 40KB budget at ~5 bytes per entry).
	HistoryBlocks int

	history []uint64
	index   map[uint64]int // block -> last position in history
}

// NewStream returns a stream prefetcher with default parameters.
func NewStream() *Stream { return &Stream{Depth: 4, HistoryBlocks: 8192} }

// Name implements sim.Prefetcher.
func (p *Stream) Name() string { return "Stream" }

// OnFetch implements sim.Prefetcher.
func (p *Stream) OnFetch(m *sim.Machine, core int, pc uint64, miss bool) {
	if !miss {
		return
	}
	if p.Depth <= 0 {
		p.Depth = 4
	}
	if p.HistoryBlocks <= 0 {
		p.HistoryBlocks = 8192
	}
	if p.index == nil {
		p.index = make(map[uint64]int)
	}
	blockBytes := uint64(m.L1I(core).Config().BlockBytes)
	block := pc / blockBytes

	if pos, ok := p.index[block]; ok {
		for i := 1; i <= p.Depth && pos+i < len(p.history); i++ {
			m.PrefetchInstr(core, p.history[pos+i]*blockBytes)
		}
	}

	if len(p.history) >= p.HistoryBlocks {
		// Drop the oldest half to amortize compaction.
		cut := len(p.history) / 2
		p.history = append(p.history[:0], p.history[cut:]...)
		for b, pos := range p.index {
			if pos < cut {
				delete(p.index, b)
			} else {
				p.index[b] = pos - cut
			}
		}
	}
	p.index[block] = len(p.history)
	p.history = append(p.history, block)
}
