package prefetch

import (
	"testing"

	"slicc/internal/cache"
	"slicc/internal/sched"
	"slicc/internal/sim"
	"slicc/internal/trace"
)

func streamThread(blocks int) trace.Thread {
	return trace.Thread{
		ID: 0,
		New: func() trace.Source {
			ops := make([]trace.Op, blocks)
			for b := range ops {
				ops[b] = trace.Op{PC: 0x10000 + uint64(b)*64}
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func TestNextLineCoversSequentialStream(t *testing.T) {
	// A purely sequential stream: next-line should cover roughly half the
	// misses (miss-triggered: miss at b prefetches b+1, b+2 then misses).
	m := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), NewNextLine(), []trace.Thread{streamThread(512)})
	r := m.Run()
	plain := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), nil, []trace.Thread{streamThread(512)}).Run()
	if r.IMisses >= plain.IMisses {
		t.Fatalf("next-line did not reduce misses: %d vs %d", r.IMisses, plain.IMisses)
	}
	if r.IMisses < plain.IMisses/4 {
		t.Fatalf("miss-triggered next-line too effective: %d vs %d", r.IMisses, plain.IMisses)
	}
}

func TestNextLineDegree(t *testing.T) {
	p := &NextLine{Degree: 4}
	m := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), p, []trace.Thread{streamThread(512)})
	r := m.Run()
	one := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), NewNextLine(), []trace.Thread{streamThread(512)}).Run()
	if r.IMisses >= one.IMisses {
		t.Fatalf("degree-4 (%d misses) not better than degree-1 (%d)", r.IMisses, one.IMisses)
	}
}

func TestNextLineName(t *testing.T) {
	if NewNextLine().Name() != "Next-Line" || NewStream().Name() != "Stream" {
		t.Fatal("prefetcher names wrong")
	}
}

func TestPIFUpperBoundL1I(t *testing.T) {
	base := cache.Config{SizeBytes: 32 * 1024, HitLatency: 3}
	cfg := PIFUpperBoundL1I(base)
	if cfg.SizeBytes != 512*1024 {
		t.Fatalf("size = %d", cfg.SizeBytes)
	}
	if cfg.HitLatency != 3 {
		t.Fatalf("latency = %d; the upper bound keeps the 32KB latency", cfg.HitLatency)
	}
	if got := PIFUpperBoundL1I(cache.Config{}); got.HitLatency != 3 {
		t.Fatal("default latency not applied")
	}
}

// repeatedStream builds a thread visiting the same block sequence twice:
// the stream prefetcher records the first pass and replays on the second.
func repeatedStream(blocks, passes int) trace.Thread {
	return trace.Thread{
		ID: 0,
		New: func() trace.Source {
			var ops []trace.Op
			for p := 0; p < passes; p++ {
				for b := 0; b < blocks; b++ {
					// A stride large enough that next-line would not help.
					ops = append(ops, trace.Op{PC: 0x40000 + uint64(b)*4160})
				}
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func TestStreamReplaysRecordedMissSequence(t *testing.T) {
	// 1024 blocks at a 4KB+64B stride (set-spreading): far beyond a 32KB cache, zero spatial
	// locality. Plain and next-line runs miss every access on both passes;
	// the stream prefetcher replays pass 1's miss log during pass 2.
	th := repeatedStream(1024, 2)
	plain := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), nil, []trace.Thread{th}).Run()
	str := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), NewStream(), []trace.Thread{th}).Run()
	if plain.IMisses != 2048 {
		t.Fatalf("plain run missed %d times, want 2048", plain.IMisses)
	}
	if str.IMisses > plain.IMisses*2/3 {
		t.Fatalf("stream prefetcher barely helped: %d vs %d", str.IMisses, plain.IMisses)
	}
}

func TestStreamHistoryCompaction(t *testing.T) {
	p := NewStream()
	p.HistoryBlocks = 64
	m := sim.New(sim.Config{Cores: 1}, sched.NewBaseline(), p, []trace.Thread{repeatedStream(512, 2)})
	m.Run()
	if len(p.history) > 64 {
		t.Fatalf("history grew to %d entries past the cap", len(p.history))
	}
	for _, pos := range p.index {
		if pos < 0 || pos >= len(p.history) {
			t.Fatalf("index position %d out of range after compaction", pos)
		}
	}
}

func TestPIFStorageConstant(t *testing.T) {
	if PIFStorageBytesPerCore != 40*1024 {
		t.Fatal("PIF storage constant drifted from the paper's ~40KB")
	}
}
