package queue

// HTTP wire types for the queue API, shared by the control plane
// (internal/server) and the worker (internal/worker, cmd/sliccworker) so
// the two sides cannot drift. See docs/SERVICE.md for the endpoint
// reference.

import (
	"encoding/json"
	"time"
)

// LeaseRequest is the body of POST /v1/queue/lease.
type LeaseRequest struct {
	// Worker labels the lease holder (hostname/pid by convention); it
	// prefixes the issued holder token and appears in expiry logs.
	Worker string `json:"worker,omitempty"`
	// WaitSeconds long-polls up to this many seconds when no entry is
	// eligible (the server caps it; 0 returns immediately).
	WaitSeconds int `json:"wait_seconds,omitempty"`
}

// LeaseJob is one leased job.
type LeaseJob struct {
	// ID is the job's content key (runner.JobKey of the cell): the queue
	// entry id, the store key of the result, and the idempotency token,
	// all one value.
	ID string `json:"id"`
	// Payload is the canonical JSON of the normalized runner job.
	Payload json.RawMessage `json:"payload"`
	// Attempts counts prior failed attempts (0 on first lease).
	Attempts int `json:"attempts"`
	// Holder authenticates this lease's heartbeat/complete/fail calls.
	Holder string `json:"holder"`
	// LeaseExpires is when the lease lapses unless renewed by heartbeat.
	LeaseExpires time.Time `json:"lease_expires"`
}

// LeaseResponse is the body of a 200 from POST /v1/queue/lease. Job is
// null when the wait elapsed with nothing eligible.
type LeaseResponse struct {
	Job *LeaseJob `json:"job"`
}

// HeartbeatRequest is the body of POST /v1/queue/{id}/heartbeat.
type HeartbeatRequest struct {
	Holder string `json:"holder"`
}

// HeartbeatResponse carries the renewed lease expiry.
type HeartbeatResponse struct {
	LeaseExpires time.Time `json:"lease_expires"`
}

// CompleteRequest is the body of POST /v1/queue/{id}/complete.
type CompleteRequest struct {
	Holder string `json:"holder"`
}

// FailRequest is the body of POST /v1/queue/{id}/fail.
type FailRequest struct {
	Holder string `json:"holder"`
	// Error is the worker-side cause, appended to the entry's error chain.
	Error string `json:"error"`
}

// FailResponse reports the entry's post-failure state.
type FailResponse struct {
	Attempts int  `json:"attempts"`
	Dead     bool `json:"dead"`
}

// DeadJob is one dead-letter entry as served by GET /v1/queue/dead.
type DeadJob struct {
	ID       string    `json:"id"`
	Attempts int       `json:"attempts"`
	Errors   []string  `json:"errors"`
	Enqueued time.Time `json:"enqueued"`
}

// DeadResponse is the body of GET /v1/queue/dead.
type DeadResponse struct {
	Dead []DeadJob `json:"dead"`
}
