package queue

// Dispatcher adapts a Queue to the runner's remote-execution seam: the
// pool calls Execute instead of running a claimed job locally, Execute
// enqueues the job and blocks until a worker resolves it, and the pool
// then reads the result back from the shared store. It structurally
// implements runner.Remote without importing the runner — the seam's two
// sides meet only at the slicc.EngineOptions wiring.

import "context"

// Dispatcher submits jobs to a Queue and waits for their resolution.
type Dispatcher struct {
	Q *Queue
}

// Execute enqueues the job under its content key and blocks until a
// worker completes it (nil), the entry dead-letters (*DeadError carrying
// the retry chain), or ctx ends. On ctx cancellation the entry stays
// queued: a worker may still execute it, its result lands in the store,
// and a resubmitted sweep replays it as a store hit — the durable-queue
// half of the checkpoint-free resume contract.
func (d *Dispatcher) Execute(ctx context.Context, key string, job []byte) error {
	t, err := d.Q.Enqueue(key, job)
	if err != nil {
		return err
	}
	select {
	case <-t.Done():
		return t.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
