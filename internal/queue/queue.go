// Package queue implements the durable on-disk job queue behind
// distributed sliccd: the control plane enqueues sweep cells keyed by
// their content key (runner.JobKey), workers lease them over HTTP, run
// them through the ordinary engine, and publish results into the shared
// content-addressed store. The queue itself never carries results — the
// store is the result transport and the checkpoint — so queue entries are
// small JSON documents and every queue operation is idempotent by
// construction: enqueueing an id twice coalesces, completing a job twice
// is a no-op for the second caller, and a crashed worker's lease simply
// expires and the entry becomes leasable again.
//
// Durability follows the store's publish idiom: an entry is written to a
// temp file in the queue directory and link(2)ed to its final name
// (O_EXCL semantics; rename repairs corrupt leftovers), and state changes
// (retry bookkeeping, dead-lettering) rewrite the file via temp+rename.
// Leases are deliberately *not* persisted: after a control-plane restart
// every recovered entry is pending again, which at worst re-executes work
// whose result the store already absorbs. Dead-letter entries do persist,
// so a poison job stays inspectable (and stays poison) across restarts.
//
// Corrupt or truncated entry files are skipped on open and repaired on
// the next enqueue of the same id — never an error, never a panic —
// matching the store's corruption tolerance.
package queue

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FormatVersion tags the on-disk entry schema; entries with any other
// version are skipped as corrupt.
const FormatVersion = 1

const (
	// entrySuffix names queue entry files ("slicc queue job").
	entrySuffix = ".sqj"
	// tmpPattern names in-progress writes; Open sweeps leftovers.
	tmpPattern = ".qtmp-*"
	// maxIDLen bounds entry ids (content keys are 64 hex chars).
	maxIDLen = 256
	// maxPayload bounds entry payloads (a sweep cell job is <1KB of JSON).
	maxPayload = 1 << 20
	// maxErrors bounds the per-entry error chain: the most recent failures
	// win (the chain exists to diagnose, not to archive).
	maxErrors = 8
)

// Sentinel errors for the lease protocol. The HTTP layer maps ErrUnknown
// to 404 and ErrNotHolder to 409; workers treat both as "stop working on
// this job" (someone else owns it now, or it is gone).
var (
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = errors.New("queue: closed")
	// ErrUnknown reports an id with no queue entry (completed, never
	// enqueued, or evicted).
	ErrUnknown = errors.New("queue: unknown job")
	// ErrNotHolder reports a heartbeat/complete/fail whose holder token
	// does not hold the entry's current lease — the lease expired and was
	// re-issued, or the entry is no longer leased.
	ErrNotHolder = errors.New("queue: lease not held by caller")
)

// DeadError is the terminal error a dead-lettered job resolves with: the
// dispatcher returns it to the sweep, so the failed cell's error carries
// the whole retry chain.
type DeadError struct {
	ID       string
	Attempts int
	Errors   []string
}

func (e *DeadError) Error() string {
	return fmt.Sprintf("queue: job %s dead after %d attempts: %s",
		shortID(e.ID), e.Attempts, strings.Join(e.Errors, "; "))
}

// shortID abbreviates content keys for log and error text.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Options configures a Queue.
type Options struct {
	// MaxAttempts is the retry budget per entry (default 3): an entry
	// whose attempt count reaches it — explicit failures and lease
	// expirations both count — moves to the dead-letter queue.
	MaxAttempts int
	// LeaseTTL is the visibility timeout (default 30s): a lease not
	// renewed by heartbeat within it expires, and the entry becomes
	// leasable again.
	LeaseTTL time.Duration
	// Backoff is the delay before a failed entry's first retry (default
	// 1s), doubling per attempt up to MaxBackoff (default 30s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SweepInterval is the lease-expiry scan period (default 1s). Lease
	// calls scan opportunistically too; the ticker guarantees expiry (and
	// dead-lettering) even when no worker is polling.
	SweepInterval time.Duration
	// Logger receives queue lifecycle events (skipped corrupt entries,
	// expirations, dead-letterings). Nil is silent.
	Logger *slog.Logger

	// now overrides the clock in tests (same-package only).
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// state is an entry's in-memory lifecycle position.
type state int

const (
	statePending state = iota
	stateLeased
	stateDead
)

// entry is one queued job.
type entry struct {
	id       string
	payload  []byte
	attempts int
	errors   []string
	enqueued time.Time

	state     state
	notBefore time.Time // earliest next lease (retry backoff)

	holder       string // lease holder token, "" unless leased
	leaseExpires time.Time

	// done resolves waiters (Ticket holders): closed with err == nil on
	// completion, with a *DeadError on dead-lettering. err is written
	// before done closes and read only after — no lock guards it.
	done chan struct{}
	err  error
}

// diskEntry is the persisted JSON form of an entry. Leases are absent by
// design: they are in-memory state, voided by a control-plane restart.
type diskEntry struct {
	V         int             `json:"v"`
	ID        string          `json:"id"`
	Payload   json.RawMessage `json:"payload"`
	Attempts  int             `json:"attempts"`
	Errors    []string        `json:"errors,omitempty"`
	Dead      bool            `json:"dead,omitempty"`
	NotBefore time.Time       `json:"not_before"`
	Enqueued  time.Time       `json:"enqueued"`
}

// decodeDiskEntry validates b as a queue entry file. Any malformation —
// bad JSON, wrong version, missing or oversized fields — is ok=false,
// never a panic: corrupt entries are skipped and later repaired.
func decodeDiskEntry(b []byte) (diskEntry, bool) {
	var d diskEntry
	if err := json.Unmarshal(b, &d); err != nil {
		return diskEntry{}, false
	}
	if d.V != FormatVersion {
		return diskEntry{}, false
	}
	if d.ID == "" || len(d.ID) > maxIDLen {
		return diskEntry{}, false
	}
	if len(d.Payload) == 0 || len(d.Payload) > maxPayload {
		return diskEntry{}, false
	}
	if d.Attempts < 0 || d.Attempts > 1<<20 {
		return diskEntry{}, false
	}
	return d, true
}

// Stats snapshots the queue's gauges and lifetime counters.
type Stats struct {
	// Pending / Leased / Dead are current entry counts by state: pending
	// entries are enqueued but unleased (including those in retry
	// backoff), leased entries are in flight on a worker, dead entries
	// are the DLQ.
	Pending int
	Leased  int
	Dead    int
	// Lifetime counters since Open.
	Enqueued    int64
	Leases      int64
	Heartbeats  int64
	Expirations int64
	Completions int64
	Failures    int64
}

// Queue is a durable job queue rooted at one directory. It is safe for
// concurrent use; one Queue instance per directory per process (the
// directory is the durability layer, the instance holds the lease state).
type Queue struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*entry
	// avail is the lease long-poll broadcast: closed and replaced
	// whenever an entry may have become leasable.
	avail     chan struct{}
	holderSeq int64
	stats     Stats
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the queue at dir and recovers persisted
// entries: non-dead entries become pending (their attempt counts and
// backoff windows survive), dead entries rejoin the DLQ, corrupt files
// are skipped. Leftover temp files from crashed writers are removed.
func Open(dir string, opts Options) (*Queue, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	q := &Queue{
		dir:     dir,
		opts:    opts,
		entries: make(map[string]*entry),
		avail:   make(chan struct{}),
		stop:    make(chan struct{}),
	}
	if err := q.recover(); err != nil {
		return nil, err
	}
	q.wg.Add(1)
	go q.sweeper()
	return q, nil
}

// recover loads persisted entries from the queue directory.
func (q *Queue) recover() error {
	des, err := os.ReadDir(q.dir)
	if err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if ok, _ := filepath.Match(tmpPattern, name); ok {
			os.Remove(filepath.Join(q.dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) || de.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(q.dir, name))
		if err != nil {
			continue
		}
		d, ok := decodeDiskEntry(b)
		if !ok || fileName(d.ID) != name {
			q.opts.Logger.Warn("queue: skipping corrupt entry file", "file", name)
			continue
		}
		e := &entry{
			id:        d.ID,
			payload:   []byte(d.Payload),
			attempts:  d.Attempts,
			errors:    d.Errors,
			enqueued:  d.Enqueued,
			notBefore: d.NotBefore,
			done:      make(chan struct{}),
		}
		if d.Dead {
			e.state = stateDead
			e.err = &DeadError{ID: e.id, Attempts: e.attempts, Errors: e.errors}
			close(e.done)
		}
		q.entries[e.id] = e
	}
	return nil
}

// Close stops the expiry sweeper and closes the queue; subsequent
// operations fail with ErrClosed. Entries (and their files) are left as
// they are — a reopened queue resumes them. Close does not resolve
// outstanding Tickets; their sweeps' context cancellation does.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.stop)
	q.broadcastLocked() // wake Lease long-polls so they observe closed
	q.mu.Unlock()
	q.wg.Wait()
	return nil
}

// sweeper periodically expires stale leases so visibility timeouts (and
// the dead-lettering they can trigger) are time-driven, not only
// Lease-driven, and wakes long-polls whose retry backoff has elapsed.
func (q *Queue) sweeper() {
	defer q.wg.Done()
	t := time.NewTicker(q.opts.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			q.mu.Lock()
			now := q.opts.now()
			q.expireLocked(now)
			if q.leasableLocked(now) {
				q.broadcastLocked()
			}
			q.mu.Unlock()
		}
	}
}

// broadcastLocked wakes every Lease long-poll. Caller holds q.mu.
func (q *Queue) broadcastLocked() {
	close(q.avail)
	q.avail = make(chan struct{})
}

// leasableLocked reports whether any pending entry is eligible now.
func (q *Queue) leasableLocked(now time.Time) bool {
	for _, e := range q.entries {
		if e.state == statePending && !now.Before(e.notBefore) {
			return true
		}
	}
	return false
}

// expireLocked fails every lease whose visibility timeout has passed.
// Caller holds q.mu.
func (q *Queue) expireLocked(now time.Time) {
	for _, e := range q.entries {
		if e.state == stateLeased && now.After(e.leaseExpires) {
			q.stats.Expirations++
			q.opts.Logger.Warn("queue: lease expired",
				"id", shortID(e.id), "holder", e.holder, "attempts", e.attempts+1)
			q.failLocked(e, fmt.Sprintf("lease expired (holder %s)", e.holder), now)
		}
	}
}

// failLocked records one failed attempt on e and either schedules a
// backoff retry or dead-letters it. Caller holds q.mu.
func (q *Queue) failLocked(e *entry, cause string, now time.Time) {
	e.attempts++
	e.errors = append(e.errors, fmt.Sprintf("attempt %d: %s", e.attempts, cause))
	if len(e.errors) > maxErrors {
		e.errors = e.errors[len(e.errors)-maxErrors:]
	}
	e.holder = ""
	q.stats.Failures++
	if e.attempts >= q.opts.MaxAttempts {
		e.state = stateDead
		q.opts.Logger.Warn("queue: job dead-lettered",
			"id", shortID(e.id), "attempts", e.attempts, "cause", cause)
		q.persistLocked(e)
		e.err = &DeadError{ID: e.id, Attempts: e.attempts, Errors: append([]string(nil), e.errors...)}
		close(e.done)
		return
	}
	e.state = statePending
	e.notBefore = now.Add(q.backoff(e.attempts))
	q.persistLocked(e)
}

// backoff returns the retry delay after the given attempt count:
// Backoff doubling per attempt, capped at MaxBackoff.
func (q *Queue) backoff(attempts int) time.Duration {
	d := q.opts.Backoff
	for i := 1; i < attempts && d < q.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > q.opts.MaxBackoff {
		d = q.opts.MaxBackoff
	}
	return d
}

// fileName maps an entry id to its file name: ids are content keys
// (already uniform), but hashing keeps names fixed-length and safe for
// any id the API accepts.
func fileName(id string) string {
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

func (q *Queue) path(id string) string { return filepath.Join(q.dir, fileName(id)) }

// persistLocked rewrites e's file via temp+rename (atomic replace). Disk
// errors are logged, not fatal: the in-memory state is authoritative for
// this process, and durability is best-effort by the same contract as
// store writes. Caller holds q.mu.
func (q *Queue) persistLocked(e *entry) {
	d := diskEntry{
		V: FormatVersion, ID: e.id, Payload: json.RawMessage(e.payload),
		Attempts: e.attempts, Errors: e.errors, Dead: e.state == stateDead,
		NotBefore: e.notBefore, Enqueued: e.enqueued,
	}
	b, err := json.Marshal(d)
	if err != nil {
		return // diskEntry is plain data; cannot fail
	}
	if err := writeFileAtomic(q.dir, q.path(e.id), b, false); err != nil {
		q.opts.Logger.Warn("queue: persisting entry", "id", shortID(e.id), "error", err.Error())
	}
}

// writeFileAtomic writes b to final via a temp file in dir. With
// exclusive set it publishes via link(2) — failing with fs.ErrExist when
// final already exists — otherwise it replaces final via rename.
func writeFileAtomic(dir, final string, b []byte, exclusive bool) error {
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Removed on every path out: link() leaves the temp name behind
	// deliberately, and failures must not litter.
	defer os.Remove(tmpName)
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if !exclusive {
		return os.Rename(tmpName, final)
	}
	if err := os.Link(tmpName, final); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fs.ErrExist
		}
		// Filesystems without hard links take the rename path.
		return os.Rename(tmpName, final)
	}
	return nil
}

// Ticket is a waiter on one enqueued job: Done closes when the job
// completes or dead-letters (Err then reports which). A Ticket never
// times out on its own — abandon it when the caller's context ends; the
// entry stays queued and its eventual result lands in the store.
type Ticket struct{ e *entry }

// Done returns the resolution channel.
func (t *Ticket) Done() <-chan struct{} { return t.e.done }

// Err reports the terminal error (nil on completion, *DeadError on
// dead-lettering). Valid only after Done is closed.
func (t *Ticket) Err() error { return t.e.err }

// Enqueue adds the job under id, durably, and returns a Ticket resolving
// when it completes. Enqueueing an existing id coalesces onto the
// existing entry (the payload is a pure function of the id by the
// content-key contract); enqueueing a dead id returns a Ticket that is
// already resolved with the DeadError — deterministic poison stays
// poison until the DLQ entry is removed from the queue directory.
func (q *Queue) Enqueue(id string, payload []byte) (*Ticket, error) {
	if id == "" || len(id) > maxIDLen {
		return nil, fmt.Errorf("queue: id length %d out of range [1, %d]", len(id), maxIDLen)
	}
	if len(payload) == 0 || len(payload) > maxPayload {
		return nil, fmt.Errorf("queue: payload size %d out of range [1, %d]", len(payload), maxPayload)
	}
	if !json.Valid(payload) {
		return nil, errors.New("queue: payload is not valid JSON")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if e, ok := q.entries[id]; ok {
		return &Ticket{e: e}, nil
	}
	now := q.opts.now()
	e := &entry{
		id:       id,
		payload:  append([]byte(nil), payload...),
		enqueued: now,
		done:     make(chan struct{}),
	}
	d := diskEntry{
		V: FormatVersion, ID: id, Payload: json.RawMessage(e.payload),
		NotBefore: now, Enqueued: now,
	}
	b, _ := json.Marshal(d)
	if err := writeFileAtomic(q.dir, q.path(id), b, true); err != nil {
		if !errors.Is(err, fs.ErrExist) {
			q.opts.Logger.Warn("queue: persisting entry", "id", shortID(id), "error", err.Error())
		} else if prev, rerr := os.ReadFile(q.path(id)); rerr == nil {
			// A file exists with no in-memory entry (crash leftovers the
			// recovery scan raced with, or a corrupt write). Valid same-id
			// files adopt their persisted retry state; anything else is
			// repaired in place.
			if pd, ok := decodeDiskEntry(prev); ok && pd.ID == id {
				e.attempts, e.errors, e.notBefore, e.enqueued = pd.Attempts, pd.Errors, pd.NotBefore, pd.Enqueued
				if pd.Dead {
					e.state = stateDead
					e.err = &DeadError{ID: id, Attempts: e.attempts, Errors: e.errors}
					close(e.done)
				}
			} else {
				q.persistLocked(e)
			}
		}
	}
	q.entries[id] = e
	q.stats.Enqueued++
	if e.state == statePending {
		q.broadcastLocked()
	}
	return &Ticket{e: e}, nil
}

// Lease claims the oldest eligible pending entry for worker, long-polling
// up to wait when none is available. It returns nil with a nil error when
// the wait elapses empty (or ctx ends); the returned job's Holder token
// authenticates the worker's heartbeat/complete/fail calls for this
// lease.
func (q *Queue) Lease(ctx context.Context, worker string, wait time.Duration) (*LeaseJob, error) {
	if worker == "" {
		worker = "worker"
	}
	deadline := time.Now().Add(wait)
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		now := q.opts.now()
		q.expireLocked(now)
		if e := q.pickLocked(now); e != nil {
			q.holderSeq++
			e.state = stateLeased
			e.holder = fmt.Sprintf("%s#%d", worker, q.holderSeq)
			e.leaseExpires = now.Add(q.opts.LeaseTTL)
			q.stats.Leases++
			job := &LeaseJob{
				ID: e.id, Payload: json.RawMessage(append([]byte(nil), e.payload...)),
				Attempts: e.attempts, Holder: e.holder, LeaseExpires: e.leaseExpires,
			}
			q.mu.Unlock()
			return job, nil
		}
		avail := q.avail
		q.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-avail:
			t.Stop()
		case <-ctx.Done():
			t.Stop()
			return nil, nil
		case <-t.C:
			return nil, nil
		}
	}
}

// pickLocked returns the eligible pending entry with the earliest
// (enqueued, id) order, nil when none. Caller holds q.mu.
func (q *Queue) pickLocked(now time.Time) *entry {
	var best *entry
	for _, e := range q.entries {
		if e.state != statePending || now.Before(e.notBefore) {
			continue
		}
		if best == nil || e.enqueued.Before(best.enqueued) ||
			(e.enqueued.Equal(best.enqueued) && e.id < best.id) {
			best = e
		}
	}
	return best
}

// holderLocked resolves (id, holder) to its leased entry. Caller holds q.mu.
func (q *Queue) holderLocked(id, holder string) (*entry, error) {
	e, ok := q.entries[id]
	if !ok {
		return nil, ErrUnknown
	}
	if e.state != stateLeased || e.holder != holder {
		return nil, ErrNotHolder
	}
	return e, nil
}

// Heartbeat renews the lease on id held by holder and returns the new
// expiry. A worker whose heartbeat fails with ErrNotHolder has lost the
// lease (it expired and may have been re-issued) and should abandon the
// job — its eventual store Put stays benign either way.
func (q *Queue) Heartbeat(id, holder string) (time.Time, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return time.Time{}, ErrClosed
	}
	now := q.opts.now()
	q.expireLocked(now)
	e, err := q.holderLocked(id, holder)
	if err != nil {
		return time.Time{}, err
	}
	e.leaseExpires = now.Add(q.opts.LeaseTTL)
	q.stats.Heartbeats++
	return e.leaseExpires, nil
}

// Complete acknowledges id as done by holder: the entry (and its file)
// are removed and every Ticket resolves nil. The job's result must
// already be in the shared store — completion is the ack, the store is
// the payload. A stale Complete (expired lease) fails with ErrNotHolder
// and is benign: the result is in the store regardless, and the retried
// execution will complete as a store hit.
func (q *Queue) Complete(id, holder string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.expireLocked(q.opts.now())
	e, err := q.holderLocked(id, holder)
	if err != nil {
		return err
	}
	delete(q.entries, id)
	if err := os.Remove(q.path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		q.opts.Logger.Warn("queue: removing completed entry", "id", shortID(id), "error", err.Error())
	}
	q.stats.Completions++
	close(e.done)
	return nil
}

// Fail records a failed attempt on id by holder with the given cause,
// returning the updated attempt count and whether the entry was
// dead-lettered (otherwise it retries after backoff).
func (q *Queue) Fail(id, holder, cause string) (attempts int, dead bool, err error) {
	if cause == "" {
		cause = "unspecified failure"
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, false, ErrClosed
	}
	now := q.opts.now()
	q.expireLocked(now)
	e, herr := q.holderLocked(id, holder)
	if herr != nil {
		return 0, false, herr
	}
	q.failLocked(e, cause, now)
	return e.attempts, e.state == stateDead, nil
}

// Dead returns the dead-letter queue in id order.
func (q *Queue) Dead() []DeadJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	var dead []DeadJob
	for _, e := range q.entries {
		if e.state != stateDead {
			continue
		}
		dead = append(dead, DeadJob{
			ID:       e.id,
			Attempts: e.attempts,
			Errors:   append([]string(nil), e.errors...),
			Enqueued: e.enqueued,
		})
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].ID < dead[j].ID })
	return dead
}

// Stats snapshots the queue's counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	for _, e := range q.entries {
		switch e.state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		case stateDead:
			s.Dead++
		}
	}
	return s
}

// Dir returns the queue's directory.
func (q *Queue) Dir() string { return q.dir }
