package queue

// Unit tests for the durable queue: the lease/heartbeat/complete/fail
// protocol, visibility timeouts, retry backoff and dead-lettering run
// against a test clock so every timing decision is deterministic; the
// durability tests close and reopen real directories; the contention test
// hammers the lease path from many goroutines under -race.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a manually advanced clock wired into Options.now.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// open builds a queue in a fresh temp dir on the given clock, closed at
// test end.
func open(t *testing.T, clk *testClock, opts Options) *Queue {
	t.Helper()
	if clk != nil {
		opts.now = clk.now
		// Keep the real-time sweeper out of clock-driven tests: expiry is
		// exercised through the Lease/Heartbeat opportunistic scans.
		if opts.SweepInterval == 0 {
			opts.SweepInterval = time.Hour
		}
	}
	q, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func mustLease(t *testing.T, q *Queue, worker string) *LeaseJob {
	t.Helper()
	job, err := q.Lease(context.Background(), worker, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job == nil {
		t.Fatal("no job leasable")
	}
	return job
}

func TestQueueLifecycle(t *testing.T) {
	clk := newTestClock()
	q := open(t, clk, Options{})
	tk, err := q.Enqueue("job-a", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(q.path("job-a")); err != nil {
		t.Fatalf("entry file not published: %v", err)
	}

	job := mustLease(t, q, "w1")
	if job.ID != "job-a" || string(job.Payload) != `{"n":1}` || job.Attempts != 0 {
		t.Fatalf("leased %+v", job)
	}
	if !strings.HasPrefix(job.Holder, "w1#") {
		t.Fatalf("holder token %q", job.Holder)
	}
	// Held entries are invisible to other workers.
	if j, _ := q.Lease(context.Background(), "w2", 0); j != nil {
		t.Fatalf("second lease got held job %q", j.ID)
	}

	exp, err := q.Heartbeat("job-a", job.Holder)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.After(job.LeaseExpires.Add(-time.Nanosecond)) {
		t.Fatalf("heartbeat expiry %v not past lease %v", exp, job.LeaseExpires)
	}

	select {
	case <-tk.Done():
		t.Fatal("ticket resolved before completion")
	default:
	}
	if err := q.Complete("job-a", job.Holder); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("ticket not resolved by completion")
	}
	if tk.Err() != nil {
		t.Fatalf("completed ticket error %v", tk.Err())
	}
	if _, err := os.Stat(q.path("job-a")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("entry file not removed after completion: %v", err)
	}
	// A second complete from the same (now dropped) lease is a protocol
	// rejection, not a crash or a double count.
	if err := q.Complete("job-a", job.Holder); !errors.Is(err, ErrUnknown) {
		t.Fatalf("duplicate complete: %v, want ErrUnknown", err)
	}

	st := q.Stats()
	want := Stats{Enqueued: 1, Leases: 1, Heartbeats: 1, Completions: 1}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

func TestQueueEnqueueCoalesces(t *testing.T) {
	q := open(t, newTestClock(), Options{})
	t1, err := q.Enqueue("job-a", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := q.Enqueue("job-a", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if t1.e != t2.e {
		t.Fatal("re-enqueue did not coalesce onto the existing entry")
	}
	if st := q.Stats(); st.Enqueued != 1 || st.Pending != 1 {
		t.Fatalf("stats %+v, want one pending entry enqueued once", st)
	}
}

func TestQueueEnqueueValidation(t *testing.T) {
	q := open(t, newTestClock(), Options{})
	cases := []struct {
		name    string
		id      string
		payload []byte
	}{
		{"empty id", "", []byte(`{}`)},
		{"oversized id", strings.Repeat("x", maxIDLen+1), []byte(`{}`)},
		{"empty payload", "job-a", nil},
		{"oversized payload", "job-a", []byte(`"` + strings.Repeat("x", maxPayload) + `"`)},
		{"invalid json", "job-a", []byte(`{"n":`)},
	}
	for _, c := range cases {
		if _, err := q.Enqueue(c.id, c.payload); err == nil {
			t.Errorf("%s: enqueue accepted", c.name)
		}
	}
	if st := q.Stats(); st.Pending != 0 || st.Enqueued != 0 {
		t.Fatalf("rejected enqueues left state behind: %+v", st)
	}
}

func TestQueueRetryBackoffAndDeadLetter(t *testing.T) {
	clk := newTestClock()
	q := open(t, clk, Options{MaxAttempts: 3, Backoff: time.Second, MaxBackoff: 30 * time.Second})
	tk, err := q.Enqueue("job-a", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1 fails: the entry enters backoff, invisible until it ends.
	job := mustLease(t, q, "w1")
	attempts, dead, err := q.Fail("job-a", job.Holder, "boom one")
	if err != nil || attempts != 1 || dead {
		t.Fatalf("first fail: attempts=%d dead=%v err=%v", attempts, dead, err)
	}
	if j, _ := q.Lease(context.Background(), "w1", 0); j != nil {
		t.Fatal("leased during backoff")
	}
	clk.advance(1100 * time.Millisecond)

	// Attempt 2 (backoff doubles to 2s).
	job = mustLease(t, q, "w2")
	if job.Attempts != 1 {
		t.Fatalf("retry carries attempts=%d, want 1", job.Attempts)
	}
	if _, _, err := q.Fail("job-a", job.Holder, "boom two"); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond)
	if j, _ := q.Lease(context.Background(), "w2", 0); j != nil {
		t.Fatal("doubled backoff not honored")
	}
	clk.advance(time.Second)

	// Attempt 3 exhausts the budget: dead-letter.
	job = mustLease(t, q, "w3")
	attempts, dead, err = q.Fail("job-a", job.Holder, "boom three")
	if err != nil || attempts != 3 || !dead {
		t.Fatalf("final fail: attempts=%d dead=%v err=%v", attempts, dead, err)
	}

	select {
	case <-tk.Done():
	default:
		t.Fatal("ticket not resolved by dead-lettering")
	}
	var de *DeadError
	if !errors.As(tk.Err(), &de) {
		t.Fatalf("ticket error %T %v, want *DeadError", tk.Err(), tk.Err())
	}
	if de.Attempts != 3 || len(de.Errors) != 3 {
		t.Fatalf("dead error %+v", de)
	}
	for i, cause := range []string{"boom one", "boom two", "boom three"} {
		if want := fmt.Sprintf("attempt %d: %s", i+1, cause); de.Errors[i] != want {
			t.Fatalf("error chain[%d] = %q, want %q", i, de.Errors[i], want)
		}
	}

	dl := q.Dead()
	if len(dl) != 1 || dl[0].ID != "job-a" || dl[0].Attempts != 3 {
		t.Fatalf("DLQ %+v", dl)
	}
	// Dead entries are unleasable and a re-enqueue resolves immediately
	// with the same terminal error: deterministic poison stays poison.
	if j, _ := q.Lease(context.Background(), "w4", 0); j != nil {
		t.Fatal("leased a dead entry")
	}
	tk2, err := q.Enqueue("job-a", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk2.Done():
	default:
		t.Fatal("re-enqueued dead job's ticket not already resolved")
	}
	if !errors.As(tk2.Err(), &de) {
		t.Fatalf("re-enqueued dead job error %v", tk2.Err())
	}
	if st := q.Stats(); st.Dead != 1 || st.Failures != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueLeaseExpiry(t *testing.T) {
	clk := newTestClock()
	q := open(t, clk, Options{LeaseTTL: 30 * time.Second, Backoff: time.Second, MaxAttempts: 5})
	if _, err := q.Enqueue("job-a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	job := mustLease(t, q, "w1")

	// Within the TTL the lease holds.
	clk.advance(29 * time.Second)
	if j, _ := q.Lease(context.Background(), "w2", 0); j != nil {
		t.Fatal("lease stolen before the visibility timeout")
	}

	// Past it the entry expires into backoff, then re-leases with the
	// attempt recorded.
	clk.advance(2 * time.Second)
	if j, _ := q.Lease(context.Background(), "w2", 0); j != nil {
		t.Fatal("expired entry leased before its retry backoff")
	}
	clk.advance(1100 * time.Millisecond)
	job2 := mustLease(t, q, "w2")
	if job2.Attempts != 1 {
		t.Fatalf("re-leased attempts=%d, want 1", job2.Attempts)
	}
	if job2.Holder == job.Holder {
		t.Fatal("re-issued lease reused the holder token")
	}

	// The dead holder's acks are rejected; the live holder's succeed.
	if err := q.Complete("job-a", job.Holder); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("stale complete: %v, want ErrNotHolder", err)
	}
	if _, err := q.Heartbeat("job-a", job.Holder); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("stale heartbeat: %v, want ErrNotHolder", err)
	}
	if err := q.Complete("job-a", job2.Holder); err != nil {
		t.Fatal(err)
	}

	st := q.Stats()
	if st.Expirations != 1 || st.Failures != 1 || st.Completions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(q.Dead()) != 0 {
		t.Fatal("expiry dead-lettered under budget")
	}
}

func TestQueueHeartbeatKeepsLease(t *testing.T) {
	clk := newTestClock()
	q := open(t, clk, Options{LeaseTTL: 30 * time.Second})
	if _, err := q.Enqueue("job-a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	job := mustLease(t, q, "w1")
	// Renew every 20s across 2.5 TTLs of wall time: never expires.
	for i := 0; i < 4; i++ {
		clk.advance(20 * time.Second)
		if _, err := q.Heartbeat("job-a", job.Holder); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if j, _ := q.Lease(context.Background(), "w2", 0); j != nil {
			t.Fatal("heartbeated lease was re-issued")
		}
	}
	if err := q.Complete("job-a", job.Holder); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Expirations != 0 || st.Heartbeats != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueExpiryDeadLettersUnattendedJob(t *testing.T) {
	// A job that is leased and never acked — worker crash in a loop —
	// dead-letters from expirations alone, with the holder named in the
	// error chain. The sweeper drives this on a real queue; here the
	// opportunistic Lease scan does.
	clk := newTestClock()
	q := open(t, clk, Options{LeaseTTL: time.Second, Backoff: time.Millisecond, MaxAttempts: 2})
	tk, err := q.Enqueue("job-a", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		clk.advance(10 * time.Millisecond) // past any retry backoff
		job := mustLease(t, q, "crashy")
		_ = job
		clk.advance(2 * time.Second)
		q.Lease(context.Background(), "scanner", 0) // trigger the expiry scan
	}
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("ticket not resolved by expiry-driven dead-lettering")
	}
	var de *DeadError
	if !errors.As(tk.Err(), &de) || de.Attempts != 2 {
		t.Fatalf("ticket error %v", tk.Err())
	}
	for _, line := range de.Errors {
		if !strings.Contains(line, "lease expired (holder crashy#") {
			t.Fatalf("error chain line %q does not name the expired holder", line)
		}
	}
}

func TestQueueRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MaxAttempts: 2, Backoff: time.Millisecond, LeaseTTL: time.Minute, SweepInterval: 20 * time.Millisecond}
	q1, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// pending-fresh: never touched. pending-retried: one failed attempt.
	// poison: dead-lettered. leased: in flight at "crash" time.
	for _, id := range []string{"pending-fresh", "pending-retried", "poison", "leased"} {
		if _, err := q1.Enqueue(id, []byte(`{"job":"`+id+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Lease all four, then drive each into its target state through its
	// own holder. "pending-fresh" and "leased" are simply never acked —
	// their in-memory leases vanish at the "crash" without a disk trace.
	held := map[string]*LeaseJob{}
	for i := 0; i < 4; i++ {
		job, err := q1.Lease(ctx, "w", time.Second)
		if err != nil || job == nil {
			t.Fatalf("setup lease %d: job=%v err=%v", i, job, err)
		}
		held[job.ID] = job
	}
	j := held["poison"]
	if _, _, err := q1.Fail(j.ID, j.Holder, "poison one"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // past the 1ms retry backoff
	j, err = q1.Lease(ctx, "w", time.Second)
	if err != nil || j == nil || j.ID != "poison" {
		t.Fatalf("poison retry lease: job=%v err=%v", j, err)
	}
	if _, dead, err := q1.Fail(j.ID, j.Holder, "poison two"); err != nil || !dead {
		t.Fatalf("poison not dead: dead=%v err=%v", dead, err)
	}
	j = held["pending-retried"]
	if _, _, err := q1.Fail(j.ID, j.Holder, "transient"); err != nil {
		t.Fatal(err)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recovery voids the lease, keeps attempts, keeps the DLQ.
	time.Sleep(5 * time.Millisecond) // past the failed entry's retry backoff
	q2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	st := q2.Stats()
	if st.Pending != 3 || st.Leased != 0 || st.Dead != 1 {
		t.Fatalf("recovered stats %+v, want 3 pending (lease voided) / 1 dead", st)
	}
	dl := q2.Dead()
	if len(dl) != 1 || dl[0].ID != "poison" || dl[0].Attempts != 2 {
		t.Fatalf("recovered DLQ %+v", dl)
	}
	if len(dl[0].Errors) != 2 || !strings.Contains(dl[0].Errors[1], "poison two") {
		t.Fatalf("recovered DLQ error chain %q", dl[0].Errors)
	}
	// The failed-once entry still carries its attempt count; the payload
	// round-trips bytes intact.
	seen := map[string]*LeaseJob{}
	for i := 0; i < 3; i++ {
		job, err := q2.Lease(ctx, "w", time.Second)
		if err != nil || job == nil {
			t.Fatalf("recovered lease %d: job=%v err=%v", i, job, err)
		}
		seen[job.ID] = job
	}
	if job := seen["pending-retried"]; job == nil || job.Attempts != 1 {
		t.Fatalf("pending-retried recovered as %+v", job)
	}
	if job := seen["leased"]; job == nil || job.Attempts != 0 {
		t.Fatalf("leased recovered as %+v (in-memory lease must not persist an attempt)", job)
	}
	if job := seen["pending-fresh"]; job == nil || string(job.Payload) != `{"job":"pending-fresh"}` {
		t.Fatalf("pending-fresh payload %s", job.Payload)
	}
}

func TestQueueCorruptEntrySkippedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	q1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q1.Enqueue("job-a", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the entry file and scatter junk the recovery scan must
	// tolerate: garbage under the entry suffix, a truncated JSON document,
	// and a leftover temp file.
	if err := os.WriteFile(filepath.Join(dir, fileName("job-a")), []byte("\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+entrySuffix), []byte(`{"v":1,"id":"x"`), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".qtmp-leftover")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("corrupt entries must be skipped, not fatal: %v", err)
	}
	defer q2.Close()
	if st := q2.Stats(); st.Pending != 0 || st.Dead != 0 {
		t.Fatalf("corrupt entries recovered as live state: %+v", st)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover temp file survived recovery")
	}

	// Re-enqueueing the id repairs the corrupt file in place.
	if _, err := q2.Enqueue("job-a", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, fileName("job-a")))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := decodeDiskEntry(b)
	if !ok || d.ID != "job-a" {
		t.Fatalf("repaired entry file still corrupt: %q", b)
	}
	job := mustLease(t, q2, "w1")
	if job.ID != "job-a" || string(job.Payload) != `{"n":1}` {
		t.Fatalf("repaired entry leased as %+v", job)
	}
}

func TestQueueLeaseContention(t *testing.T) {
	// Many workers fight over one queue: every entry is completed exactly
	// once, and no two workers ever hold the same entry at the same time.
	// Run under -race this doubles as the data-race check on the lease path.
	const workers, jobs = 8, 40
	q := open(t, nil, Options{LeaseTTL: time.Minute, SweepInterval: 10 * time.Millisecond})
	for i := 0; i < jobs; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("job-%02d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu      sync.Mutex
		holding = map[string]string{} // id -> holder while processing
		done    int
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for {
				job, err := q.Lease(ctx, name, 20*time.Millisecond)
				if err != nil {
					t.Errorf("%s: lease: %v", name, err)
					return
				}
				if job == nil {
					mu.Lock()
					finished := done == jobs
					mu.Unlock()
					if finished {
						return
					}
					continue
				}
				mu.Lock()
				if prev, held := holding[job.ID]; held {
					t.Errorf("%s leased %s while %s holds it", job.Holder, job.ID, prev)
				}
				holding[job.ID] = job.Holder
				mu.Unlock()

				runtime.Gosched() // widen the overlap window

				mu.Lock()
				delete(holding, job.ID)
				mu.Unlock()
				if err := q.Complete(job.ID, job.Holder); err != nil {
					t.Errorf("%s: complete %s: %v", name, job.ID, err)
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	st := q.Stats()
	if st.Completions != jobs || st.Leases != jobs || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats %+v, want exactly %d leases and completions", st, jobs)
	}
}

func TestQueueLongPollWakesOnEnqueue(t *testing.T) {
	q := open(t, nil, Options{})
	start := time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		if _, err := q.Enqueue("job-a", []byte(`{}`)); err != nil {
			t.Error(err)
		}
	}()
	job, err := q.Lease(context.Background(), "w1", 10*time.Second)
	if err != nil || job == nil {
		t.Fatalf("long poll: job=%v err=%v", job, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("long poll slept %v instead of waking on enqueue", d)
	}
}

func TestQueueCloseWakesLeaseAndStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	q, err := Open(t.TempDir(), Options{SweepInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	leaseDone := make(chan error, 1)
	go func() {
		_, err := q.Lease(context.Background(), "w1", time.Minute)
		leaseDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the poll park
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-leaseDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("lease across close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the parked lease")
	}
	// Every operation on a closed queue reports ErrClosed.
	if _, err := q.Enqueue("job-a", []byte(`{}`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	if err := q.Complete("job-a", "w1#1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("complete after close: %v", err)
	}
	// The sweeper and the long poll are gone: goroutine count settles back.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked across Close: %d before, %d after", before, n)
	}
}

func TestQueueCloseIsIdempotent(t *testing.T) {
	q, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherRoundTrip(t *testing.T) {
	q := open(t, nil, Options{})
	d := &Dispatcher{Q: q}
	ctx := context.Background()

	// A "worker": lease and complete whatever shows up.
	go func() {
		for {
			job, err := q.Lease(ctx, "w1", time.Second)
			if err != nil || job == nil {
				return
			}
			q.Complete(job.ID, job.Holder)
		}
	}()
	if err := d.Execute(ctx, "job-a", []byte(`{}`)); err != nil {
		t.Fatalf("dispatch: %v", err)
	}

	// Cancellation abandons the wait but leaves the entry queued — the
	// durable-resume contract.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := d.Execute(cctx, "job-b", []byte(`{}`)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dispatch: %v", err)
	}
	if st := q.Stats(); st.Pending != 1 {
		t.Fatalf("cancelled dispatch dropped the entry: %+v", st)
	}
}

func TestDispatcherDeadJob(t *testing.T) {
	q := open(t, nil, Options{MaxAttempts: 1, LeaseTTL: time.Minute})
	go func() {
		job, err := q.Lease(context.Background(), "w1", 5*time.Second)
		if err != nil || job == nil {
			return
		}
		q.Fail(job.ID, job.Holder, "no thanks")
	}()
	err := (&Dispatcher{Q: q}).Execute(context.Background(), "job-a", []byte(`{}`))
	var de *DeadError
	if !errors.As(err, &de) {
		t.Fatalf("dispatch error %v, want *DeadError", err)
	}
	if de.Attempts != 1 || !strings.Contains(err.Error(), "no thanks") {
		t.Fatalf("dead error %v", err)
	}
}

func FuzzDecodeDiskEntry(f *testing.F) {
	valid := []byte(`{"v":1,"id":"job-a","payload":{"n":1},"attempts":2,` +
		`"errors":["attempt 1: boom"],"not_before":"2026-01-02T03:04:05Z","enqueued":"2026-01-02T03:04:05Z"}`)
	f.Add(valid)
	f.Add([]byte(`{"v":1,"id":"job-a","payload":{},"dead":true}`))
	f.Add([]byte(`{"v":2,"id":"job-a","payload":{}}`))
	f.Add([]byte(`{"v":1,"id":"","payload":{}}`))
	f.Add([]byte(`{"v":1,"id":"job-a"}`))
	f.Add([]byte(``))
	f.Add([]byte(`\x00\xff garbage`))
	f.Add(valid[:20])
	f.Fuzz(func(t *testing.T, b []byte) {
		// The only contract: never panic, and anything accepted satisfies
		// the invariants the queue relies on.
		d, ok := decodeDiskEntry(b)
		if !ok {
			return
		}
		if d.V != FormatVersion {
			t.Fatalf("accepted version %d", d.V)
		}
		if d.ID == "" || len(d.ID) > maxIDLen {
			t.Fatalf("accepted id %q", d.ID)
		}
		if len(d.Payload) == 0 || len(d.Payload) > maxPayload {
			t.Fatalf("accepted payload of %d bytes", len(d.Payload))
		}
		if d.Attempts < 0 {
			t.Fatalf("accepted attempts %d", d.Attempts)
		}
	})
}
