package runner

// Lockstep batch execution: RunBatched is Run with multi-cell batching.
// KindSim jobs that share a (normalized) workload config form a family;
// each family's store misses execute as one sim.RunBatch pass over the
// workload's shared decoded op table (workload.BatchThreads), so the
// family decodes each op once instead of once per cell. Everything
// observable matches Run: results arrive in input order and are
// byte-identical to scalar execution, the persistent store is consulted
// and recorded per cell with unchanged keys (hits shrink the batch;
// cross-warming works in both directions), and dedup/memoization behave
// as if each cell had run alone.

import (
	"context"
	"sync"

	"slicc/internal/sim"
	"slicc/internal/workload"
)

// maxGangMachines caps how many machines one sim.RunBatch pass interleaves.
// Larger gangs amortize nothing extra — the decoded table is shared across
// gangs — but multiply the live model state (caches, directory, policy
// tables are several MB per machine) competing for the host cache; measured
// on the fig7-thresholds sweep, gangs of ~4 beat both width 2 and width 21.
const maxGangMachines = 4

// RunBatched executes jobs like Run, but runs same-workload KindSim
// families in lockstep batches. Use it for sweep-shaped batches (many
// configurations per workload); singleton families and non-sim jobs fall
// through to the scalar path unchanged.
func (p *Pool) RunBatched(ctx context.Context, jobs []Job) ([]Result, error) {
	norm, err := p.normalizeJobs(jobs)
	if err != nil {
		return nil, err
	}
	entries, dedupped, mineJobs, mine := p.claimAll(norm)

	// Partition this call's claimed jobs into batch families and the
	// scalar remainder. Grouping happens after normalization, so two
	// spellings of one workload land in the same family, and after
	// claiming, so cells already owned elsewhere never execute twice.
	type family struct {
		jobs    []Job
		entries []*entry
	}
	var scalarJobs []Job
	var scalarEntries []*entry
	fams := make(map[workload.Config]*family)
	var order []*family
	for k, j := range mineJobs {
		if j.Kind != KindSim {
			scalarJobs = append(scalarJobs, j)
			scalarEntries = append(scalarEntries, mine[k])
			continue
		}
		f := fams[j.Workload]
		if f == nil {
			f = &family{}
			fams[j.Workload] = f
			order = append(order, f)
		}
		f.jobs = append(f.jobs, j)
		f.entries = append(f.entries, mine[k])
	}
	var wg sync.WaitGroup
	for _, f := range order {
		if len(f.jobs) < 2 {
			scalarJobs = append(scalarJobs, f.jobs...)
			scalarEntries = append(scalarEntries, f.entries...)
			continue
		}
		wg.Add(1)
		go func(f *family) {
			defer wg.Done()
			p.executeBatch(ctx, f.jobs, f.entries)
		}(f)
	}
	p.dispatch(ctx, scalarJobs, scalarEntries)
	wg.Wait()
	return p.gather(ctx, norm, entries, dedupped)
}

// executeBatch resolves one family through the same claim → store-Get →
// execute → store-Put lifecycle execute applies to one job, at family
// granularity: per-cell store hits publish immediately and shrink the
// batch to its misses, and the misses run as lockstep gangs of up to
// maxGangMachines — each gang under its own worker slot, so a wide family
// exploits the pool's parallelism exactly as its cells would have
// individually, while still sharing the workload's once-decoded op table.
func (p *Pool) executeBatch(ctx context.Context, jobs []Job, entries []*entry) {
	missJobs := make([]Job, 0, len(jobs))
	missEntries := make([]*entry, 0, len(jobs))
	var missKeys []string
	for i, j := range jobs {
		if p.persist != nil {
			key := JobKey(j)
			if res, ok := p.persist.Get(key); ok {
				p.mu.Lock()
				p.stats.StoreHits++
				p.done++
				p.mu.Unlock()
				entries[i].res = res
				entries[i].storeHit = true
				close(entries[i].ready)
				p.progress()
				continue
			}
			missKeys = append(missKeys, key)
		}
		missJobs = append(missJobs, j)
		missEntries = append(missEntries, entries[i])
	}
	switch len(missJobs) {
	case 0:
		return
	case 1:
		// A family of one miss is a scalar job. (execute re-consults the
		// store; the extra read is cheap and keeps one code path.)
		p.execute(ctx, missJobs[0], missEntries[0], nil)
		return
	}
	if p.persist == nil {
		missKeys = make([]string, len(missJobs))
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(missJobs); lo += maxGangMachines {
		hi := min(lo+maxGangMachines, len(missJobs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.executeGang(ctx, missJobs[lo:hi], missEntries[lo:hi], missKeys[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}

// executeGang runs one gang of a batch family — up to maxGangMachines
// store-miss cells — as a single sim.RunBatch pass under one worker slot,
// then records and publishes each cell exactly as the scalar path would.
func (p *Pool) executeGang(ctx context.Context, jobs []Job, entries []*entry, keys []string) {
	failAll := func(err error) {
		for i := range jobs {
			p.fail(jobs[i], entries[i], err)
		}
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		failAll(ctx.Err())
		return
	}
	defer func() { <-p.sem }()
	if err := ctx.Err(); err != nil {
		failAll(err)
		return
	}
	w, err := p.Workload(jobs[0].Workload)
	if err != nil {
		// Deterministic failure, shared by every cell of the family.
		failAll(err)
		return
	}
	// BatchThreads decodes the table once per workload (concurrent gangs
	// block on the same sync.Once); only the decoding gang sees a nonzero
	// fresh count, so the stat is counted exactly once however many gangs
	// share the table.
	threads, decoded := w.BatchThreads()
	machines := make([]*sim.Machine, len(jobs))
	for i, j := range jobs {
		policy, pref := buildPolicy(j.Policy, w)
		machines[i] = sim.New(j.Machine, policy, pref, threads)
	}
	results, rerr := sim.RunBatch(ctx, machines, 0)
	if rerr != nil {
		failAll(rerr)
		return
	}
	var served uint64
	for i, j := range jobs {
		res := Result{Sim: results[i]}
		if j.Machine.TrackReuse && machines[i].Reuse() != nil {
			res.ReuseGlobal = machines[i].Reuse().Global()
			res.ReusePerType = machines[i].Reuse().PerType()
		}
		if p.persist != nil {
			p.persist.Put(keys[i], res)
		}
		served += results[i].Instructions
		e := entries[i]
		e.res = res
		close(e.ready)
	}
	p.mu.Lock()
	if p.persist != nil {
		p.stats.StorePuts += len(jobs)
	}
	p.stats.JobsExecuted += len(jobs)
	p.stats.JobsBatched += len(jobs)
	p.stats.BatchesExecuted++
	p.stats.Instructions += served
	p.stats.BatchOpsDecoded += decoded
	p.stats.BatchOpsServed += served
	p.done += len(jobs)
	p.mu.Unlock()
	p.progress()
}
