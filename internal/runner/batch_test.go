package runner

import (
	"context"
	"reflect"
	"testing"

	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/workload"
)

// batchFamily is a sweep-shaped job set: six distinct configurations of
// one workload (a lockstep family) plus a second-workload singleton that
// must fall through to the scalar path.
func batchFamily() []Job {
	wl := tinyWorkload()
	jobs := []Job{
		{Workload: wl, Machine: sim.Config{Cores: 16}},
		{Workload: wl, Machine: sim.Config{Cores: 8}},
		{Workload: wl, Machine: sim.Config{Cores: 16}, Policy: PolicySpec{Kind: STEPS}},
		{Workload: wl, Machine: sim.Config{Cores: 16}, Policy: PolicySpec{Kind: NextLine}},
		{Workload: wl, Machine: sim.Config{Cores: 16},
			Policy: PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.Oblivious)}},
		{Workload: wl, Machine: sim.Config{Cores: 16, TrackReuse: true, LogEvents: true},
			Policy: PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.SW)}},
	}
	other := tinyWorkload()
	other.Seed = 9
	jobs = append(jobs, Job{Workload: other, Machine: sim.Config{Cores: 16}})
	return jobs
}

func TestRunBatchedMatchesRun(t *testing.T) {
	jobs := batchFamily()
	scalar, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{Workers: 4})
	batched, err := p.RunBatched(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatal("batched results diverge from scalar results")
	}
	s := p.Stats()
	// Six batched cells run as two gangs of maxGangMachines(4) and 2.
	if s.JobsExecuted != 7 || s.JobsBatched != 6 || s.BatchesExecuted != 2 {
		t.Fatalf("stats = %+v, want 7 executed / 6 batched / 2 gangs", s)
	}
	if s.BatchOpsDecoded == 0 || s.BatchOpsServed <= s.BatchOpsDecoded {
		t.Fatalf("batch amortization counters implausible: decoded %d, served %d",
			s.BatchOpsDecoded, s.BatchOpsServed)
	}
}

// TestRunBatchedStoreInterleaving pins the store contract: per-cell keys
// are unchanged (scalar-warmed entries serve the batch and vice versa),
// hits shrink the batch to its misses, and the interleaved results stay
// byte-identical to a pure scalar run.
func TestRunBatchedStoreInterleaving(t *testing.T) {
	jobs := batchFamily()[:6] // one six-cell family
	dir := t.TempDir()

	want, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-warm half the cells through the scalar path.
	warmer := New(Options{Workers: 4, Memo: NewStoreMemo(openStore(t, dir))})
	if _, err := warmer.Run(context.Background(), jobs[:3]); err != nil {
		t.Fatal(err)
	}

	// A fresh pool over the same store batches the full family: the three
	// warmed cells must come back from disk and only the misses simulate.
	p := New(Options{Workers: 4, Memo: NewStoreMemo(openStore(t, dir))})
	got, err := p.RunBatched(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.StoreHits != 3 || s.JobsExecuted != 3 || s.JobsBatched != 3 || s.BatchesExecuted != 1 {
		t.Fatalf("half-warmed stats = %+v, want 3 store hits / 3 executed / 3 batched / 1 batch", s)
	}
	for i := range want {
		a, b := want[i], got[i]
		a.Err, b.Err = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cell %d: interleaved result differs from scalar:\n%+v\nvs\n%+v", i, a, b)
		}
	}

	// Reverse direction: the batch's Puts must serve a scalar run 100%.
	rev := New(Options{Workers: 4, Memo: NewStoreMemo(openStore(t, dir))})
	back, err := rev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := rev.Stats(); s.JobsExecuted != 0 || s.StoreHits != 6 {
		t.Fatalf("batch-warmed scalar stats = %+v, want 0 executed / 6 store hits", s)
	}
	for i := range want {
		a, b := want[i], back[i]
		a.Err, b.Err = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cell %d: batch-warmed result differs from scalar", i)
		}
	}

	// And a fully-warmed batched rerun executes nothing.
	again := New(Options{Workers: 4, Memo: NewStoreMemo(openStore(t, dir))})
	if _, err := again.RunBatched(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if s := again.Stats(); s.JobsExecuted != 0 || s.StoreHits != 6 || s.BatchesExecuted != 0 {
		t.Fatalf("fully-warmed batched stats = %+v, want 0 executed / 6 store hits / 0 batches", s)
	}
}

// TestRunBatchedCancellation mirrors Run's contract: a cancelled context
// surfaces promptly and claimed cells are released for retry.
func TestRunBatchedCancellation(t *testing.T) {
	p := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunBatched(ctx, batchFamily()[:4]); err == nil {
		t.Fatal("RunBatched on cancelled ctx returned nil error")
	}
	// The cells must be retryable on a live context.
	rs, err := p.RunBatched(context.Background(), batchFamily()[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("cell %d failed after retry: %v", i, r.Err)
		}
	}
}

// TestBatchThreadsMatchesThreads checks the workload-level table contract
// the batch path rests on: BatchThreads yields the same thread metadata
// and byte-identical op streams as Threads.
func TestBatchThreadsMatchesThreads(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCE, Threads: 4, Seed: 11, Scale: 0.02})
	bt, fresh := w.BatchThreads()
	if fresh == 0 {
		t.Fatal("first BatchThreads reported zero freshly decoded ops")
	}
	if _, again := w.BatchThreads(); again != 0 {
		t.Fatalf("second BatchThreads reported %d fresh ops, want 0 (table reused)", again)
	}
	ths := w.Threads()
	if len(bt) != len(ths) {
		t.Fatalf("BatchThreads returned %d threads, want %d", len(bt), len(ths))
	}
	var total uint64
	for i := range ths {
		if bt[i].ID != ths[i].ID || bt[i].Type != ths[i].Type || bt[i].TypeName != ths[i].TypeName {
			t.Fatalf("thread %d metadata diverges: %+v vs %+v", i, bt[i], ths[i])
		}
		a, b := bt[i].New(), ths[i].New()
		n := uint64(0)
		for {
			opA, okA := a.Next()
			opB, okB := b.Next()
			if okA != okB {
				t.Fatalf("thread %d: stream lengths diverge at op %d", i, n)
			}
			if !okA {
				break
			}
			if opA != opB {
				t.Fatalf("thread %d op %d: %+v vs %+v", i, n, opA, opB)
			}
			n++
		}
		total += n
	}
	if total != fresh {
		t.Fatalf("fresh op count %d != total stream length %d", fresh, total)
	}
}
