package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"slicc/internal/sim"
	"slicc/internal/store"
)

// Memo is a persistent memoization layer under the pool's in-flight dedup.
// The pool consults it once per *claimed* job — after in-memory dedup, so
// concurrent identical jobs cost one lookup — and records every successful
// execution. Implementations must be safe for concurrent use and must only
// return results previously recorded for exactly that key; a Memo that
// simply always misses is valid.
//
// Keys come from JobKey, so a Memo shared between processes (the store-
// backed one) is shared between every binary that runs the same jobs.
type Memo interface {
	// Get returns the recorded result for key, if any.
	Get(key string) (Result, bool)
	// Put records a successful result under key. Best effort: a Memo that
	// fails to record must simply miss later.
	Put(key string, res Result)
}

// jobKeyVersion tags the hash input. Bump it whenever Job's schema or the
// meaning of any field changes, so stale persisted results from older
// binaries become unreachable instead of silently wrong.
const jobKeyVersion = "slicc-job-v1"

// JobKey returns the stable content key of a job: a hex SHA-256 over a
// versioned, canonical encoding of the normalized job. Two jobs that
// describe the same simulation — including differently spelled defaults —
// have equal keys; any semantic difference changes the key.
//
// Trace-driven jobs must carry Workload.TraceDigest (the runner resolves it
// before keying): the key then covers the trace's *contents*, so renaming a
// container does not defeat persistent memoization and re-recording one
// does not replay stale results.
func JobKey(j Job) string {
	j = j.normalized()
	// Paths never reach the key: contents are identified by digest only.
	j.Workload.TracePath = ""
	b, err := json.Marshal(j)
	if err != nil {
		// Job is a tree of plain exported value fields; Marshal cannot fail.
		panic(fmt.Sprintf("runner: encoding job key: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(jobKeyVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// storedResult is the persisted subset of Result: everything except Err
// (failed and cancelled jobs are never persisted).
type storedResult struct {
	Sim                       sim.Result
	ReuseGlobal, ReusePerType sim.ReuseBreakdown
	BloomAccuracy             float64
}

// storeMemo adapts a content-addressed store.Store to the Memo interface,
// encoding results with gob (bit-exact for floats, so a replayed result
// formats byte-identically to the executed one).
type storeMemo struct {
	s *store.Store
}

// NewStoreMemo wraps a result store as a pool Memo.
func NewStoreMemo(s *store.Store) Memo { return storeMemo{s: s} }

func (m storeMemo) Get(key string) (Result, bool) {
	b, ok := m.s.Get(key)
	if !ok {
		return Result{}, false
	}
	var sr storedResult
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sr); err != nil {
		// An undecodable payload (written by a binary with different result
		// types under the same key version) is a miss, like any corruption.
		return Result{}, false
	}
	return Result{
		Sim:           sr.Sim,
		ReuseGlobal:   sr.ReuseGlobal,
		ReusePerType:  sr.ReusePerType,
		BloomAccuracy: sr.BloomAccuracy,
	}, true
}

func (m storeMemo) Put(key string, res Result) {
	if res.Err != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(storedResult{
		Sim:           res.Sim,
		ReuseGlobal:   res.ReuseGlobal,
		ReusePerType:  res.ReusePerType,
		BloomAccuracy: res.BloomAccuracy,
	}); err != nil {
		return
	}
	// Best effort by contract: a failed write only costs a future re-run.
	_ = m.s.Put(key, buf.Bytes())
}
