package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"slicc/internal/sim"
	"slicc/internal/store"
)

// Memo is a persistent memoization layer under the pool's in-flight dedup.
// The pool consults it once per *claimed* job — after in-memory dedup, so
// concurrent identical jobs cost one lookup — and records every successful
// execution. Implementations must be safe for concurrent use and must only
// return results previously recorded for exactly that key; a Memo that
// simply always misses is valid.
//
// Keys come from JobKey, so a Memo shared between processes (the store-
// backed one) is shared between every binary that runs the same jobs.
type Memo interface {
	// Get returns the recorded result for key, if any.
	Get(key string) (Result, bool)
	// Put records a successful result under key. Best effort: a Memo that
	// fails to record must simply miss later.
	Put(key string, res Result)
}

// jobKeyVersion tags the hash input. Bump it whenever Job's schema or the
// meaning of any field changes, so stale persisted results from older
// binaries become unreachable instead of silently wrong.
const jobKeyVersion = "slicc-job-v1"

// JobKey returns the stable content key of a job: a hex SHA-256 over a
// versioned, canonical encoding of the normalized job. Two jobs that
// describe the same simulation — including differently spelled defaults —
// have equal keys; any semantic difference changes the key.
//
// Trace-driven jobs must carry Workload.TraceDigest (the runner resolves it
// before keying): the key then covers the trace's *contents*, so renaming a
// container does not defeat persistent memoization and re-recording one
// does not replay stale results.
func JobKey(j Job) string {
	j = j.normalized()
	// Paths never reach the key: contents are identified by digest only.
	j.Workload.TracePath = ""
	b, err := json.Marshal(j)
	if err != nil {
		// Job is a tree of plain exported value fields; Marshal cannot fail.
		panic(fmt.Sprintf("runner: encoding job key: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(jobKeyVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// storedResult is the persisted subset of Result: everything except Err
// (failed and cancelled jobs are never persisted).
type storedResult struct {
	Sim                       sim.Result
	ReuseGlobal, ReusePerType sim.ReuseBreakdown
	BloomAccuracy             float64
}

// memoCacheCap bounds the decoded-result cache entries a storeMemo keeps
// (a Result is a few KB of counters plus optional event slices; hundreds
// of entries cover any realistic working set of sweeps and figures).
const memoCacheCap = 512

// storeMemo adapts a content-addressed store.Store to the Memo interface,
// encoding results with gob (bit-exact for floats, so a replayed result
// formats byte-identically to the executed one).
//
// Above the store it keeps a bounded cache of *decoded* Results with
// singleflight semantics: N concurrent Gets of the same warm key block on
// one gob decode instead of performing N, and later Gets skip the decode
// (and, with the store's memory tier, all I/O) entirely. Cached Results
// are shared between callers — safe because the pool treats results as
// immutable once recorded. The store's immutability invariant carries
// up: a decoded entry can never be stale in content, only in existence,
// exactly like the store's own memory tier.
type storeMemo struct {
	s *store.Store

	mu      sync.Mutex
	decoded map[string]*memoEntry
	order   []string // insertion order, for bounding (oldest first)
}

// memoEntry is one singleflight slot: ready closes when the first
// caller's decode finishes, after which res/ok never change.
type memoEntry struct {
	ready chan struct{}
	res   Result
	ok    bool
}

// NewStoreMemo wraps a result store as a pool Memo.
func NewStoreMemo(s *store.Store) Memo {
	return &storeMemo{s: s, decoded: make(map[string]*memoEntry)}
}

func (m *storeMemo) Get(key string) (Result, bool) {
	m.mu.Lock()
	if e, ok := m.decoded[key]; ok {
		m.mu.Unlock()
		<-e.ready // singleflight: wait for the first caller's decode
		return e.res, e.ok
	}
	e := &memoEntry{ready: make(chan struct{})}
	m.insertLocked(key, e)
	m.mu.Unlock()

	e.res, e.ok = m.load(key)
	if !e.ok {
		// Misses are not cached here (the store's negative tier already
		// makes them cheap, and a Put by another process must become
		// visible on the next Get), so drop the slot before releasing
		// waiters.
		m.mu.Lock()
		if m.decoded[key] == e {
			delete(m.decoded, key)
		}
		m.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.ok
}

// load reads and decodes key from the store (no caching).
func (m *storeMemo) load(key string) (Result, bool) {
	b, ok := m.s.Get(key)
	if !ok {
		return Result{}, false
	}
	var sr storedResult
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sr); err != nil {
		// An undecodable payload (written by a binary with different result
		// types under the same key version) is a miss, like any corruption.
		return Result{}, false
	}
	return Result{
		Sim:           sr.Sim,
		ReuseGlobal:   sr.ReuseGlobal,
		ReusePerType:  sr.ReusePerType,
		BloomAccuracy: sr.BloomAccuracy,
	}, true
}

// insertLocked records a slot under key and evicts the oldest completed
// slots past memoCacheCap. Callers hold m.mu.
func (m *storeMemo) insertLocked(key string, e *memoEntry) {
	m.decoded[key] = e
	m.order = append(m.order, key)
	for len(m.decoded) > memoCacheCap && len(m.order) > 0 {
		oldest := m.order[0]
		m.order = m.order[1:]
		old, ok := m.decoded[oldest]
		if !ok || old == e {
			continue
		}
		select {
		case <-old.ready:
			delete(m.decoded, oldest)
		default:
			// Still decoding; its Get will finish regardless. Leave it —
			// the map may transiently exceed the cap by in-flight slots.
		}
	}
}

func (m *storeMemo) Put(key string, res Result) {
	if res.Err != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(storedResult{
		Sim:           res.Sim,
		ReuseGlobal:   res.ReuseGlobal,
		ReusePerType:  res.ReusePerType,
		BloomAccuracy: res.BloomAccuracy,
	}); err != nil {
		return
	}
	// Best effort by contract: a failed write only costs a future re-run.
	_ = m.s.Put(key, buf.Bytes())
	// The decoded form is in hand; cache it so the first warm Get skips
	// the read+decode too.
	e := &memoEntry{ready: make(chan struct{}), res: Result{
		Sim:           res.Sim,
		ReuseGlobal:   res.ReuseGlobal,
		ReusePerType:  res.ReusePerType,
		BloomAccuracy: res.BloomAccuracy,
	}, ok: true}
	close(e.ready)
	m.mu.Lock()
	if _, exists := m.decoded[key]; !exists {
		m.insertLocked(key, e)
	}
	m.mu.Unlock()
}
