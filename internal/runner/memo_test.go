package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/store"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

func TestJobKeyStable(t *testing.T) {
	explicit := tinyJob()
	explicit.Machine = explicit.Machine.WithDefaults()
	defaulted := tinyJob()
	defaulted.Machine = sim.Config{}
	if JobKey(explicit) != JobKey(defaulted) {
		t.Fatal("defaulted and explicit spellings of one job keyed differently")
	}
	if len(JobKey(explicit)) != 64 {
		t.Fatalf("key %q is not hex sha256", JobKey(explicit))
	}

	other := tinyJob()
	other.Policy = PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.SW)}
	if JobKey(other) == JobKey(explicit) {
		t.Fatal("distinct jobs share a key")
	}
	tweaked := tinyJob()
	tweaked.Workload.Seed++
	if JobKey(tweaked) == JobKey(explicit) {
		t.Fatal("seed change did not change the key")
	}
}

func TestJobKeyIgnoresTracePathKeysDigest(t *testing.T) {
	a := Job{Workload: workload.Config{TracePath: "/tmp/a.trace", TraceDigest: "d1"}}
	b := Job{Workload: workload.Config{TracePath: "/other/name.trace", TraceDigest: "d1"}}
	c := Job{Workload: workload.Config{TracePath: "/tmp/a.trace", TraceDigest: "d2"}}
	if JobKey(a) != JobKey(b) {
		t.Fatal("same digest under different paths keyed differently")
	}
	if JobKey(a) == JobKey(c) {
		t.Fatal("different digests share a key")
	}
}

// openStore opens a result store rooted in a test temp dir.
func openStore(t testing.TB, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreMemoPersistsAcrossPools(t *testing.T) {
	dir := t.TempDir()

	jobs := []Job{
		tinyJob(),
		{Workload: tinyWorkload(), Machine: sim.Config{Cores: 16, TrackReuse: true, LogEvents: true},
			Policy: PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.SW)}},
	}

	cold := New(Options{Workers: 2, Memo: NewStoreMemo(openStore(t, dir))})
	rs1, err := cold.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.JobsExecuted != 2 || s.StoreHits != 0 || s.StorePuts != 2 {
		t.Fatalf("cold stats = %+v, want 2 executed / 0 store hits / 2 puts", s)
	}

	// A fresh pool over a fresh store handle models a new process: every
	// job must come back from disk, bit-identical, with zero executions.
	warm := New(Options{Workers: 2, Memo: NewStoreMemo(openStore(t, dir))})
	rs2, err := warm.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.JobsExecuted != 0 || s.StoreHits != 2 {
		t.Fatalf("warm stats = %+v, want 0 executed / 2 store hits", s)
	}
	for i := range rs1 {
		a, b := rs1[i], rs2[i]
		a.Err, b.Err = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("job %d: persisted result differs from executed one:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	if len(rs2[1].Sim.Events) == 0 || rs2[1].ReuseGlobal == (sim.ReuseBreakdown{}) {
		t.Fatal("persisted result lost events or reuse breakdown")
	}
}

func TestStoreMemoUnderInFlightDedup(t *testing.T) {
	// Duplicate jobs in one batch must claim once, so the store records
	// one entry and the duplicates count as dedup hits, not store hits.
	p := New(Options{Workers: 4, Memo: NewStoreMemo(openStore(t, t.TempDir()))})
	rs, err := p.Run(context.Background(), []Job{tinyJob(), tinyJob(), tinyJob()})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Sim.Cycles != rs[2].Sim.Cycles {
		t.Fatal("duplicates disagree")
	}
	s := p.Stats()
	if s.JobsExecuted != 1 || s.DedupHits != 2 || s.StoreHits != 0 || s.StorePuts != 1 {
		t.Fatalf("stats = %+v, want 1 executed / 2 dedup / 0 store hits / 1 put", s)
	}
}

func TestStoreMemoFailedJobsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p := New(Options{Workers: 1, Memo: NewStoreMemo(st)})
	missing := Job{Workload: workload.Config{TracePath: filepath.Join(t.TempDir(), "absent.trace")}}
	if _, err := p.Run(context.Background(), []Job{missing}); err == nil {
		t.Fatal("expected error for missing trace")
	}
	sst, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sst.Entries != 0 {
		t.Fatalf("failed job persisted %d store entries", sst.Entries)
	}
}

func TestStoreMemoCorruptEntryReexecutes(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p1 := New(Options{Workers: 1, Memo: NewStoreMemo(st)})
	if _, err := p1.Run(context.Background(), []Job{tinyJob()}); err != nil {
		t.Fatal(err)
	}
	// Truncate every entry: the warm pool must fall back to execution.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if err := os.Truncate(filepath.Join(dir, de.Name()), 10); err != nil {
			t.Fatal(err)
		}
	}
	p2 := New(Options{Workers: 1, Memo: NewStoreMemo(openStore(t, dir))})
	if _, err := p2.Run(context.Background(), []Job{tinyJob()}); err != nil {
		t.Fatal(err)
	}
	if s := p2.Stats(); s.JobsExecuted != 1 || s.StoreHits != 0 {
		t.Fatalf("stats = %+v, want re-execution after corruption", s)
	}
}

// TestStoreMemoTraceJob: trace-driven jobs persist under their content
// digest, so a renamed container still hits the store from another pool.
func TestStoreMemoTraceJob(t *testing.T) {
	dir := t.TempDir()
	w := workload.New(tinyWorkload())
	path := filepath.Join(t.TempDir(), "wl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	job := Job{Workload: workload.Config{TracePath: path}, Machine: sim.Config{Cores: 16}}
	p1 := New(Options{Workers: 1, Memo: NewStoreMemo(openStore(t, dir))})
	r1, err := p1.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}

	renamed := filepath.Join(filepath.Dir(path), "other-name.trace")
	if err := os.Rename(path, renamed); err != nil {
		t.Fatal(err)
	}
	job2 := Job{Workload: workload.Config{TracePath: renamed}, Machine: sim.Config{Cores: 16}}
	p2 := New(Options{Workers: 1, Memo: NewStoreMemo(openStore(t, dir))})
	r2, err := p2.Run(context.Background(), []Job{job2})
	if err != nil {
		t.Fatal(err)
	}
	if s := p2.Stats(); s.StoreHits != 1 || s.JobsExecuted != 0 {
		t.Fatalf("stats = %+v, want renamed trace served from store", s)
	}
	if r1[0].Sim.Cycles != r2[0].Sim.Cycles {
		t.Fatal("trace store hit diverged")
	}
}

// openMemStore opens a store with the in-memory hot tier enabled, so its
// Stats expose how many lookups the memo actually performed.
func openMemStore(t testing.TB, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// storeLookups sums every tier's lookup counters — the total number of
// times anything asked the store for a key.
func storeLookups(t *testing.T, s *store.Store) int64 {
	t.Helper()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.MemHits + st.MemMisses + st.NegativeHits
}

func TestStoreMemoDecodesOnce(t *testing.T) {
	dir := t.TempDir()
	res := Result{Sim: sim.Result{Cycles: 42}}
	NewStoreMemo(openMemStore(t, dir)).Put("k", res)

	// A fresh memo over a fresh handle: N concurrent Gets of the warm key
	// must collapse onto ONE store lookup (singleflight), everyone getting
	// the same decoded result.
	s := openMemStore(t, dir)
	m := NewStoreMemo(s)
	before := storeLookups(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, ok := m.Get("k")
			if !ok || got.Sim.Cycles != 42 {
				t.Errorf("warm get: ok=%v cycles=%v", ok, got.Sim.Cycles)
			}
		}()
	}
	wg.Wait()
	if n := storeLookups(t, s) - before; n != 1 {
		t.Fatalf("8 concurrent warm Gets performed %d store lookups, want 1", n)
	}
	// Later Gets are served from the decoded cache: still no new lookups.
	if _, ok := m.Get("k"); !ok {
		t.Fatal("cached get missed")
	}
	if n := storeLookups(t, s) - before; n != 1 {
		t.Fatalf("decoded cache bypassed: %d lookups", n)
	}
}

func TestStoreMemoPutCachesDecoded(t *testing.T) {
	s := openStore(t, t.TempDir())
	m := NewStoreMemo(s)
	m.Put("k", Result{Sim: sim.Result{Cycles: 7}})
	// Remove the persisted entry; the decoded copy cached by Put must
	// still serve (proving the first warm Get skips the read+decode).
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Get("k"); !ok || got.Sim.Cycles != 7 {
		t.Fatalf("Put's decoded copy not cached: ok=%v got=%+v", ok, got)
	}
}

func TestStoreMemoMissesNotCached(t *testing.T) {
	// Two memos over one directory model two processes. A miss in A must
	// not be cached: once B records the key, A sees it.
	dir := t.TempDir()
	a := NewStoreMemo(openStore(t, dir))
	b := NewStoreMemo(openStore(t, dir))
	if _, ok := a.Get("k"); ok {
		t.Fatal("phantom hit")
	}
	b.Put("k", Result{Sim: sim.Result{Cycles: 9}})
	if got, ok := a.Get("k"); !ok || got.Sim.Cycles != 9 {
		t.Fatalf("foreign Put invisible after earlier miss: ok=%v", ok)
	}
}

func TestStoreMemoFailedResultNotCached(t *testing.T) {
	s := openStore(t, t.TempDir())
	m := NewStoreMemo(s)
	m.Put("k", Result{Err: context.Canceled})
	if _, ok := m.Get("k"); ok {
		t.Fatal("failed result served")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Fatal("failed result persisted")
	}
}

func TestStoreMemoCacheBounded(t *testing.T) {
	m := NewStoreMemo(openStore(t, t.TempDir())).(*storeMemo)
	for i := 0; i < memoCacheCap+100; i++ {
		m.Put(fmt.Sprintf("key-%d", i), Result{Sim: sim.Result{Cycles: float64(i)}})
	}
	m.mu.Lock()
	n := len(m.decoded)
	m.mu.Unlock()
	if n > memoCacheCap {
		t.Fatalf("decoded cache holds %d entries, cap %d", n, memoCacheCap)
	}
	// The newest entries survived (insertion-order eviction drops oldest).
	last := fmt.Sprintf("key-%d", memoCacheCap+99)
	if got, ok := m.Get(last); !ok || got.Sim.Cycles != float64(memoCacheCap+99) {
		t.Fatalf("newest entry evicted: ok=%v", ok)
	}
}

func TestPoolCloseReleasesTraceContainers(t *testing.T) {
	w := workload.New(tinyWorkload())
	path := filepath.Join(t.TempDir(), "wl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	p := New(Options{Workers: 1})
	job := Job{Workload: workload.Config{TracePath: path}, Machine: sim.Config{Cores: 16}}
	if _, err := p.Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The workload cache was flushed; a new run of a *different* machine
	// over the same trace must reopen the container and still work.
	job2 := job
	job2.Machine.L1I.SizeBytes = 64 * 1024
	if _, err := p.Run(context.Background(), []Job{job2}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.WorkloadsBuilt != 2 {
		t.Fatalf("workloads built = %d, want rebuild after Close", s.WorkloadsBuilt)
	}
	// Close is idempotent and safe with a freshly refilled cache.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
