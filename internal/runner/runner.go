// Package runner executes simulation jobs on a worker pool. It is the
// parallel engine underneath the experiment harness and the public API:
// every simulation in the paper's evaluation is a pure function of
// (workload config, machine config, policy), so jobs are declared as plain
// comparable values, deduplicated by content, memoized across batches, and
// executed on GOMAXPROCS workers with context cancellation.
//
// The contract that makes this safe:
//
//   - workload.Workload is immutable after New, so one synthesis is shared
//     by every simulation of that workload (each sim re-creates its own
//     trace sources from the immutable thread descriptors);
//   - sim.Machine is single-use and built per job, so concurrent jobs share
//     nothing mutable;
//   - results are independent of execution order, so a batch's results are
//     deterministic for any worker count.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"slicc/internal/bloom"
	"slicc/internal/cache"
	"slicc/internal/prefetch"
	"slicc/internal/sched"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/telemetry"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

// PolicyKind selects a job's scheduler/prefetcher pair. The PIF upper bound
// needs no kind of its own: it is Baseline on a machine whose L1-I config
// was transformed by prefetch.PIFUpperBoundL1I.
type PolicyKind int

// Policy kinds.
const (
	// Baseline is the conventional OS scheduler.
	Baseline PolicyKind = iota
	// NextLine is Baseline plus a next-line instruction prefetcher.
	NextLine
	// SLICC runs internal/slicc with the spec's SLICC configuration
	// (which selects the variant).
	SLICC
	// Stream is Baseline plus the finite-storage temporal stream
	// prefetcher.
	Stream
	// STEPS is the time-multiplexing related-work policy.
	STEPS
	// CSP migrates for system code only; its shared-code ranges are
	// derived from the job's workload at execution time, keeping the job
	// spec declarative.
	CSP
)

// Remote executes claimed jobs somewhere else — the enqueue-instead-of-
// execute seam under distributed sweeps. Execute receives the job's
// content key (JobKey) and the canonical JSON of the normalized job; it
// returns once the job's result has been published to the shared store
// under that key (by whoever executed it), or with an error when the job
// cannot be resolved remotely. Implementations must be safe for
// concurrent use. The queue dispatcher is the production implementation.
type Remote interface {
	Execute(ctx context.Context, key string, job []byte) error
}

// PolicySpec declares a job's policy as data.
type PolicySpec struct {
	Kind PolicyKind
	// SLICC configures the SLICC policy; ignored for other kinds.
	SLICC islicc.Config
}

// JobKind separates full machine simulations from the bloom-accuracy replay
// of Figure 9 (which drives one cache+filter pair, not a machine).
type JobKind int

// Job kinds.
const (
	// KindSim runs a full multicore simulation.
	KindSim JobKind = iota
	// KindBloomAccuracy replays a thread sample through one cache+bloom
	// filter pair and records filter/ground-truth agreement (Figure 9).
	KindBloomAccuracy
)

// Job declares one unit of work as a comparable value: two jobs that
// compare equal produce identical results, which is what dedup and
// memoization key on.
type Job struct {
	Kind     JobKind
	Workload workload.Config

	// KindSim fields.
	Machine sim.Config
	Policy  PolicySpec

	// KindBloomAccuracy fields.
	Cache         cache.Config
	BloomBits     int
	SampleThreads int
}

// normalized fills defaulted spellings in so that semantically identical
// jobs compare equal.
func (j Job) normalized() Job {
	j.Workload = j.Workload.WithDefaults()
	switch j.Kind {
	case KindSim:
		j.Machine = j.Machine.WithDefaults()
		if j.Policy.Kind == SLICC {
			j.Policy.SLICC = j.Policy.SLICC.WithDefaults()
		}
	case KindBloomAccuracy:
		j.Machine = sim.Config{}
		j.Policy = PolicySpec{}
	}
	return j
}

// Result is one job's outcome.
type Result struct {
	// Sim holds the machine metrics for KindSim jobs.
	Sim sim.Result
	// ReuseGlobal/ReusePerType are filled when the job's machine set
	// TrackReuse (the Figure 3 breakdown).
	ReuseGlobal, ReusePerType sim.ReuseBreakdown
	// BloomAccuracy is the filter/ground-truth agreement for
	// KindBloomAccuracy jobs.
	BloomAccuracy float64
	// Err is non-nil when the job was cancelled mid-run or failed outright
	// (e.g. its trace container could not be opened).
	Err error
}

// isCancellation reports whether err is a context cancellation rather than
// a deterministic job failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats counts the pool's work since creation.
type Stats struct {
	// JobsRequested is the total jobs passed to Run.
	JobsRequested int
	// JobsExecuted is how many simulations actually ran.
	JobsExecuted int
	// DedupHits is how many requested jobs were served by an identical
	// job's execution (in the same batch or memoized from an earlier one).
	DedupHits int
	// StoreHits is how many requested jobs were served by the persistent
	// Memo instead of executing. JobsRequested == JobsExecuted + DedupHits
	// + StoreHits + JobsRemote at every quiescent point.
	StoreHits int
	// JobsRemote is how many claimed jobs were resolved by a Remote (the
	// distributed worker fleet) rather than a local execution: the remote
	// ran them, the shared store carried the result back. Zero outside
	// RunEachVia.
	JobsRemote int
	// StorePuts is how many executed results were recorded in the Memo.
	StorePuts int
	// WorkloadsBuilt / WorkloadHits count workload-synthesis cache
	// misses/hits; the cache is keyed by (kind, threads, seed, scale).
	WorkloadsBuilt int
	WorkloadHits   int
	// Instructions is the total simulated instructions across executed
	// jobs (dedup and store hits contribute nothing: no instructions were
	// simulated for them). With wall-clock time it yields the pool's
	// effective simulation rate.
	Instructions uint64
	// JobsBatched is how many executed jobs ran inside a lockstep batch
	// (RunBatched families; a subset of JobsExecuted), and BatchesExecuted
	// how many batch passes ran them.
	JobsBatched     int
	BatchesExecuted int
	// BatchOpsDecoded counts ops decoded once into shared batch tables;
	// BatchOpsServed counts instructions batched machines executed from
	// them. Their ratio is the decode amortization: on the scalar path
	// every served op would have been decoded (or regenerated) per cell.
	BatchOpsDecoded uint64
	BatchOpsServed  uint64
}

// Options configures a pool.
type Options struct {
	// Workers bounds concurrent job executions (default GOMAXPROCS).
	Workers int
	// OnProgress, if set, is called (without any pool lock held) as jobs
	// are scheduled and as they finish, with the pool-lifetime completed
	// and scheduled counts.
	OnProgress func(done, scheduled int)
	// Memo, if set, persists results beneath the in-flight dedup: a
	// claimed job consults the Memo (keyed by JobKey) before executing and
	// records its result after. A store-backed Memo (NewStoreMemo) makes
	// memoization durable across processes.
	Memo Memo
}

// Pool runs jobs on a bounded set of workers and memoizes results for the
// pool's lifetime, so repeated jobs — within a batch, across batches, or
// across concurrent batches — simulate once.
type Pool struct {
	workers    int
	onProgress func(done, scheduled int)
	// persist is the optional durable memoization layer (Options.Memo).
	persist Memo
	// sem bounds concurrent job executions pool-wide: concurrent Run
	// calls share the budget instead of multiplying it.
	sem chan struct{}

	mu        sync.Mutex
	memo      map[Job]*entry
	workloads map[workload.Config]*wlEntry
	// digests caches trace-file content digests by path, revalidated
	// against (size, mtime) so a re-recorded file is re-hashed.
	digests map[string]digestEntry
	// tracePaths remembers a path holding each digest's contents: job keys
	// carry only the digest (so identical recordings dedup across names),
	// and execution resolves the digest back to a readable file here.
	tracePaths map[string]string
	stats      Stats
	scheduled  int
	done       int
}

// digestEntry is one cached trace-file digest with the stat fingerprint it
// was computed under.
type digestEntry struct {
	size   int64
	mtime  time.Time
	digest string
}

// entry is a memoized (possibly in-flight) job execution.
type entry struct {
	ready chan struct{} // closed once res is valid
	res   Result
	// storeHit records that res was served by the persistent Memo rather
	// than an execution. Written before ready closes, read only after, so
	// no lock guards it. It is observation metadata (RunEach reports it to
	// streaming callers), never part of the result itself.
	storeHit bool
}

// wlEntry is a memoized (possibly in-flight) workload synthesis or trace
// open.
type wlEntry struct {
	ready chan struct{}
	w     *workload.Workload
	err   error
}

// New builds a pool.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers:    opts.Workers,
		onProgress: opts.OnProgress,
		persist:    opts.Memo,
		sem:        make(chan struct{}, opts.Workers),
		memo:       make(map[Job]*entry),
		workloads:  make(map[workload.Config]*wlEntry),
		digests:    make(map[string]digestEntry),
		tracePaths: make(map[string]string),
	}
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close releases resources the pool caches for its lifetime — today that
// is the open trace containers behind recorded workloads, whose
// descriptors would otherwise live as long as the process. It waits for
// in-flight workload constructions, then closes and evicts every cached
// workload. Close does not stop running jobs; call it after outstanding
// Run calls return. The pool remains usable afterwards (closed workloads
// are simply rebuilt on demand), so a long-lived caller may also use Close
// as a cache flush.
func (p *Pool) Close() error {
	p.mu.Lock()
	cached := make([]*wlEntry, 0, len(p.workloads))
	for _, e := range p.workloads {
		cached = append(cached, e)
	}
	p.workloads = make(map[workload.Config]*wlEntry)
	p.mu.Unlock()

	var firstErr error
	for _, e := range cached {
		<-e.ready
		if e.w == nil {
			continue
		}
		if err := e.w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Run executes jobs and returns their results in input order. Identical
// jobs (within this batch or from any earlier Run on the pool) execute
// once; trace-backed jobs are keyed by the content digest of their trace
// file, so the memoization stays sound across renames and re-recordings.
// On cancellation Run returns ctx.Err() promptly; jobs already claimed but
// not finished are released so a later Run can retry them.
func (p *Pool) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	norm, err := p.normalizeJobs(jobs)
	if err != nil {
		return nil, err
	}
	entries, dedupped, mineJobs, mine := p.claimAll(norm)
	p.dispatch(ctx, mineJobs, mine)
	return p.gather(ctx, norm, entries, dedupped)
}

// normalizeJobs normalizes a batch (including trace-digest resolution)
// before anything is claimed: a digest failure must be able to return
// early, and an early return after a claim would orphan the claimed
// entry's ready channel and deadlock every later Run of that job.
func (p *Pool) normalizeJobs(jobs []Job) ([]Job, error) {
	norm := make([]Job, len(jobs))
	for i, j := range jobs {
		j = j.normalized()
		if j.Workload.TracePath != "" {
			if j.Workload.TraceDigest == "" {
				d, err := p.traceDigest(j.Workload.TracePath)
				if err != nil {
					return nil, err
				}
				j.Workload.TraceDigest = d
			}
			p.mu.Lock()
			if _, ok := p.tracePaths[j.Workload.TraceDigest]; !ok {
				p.tracePaths[j.Workload.TraceDigest] = j.Workload.TracePath
			}
			p.mu.Unlock()
			// Key on contents only: the same recording under two names is
			// one job, and a re-recorded name is a different one.
			j.Workload.TracePath = ""
		}
		norm[i] = j
	}
	return norm, nil
}

// claimAll claims every job in norm, returning the per-input entries, the
// dedup markers, and the subset this caller now owns and must resolve.
func (p *Pool) claimAll(norm []Job) (entries []*entry, dedupped []bool, mineJobs []Job, mine []*entry) {
	p.mu.Lock()
	p.stats.JobsRequested += len(norm)
	p.mu.Unlock()
	entries = make([]*entry, len(norm))
	dedupped = make([]bool, len(norm))
	for i, j := range norm {
		e, claimed := p.claim(j)
		if claimed {
			mine = append(mine, e)
			mineJobs = append(mineJobs, j)
		} else {
			dedupped[i] = true
			p.mu.Lock()
			p.stats.DedupHits++
			p.mu.Unlock()
		}
		entries[i] = e
	}
	p.progress()
	return entries, dedupped, mineJobs, mine
}

// gather resolves a claimed batch to results in input order.
func (p *Pool) gather(ctx context.Context, norm []Job, entries []*entry, dedupped []bool) ([]Result, error) {
	// Wait on entries owned by concurrent Run calls too. Entries
	// that failed because a *different* Run's context was cancelled are
	// re-claimed (the fail path evicted them from the memo) and
	// re-dispatched as a parallel batch, so one caller's cancellation
	// neither poisons nor serializes another's results. Only cancellation
	// is worth retrying: a job that failed on its own (e.g. an unreadable
	// trace file) would fail identically again.
	for {
		var retry []int
		for i, e := range entries {
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if isCancellation(e.res.Err) && ctx.Err() == nil {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 {
			break
		}
		var retryJobs []Job
		var retryEntries []*entry
		for _, i := range retry {
			e, claimed := p.claim(norm[i])
			entries[i] = e
			if claimed {
				// A job counted as a dedup hit whose owner was cancelled
				// ends up executed by this Run after all; un-count the hit
				// to keep JobsRequested == JobsExecuted + DedupHits.
				if dedupped[i] {
					dedupped[i] = false
					p.mu.Lock()
					p.stats.DedupHits--
					p.mu.Unlock()
				}
				retryJobs = append(retryJobs, norm[i])
				retryEntries = append(retryEntries, e)
			}
		}
		if len(retryJobs) > 0 {
			p.progress()
			p.dispatch(ctx, retryJobs, retryEntries)
		}
	}

	results := make([]Result, len(norm))
	var firstErr error
	for i, e := range entries {
		results[i] = e.res
		if firstErr == nil && e.res.Err != nil {
			firstErr = e.res.Err
		}
	}
	return results, firstErr
}

// dispatch executes claimed entries on up to Workers goroutines (the
// pool-wide semaphore still bounds global concurrency) and resolves every
// entry before returning: entries not executed because ctx was cancelled
// are failed and released for a future retry.
func (p *Pool) dispatch(ctx context.Context, jobs []Job, entries []*entry) {
	if len(jobs) == 0 {
		return
	}
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range feed {
				p.execute(ctx, jobs[k], entries[k], nil)
			}
		}()
	}
feeding:
	for k := range jobs {
		select {
		case feed <- k:
		case <-ctx.Done():
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	for k, e := range entries {
		select {
		case <-e.ready:
		default:
			p.fail(jobs[k], e, ctx.Err())
		}
	}
}

// claim returns the memo entry for j, registering a fresh in-flight entry
// (claimed=true) when none exists; the caller that claimed it must resolve
// it via execute or fail.
func (p *Pool) claim(j Job) (e *entry, claimed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.memo[j]; ok {
		return e, false
	}
	e = &entry{ready: make(chan struct{})}
	p.memo[j] = e
	p.scheduled++
	return e, true
}

// execute runs one claimed job and publishes its result. It blocks on the
// pool-wide worker semaphore, so total concurrency stays at Options.Workers
// no matter how many Run calls are in flight.
//
// The persistent Memo sits directly under the claim: only the one claimant
// of a job looks it up (concurrent identical jobs cost one disk read), a
// hit publishes without ever taking a worker slot, and a miss executes and
// records the result for every future process.
//
// A non-nil remote diverts the miss path to the worker fleet (see
// executeRemote); the store-hit fast path above it is unchanged, which is
// what makes distributed reruns replay instantly.
func (p *Pool) execute(ctx context.Context, j Job, e *entry, remote Remote) {
	var key string
	if p.persist != nil {
		key = JobKey(j)
		if res, ok := p.persist.Get(key); ok {
			p.mu.Lock()
			p.stats.StoreHits++
			p.done++
			p.mu.Unlock()
			e.res = res
			e.storeHit = true
			close(e.ready)
			p.progress()
			return
		}
	}
	// Trace-driven jobs stay local defensively: their payload carries only
	// the content digest, which a remote worker cannot resolve back to a
	// readable file. Sweep cells are always synthetic.
	if remote != nil && j.Workload.TraceDigest == "" {
		p.executeRemote(ctx, j, e, remote, key)
		return
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		p.fail(j, e, ctx.Err())
		return
	}
	defer func() { <-p.sem }()
	if err := ctx.Err(); err != nil {
		p.fail(j, e, err)
		return
	}
	res := p.exec(ctx, j)
	if res.Err != nil {
		p.fail(j, e, res.Err)
		return
	}
	if p.persist != nil {
		p.persist.Put(key, res)
		p.mu.Lock()
		p.stats.StorePuts++
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.stats.JobsExecuted++
	p.stats.Instructions += res.Sim.Instructions
	p.done++
	p.mu.Unlock()
	e.res = res
	close(e.ready)
	p.progress()
}

// executeRemote resolves one claimed job through the Remote: ship the
// normalized job, wait for the fleet, then read the result back from the
// persistent Memo — the store is the result transport, so a "completed"
// job whose result is missing is an error, not a silent re-execution.
// Remote jobs never take a local worker slot: the control plane's
// concurrency is bounded by the fleet, not by its own -j.
func (p *Pool) executeRemote(ctx context.Context, j Job, e *entry, remote Remote, key string) {
	payload, err := json.Marshal(j)
	if err != nil {
		// Job is a tree of plain exported value fields; Marshal cannot fail.
		p.fail(j, e, fmt.Errorf("runner: encoding job for remote execution: %w", err))
		return
	}
	if err := remote.Execute(ctx, key, payload); err != nil {
		p.fail(j, e, err)
		return
	}
	res, ok := p.persist.Get(key)
	if !ok {
		p.fail(j, e, fmt.Errorf("runner: remote completed job %s but its result is not in the store", key))
		return
	}
	p.mu.Lock()
	p.stats.JobsRemote++
	p.done++
	p.mu.Unlock()
	e.res = res
	close(e.ready)
	p.progress()
}

// fail publishes an error result and evicts the entry so a later Run
// re-executes the job instead of replaying the cancellation.
func (p *Pool) fail(j Job, e *entry, err error) {
	if err == nil {
		err = context.Canceled
	}
	p.mu.Lock()
	if p.memo[j] == e {
		delete(p.memo, j)
	}
	p.scheduled--
	p.mu.Unlock()
	e.res = Result{Err: err}
	close(e.ready)
}

func (p *Pool) progress() {
	if p.onProgress == nil {
		return
	}
	p.mu.Lock()
	done, scheduled := p.done, p.scheduled
	p.mu.Unlock()
	p.onProgress(done, scheduled)
}

// Workload returns the workload for cfg — synthesized for benchmark
// configs, opened from the trace container for trace configs — building it
// at most once per pool (concurrent requests for the same config share one
// construction). The returned workload is immutable and safe to share; a
// trace workload streams ops from its open container on demand, so sharing
// it costs header-sized memory no matter how large the file is.
func (p *Pool) Workload(cfg workload.Config) (*workload.Workload, error) {
	cfg = cfg.WithDefaults()
	p.mu.Lock()
	e, ok := p.workloads[cfg]
	if ok {
		p.stats.WorkloadHits++
		p.mu.Unlock()
		<-e.ready
		return e.w, e.err
	}
	e = &wlEntry{ready: make(chan struct{})}
	p.workloads[cfg] = e
	p.stats.WorkloadsBuilt++
	p.mu.Unlock()

	switch {
	case cfg.TracePath != "":
		e.w, e.err = workload.FromTraceFile(cfg.TracePath)
	case cfg.TraceDigest != "":
		// A digest-only config came from a normalized job; resolve it back
		// to the path that carried it.
		p.mu.Lock()
		path := p.tracePaths[cfg.TraceDigest]
		p.mu.Unlock()
		if path == "" {
			e.err = fmt.Errorf("runner: no known path for trace digest %s", cfg.TraceDigest)
		} else {
			e.w, e.err = workload.FromTraceFile(path)
		}
	default:
		e.w = workload.New(cfg)
	}
	if e.err != nil {
		// Evict the failure so a later request (say, after the user fixes
		// the file) retries instead of replaying the error forever.
		p.mu.Lock()
		if p.workloads[cfg] == e {
			delete(p.workloads, cfg)
		}
		p.mu.Unlock()
	}
	close(e.ready)
	return e.w, e.err
}

// traceDigest returns the content digest of the trace file at path, cached
// per pool and revalidated against the file's (size, mtime) so a
// re-recorded file is re-hashed rather than served stale.
func (p *Pool) traceDigest(path string) (string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	e, ok := p.digests[path]
	p.mu.Unlock()
	if ok && e.size == st.Size() && e.mtime.Equal(st.ModTime()) {
		return e.digest, nil
	}
	d, err := trace.FileDigest(path)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.digests[path] = digestEntry{size: st.Size(), mtime: st.ModTime(), digest: d}
	p.mu.Unlock()
	return d, nil
}

// exec performs the actual work for one job. The span here is the job
// granularity of the tracing contract: one span per executed simulation
// (store and dedup hits never reach exec), covering workload resolution
// plus the run — never anything inside the per-instruction loop.
func (p *Pool) exec(ctx context.Context, j Job) Result {
	ctx, sp := telemetry.StartSpan(ctx, "runner.job",
		slog.String("workload", j.Workload.Kind.Token()),
		slog.Int("threads", j.Workload.Threads))
	defer sp.End()
	w, err := p.Workload(j.Workload)
	if err != nil {
		return Result{Err: err}
	}
	switch j.Kind {
	case KindBloomAccuracy:
		return execBloom(ctx, j, w)
	default:
		return execSim(ctx, j, w)
	}
}

// execSim builds and runs one machine.
func execSim(ctx context.Context, j Job, w *workload.Workload) Result {
	policy, pref := buildPolicy(j.Policy, w)
	m := sim.New(j.Machine, policy, pref, w.Threads())
	_, sp := telemetry.StartSpan(ctx, "sim.run")
	r, err := m.RunContext(ctx)
	sp.SetAttrs(slog.Uint64("instructions", r.Instructions))
	sp.End()
	res := Result{Sim: r, Err: err}
	if j.Machine.TrackReuse && m.Reuse() != nil {
		res.ReuseGlobal = m.Reuse().Global()
		res.ReusePerType = m.Reuse().PerType()
	}
	return res
}

// buildPolicy materializes a declarative policy spec against its workload.
func buildPolicy(spec PolicySpec, w *workload.Workload) (sim.Policy, sim.Prefetcher) {
	switch spec.Kind {
	case NextLine:
		return sched.NewBaseline(), prefetch.NewNextLine()
	case SLICC:
		return islicc.New(spec.SLICC), nil
	case Stream:
		return sched.NewBaseline(), prefetch.NewStream()
	case STEPS:
		return sched.NewSTEPS(), nil
	case CSP:
		var ranges []sched.BlockRange
		for _, r := range w.SharedRanges() {
			ranges = append(ranges, sched.BlockRange{Lo: r[0], Hi: r[1]})
		}
		return sched.NewCSP(ranges), nil
	default:
		return sched.NewBaseline(), nil
	}
}

// execBloom replays a sample of the workload's threads through one
// cache+filter pair and measures their agreement (Figure 9).
func execBloom(ctx context.Context, j Job, w *workload.Workload) Result {
	c := cache.New(j.Cache)
	filt := bloom.New(bloom.Config{Bits: j.BloomBits})
	c.OnInsert = filt.Insert
	c.OnEvict = filt.Remove
	var tr bloom.AccuracyTracker
	threads := w.Threads()
	n := len(threads)
	if j.SampleThreads > 0 && n > j.SampleThreads {
		n = j.SampleThreads
	}
	for _, th := range threads[:n] {
		if err := ctx.Err(); err != nil {
			return Result{Err: err}
		}
		src := th.New()
		for {
			op, ok := src.Next()
			if !ok {
				break
			}
			filterHit := filt.Contains(c.BlockAddr(op.PC))
			res := c.Access(op.PC, false)
			tr.Record(filterHit, res.Hit)
		}
	}
	return Result{BloomAccuracy: tr.Accuracy()}
}
