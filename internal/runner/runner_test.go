package runner

import (
	"context"
	"testing"
	"time"

	"slicc/internal/cache"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/workload"
)

// tinyWorkload is a few-hundred-millisecond simulation input.
func tinyWorkload() workload.Config {
	return workload.Config{Kind: workload.TPCC1, Threads: 6, Seed: 3, Scale: 0.1}
}

func tinyJob() Job {
	return Job{Workload: tinyWorkload(), Machine: sim.Config{Cores: 16}}
}

func TestDedupWithinBatchAndAcrossRuns(t *testing.T) {
	p := New(Options{Workers: 4})
	slicc := Job{Workload: tinyWorkload(), Machine: sim.Config{Cores: 16},
		Policy: PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.SW)}}

	rs, err := p.Run(context.Background(), []Job{tinyJob(), slicc, tinyJob()})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Sim.Cycles != rs[2].Sim.Cycles || rs[0].Sim.IMPKI() != rs[2].Sim.IMPKI() {
		t.Fatalf("duplicate jobs disagree: %v vs %v cycles", rs[0].Sim.Cycles, rs[2].Sim.Cycles)
	}
	if rs[0].Sim.Cycles == rs[1].Sim.Cycles {
		t.Fatal("distinct jobs produced identical cycles; suspicious dedup")
	}
	s := p.Stats()
	if s.JobsRequested != 3 || s.JobsExecuted != 2 || s.DedupHits != 1 {
		t.Fatalf("stats after batch = %+v, want 3 requested / 2 executed / 1 dedup hit", s)
	}

	// A later Run of a memoized job must not re-execute it.
	rs2, err := p.Run(context.Background(), []Job{tinyJob()})
	if err != nil {
		t.Fatal(err)
	}
	if rs2[0].Sim.Cycles != rs[0].Sim.Cycles {
		t.Fatal("memoized result diverged")
	}
	s = p.Stats()
	if s.JobsExecuted != 2 || s.DedupHits != 2 {
		t.Fatalf("stats after memo hit = %+v, want 2 executed / 2 dedup hits", s)
	}
}

func TestDedupNormalizesDefaultedConfigs(t *testing.T) {
	p := New(Options{Workers: 2})
	explicit := tinyJob()
	defaulted := explicit
	defaulted.Machine = sim.Config{} // zero machine = the 16-core default
	if _, err := p.Run(context.Background(), []Job{explicit, defaulted}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.JobsExecuted != 1 || s.DedupHits != 1 {
		t.Fatalf("stats = %+v; defaulted and explicit spellings should dedup", s)
	}
}

func TestWorkloadCacheReuse(t *testing.T) {
	p := New(Options{Workers: 2})
	small := tinyJob()
	big := tinyJob()
	big.Machine.L1I = cache.Config{SizeBytes: 64 * 1024}
	if _, err := p.Run(context.Background(), []Job{small, big}); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.JobsExecuted != 2 {
		t.Fatalf("executed %d jobs, want 2", s.JobsExecuted)
	}
	if s.WorkloadsBuilt != 1 || s.WorkloadHits != 1 {
		t.Fatalf("workload cache stats = %+v, want 1 built / 1 hit", s)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	jobs := []Job{tinyJob()}
	for _, dil := range []int{2, 10, 20} {
		jobs = append(jobs, Job{Workload: tinyWorkload(), Machine: sim.Config{Cores: 16},
			Policy: PolicySpec{Kind: SLICC, SLICC: islicc.Config{Variant: islicc.SW, DilutionT: dil}.WithDefaults()}})
	}
	serial, err := New(Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Sim.Cycles != parallel[i].Sim.Cycles ||
			serial[i].Sim.Migrations != parallel[i].Sim.Migrations {
			t.Fatalf("job %d diverged between 1 and 8 workers", i)
		}
	}
}

func TestBloomAccuracyJob(t *testing.T) {
	p := New(Options{Workers: 2})
	job := Job{
		Kind:          KindBloomAccuracy,
		Workload:      tinyWorkload(),
		Cache:         cache.Config{SizeBytes: 32 * 1024},
		BloomBits:     2048,
		SampleThreads: 4,
	}
	rs, err := p.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if acc := rs[0].BloomAccuracy; acc < 0.9 || acc > 1 {
		t.Fatalf("2K-bit bloom accuracy = %f, want in [0.9, 1]", acc)
	}
}

func TestCancellationBeforeStart(t *testing.T) {
	p := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, []Job{tinyJob()}); err == nil {
		t.Fatal("pre-cancelled context did not error")
	}
	// The job must have been released for a retry, not poisoned.
	if _, err := p.Run(context.Background(), []Job{tinyJob()}); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if s := p.Stats(); s.JobsExecuted != 1 {
		t.Fatalf("stats = %+v, want exactly 1 executed", s)
	}
}

// TestCancelledPeerDoesNotPoison: when two concurrent Runs share an
// in-flight job and the executing Run's context is cancelled, the other
// Run must retry the job under its own (live) context and succeed.
func TestCancelledPeerDoesNotPoison(t *testing.T) {
	p := New(Options{Workers: 1})
	job := Job{Workload: workload.Config{Kind: workload.TPCC1, Threads: 48, Seed: 1, Scale: 0.5},
		Machine: sim.Config{Cores: 16}}

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := p.Run(ctxA, []Job{job})
		aDone <- err
	}()
	time.Sleep(200 * time.Millisecond) // let A claim and start the job

	bDone := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background(), []Job{job})
		bDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let B dedup-hit A's entry
	cancelA()

	if err := <-aDone; err == nil {
		t.Fatal("cancelled Run A returned no error")
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("Run B poisoned by A's cancellation: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Run B did not finish")
	}
}

func TestCancellationMidRun(t *testing.T) {
	p := New(Options{Workers: 1})
	// Big enough to run for many seconds if not cancelled.
	job := Job{Workload: workload.Config{Kind: workload.TPCC1, Threads: 96, Seed: 1, Scale: 1},
		Machine: sim.Config{Cores: 16}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := p.Run(ctx, []Job{job})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run returned no error")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
}
