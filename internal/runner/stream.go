package runner

// Streaming execution: RunEach is Run with a per-job completion callback,
// the engine layer underneath streamed sweeps. Each job still goes through
// the same claim → store-Get → execute → store-Put lifecycle (identical
// keys, identical stats accounting, identical results), but the caller
// learns about every completion as it lands instead of only at the end —
// including whether the result came from the persistent store or from an
// execution, which is what lets a resumed sweep show its replayed cells
// instantly.

import (
	"context"
	"errors"
	"sync"
)

// RunEach executes jobs like Run and returns their results in input order,
// additionally invoking onDone once per successfully completed job as it
// finishes. onDone receives the job's input index, its result, and whether
// the result was served by the persistent store rather than executed; it
// may be called concurrently from multiple goroutines and must return
// promptly. Jobs that fail (including cancellation) produce no callback;
// as with Run, cancellation returns ctx.Err() and releases unfinished
// claims for a later retry.
//
// Completion order is scheduling-dependent, but everything observable per
// job — the result bytes, the store key, the stats accounting — is
// identical to Run's, so callers stream content-deterministic events in a
// nondeterministic order.
func (p *Pool) RunEach(ctx context.Context, jobs []Job, onDone func(i int, res Result, storeHit bool)) ([]Result, error) {
	return p.RunEachVia(ctx, jobs, nil, onDone)
}

// RunEachVia is RunEach with an optional Remote: claimed jobs that miss
// the persistent Memo are resolved by remote.Execute (the distributed
// worker fleet) instead of a local execution, and their results read back
// from the Memo — so a non-nil remote requires Options.Memo (the store is
// the result transport). Everything else is identical to RunEach: store
// keys, dedup, stats accounting (remote resolutions count as JobsRemote),
// per-completion callbacks, and the results themselves — which is what
// makes distributed and standalone runs byte-identical and cross-warming.
func (p *Pool) RunEachVia(ctx context.Context, jobs []Job, remote Remote, onDone func(i int, res Result, storeHit bool)) ([]Result, error) {
	if remote != nil && p.persist == nil {
		return nil, errors.New("runner: remote execution requires a persistent Memo (the store carries results back)")
	}
	norm, err := p.normalizeJobs(jobs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(norm))
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for i := range norm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, storeHit := p.runOne(ctx, norm[i], remote)
			mu.Lock()
			results[i] = res
			if firstErr == nil && res.Err != nil {
				firstErr = res.Err
			}
			mu.Unlock()
			if res.Err == nil && onDone != nil {
				onDone(i, res, storeHit)
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, firstErr
}

// runOne resolves a single job through the pool's memo, mirroring what
// claimAll+gather do for a batch: claim (or join) the entry, execute if
// claimed, and retry entries poisoned by a *different* caller's
// cancellation. The stats invariant JobsRequested == JobsExecuted +
// DedupHits + StoreHits is preserved exactly as in the batch path,
// including the dedup un-count when a joined entry's owner is cancelled
// and this caller ends up executing after all.
func (p *Pool) runOne(ctx context.Context, j Job, remote Remote) (Result, bool) {
	p.mu.Lock()
	p.stats.JobsRequested++
	p.mu.Unlock()
	counted := false // a dedup hit currently counted for this job
	for {
		e, claimed := p.claim(j)
		if claimed {
			if counted {
				counted = false
				p.mu.Lock()
				p.stats.DedupHits--
				p.mu.Unlock()
			}
			p.progress()
			p.execute(ctx, j, e, remote)
		} else if !counted {
			counted = true
			p.mu.Lock()
			p.stats.DedupHits++
			p.mu.Unlock()
		}
		select {
		case <-e.ready:
		case <-ctx.Done():
			return Result{Err: ctx.Err()}, false
		}
		if isCancellation(e.res.Err) && ctx.Err() == nil {
			continue // another caller's cancellation; the entry was evicted
		}
		return e.res, e.storeHit
	}
}
