package runner

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
)

func TestRunEachMatchesRunAndReportsEveryJob(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		tinyJob(),
		{Workload: tinyWorkload(), Machine: sim.Config{Cores: 16},
			Policy: PolicySpec{Kind: SLICC, SLICC: islicc.DefaultConfig(islicc.SW)}},
		tinyJob(), // duplicate: dedups underneath, still gets its own callback
	}

	ref := New(Options{Workers: 2})
	want, err := ref.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	cold := New(Options{Workers: 2, Memo: NewStoreMemo(openStore(t, dir))})
	var mu sync.Mutex
	seen := make(map[int]int)
	hits := 0
	got, err := cold.RunEach(context.Background(), jobs, func(i int, res Result, storeHit bool) {
		mu.Lock()
		defer mu.Unlock()
		seen[i]++
		if storeHit {
			hits++
		}
		if res.Err != nil {
			t.Errorf("callback %d carried error %v", i, res.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunEach results diverge from Run:\n%+v\nvs\n%+v", got, want)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("callbacks for %d of %d jobs", len(seen), len(jobs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("job %d completed %d times", i, n)
		}
	}
	if hits != 0 {
		t.Fatalf("cold run reported %d store hits", hits)
	}
	s := cold.Stats()
	if s.JobsRequested != 3 || s.JobsExecuted != 2 || s.DedupHits != 1 || s.StoreHits != 0 {
		t.Fatalf("cold stats = %+v, want 3 requested / 2 executed / 1 dedup / 0 store hits", s)
	}

	// A fresh pool over the same store models a resumed process: every
	// unique job replays from disk and the callback says so.
	warm := New(Options{Workers: 2, Memo: NewStoreMemo(openStore(t, dir))})
	hits = 0
	warmRes, err := warm.RunEach(context.Background(), jobs, func(i int, res Result, storeHit bool) {
		mu.Lock()
		defer mu.Unlock()
		if storeHit {
			hits++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes, want) {
		t.Fatal("warm RunEach results diverge")
	}
	// All three callbacks report store hits: the duplicate joins the
	// claimant's entry and observes the same store-served result.
	if hits != 3 {
		t.Fatalf("warm run reported %d store-hit callbacks, want 3", hits)
	}
	if s := warm.Stats(); s.JobsExecuted != 0 || s.StoreHits != 2 || s.DedupHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 executed / 2 store hits / 1 dedup", s)
	}
}

func TestRunEachCancellation(t *testing.T) {
	p := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	_, err := p.RunEach(ctx, []Job{tinyJob()}, func(int, Result, bool) { called = true })
	if err == nil {
		t.Fatal("cancelled RunEach returned nil error")
	}
	if called {
		t.Fatal("cancelled job produced a completion callback")
	}
	// The claim was released: a later RunEach must succeed.
	n := 0
	if _, err := p.RunEach(context.Background(), []Job{tinyJob()}, func(int, Result, bool) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("retry produced %d callbacks, want 1", n)
	}
}
