package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"slicc/internal/trace"
	"slicc/internal/workload"
)

// writeContainer captures a tiny synthetic workload into dir/name.
func writeContainer(t *testing.T, dir, name string, cfg workload.Config) string {
	t.Helper()
	w := workload.New(cfg)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceJobsDedupByContentDigest(t *testing.T) {
	dir := t.TempDir()
	cfg := workload.Config{Kind: workload.TPCC1, Threads: 3, Seed: 2, Scale: 0.05}
	a := writeContainer(t, dir, "a.trace", cfg)
	b := writeContainer(t, dir, "b.trace", cfg) // identical contents, other name

	p := New(Options{Workers: 2})
	jobs := []Job{
		{Workload: workload.Config{TracePath: a}},
		{Workload: workload.Config{TracePath: b}},
	}
	rs, err := p.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Sim.Instructions == 0 {
		t.Fatal("trace job simulated nothing")
	}
	if rs[0].Sim.Cycles != rs[1].Sim.Cycles || rs[0].Sim.Instructions != rs[1].Sim.Instructions {
		t.Fatal("identical traces under different names produced different results")
	}
	st := p.Stats()
	if st.JobsExecuted != 1 || st.DedupHits != 1 {
		t.Fatalf("executed %d / dedup %d, want 1/1: identical contents must dedup across paths",
			st.JobsExecuted, st.DedupHits)
	}
}

func TestTraceJobsRekeyOnRerecord(t *testing.T) {
	dir := t.TempDir()
	path := writeContainer(t, dir, "wl.trace", workload.Config{Kind: workload.TPCC1, Threads: 3, Seed: 2, Scale: 0.05})

	p := New(Options{Workers: 1})
	r1, err := p.Run(context.Background(), []Job{{Workload: workload.Config{TracePath: path}}})
	if err != nil {
		t.Fatal(err)
	}

	// Re-record the same path with a different workload; nudge mtime so the
	// digest cache cannot serve the stale fingerprint.
	writeContainer(t, dir, "wl.trace", workload.Config{Kind: workload.TPCC1, Threads: 4, Seed: 9, Scale: 0.05})
	if err := os.Chtimes(path, time.Now().Add(2*time.Second), time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(context.Background(), []Job{{Workload: workload.Config{TracePath: path}}})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.JobsExecuted != 2 {
		t.Fatalf("executed %d jobs, want 2: a re-recorded file must not replay memoized results", st.JobsExecuted)
	}
	if r1[0].Sim.Instructions == r2[0].Sim.Instructions {
		t.Fatal("different recordings produced identical instruction counts (suspicious)")
	}
}

func TestTraceJobMissingFile(t *testing.T) {
	p := New(Options{Workers: 1})
	_, err := p.Run(context.Background(), []Job{{Workload: workload.Config{TracePath: filepath.Join(t.TempDir(), "missing")}}})
	if err == nil {
		t.Fatal("missing trace file did not error")
	}
}

func TestTraceJobCorruptFileErrorsOnce(t *testing.T) {
	// A corrupt container must produce a prompt deterministic error — not a
	// cancellation-style retry loop.
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("SLTR\x02garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := New(Options{Workers: 1})
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background(), []Job{{Workload: workload.Config{TracePath: path}}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("corrupt trace accepted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return: deterministic failure is being retried forever")
	}
}

// TestDigestFailureDoesNotOrphanClaims reproduces the batch-normalization
// hazard: a digest failure for one job must not leave other jobs of the
// same batch claimed-but-unresolved, or every later Run of those jobs
// would block forever on the orphaned entry.
func TestDigestFailureDoesNotOrphanClaims(t *testing.T) {
	p := New(Options{Workers: 1})
	good := Job{Workload: workload.Config{Kind: workload.TPCC1, Threads: 2, Seed: 1, Scale: 0.05}}
	bad := Job{Workload: workload.Config{TracePath: filepath.Join(t.TempDir(), "missing")}}
	if _, err := p.Run(context.Background(), []Job{good, bad}); err == nil {
		t.Fatal("missing trace file did not error")
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background(), []Job{good})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("good job deadlocked after a digest failure in its batch")
	}
}
