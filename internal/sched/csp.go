package sched

import "slicc/internal/sim"

// CSP approximates Computation Spreading (Chakraborty, Wells & Sohi,
// ASPLOS 2006), the other migration-based system the paper compares SLICC
// against in Section 6: threads migrate to a small set of *service cores*
// dedicated to common/system code, and return to their home cores for
// user-level code. Unlike SLICC, fragmentation stops at the user/system
// boundary — user code still thrashes the home core's cache.
//
// The synthetic workloads mark their shared DB-engine/OS segments; CSP is
// configured with those address ranges.
type CSP struct {
	// SystemRanges are [lo,hi) block-address ranges of system/common code.
	SystemRanges []BlockRange
	// ServiceCores is how many cores are dedicated to system code
	// (default: a quarter of the machine, at least 1).
	ServiceCores int
	// MinStay hysteresis: instructions to stay after a domain switch
	// before migrating again (default 200), preventing ping-ponging on
	// short excursions.
	MinStay uint64

	m        *sim.Machine
	pending  []*sim.ThreadState
	next     int
	queues   [][]*sim.ThreadState
	service  []bool // per core: is it a service core
	home     map[int]int
	lastMove map[int]uint64 // thread -> Instr at last migration
	rr       int
}

// BlockRange is a half-open range of block addresses.
type BlockRange struct{ Lo, Hi uint64 }

// NewCSP builds a CSP policy for the given system-code ranges.
func NewCSP(ranges []BlockRange) *CSP {
	return &CSP{SystemRanges: ranges}
}

// Name implements sim.Policy.
func (c *CSP) Name() string { return "CSP" }

// Attach implements sim.Policy.
func (c *CSP) Attach(m *sim.Machine, threads []*sim.ThreadState) {
	if c.ServiceCores == 0 {
		c.ServiceCores = m.Cores() / 4
		if c.ServiceCores < 1 {
			c.ServiceCores = 1
		}
	}
	if c.MinStay == 0 {
		c.MinStay = 200
	}
	c.m = m
	c.pending = threads
	c.queues = make([][]*sim.ThreadState, m.Cores())
	c.service = make([]bool, m.Cores())
	for i := 0; i < c.ServiceCores; i++ {
		c.service[m.Cores()-1-i] = true // dedicate the last cores
	}
	c.home = make(map[int]int)
	c.lastMove = make(map[int]uint64)
}

// isSystem classifies a block address.
func (c *CSP) isSystem(block uint64) bool {
	for _, r := range c.SystemRanges {
		if block >= r.Lo && block < r.Hi {
			return true
		}
	}
	return false
}

// NextThread implements sim.Policy: queued (returning/visiting) threads
// first; new transactions start only on user cores (their home).
func (c *CSP) NextThread(core int) *sim.ThreadState {
	if q := c.queues[core]; len(q) > 0 {
		t := q[0]
		c.queues[core] = q[1:]
		return t
	}
	if c.service[core] {
		return nil
	}
	if c.next < len(c.pending) {
		t := c.pending[c.next]
		c.next++
		c.home[t.ID] = core
		return t
	}
	return nil
}

// OnInstr implements sim.Policy: migrate to a service core when entering
// system code, back home when leaving it.
func (c *CSP) OnInstr(core int, t *sim.ThreadState, f sim.Fetch) int {
	if t.Instr-c.lastMove[t.ID] < c.MinStay {
		return -1
	}
	sys := c.isSystem(f.Block)
	if sys && !c.service[core] {
		// Round-robin over service cores with shallow queues.
		for tries := 0; tries < c.ServiceCores; tries++ {
			cand := c.m.Cores() - 1 - (c.rr+tries)%c.ServiceCores
			if len(c.queues[cand]) < 2 {
				c.rr++
				c.lastMove[t.ID] = t.Instr
				return cand
			}
		}
		return -1
	}
	if !sys && c.service[core] {
		c.lastMove[t.ID] = t.Instr
		return c.home[t.ID]
	}
	return -1
}

// OnThreadFinish implements sim.Policy.
func (c *CSP) OnThreadFinish(core int, t *sim.ThreadState) {
	delete(c.home, t.ID)
	delete(c.lastMove, t.ID)
}

// EnqueueMigrated implements the machine's migration delivery.
func (c *CSP) EnqueueMigrated(core int, t *sim.ThreadState) {
	c.queues[core] = append(c.queues[core], t)
}
