// Package sched implements the baseline scheduling policy: the
// conventional OS behaviour the paper compares against (Section 5.1).
// Transactions are assigned to cores with no regard for instruction
// locality and run to completion; with N cores, up to N threads run
// concurrently and there is no migration.
package sched

import "slicc/internal/sim"

// Baseline is the no-migration, run-to-completion scheduler.
type Baseline struct {
	pending []*sim.ThreadState
	started int
}

// NewBaseline returns the baseline policy.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements sim.Policy.
func (b *Baseline) Name() string { return "Base" }

// Attach implements sim.Policy.
func (b *Baseline) Attach(_ *sim.Machine, threads []*sim.ThreadState) {
	b.pending = append(b.pending[:0], threads...)
}

// NextThread hands the next pending transaction to any idle core (the
// OS's naive load balancing: an idle core always gets work if any exists).
func (b *Baseline) NextThread(core int) *sim.ThreadState {
	if b.started >= len(b.pending) {
		return nil
	}
	t := b.pending[b.started]
	b.started++
	return t
}

// OnInstr implements sim.Policy; the baseline never migrates.
func (b *Baseline) OnInstr(core int, t *sim.ThreadState, f sim.Fetch) int { return -1 }

// OnThreadFinish implements sim.Policy.
func (b *Baseline) OnThreadFinish(core int, t *sim.ThreadState) {}

// Remaining returns the count of not-yet-started threads (for tests).
func (b *Baseline) Remaining() int { return len(b.pending) - b.started }
