package sched

import (
	"testing"

	"slicc/internal/sim"
	"slicc/internal/trace"
)

func loopThread(id int, base uint64, blocks, reps int) trace.Thread {
	return trace.Thread{
		ID: id,
		New: func() trace.Source {
			var ops []trace.Op
			for r := 0; r < reps; r++ {
				for b := 0; b < blocks; b++ {
					ops = append(ops, trace.Op{PC: base + uint64(b)*64})
				}
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func TestBaselineRunsAllThreads(t *testing.T) {
	threads := []trace.Thread{
		loopThread(0, 0x1000, 4, 2),
		loopThread(1, 0x2000, 4, 2),
		loopThread(2, 0x3000, 4, 2),
	}
	b := NewBaseline()
	m := sim.New(sim.Config{Cores: 2}, b, nil, threads)
	r := m.Run()
	if r.ThreadsFinished != 3 {
		t.Fatalf("finished %d/3", r.ThreadsFinished)
	}
	if r.Migrations != 0 {
		t.Fatal("baseline migrated")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
}

func TestBaselineName(t *testing.T) {
	if NewBaseline().Name() != "Base" {
		t.Fatal("wrong name")
	}
}

func TestBaselineNeverMigrates(t *testing.T) {
	b := NewBaseline()
	if b.OnInstr(0, nil, sim.Fetch{IMiss: true}) != -1 {
		t.Fatal("baseline requested migration")
	}
}

func TestBaselineHandsOutEachThreadOnce(t *testing.T) {
	b := NewBaseline()
	threads := []*sim.ThreadState{{ID: 0}, {ID: 1}}
	b.Attach(nil, threads)
	seen := map[int]bool{}
	for core := 0; ; core++ {
		th := b.NextThread(core % 4)
		if th == nil {
			break
		}
		if seen[th.ID] {
			t.Fatalf("thread %d handed out twice", th.ID)
		}
		seen[th.ID] = true
	}
	if len(seen) != 2 {
		t.Fatalf("handed out %d threads", len(seen))
	}
}

// --- STEPS -------------------------------------------------------------------

func TestSTEPSRunsAllThreads(t *testing.T) {
	var threads []trace.Thread
	for i := 0; i < 6; i++ {
		threads = append(threads, loopThread(i, 0x100000, 256, 3))
	}
	p := NewSTEPS()
	m := sim.New(sim.Config{Cores: 2}, p, nil, threads)
	r := m.Run()
	if r.ThreadsFinished != 6 {
		t.Fatalf("finished %d/6", r.ThreadsFinished)
	}
	if r.ContextSwitches == 0 {
		t.Fatal("STEPS never context-switched")
	}
	if r.Migrations != 0 {
		t.Fatal("STEPS migrated across cores")
	}
}

func TestSTEPSReducesMissesViaChunkReuse(t *testing.T) {
	// 8 identical threads over a footprint 2x the cache: the baseline
	// serializes them (each thrashes alone); STEPS lets the whole team
	// reuse each chunk before moving on.
	var threads []trace.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, loopThread(i, 0x200000, 1024, 2))
	}
	base := sim.New(sim.Config{Cores: 1}, NewBaseline(), nil, threads).Run()
	steps := sim.New(sim.Config{Cores: 1}, NewSTEPS(), nil, threads).Run()
	if steps.IMisses >= base.IMisses {
		t.Fatalf("STEPS misses %d not below baseline %d", steps.IMisses, base.IMisses)
	}
	if steps.IMisses > base.IMisses*2/3 {
		t.Fatalf("STEPS reuse too weak: %d vs %d", steps.IMisses, base.IMisses)
	}
}

func TestSTEPSWorkConserving(t *testing.T) {
	// All threads of one type land on one core's pending list; the other
	// core must steal rather than idle.
	var threads []trace.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, loopThread(i, 0x300000, 64, 2))
	}
	p := NewSTEPS()
	p.TeamCap = 100 // single team
	m := sim.New(sim.Config{Cores: 2}, p, nil, threads)
	r := m.Run()
	if r.ThreadsFinished != 8 {
		t.Fatalf("finished %d/8", r.ThreadsFinished)
	}
	busy := 0
	for c := 0; c < 2; c++ {
		if m.L1I(c).Stats().Accesses > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("only %d cores did work", busy)
	}
}

func TestSTEPSName(t *testing.T) {
	if NewSTEPS().Name() != "STEPS" {
		t.Fatal("wrong name")
	}
}

// --- CSP ---------------------------------------------------------------------

func TestCSPMigratesForSystemCode(t *testing.T) {
	// Threads alternate user code (private region) and system code
	// (shared region): CSP must bounce them to the service cores and back.
	sysBase := uint64(0x800000)
	mk := func(id int, userBase uint64) trace.Thread {
		return trace.Thread{ID: id, New: func() trace.Source {
			var ops []trace.Op
			for rep := 0; rep < 4; rep++ {
				for b := 0; b < 64; b++ {
					for i := 0; i < 16; i++ {
						ops = append(ops, trace.Op{PC: userBase + uint64(b)*64 + uint64(i)*4})
					}
				}
				for b := 0; b < 64; b++ {
					for i := 0; i < 16; i++ {
						ops = append(ops, trace.Op{PC: sysBase + uint64(b)*64 + uint64(i)*4})
					}
				}
			}
			return trace.NewSliceSource(ops)
		}}
	}
	threads := []trace.Thread{mk(0, 0x100000), mk(1, 0x200000), mk(2, 0x300000)}
	p := NewCSP([]BlockRange{{Lo: sysBase / 64, Hi: sysBase/64 + 64}})
	m := sim.New(sim.Config{Cores: 4}, p, nil, threads)
	r := m.Run()
	if r.ThreadsFinished != 3 {
		t.Fatalf("finished %d/3", r.ThreadsFinished)
	}
	if r.Migrations == 0 {
		t.Fatal("CSP never migrated")
	}
	// The dedicated service core (last) must have executed instructions.
	if m.L1I(3).Stats().Accesses == 0 {
		t.Fatal("service core idle")
	}
}

func TestCSPKeepsUserCodeHome(t *testing.T) {
	// A purely-user thread must never migrate under CSP.
	threads := []trace.Thread{loopThread(0, 0x100000, 128, 4)}
	p := NewCSP([]BlockRange{{Lo: 0x800000 / 64, Hi: 0x800000/64 + 64}})
	m := sim.New(sim.Config{Cores: 4}, p, nil, threads)
	r := m.Run()
	if r.Migrations != 0 {
		t.Fatalf("user-only thread migrated %d times", r.Migrations)
	}
}

func TestCSPName(t *testing.T) {
	if NewCSP(nil).Name() != "CSP" {
		t.Fatal("wrong name")
	}
}
