package sched

import "slicc/internal/sim"

// STEPS is a software time-multiplexing baseline after Harizopoulos &
// Ailamaki's STEPS system [9], which the paper names as SLICC's
// time-domain counterpart and future-work combination partner. Same-type
// transactions form teams pinned to one core; every thread in a team
// executes the current code *chunk* (roughly one L1-I cache's worth of
// instructions) before any thread advances to the next chunk, so a chunk
// is fetched once and reused by the whole team via rapid same-core context
// switching.
//
// Chunk boundaries are detected the hardware-friendly way: a thread yields
// after incurring ChunkMisses instruction misses during its turn (it has
// replaced about a chunk's worth of blocks) — mirroring how this
// reproduction's SLICC detects segment transitions, but switching threads
// in time instead of migrating them in space.
type STEPS struct {
	// ChunkMisses is the per-turn instruction-miss budget before yielding
	// (default 48: a fraction of the 512-block L1-I, so the team revisits
	// each chunk while it is still resident).
	ChunkMisses int
	// TeamCap bounds team size (default 16 threads).
	TeamCap int

	m       *sim.Machine
	queues  [][]*sim.ThreadState
	pending [][]*sim.ThreadState // per-core unstarted team threads
	next    []int                // per-core admission cursor
	misses  []int                // running thread's misses this turn
	live    []int                // live threads per core
}

// NewSTEPS returns a STEPS policy with default parameters.
func NewSTEPS() *STEPS { return &STEPS{} }

// Name implements sim.Policy.
func (s *STEPS) Name() string { return "STEPS" }

// Attach implements sim.Policy: teams are formed per transaction type and
// assigned to cores round-robin.
func (s *STEPS) Attach(m *sim.Machine, threads []*sim.ThreadState) {
	if s.ChunkMisses == 0 {
		s.ChunkMisses = 48
	}
	if s.TeamCap == 0 {
		s.TeamCap = 16
	}
	s.m = m
	n := m.Cores()
	s.queues = make([][]*sim.ThreadState, n)
	s.pending = make([][]*sim.ThreadState, n)
	s.next = make([]int, n)
	s.misses = make([]int, n)
	s.live = make([]int, n)

	// Group into teams of at most TeamCap same-type threads, in arrival
	// order, then deal teams to cores round-robin.
	open := map[int][]*sim.ThreadState{}
	core := 0
	flush := func(ty int) {
		team := open[ty]
		if len(team) == 0 {
			return
		}
		s.pending[core] = append(s.pending[core], team...)
		core = (core + 1) % n
		delete(open, ty)
	}
	for _, t := range threads {
		open[t.Type] = append(open[t.Type], t)
		if len(open[t.Type]) >= s.TeamCap {
			flush(t.Type)
		}
	}
	// Flush remainders in type order for determinism.
	maxType := 0
	for ty := range open {
		if ty > maxType {
			maxType = ty
		}
	}
	for ty := 0; ty <= maxType; ty++ {
		flush(ty)
	}
}

// NextThread implements sim.Policy: the core's rotation queue first, then
// admit the next unstarted thread of its teams. A core with nothing left
// steals pending work from the most loaded core to stay work-conserving.
func (s *STEPS) NextThread(core int) *sim.ThreadState {
	// Admit unstarted teammates before resuming yielded ones: a yielding
	// thread's whole point is to hand the freshly cached chunk to the next
	// team member.
	if s.next[core] < len(s.pending[core]) {
		t := s.pending[core][s.next[core]]
		s.next[core]++
		s.live[core]++
		s.misses[core] = 0
		return t
	}
	if q := s.queues[core]; len(q) > 0 {
		t := q[0]
		s.queues[core] = q[1:]
		s.misses[core] = 0
		return t
	}
	// Steal a whole unstarted tail from the core with the most pending
	// work (keeps teams together as much as possible).
	victim, most := -1, 1
	for c := range s.pending {
		if rem := len(s.pending[c]) - s.next[c]; rem > most {
			victim, most = c, rem
		}
	}
	if victim < 0 {
		return nil
	}
	t := s.pending[victim][len(s.pending[victim])-1]
	s.pending[victim] = s.pending[victim][:len(s.pending[victim])-1]
	s.live[core]++
	s.misses[core] = 0
	return t
}

// OnInstr implements sim.Policy: yield to the same core after the chunk
// budget is spent, provided another thread is waiting to reuse the chunk.
func (s *STEPS) OnInstr(core int, t *sim.ThreadState, f sim.Fetch) int {
	if f.IMiss {
		s.misses[core]++
	}
	if s.misses[core] >= s.ChunkMisses && s.waiting(core) {
		s.misses[core] = 0
		return core
	}
	return -1
}

// waiting reports whether the core has another runnable thread.
func (s *STEPS) waiting(core int) bool {
	return len(s.queues[core]) > 0 || s.next[core] < len(s.pending[core])
}

// OnThreadFinish implements sim.Policy.
func (s *STEPS) OnThreadFinish(core int, t *sim.ThreadState) {
	s.live[core]--
}

// EnqueueMigrated receives yielded threads back into the rotation.
func (s *STEPS) EnqueueMigrated(core int, t *sim.ThreadState) {
	s.queues[core] = append(s.queues[core], t)
}
