package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slicc"
)

// BenchmarkServerWarmGet measures the three ways a completed sweep's GET
// can be served, CI-gated against each other (benchgate
// -min-respcache-speedup): uncached re-marshals the response every time,
// cached replays the stored bytes, and notmodified answers If-None-Match
// with a bodyless 304. All three run the full handler stack (mux,
// telemetry middleware, access log) over httptest recorders — no sockets,
// so the ratio isolates the marshaling work the cache elides. The sweep
// resource is the one dashboards and the SDK poll in a loop, and the one
// whose response grows with the study.
func BenchmarkServerWarmGet(b *testing.B) {
	run := func(b *testing.B, noCache, conditional bool) {
		eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		srv := New(eng, Options{Timeout: time.Minute, NoResponseCache: noCache})
		defer srv.Close()
		h := srv.Handler()

		body := `{"workloads":["tpcc1","skewed"],"policies":["base","slicc-sw"],"threads":[6],"scales":[0.05]}`
		post := httptest.NewRequest(http.MethodPost, "/v1/sweeps?wait=1", strings.NewReader(body))
		post.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, post)
		if rec.Code != http.StatusOK {
			b.Fatalf("submit: %d %s", rec.Code, rec.Body)
		}
		var sub struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.Status != "done" {
			b.Fatalf("submit status %q (%v)", sub.Status, err)
		}

		url := "/v1/sweeps/" + sub.ID
		wrec := httptest.NewRecorder()
		h.ServeHTTP(wrec, httptest.NewRequest(http.MethodGet, url, nil))
		etag := wrec.Header().Get("ETag")
		if wrec.Code != http.StatusOK || etag == "" {
			b.Fatalf("warmup: %d etag %q", wrec.Code, etag)
		}
		b.SetBytes(int64(wrec.Body.Len()))

		// The request is built once and reused: the benchmark measures the
		// server's cost to answer, not the client's cost to ask. The mux
		// re-routes per call and handlers never mutate the request.
		req := httptest.NewRequest(http.MethodGet, url, nil)
		if conditional {
			req.Header.Set("If-None-Match", etag)
		}
		want := http.StatusOK
		if conditional {
			want = http.StatusNotModified
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != want {
				b.Fatalf("GET: %d, want %d", rec.Code, want)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, true, false) })
	b.Run("cached", func(b *testing.B) { run(b, false, false) })
	b.Run("notmodified", func(b *testing.B) { run(b, false, true) })
}
