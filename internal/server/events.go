package server

// Sweep event streaming: the progress tracker behind partial GET responses
// and the GET /v1/sweeps/{id}/events SSE endpoint, plus the resume
// endpoint. The design constraints:
//
//   - Replay must be lossless: a client may connect at any point — before,
//     during, after the run — and with Last-Event-ID from any previous
//     connection, and must see every event after that position exactly
//     once, ending with the terminal "done"/"error" event.
//   - The sweep must never block on a client: a subscriber that falls a
//     full buffer behind is disconnected (its channel closed), which is
//     safe precisely because replay is lossless — it reconnects with
//     Last-Event-ID and catches up from the log.
//   - Streams must terminate: finish publishes the terminal event before
//     the entry is marked done, and only done entries are ever evicted, so
//     a connected client always sees the end of its stream. Evicted and
//     unknown ids get an immediate 404 pointing at the re-POST contract.
//
// The event log stores compact refs (type, index, flags), not payloads:
// cell metrics are kept once in the partial-result maps — which the GET
// handler needs anyway — and replay reconstructs the full event from them.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"slicc"
	"slicc/internal/telemetry"
)

// sweepProgress accumulates one sweep run's streamed events.
type sweepProgress struct {
	mu     sync.Mutex
	total  int
	buffer int
	// refs is the replayable event log in compact form; an event's Seq is
	// its 1-based position here.
	refs []eventRef
	// completed mirrors the latest cell event's Completed count.
	completed int
	// cells/baselines hold each finished cell's metrics by index — the
	// partial results for GET, and the payload source for replay.
	cells     map[int]*slicc.SweepCellResult
	baselines map[int]*slicc.SweepCellResult
	// terminal is the final done/error event, nil while running.
	terminal *slicc.SweepEvent
	subs     map[*eventSub]struct{}
	// onDrop, if set, is called (under mu) for each subscriber cut off by
	// the slow-consumer policy — the slicc_sse_dropped_total feed.
	onDrop func()
}

// eventRef is one logged event without its payload.
type eventRef struct {
	typ       string
	index     int
	storeHit  bool
	completed int
}

// eventSub is one live SSE subscriber. Its channel is closed by the
// publisher — at the terminal event, or early when the subscriber lags a
// full buffer behind (the slow-consumer policy).
type eventSub struct {
	ch chan slicc.SweepEvent
}

func newSweepProgress(total, buffer int) *sweepProgress {
	return &sweepProgress{
		total:     total,
		buffer:    buffer,
		cells:     make(map[int]*slicc.SweepCellResult),
		baselines: make(map[int]*slicc.SweepCellResult),
		subs:      make(map[*eventSub]struct{}),
	}
}

// publish logs one engine event, stamps its Seq, and fans it out to live
// subscribers. It is the emit callback of Engine.SweepStream, which calls
// it serially.
func (p *sweepProgress) publish(ev slicc.SweepEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ev.Seq = len(p.refs) + 1
	p.refs = append(p.refs, eventRef{typ: ev.Type, index: ev.Index, storeHit: ev.StoreHit, completed: ev.Completed})
	if ev.Cell != nil {
		switch ev.Type {
		case slicc.SweepEventCell:
			p.cells[ev.Index] = ev.Cell
			p.completed = ev.Completed
		case slicc.SweepEventBaseline:
			p.baselines[ev.Index] = ev.Cell
		}
	}
	p.broadcastLocked(ev)
}

// finish appends the terminal event and ends every live subscription. It
// runs before the entry's done channel closes, so no observer can see a
// completed sweep whose stream still dangles.
func (p *sweepProgress) finish(res *slicc.SweepResult, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ev := slicc.SweepEvent{Seq: len(p.refs) + 1, Completed: p.completed, Total: p.total}
	if err != nil {
		ev.Type, ev.Status, ev.Error = slicc.SweepEventError, "failed", err.Error()
	} else {
		ev.Type, ev.Status = slicc.SweepEventDone, "done"
		if res != nil {
			ev.Completed = len(res.Cells)
		}
	}
	p.refs = append(p.refs, eventRef{typ: ev.Type, completed: ev.Completed})
	p.terminal = &ev
	p.broadcastLocked(ev)
	for sub := range p.subs {
		close(sub.ch)
		delete(p.subs, sub)
	}
}

// broadcastLocked fans one event out; a subscriber whose buffer is full is
// cut off (closed channel, no terminal event) and replays on reconnect.
func (p *sweepProgress) broadcastLocked(ev slicc.SweepEvent) {
	for sub := range p.subs {
		select {
		case sub.ch <- ev:
		default:
			close(sub.ch)
			delete(p.subs, sub)
			if p.onDrop != nil {
				p.onDrop()
			}
		}
	}
}

// subscribe returns the replay of logged events after position `after`
// and, unless the stream is already terminal (replay then ends with the
// terminal event), a registered live subscription for what follows.
// Registration and replay happen under one lock acquisition, so no event
// can fall between them.
func (p *sweepProgress) subscribe(after int) ([]slicc.SweepEvent, *eventSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after > len(p.refs) {
		after = len(p.refs)
	}
	replay := make([]slicc.SweepEvent, 0, len(p.refs)-after)
	for i := after; i < len(p.refs); i++ {
		replay = append(replay, p.eventAtLocked(i))
	}
	if p.terminal != nil {
		return replay, nil
	}
	sub := &eventSub{ch: make(chan slicc.SweepEvent, p.buffer)}
	p.subs[sub] = struct{}{}
	return replay, sub
}

// eventAtLocked reconstructs the full event at log position i (0-based).
func (p *sweepProgress) eventAtLocked(i int) slicc.SweepEvent {
	r := p.refs[i]
	ev := slicc.SweepEvent{
		Seq: i + 1, Type: r.typ, Index: r.index,
		StoreHit: r.storeHit, Completed: r.completed, Total: p.total,
	}
	switch r.typ {
	case slicc.SweepEventCell:
		ev.Cell = p.cells[r.index]
	case slicc.SweepEventBaseline:
		ev.Cell = p.baselines[r.index]
	default:
		if p.terminal != nil {
			ev.Status, ev.Error = p.terminal.Status, p.terminal.Error
		}
	}
	return ev
}

func (p *sweepProgress) unsubscribe(sub *eventSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, sub)
}

// counts returns finished and total result cells.
func (p *sweepProgress) counts() (completed, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.completed, p.total
}

// partialCells returns the cells finished so far in expansion order.
func (p *sweepProgress) partialCells() []slicc.SweepCellResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := make([]int, 0, len(p.cells))
	for i := range p.cells {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]slicc.SweepCellResult, 0, len(idx))
	for _, i := range idx {
		out = append(out, *p.cells[i])
	}
	return out
}

// handleSweepEvents streams a sweep's events as Server-Sent Events: the
// replay of everything after the client's Last-Event-ID, then the live
// tail, ending with the terminal "done"/"error" event. See docs/SERVICE.md
// for the wire format and reconnect semantics.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Sprintf(
			"unknown sweep %q (evicted or never submitted; re-POST the spec — ids are content keys and finished cells resume from the store)", id))
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, r, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, sub := e.prog.subscribe(lastEventID(r))
	if sub != nil {
		s.metrics.sseSubscribers.Inc()
		defer s.metrics.sseSubscribers.Dec()
		defer e.prog.unsubscribe(sub)
	}
	for _, ev := range replay {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	fl.Flush()
	if sub == nil {
		return // the replay ended with the terminal event
	}
	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Cut off as a slow consumer; the client reconnects with
				// Last-Event-ID and replays what it missed.
				return
			}
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
			if ev.Type == slicc.SweepEventDone || ev.Type == slicc.SweepEventError {
				return
			}
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Shutdown cancels the run; its "error" terminal is already on
			// its way to sub.ch or the connection simply ends here.
			return
		}
	}
}

// handleSweepResume retries a tracked *failed* sweep in place; running and
// done sweeps are a no-op returning current state. Unknown ids 404: after
// a server restart there is no entry to resume — clients re-POST the spec,
// whose id is its content key, and every previously finished cell comes
// back from the store without executing. That store-hit replay, not a
// checkpoint file, is the resume mechanism.
func (s *Server) handleSweepResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sweeps[id]
	restarted := false
	if ok && e.failed() {
		e = s.startSweepLocked(id, e.spec, telemetry.RequestID(r.Context()))
		restarted = true
	}
	s.mu.Unlock()
	if restarted {
		telemetry.Logger(r.Context()).Info("sweep resume", slog.String("sweep_id", id))
	}
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Sprintf(
			"unknown sweep %q — nothing to resume; re-POST the spec (ids are content keys, finished cells are store hits)", id))
		return
	}
	if boolParam(r, "wait") {
		select {
		case <-e.done:
		case <-time.After(s.opts.Timeout):
		case <-r.Context().Done():
		case <-s.baseCtx.Done():
		}
	}
	resp := e.response()
	code := http.StatusOK
	if restarted && resp.Status == "running" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, resp)
}

// lastEventID extracts the SSE resume position: the standard Last-Event-ID
// reconnect header, or ?last_event_id= for hand-driven clients. Absent or
// malformed means replay from the start — always safe, never an error.
func lastEventID(r *http.Request) int {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// writeSSE writes one event in SSE wire format: the event's type as the
// SSE event name, its Seq as the id (what Last-Event-ID echoes back), and
// its JSON as the data line.
func writeSSE(w io.Writer, ev slicc.SweepEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, b)
	return err
}
