package server

// Contract tests for the sweep SSE stream. Most use a scripted sweep
// runner (the Server.sweepRun seam) so event timing and failures are
// deterministic; one end-to-end test runs the real engine.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slicc"
	"slicc/internal/sweep"
)

// scriptedServer boots a handler whose sweep runner is test-controlled.
func scriptedServer(t *testing.T, opts Options,
	run func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error)) *httptest.Server {
	t.Helper()
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Timeout == 0 {
		opts.Timeout = time.Minute
	}
	srv := New(eng, opts)
	if run != nil {
		srv.sweepRun = run
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return ts
}

// scriptSpec is a 4-cell spec for scripted runs (the fake runner ignores
// it, but ids and cell counts come from it).
func scriptSpec(name string) slicc.SweepSpec {
	return slicc.SweepSpec{
		Name:      name,
		Workloads: []string{"tpcc1"},
		Policies:  []string{"base", "nextline", "slicc-sw", "stream"},
	}
}

func postSweep(t *testing.T, ts *httptest.Server, spec slicc.SweepSpec, query string) sweepResponse {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(ts.URL+"/v1/sweeps"+query, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return decode[sweepResponse](t, r)
}

func fakeCell(i int) *slicc.SweepCellResult {
	return &slicc.SweepCellResult{
		Cell:         sweep.Cell{Workload: "tpcc1", Policy: "base", Threads: 6},
		Instructions: uint64(1000 + i),
		Cycles:       float64(100*i + 100),
	}
}

func fakeEvent(i int) slicc.SweepEvent {
	return slicc.SweepEvent{
		Type: slicc.SweepEventCell, Index: i, Completed: i + 1, Total: 4, Cell: fakeCell(i),
	}
}

// scriptedRun returns a sweep runner that emits cell events 0 and 1,
// blocks until released (or ctx ends), then emits 2 and 3 and returns a
// 4-cell result.
func scriptedRun(release <-chan struct{}) func(context.Context, slicc.SweepSpec, func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
	return func(ctx context.Context, _ slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
		emit(fakeEvent(0))
		emit(fakeEvent(1))
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		emit(fakeEvent(2))
		emit(fakeEvent(3))
		return &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}, nil
	}
}

// openStream connects to a sweep's SSE endpoint; lastEventID < 0 omits the
// header.
func openStream(t *testing.T, ts *httptest.Server, id string, lastEventID int) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// readSSE parses the next SSE event (skipping comments) from the stream.
func readSSE(br *bufio.Reader) (slicc.SweepEvent, error) {
	var name string
	var id int
	var data []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return slicc.SweepEvent{}, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if name == "" && data == nil {
				continue // stray blank
			}
			var ev slicc.SweepEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return ev, fmt.Errorf("bad event data %q: %w", data, err)
			}
			if ev.Type != name {
				return ev, fmt.Errorf("SSE event name %q != data type %q", name, ev.Type)
			}
			if ev.Seq != id {
				return ev, fmt.Errorf("SSE id %d != data seq %d", id, ev.Seq)
			}
			return ev, nil
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "event: "):
			name = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.Atoi(line[len("id: "):])
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		}
	}
}

// waitCompleted polls the sweep until its completed count reaches n.
func waitCompleted(t *testing.T, ts *httptest.Server, id string, n int) sweepResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp := decode[sweepResponse](t, r)
		if resp.Completed >= n {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached %d completed cells: %+v", n, resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweepEventsReplayAndLiveTail(t *testing.T) {
	release := make(chan struct{})
	ts := scriptedServer(t, Options{}, scriptedRun(release))

	resp := postSweep(t, ts, scriptSpec("tail"), "")
	if resp.Status != "running" || resp.Total != 4 {
		t.Fatalf("submit %+v", resp)
	}
	mid := waitCompleted(t, ts, resp.ID, 2)
	if len(mid.Partial) != 2 || mid.Total != 4 || mid.Status != "running" {
		t.Fatalf("mid-sweep GET %+v", mid)
	}

	// Connect mid-sweep: the two finished cells replay immediately.
	stream, br := openStream(t, ts, resp.ID, -1)
	defer stream.Body.Close()
	for want := 0; want < 2; want++ {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != slicc.SweepEventCell || ev.Index != want || ev.Seq != want+1 {
			t.Fatalf("replay event %d: %+v", want, ev)
		}
		if ev.Cell == nil || ev.Cell.Cycles != fakeCell(want).Cycles {
			t.Fatalf("replay event %d lost its payload: %+v", want, ev)
		}
	}

	// Release the run: the live tail and the terminal arrive on the same
	// connection.
	close(release)
	for want := 2; want < 4; want++ {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != slicc.SweepEventCell || ev.Index != want || ev.Seq != want+1 {
			t.Fatalf("tail event %d: %+v", want, ev)
		}
	}
	term, err := readSSE(br)
	if err != nil {
		t.Fatal(err)
	}
	if term.Type != slicc.SweepEventDone || term.Status != "done" || term.Seq != 5 {
		t.Fatalf("terminal %+v", term)
	}
	// The stream ends after the terminal event.
	if _, err := readSSE(br); err != io.EOF {
		t.Fatalf("stream after terminal: %v", err)
	}
}

func TestSweepEventsLastEventIDReconnect(t *testing.T) {
	release := make(chan struct{})
	ts := scriptedServer(t, Options{}, scriptedRun(release))
	resp := postSweep(t, ts, scriptSpec("reconnect"), "")
	waitCompleted(t, ts, resp.ID, 2)

	// First connection sees the first two events, then drops.
	stream1, br1 := openStream(t, ts, resp.ID, -1)
	var last int
	for i := 0; i < 2; i++ {
		ev, err := readSSE(br1)
		if err != nil {
			t.Fatal(err)
		}
		last = ev.Seq
	}
	stream1.Body.Close()

	close(release)
	r, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[sweepResponse](t, r); got.Status != "done" {
		t.Fatalf("sweep did not finish: %+v", got)
	}

	// Reconnect with Last-Event-ID: exactly the missed events, no
	// duplicates, no gaps, terminal included.
	stream2, br2 := openStream(t, ts, resp.ID, last)
	defer stream2.Body.Close()
	var got []slicc.SweepEvent
	for {
		ev, err := readSSE(br2)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != 3 {
		t.Fatalf("reconnect delivered %d events, want 3: %+v", len(got), got)
	}
	for i, ev := range got {
		if want := last + 1 + i; ev.Seq != want {
			t.Fatalf("reconnect event %d has seq %d, want %d (gap or duplicate)", i, ev.Seq, want)
		}
	}
	if got[2].Type != slicc.SweepEventDone {
		t.Fatalf("reconnect did not end with the terminal: %+v", got[2])
	}
}

func TestSweepEventsClientDisconnectDoesNotLeak(t *testing.T) {
	release := make(chan struct{})
	ts := scriptedServer(t, Options{}, scriptedRun(release))
	resp := postSweep(t, ts, scriptSpec("leak"), "")
	waitCompleted(t, ts, resp.ID, 2)

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		stream, br := openStream(t, ts, resp.ID, -1)
		if _, err := readSSE(br); err != nil {
			t.Fatal(err)
		}
		stream.Body.Close()
	}
	// Every streaming handler must unwind once its client is gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > %d five seconds after disconnects", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
}

// TestSweepProgressSlowConsumerCutOff exercises the backpressure policy at
// the progress-tracker level, where timing is deterministic: a subscriber
// that falls a full buffer behind is disconnected (channel closed, no
// terminal), publishing never blocks, and a reconnect replays everything.
func TestSweepProgressSlowConsumerCutOff(t *testing.T) {
	p := newSweepProgress(4, 1) // buffer one event
	replay, sub := p.subscribe(0)
	if len(replay) != 0 || sub == nil {
		t.Fatalf("fresh subscribe: %d replayed, sub=%v", len(replay), sub)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			p.publish(fakeEvent(i)) // must never block on the stalled sub
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}

	// The stalled subscriber got the buffered event, then the close.
	ev, open := <-sub.ch
	if !open || ev.Seq != 1 {
		t.Fatalf("buffered event %+v open=%v", ev, open)
	}
	if _, open := <-sub.ch; open {
		t.Fatal("slow consumer was not cut off")
	}

	// Lossless recovery: a reconnect from the last seen seq replays the
	// dropped events.
	replay, sub2 := p.subscribe(ev.Seq)
	if len(replay) != 2 || replay[0].Seq != 2 || replay[1].Seq != 3 {
		t.Fatalf("reconnect replay %+v", replay)
	}
	if sub2 == nil {
		t.Fatal("stream not terminal, want live subscription")
	}
	p.unsubscribe(sub2)

	// And the terminal still lands for live subscribers registered later.
	_, sub3 := p.subscribe(3)
	p.finish(nil, nil)
	termEv, open := <-sub3.ch
	if !open || termEv.Type != slicc.SweepEventDone {
		t.Fatalf("terminal %+v open=%v", termEv, open)
	}
	if _, open := <-sub3.ch; open {
		t.Fatal("subscription not closed after terminal")
	}
}

func TestSweepEvictionEndsStreamWithTerminal(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	run := func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
		if calls.Add(1) == 1 {
			// Sweep A: emit, wait, finish.
			emit(fakeEvent(0))
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}, nil
		}
		// Later sweeps complete instantly (they only exist to force
		// eviction of A).
		return &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}, nil
	}
	ts := scriptedServer(t, Options{MaxTrackedSweeps: 1}, run)

	a := postSweep(t, ts, scriptSpec("evictee"), "")
	stream, br := openStream(t, ts, a.ID, -1)
	defer stream.Body.Close()
	if ev, err := readSSE(br); err != nil || ev.Index != 0 {
		t.Fatalf("first event %+v err %v", ev, err)
	}

	// Let A finish, then push another sweep through the 1-entry cap so A
	// is evicted while our stream is connected.
	close(release)
	r0, err := http.Get(ts.URL + "/v1/sweeps/" + a.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[sweepResponse](t, r0); got.Status != "done" {
		t.Fatalf("evictee never finished: %+v", got)
	}
	// Name is cosmetic (excluded from the content key), so the evictor
	// must differ materially to get its own id.
	evictor := scriptSpec("evictor")
	evictor.Workloads = []string{"skewed"}
	if got := postSweep(t, ts, evictor, "?wait=1"); got.Status != "done" {
		t.Fatalf("evictor sweep %+v", got)
	}
	r, err := http.Get(ts.URL + "/v1/sweeps/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted sweep still polls as %d", r.StatusCode)
	}

	// The already-connected stream ended with the terminal event — not a
	// hang, not a bare cut.
	sawDone := false
	for {
		ev, err := readSSE(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == slicc.SweepEventDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("evicted sweep's stream ended without a terminal event")
	}

	// A fresh connection to the evicted id fails fast instead of hanging.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+a.ID+"/events", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted sweep's event stream answered %d, want 404", resp2.StatusCode)
	}
}

func TestSweepFailureRetainedAndResumable(t *testing.T) {
	var calls atomic.Int32
	run := func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
		if calls.Add(1) == 1 {
			emit(fakeEvent(0))
			return nil, fmt.Errorf("injected cell failure")
		}
		for i := 0; i < 4; i++ {
			emit(fakeEvent(i))
		}
		return &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}, nil
	}
	ts := scriptedServer(t, Options{}, run)

	resp := postSweep(t, ts, scriptSpec("resume"), "?wait=1")
	if resp.Status != "failed" || !strings.Contains(resp.Error, "injected") {
		t.Fatalf("first run %+v", resp)
	}
	if len(resp.Partial) != 1 || resp.Completed != 1 {
		t.Fatalf("failed sweep lost its partial results: %+v", resp)
	}

	// Failed sweeps are retained: poll-able, and their stream replays the
	// partial progress then terminates with the error event.
	r, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[sweepResponse](t, r); got.Status != "failed" {
		t.Fatalf("failed sweep not retained: %+v", got)
	}
	stream, br := openStream(t, ts, resp.ID, -1)
	ev1, err := readSSE(br)
	if err != nil || ev1.Type != slicc.SweepEventCell {
		t.Fatalf("failed sweep replay %+v err %v", ev1, err)
	}
	ev2, err := readSSE(br)
	if err != nil || ev2.Type != slicc.SweepEventError || !strings.Contains(ev2.Error, "injected") {
		t.Fatalf("failed sweep terminal %+v err %v", ev2, err)
	}
	stream.Body.Close()

	// Resume retries in place and succeeds.
	rr, err := http.Post(ts.URL+"/v1/sweeps/"+resp.ID+"/resume?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed := decode[sweepResponse](t, rr)
	if resumed.Status != "done" || resumed.Result == nil {
		t.Fatalf("resume %+v", resumed)
	}

	// Resuming a done sweep is a no-op that reports current state.
	rr2, err := http.Post(ts.URL+"/v1/sweeps/"+resp.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if again := decode[sweepResponse](t, rr2); again.Status != "done" {
		t.Fatalf("resume of done sweep %+v", again)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("runner called %d times, want 2 (no-op resume must not rerun)", n)
	}

	// Unknown ids 404 with the re-POST hint.
	rr3, err := http.Post(ts.URL+"/v1/sweeps/ffff/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rr3.Body)
	rr3.Body.Close()
	if rr3.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "re-POST") {
		t.Fatalf("resume of unknown id: %d %s", rr3.StatusCode, body)
	}
}

func TestSweepFailureRetriedByResubmit(t *testing.T) {
	var calls atomic.Int32
	run := func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}, nil
	}
	ts := scriptedServer(t, Options{}, run)
	spec := scriptSpec("retry")
	if resp := postSweep(t, ts, spec, "?wait=1"); resp.Status != "failed" {
		t.Fatalf("first run %+v", resp)
	}
	// Re-POSTing the identical spec restarts the failed run in place —
	// the documented crash/retry contract.
	if resp := postSweep(t, ts, spec, "?wait=1"); resp.Status != "done" {
		t.Fatalf("resubmit %+v", resp)
	}
}

// TestSweepEventsEndToEnd runs a real sweep on a real engine and checks
// the stream agrees with the final result: every cell exactly once, with
// payloads matching GET's cells, terminated by done.
func TestSweepEventsEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[sweepResponse](t, r)

	stream, br := openStream(t, ts, resp.ID, -1)
	defer stream.Body.Close()
	cells := map[int]slicc.SweepEvent{}
	var term slicc.SweepEvent
	for {
		ev, err := readSSE(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case slicc.SweepEventCell:
			if _, dup := cells[ev.Index]; dup {
				t.Fatalf("cell %d streamed twice", ev.Index)
			}
			cells[ev.Index] = ev
		case slicc.SweepEventDone, slicc.SweepEventError:
			term = ev
		}
	}
	if term.Type != slicc.SweepEventDone {
		t.Fatalf("terminal %+v", term)
	}
	final, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := decode[sweepResponse](t, final)
	if got.Status != "done" || got.Completed != got.Total || got.Total != len(got.Result.Cells) {
		t.Fatalf("final sweep %+v", got)
	}
	if len(cells) != len(got.Result.Cells) {
		t.Fatalf("streamed %d cells, result has %d", len(cells), len(got.Result.Cells))
	}
	for i, want := range got.Result.Cells {
		ev := cells[i]
		if ev.Cell == nil || ev.Cell.Cycles != want.Cycles || ev.Cell.Speedup != want.Speedup {
			t.Fatalf("cell %d stream/result mismatch: %+v vs %+v", i, ev.Cell, want)
		}
	}
}
