package server

// Control-plane queue API: the HTTP face of internal/queue for the
// distributed worker fleet (cmd/sliccworker). Mounted only when the
// server was built with Options.Queue (sliccd -distributed):
//
//	POST /v1/queue/lease         lease the oldest eligible job
//	                             (long-polls up to wait_seconds, capped);
//	                             200 {"job": null} when nothing is
//	                             eligible.
//	POST /v1/queue/{id}/heartbeat renew a lease (404 unknown job, 409
//	                             lease not held by the caller).
//	POST /v1/queue/{id}/complete ack a finished job whose result is in
//	                             the shared store.
//	POST /v1/queue/{id}/fail     record a failed attempt; the entry
//	                             retries after backoff or dead-letters.
//	GET  /v1/queue/dead          inspect the dead-letter queue.
//
// Wire types live in internal/queue (api.go) so server and worker cannot
// drift. Every protocol rejection is benign by design: the store absorbs
// duplicate executions, so a worker that loses a race just moves on.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"slicc/internal/queue"
	"slicc/internal/telemetry"
)

// maxLeaseWait caps a lease request's long poll so a worker's poll never
// outlives proxies' idle windows; workers simply re-poll.
const maxLeaseWait = 30 * time.Second

// queueRoutes mounts the queue API (caller verified Options.Queue).
func (s *Server) queueRoutes(add func(pattern, route string, h http.HandlerFunc)) {
	add("POST /v1/queue/lease", "/v1/queue/lease", s.handleQueueLease)
	add("POST /v1/queue/{id}/heartbeat", "/v1/queue/{id}/heartbeat", s.handleQueueHeartbeat)
	add("POST /v1/queue/{id}/complete", "/v1/queue/{id}/complete", s.handleQueueComplete)
	add("POST /v1/queue/{id}/fail", "/v1/queue/{id}/fail", s.handleQueueFail)
	add("GET /v1/queue/dead", "/v1/queue/dead", s.handleQueueDead)
}

// writeQueueError maps the queue's sentinel errors onto the protocol's
// status codes: 404 unknown job, 409 lease conflict, 503 closed queue.
func writeQueueError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, queue.ErrUnknown):
		code = http.StatusNotFound
	case errors.Is(err, queue.ErrNotHolder):
		code = http.StatusConflict
	case errors.Is(err, queue.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeError(w, r, code, err.Error())
}

// decodeBody decodes a small strict-JSON request body into v. An empty
// body decodes as the zero value (every queue request struct has usable
// defaults).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, r, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleQueueLease(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitSeconds) * time.Second
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	job, err := s.opts.Queue.Lease(r.Context(), req.Worker, wait)
	if err != nil {
		writeQueueError(w, r, err)
		return
	}
	if job != nil {
		s.logger.Debug("queue lease",
			"id", job.ID, "holder", job.Holder, "attempts", job.Attempts,
			"request_id", telemetry.RequestID(r.Context()))
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{Job: job})
}

func (s *Server) handleQueueHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req queue.HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	expires, err := s.opts.Queue.Heartbeat(r.PathValue("id"), req.Holder)
	if err != nil {
		writeQueueError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.HeartbeatResponse{LeaseExpires: expires})
}

func (s *Server) handleQueueComplete(w http.ResponseWriter, r *http.Request) {
	var req queue.CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	if err := s.opts.Queue.Complete(id, req.Holder); err != nil {
		writeQueueError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "completed"})
}

func (s *Server) handleQueueFail(w http.ResponseWriter, r *http.Request) {
	var req queue.FailRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	attempts, dead, err := s.opts.Queue.Fail(id, req.Holder, req.Error)
	if err != nil {
		writeQueueError(w, r, err)
		return
	}
	if dead {
		s.logger.Warn("queue job dead-lettered", "id", id, "attempts", attempts,
			"error", req.Error, "request_id", telemetry.RequestID(r.Context()))
	}
	writeJSON(w, http.StatusOK, queue.FailResponse{Attempts: attempts, Dead: dead})
}

func (s *Server) handleQueueDead(w http.ResponseWriter, r *http.Request) {
	dead := s.opts.Queue.Dead()
	if dead == nil {
		dead = []queue.DeadJob{} // an empty DLQ is [], never null
	}
	writeJSON(w, http.StatusOK, queue.DeadResponse{Dead: dead})
}

// queueStatsBody mirrors queue.Stats for /v1/stats; the same numbers the
// slicc_queue_* metric families sample, so the surfaces agree.
type queueStatsBody struct {
	// Pending entries are enqueued but unleased (including retry
	// backoff); Leased entries are in flight on a worker; Dead is the
	// DLQ. Pending+Leased is the live depth a sweep is waiting on.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Dead    int `json:"dead"`
	// Lifetime counters since the queue opened.
	Enqueued    int64 `json:"enqueued"`
	Leases      int64 `json:"leases"`
	Heartbeats  int64 `json:"heartbeats"`
	Expirations int64 `json:"expirations"`
	Completions int64 `json:"completions"`
	Failures    int64 `json:"failures"`
}

// registerQueueMetrics wires the scrape-time queue families (caller
// verified Options.Queue).
func (s *Server) registerQueueMetrics() {
	reg := s.metrics.reg
	q := s.opts.Queue
	reg.GaugeFunc("slicc_queue_depth",
		"Queue entries by state: pending (enqueued, unleased) or leased (in flight on a worker).",
		func() float64 { return float64(q.Stats().Pending) }, telemetry.L("state", "pending"))
	reg.GaugeFunc("slicc_queue_depth",
		"Queue entries by state: pending (enqueued, unleased) or leased (in flight on a worker).",
		func() float64 { return float64(q.Stats().Leased) }, telemetry.L("state", "leased"))
	reg.GaugeFunc("slicc_queue_dead",
		"Dead-letter queue entries (jobs that exhausted their retry budget).",
		func() float64 { return float64(q.Stats().Dead) })
	reg.CounterFunc("slicc_queue_enqueued_total",
		"Jobs enqueued onto the durable queue.",
		func() float64 { return float64(q.Stats().Enqueued) })
	reg.CounterFunc("slicc_queue_leases_total",
		"Leases issued to workers.",
		func() float64 { return float64(q.Stats().Leases) })
	reg.CounterFunc("slicc_queue_heartbeats_total",
		"Lease renewals accepted.",
		func() float64 { return float64(q.Stats().Heartbeats) })
	reg.CounterFunc("slicc_queue_expirations_total",
		"Leases that expired unacknowledged (crashed or stalled workers).",
		func() float64 { return float64(q.Stats().Expirations) })
	reg.CounterFunc("slicc_queue_completions_total",
		"Jobs completed by workers.",
		func() float64 { return float64(q.Stats().Completions) })
	reg.CounterFunc("slicc_queue_failures_total",
		"Failed job attempts recorded (explicit worker failures and lease expirations).",
		func() float64 { return float64(q.Stats().Failures) })
}
