package server

// Tests for the control-plane queue API: the HTTP protocol (status-code
// mapping, long-poll, dead-letter inspection, stats surfacing) and a full
// in-process distributed sweep — engine dispatching cells onto the queue,
// a worker.Worker fleet member executing them against the shared store —
// all under one race detector.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"slicc"
	"slicc/internal/queue"
	"slicc/internal/worker"
)

// newDistributedServer boots a control plane: a queue-backed engine whose
// sweeps dispatch cells remotely, plus the queue API. Returns the test
// server, the engine, the queue, and the shared store directory workers
// must open.
func newDistributedServer(t *testing.T, qopts queue.Options) (*httptest.Server, *slicc.Engine, *queue.Queue, string) {
	t.Helper()
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	q, err := queue.Open(filepath.Join(dir, "queue"), qopts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slicc.NewEngine(slicc.EngineOptions{
		Workers: 2, StoreDir: storeDir, Remote: &queue.Dispatcher{Q: q},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Timeout: time.Minute, Queue: q})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
		q.Close()
	})
	return ts, eng, q, storeDir
}

// startWorker runs an in-process fleet member against the control plane
// until the test ends.
func startWorker(t *testing.T, o worker.Options) *worker.Worker {
	t.Helper()
	w, err := worker.New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		w.Close()
	})
	return w
}

// compact strips the response writer's indentation for byte comparisons.
func compact(t *testing.T, b []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compacting %q: %v", b, err)
	}
	return buf.String()
}

// post sends a JSON body and returns the response.
func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestQueueAPIProtocol(t *testing.T) {
	ts, _, q, _ := newDistributedServer(t, queue.Options{LeaseTTL: time.Minute})
	if _, err := q.Enqueue("job-a", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}

	// Lease the entry over HTTP.
	resp := post(t, ts.URL+"/v1/queue/lease", queue.LeaseRequest{Worker: "wapi"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status %d", resp.StatusCode)
	}
	lr := decode[queue.LeaseResponse](t, resp)
	if lr.Job == nil || lr.Job.ID != "job-a" || !strings.HasPrefix(lr.Job.Holder, "wapi#") {
		t.Fatalf("lease response %+v", lr.Job)
	}
	if got := compact(t, lr.Job.Payload); got != `{"n":1}` {
		t.Fatalf("payload %s", got)
	}

	// An empty queue leases {"job": null}, not an error.
	resp = post(t, ts.URL+"/v1/queue/lease", queue.LeaseRequest{Worker: "wapi"})
	if lr2 := decode[queue.LeaseResponse](t, resp); lr2.Job != nil {
		t.Fatalf("empty lease returned %+v", lr2.Job)
	}

	// Protocol rejections: 404 for unknown ids, 409 for stale holders.
	resp = post(t, ts.URL+"/v1/queue/nonesuch/heartbeat", queue.HeartbeatRequest{Holder: lr.Job.Holder})
	if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat status %d, want 404", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/v1/queue/job-a/heartbeat", queue.HeartbeatRequest{Holder: "impostor#9"})
	if resp.Body.Close(); resp.StatusCode != http.StatusConflict {
		t.Fatalf("impostor heartbeat status %d, want 409", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/v1/queue/job-a/complete", queue.CompleteRequest{Holder: "impostor#9"})
	if resp.Body.Close(); resp.StatusCode != http.StatusConflict {
		t.Fatalf("impostor complete status %d, want 409", resp.StatusCode)
	}

	// The real holder renews and completes; a duplicate complete is 404
	// (the entry is gone — exactly-once ack).
	resp = post(t, ts.URL+"/v1/queue/job-a/heartbeat", queue.HeartbeatRequest{Holder: lr.Job.Holder})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat status %d", resp.StatusCode)
	}
	hb := decode[queue.HeartbeatResponse](t, resp)
	if !hb.LeaseExpires.After(time.Now()) {
		t.Fatalf("renewed lease already expired: %v", hb.LeaseExpires)
	}
	resp = post(t, ts.URL+"/v1/queue/job-a/complete", queue.CompleteRequest{Holder: lr.Job.Holder})
	if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		t.Fatalf("complete status %d", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/v1/queue/job-a/complete", queue.CompleteRequest{Holder: lr.Job.Holder})
	if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("duplicate complete status %d, want 404", resp.StatusCode)
	}

	// Malformed and over-strict bodies are 400s.
	resp, err := http.Post(ts.URL+"/v1/queue/lease", "application/json", strings.NewReader(`{"worker":`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/queue/lease", "application/json", strings.NewReader(`{"surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", resp.StatusCode)
	}
}

func TestQueueAPIDeadLetter(t *testing.T) {
	ts, _, q, _ := newDistributedServer(t, queue.Options{
		MaxAttempts: 2, Backoff: time.Millisecond, LeaseTTL: time.Minute,
	})
	if _, err := q.Enqueue("job-b", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	// An empty DLQ serialises as [], never null.
	resp, err := http.Get(ts.URL + "/v1/queue/dead")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(compact(t, raw), `"dead":[]`) {
		t.Fatalf("empty DLQ body %s, want \"dead\":[]", raw)
	}

	failOnce := func(cause string) queue.FailResponse {
		t.Helper()
		lresp := post(t, ts.URL+"/v1/queue/lease", queue.LeaseRequest{Worker: "wf"})
		lr := decode[queue.LeaseResponse](t, lresp)
		if lr.Job == nil {
			t.Fatal("nothing to lease")
		}
		fresp := post(t, ts.URL+"/v1/queue/job-b/fail", queue.FailRequest{Holder: lr.Job.Holder, Error: cause})
		if fresp.StatusCode != http.StatusOK {
			t.Fatalf("fail status %d", fresp.StatusCode)
		}
		return decode[queue.FailResponse](t, fresp)
	}
	if fr := failOnce("boom one"); fr.Attempts != 1 || fr.Dead {
		t.Fatalf("first fail %+v", fr)
	}
	time.Sleep(5 * time.Millisecond) // past the retry backoff
	if fr := failOnce("boom two"); fr.Attempts != 2 || !fr.Dead {
		t.Fatalf("second fail %+v, want dead", fr)
	}

	// The DLQ reports the full error chain over HTTP.
	resp, err = http.Get(ts.URL + "/v1/queue/dead")
	if err != nil {
		t.Fatal(err)
	}
	dr := decode[queue.DeadResponse](t, resp)
	if len(dr.Dead) != 1 || dr.Dead[0].ID != "job-b" || dr.Dead[0].Attempts != 2 {
		t.Fatalf("DLQ %+v", dr.Dead)
	}
	if len(dr.Dead[0].Errors) != 2 || !strings.Contains(dr.Dead[0].Errors[1], "boom two") {
		t.Fatalf("DLQ error chain %q", dr.Dead[0].Errors)
	}

	// /v1/stats surfaces the queue block alongside the sweep gauges.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[struct {
		Queue *struct {
			Pending  int   `json:"pending"`
			Leased   int   `json:"leased"`
			Dead     int   `json:"dead"`
			Leases   int64 `json:"leases"`
			Failures int64 `json:"failures"`
		} `json:"queue"`
		SweepsRunning     int `json:"sweeps_running"`
		SweepCellsPending int `json:"sweep_cells_pending"`
	}](t, sresp)
	if st.Queue == nil {
		t.Fatal("stats missing queue block on a distributed server")
	}
	if st.Queue.Dead != 1 || st.Queue.Failures != 2 || st.Queue.Leases != 2 || st.Queue.Pending != 0 {
		t.Fatalf("queue stats %+v", st.Queue)
	}
	if st.SweepsRunning != 0 || st.SweepCellsPending != 0 {
		t.Fatalf("idle sweep gauges %d/%d", st.SweepsRunning, st.SweepCellsPending)
	}

	// And the metrics endpoint exports the same numbers.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"slicc_queue_dead 1",
		"slicc_queue_failures_total 2",
		"slicc_queue_leases_total 2",
		`slicc_queue_depth{state="pending"} 0`,
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDistributedSweepInProcess is the fleet under one race detector: the
// engine enqueues sweep cells, an in-process worker leases and executes
// them against the shared store, and the control plane assembles the
// result without executing a single simulation itself.
func TestDistributedSweepInProcess(t *testing.T) {
	ts, eng, q, storeDir := newDistributedServer(t, queue.Options{
		LeaseTTL: 30 * time.Second, SweepInterval: 50 * time.Millisecond,
	})
	w := startWorker(t, worker.Options{
		Server: ts.URL, StoreDir: storeDir, Workers: 2, Poll: time.Second, Name: "inproc",
	})

	spec := `{"name":"dist","workloads":["tpcc1"],"policies":["base","nextline"],"threads":[4],"scales":[0.1]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	sw := decode[struct {
		Status    string             `json:"status"`
		Completed int                `json:"completed"`
		Total     int                `json:"total"`
		Result    *slicc.SweepResult `json:"result"`
	}](t, resp)
	if sw.Status != "done" || sw.Completed != 2 || sw.Total != 2 || sw.Result == nil || len(sw.Result.Cells) != 2 {
		t.Fatalf("distributed sweep %+v", sw)
	}
	for _, c := range sw.Result.Cells {
		if c.Instructions == 0 || c.Cycles <= 0 {
			t.Fatalf("cell %+v carries no simulation result", c)
		}
	}

	// The control plane dispatched, never simulated; the worker did the
	// work; every queue entry was completed exactly once.
	es := eng.Stats()
	if es.SimsExecuted != 0 || es.SimsRemote != 2 {
		t.Fatalf("engine stats %+v, want 0 executed / 2 remote", es)
	}
	qs := q.Stats()
	if qs.Enqueued != 2 || qs.Completions != 2 || qs.Dead != 0 || qs.Pending != 0 || qs.Leased != 0 {
		t.Fatalf("queue stats %+v", qs)
	}
	// The worker bumps its counters after its ack round trip returns,
	// which can trail the sweep's completion; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Completed != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ws := w.Stats(); ws.Completed != 2 || ws.Failed != 0 {
		t.Fatalf("worker stats %+v", ws)
	}

	// Warm cross-check: a fresh *standalone* engine on the same store
	// serves every cell as a store hit — results produced by the fleet
	// and results produced in-process are the same store entries — and
	// reproduces the distributed cells exactly. Nothing new is enqueued.
	var sp slicc.SweepSpec
	if err := json.Unmarshal([]byte(spec), &sp); err != nil {
		t.Fatal(err)
	}
	eng2, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2, StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	res2, err := eng2.Sweep(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	es2 := eng2.Stats()
	if es2.SimsExecuted != 0 || es2.StoreHits < 2 {
		t.Fatalf("standalone warm stats %+v, want pure store hits", es2)
	}
	if !reflect.DeepEqual(res2.Cells, sw.Result.Cells) {
		t.Fatalf("standalone cells diverge from distributed:\n%+v\nvs\n%+v", res2.Cells, sw.Result.Cells)
	}
	if qs := q.Stats(); qs.Enqueued != 2 {
		t.Fatalf("warm rerun enqueued new cells: %+v", qs)
	}
}
