package server

// Response-byte caching and conditional GETs for completed resources.
//
// Simulation and sweep ids are content keys: a completed ("done")
// resource is immutable, so its marshaled response bytes — JSON, CSV or
// text — can be built once and replayed verbatim, and the id itself is a
// strong validator. GET handlers set an ETag derived from the content
// key and answer If-None-Match with 304 Not Modified before doing any
// marshaling, so SDK pollers and dashboards watching a finished resource
// cost near-zero.
//
// Only done resources participate: running resources change between
// polls, and failed sweeps are retained *mutable* (a re-POST or resume
// retries them in place), so neither gets an ETag or cached bytes.
// Memory is bounded by construction: caches hang off the tracked-entry
// maps (maxTrackedSims / Options.MaxTrackedSweeps) with at most three
// formats per sweep, and eviction of an entry drops its cache with it.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// respCache lazily builds and retains the marshaled response bytes of an
// immutable completed resource, one slot per format.
type respCache struct {
	mu       sync.Mutex
	byFormat map[string][]byte
}

// bytes returns the cached representation for format, building it on
// first use. hit reports whether the bytes were already cached. A build
// error caches nothing.
func (c *respCache) bytes(format string, build func() ([]byte, error)) (b []byte, hit bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.byFormat[format]; ok {
		return b, true, nil
	}
	b, err = build()
	if err != nil {
		return nil, false, err
	}
	if c.byFormat == nil {
		c.byFormat = make(map[string][]byte, 1)
	}
	c.byFormat[format] = b
	return b, false, nil
}

// etagFor derives the strong validator for a completed resource's
// representation: the content-keyed id, suffixed with the non-default
// format so distinct representations never share a validator.
func etagFor(id, format string) string {
	if format == "" || format == "json" {
		return `"` + id + `"`
	}
	return `"` + id + `+` + format + `"`
}

// etagMatch reports whether an If-None-Match header value matches etag
// (exact strong match, any member of a comma-separated list, or "*").
// Weak validators (W/ prefix) are accepted too: weak comparison is
// enough for a 304 on a byte-immutable resource.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// marshalResponse renders v exactly as writeJSON would (indented JSON
// with a trailing newline), without touching a ResponseWriter.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeRaw sends prebuilt response bytes.
func writeRaw(w http.ResponseWriter, contentType string, b []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// serveCached handles the tail of a completed resource's GET: sets the
// ETag, answers If-None-Match with 304, and (unless the response cache
// is disabled) replays or builds-and-caches the representation via c and
// build. It reports whether it fully handled the request; on false the
// caller falls through to its uncached path (response cache disabled, or
// the build failed and the normal path will surface the error).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, c *respCache, id, format, contentType string, build func() ([]byte, error)) bool {
	etag := etagFor(id, format)
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.metrics.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	if s.opts.NoResponseCache {
		return false
	}
	b, hit, err := c.bytes(format, build)
	if err != nil {
		return false
	}
	if hit {
		s.metrics.respCacheHits.Inc()
	} else {
		s.metrics.respCacheMisses.Inc()
	}
	writeRaw(w, contentType, b)
	return true
}

// buffered adapts a writer-style renderer to serveCached's build shape.
func buffered(render func(*bytes.Buffer) error) func() ([]byte, error) {
	return func() ([]byte, error) {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}
