package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slicc"
)

func TestETagMatch(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{``, `"a"`, false},
		{`"a"`, `"a"`, true},
		{`"b"`, `"a"`, false},
		{`"x", "a" , "y"`, `"a"`, true},
		{`W/"a"`, `"a"`, true},
		{`*`, `"a"`, true},
		{`"a`, `"a"`, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, c.etag); got != c.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", c.header, c.etag, c.want, got)
		}
	}
}

func TestETagFor(t *testing.T) {
	if got := etagFor("abc", "json"); got != `"abc"` {
		t.Fatalf("json etag %s", got)
	}
	if got := etagFor("abc", "csv"); got != `"abc+csv"` {
		t.Fatalf("csv etag %s", got)
	}
	if etagFor("abc", "csv") == etagFor("abc", "text") {
		t.Fatal("distinct representations share a validator")
	}
}

// get fetches url with optional If-None-Match, returning status, ETag and
// body.
func get(t *testing.T, url, inm string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	b, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header.Get("ETag"), b
}

func TestSimulationETagAnd304(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[simResponse](t, r)
	if resp.Status != "done" {
		t.Fatalf("status %s", resp.Status)
	}
	url := ts.URL + "/v1/simulations/" + resp.ID

	code, etag, body1 := get(t, url, "")
	if code != http.StatusOK || etag != `"`+resp.ID+`"` {
		t.Fatalf("code %d etag %s", code, etag)
	}
	// Replay from the cache: byte-identical.
	code, _, body2 := get(t, url, "")
	if code != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatal("cached replay differs from the built response")
	}
	// Conditional GET: no body on the wire.
	code, etag304, body3 := get(t, url, etag)
	if code != http.StatusNotModified || len(body3) != 0 {
		t.Fatalf("conditional get: code %d body %d bytes", code, len(body3))
	}
	if etag304 != etag {
		t.Fatalf("304 etag %s, want %s", etag304, etag)
	}
	// A stale validator gets the full response.
	if code, _, _ := get(t, url, `"somethingelse"`); code != http.StatusOK {
		t.Fatalf("stale validator: code %d", code)
	}
}

func TestSweepETagPerFormat(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[sweepResponse](t, r)
	if resp.Status != "done" {
		t.Fatalf("status %s", resp.Status)
	}
	url := ts.URL + "/v1/sweeps/" + resp.ID

	for _, c := range []struct{ query, etag string }{
		{"", `"` + resp.ID + `"`},
		{"?format=csv", `"` + resp.ID + `+csv"`},
		{"?format=text", `"` + resp.ID + `+text"`},
	} {
		code, etag, body1 := get(t, url+c.query, "")
		if code != http.StatusOK || etag != c.etag {
			t.Fatalf("%s: code %d etag %s want %s", c.query, code, etag, c.etag)
		}
		if code, _, body2 := get(t, url+c.query, ""); code != http.StatusOK || !bytes.Equal(body1, body2) {
			t.Fatalf("%s: cached replay differs", c.query)
		}
		if code, _, body := get(t, url+c.query, etag); code != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("%s: conditional get code %d, %d bytes", c.query, code, len(body))
		}
	}
	// Formats never share validators: a csv ETag does not 304 the json
	// representation.
	if code, _, _ := get(t, url, `"`+resp.ID+`+csv"`); code != http.StatusOK {
		t.Fatal("csv validator matched the json representation")
	}
}

// TestResponseCacheByteIdentical pins the cache's whole contract: the
// cached bytes equal what an uncached server renders for the same
// resource, for every format.
func TestResponseCacheByteIdentical(t *testing.T) {
	newServer := func(noCache bool) (*httptest.Server, func()) {
		eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(eng, Options{Timeout: time.Minute, NoResponseCache: noCache})
		ts := httptest.NewServer(srv.Handler())
		return ts, func() { ts.Close(); srv.Close(); eng.Close() }
	}
	cached, closeCached := newServer(false)
	defer closeCached()
	uncached, closeUncached := newServer(true)
	defer closeUncached()

	var id string
	for _, ts := range []*httptest.Server{cached, uncached} {
		r, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody))
		if err != nil {
			t.Fatal(err)
		}
		resp := decode[sweepResponse](t, r)
		if resp.Status != "done" {
			t.Fatalf("status %s", resp.Status)
		}
		id = resp.ID
	}
	for _, query := range []string{"", "?format=csv", "?format=text"} {
		url := "/v1/sweeps/" + id + query
		_, _, first := get(t, cached.URL+url, "") // build + cache
		_, _, replay := get(t, cached.URL+url, "")
		code, etag, plain := get(t, uncached.URL+url, "")
		if code != http.StatusOK {
			t.Fatalf("%s: uncached code %d", query, code)
		}
		if !bytes.Equal(first, plain) || !bytes.Equal(replay, plain) {
			t.Fatalf("%s: cached bytes differ from uncached rendering", query)
		}
		// The uncached server still serves conditional GETs (ETag is set
		// even with the byte cache disabled).
		if etag == "" {
			t.Fatalf("%s: uncached server sent no ETag", query)
		}
		if code, _, _ := get(t, uncached.URL+url, etag); code != http.StatusNotModified {
			t.Fatalf("%s: uncached server ignored If-None-Match", query)
		}
	}
}

func TestResponseCacheStats(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[simResponse](t, r)
	url := ts.URL + "/v1/simulations/" + resp.ID
	_, etag, _ := get(t, url, "") // miss (build + cache)
	get(t, url, "")               // hit
	get(t, url, etag)             // 304

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[statsResponse](t, sr)
	rc := stats.ResponseCache
	if rc.Misses < 1 || rc.Hits < 1 || rc.NotModified < 1 {
		t.Fatalf("response_cache stats %+v", rc)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	metrics, _ := io.ReadAll(mr.Body)
	for _, family := range []string{
		"slicc_response_cache_hits_total",
		"slicc_response_cache_misses_total",
		"slicc_http_not_modified_total",
	} {
		if !strings.Contains(string(metrics), family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
}

// TestRunningResourceNoETag: only done resources are immutable; a
// resource still running must not advertise a validator.
func TestRunningResourceNoETag(t *testing.T) {
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := New(eng, Options{Timeout: time.Minute})
	srv.Close() // runs fail: entries are transiently "running", never done
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	r, err := http.Post(ts.URL+"/v1/simulations", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[simResponse](t, r)
	if resp.Status == "done" {
		t.Fatalf("run succeeded under a closed server")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/simulations/"+resp.ID, nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	// The entry may already have been dropped (404) — fine; what must not
	// happen is a 200 with an ETag on a non-done resource.
	if r2.StatusCode == http.StatusOK && r2.Header.Get("ETag") != "" {
		var got simResponse
		if err := json.NewDecoder(r2.Body).Decode(&got); err == nil && got.Status != "done" {
			t.Fatalf("ETag on a %q resource", got.Status)
		}
	}
}
