// Package server exposes the slicc simulation engine over HTTP: the
// sliccd front door. One shared slicc.Engine (with its in-memory dedup and
// optional persistent result store) serves every request, so identical
// work — across requests, across clients, and with a store across server
// restarts — executes once.
//
// # API
//
//	POST /v1/simulations        submit a slicc.Config (JSON body); returns
//	                            the content-keyed job id. Identical
//	                            submissions coalesce onto one execution.
//	                            ?wait=1 blocks (within the request timeout)
//	                            for the result.
//	GET  /v1/simulations/{id}   result or status of a submitted simulation.
//	POST /v1/sweeps             submit a slicc.SweepSpec (JSON body); the
//	                            sweep's cells run on the shared engine, so
//	                            they dedup against everything else and
//	                            persist in the store. Identical specs
//	                            coalesce onto one run; ?wait=1 blocks.
//	GET  /v1/sweeps/{id}        result or status of a submitted sweep,
//	                            with completed/total progress and partial
//	                            cells while running (?format=csv or
//	                            ?format=text render the completed cells).
//	GET  /v1/sweeps/{id}/events Server-Sent Events stream of the sweep:
//	                            lossless replay of finished cells, live
//	                            tail, terminal done/error event;
//	                            Last-Event-ID resumes after a reconnect.
//	POST /v1/sweeps/{id}/resume retry a tracked failed sweep in place;
//	                            finished cells are store hits. After a
//	                            server restart, re-POST the spec instead
//	                            (ids are content keys).
//	GET  /v1/experiments/{id}   run one of the paper's experiments and
//	                            return its rendered tables (?quick=1,
//	                            &seed=N, &format=text).
//	GET  /v1/stats              engine work counters (executions, dedup and
//	                            store hits), store stats, queue stats on
//	                            distributed control planes, and uptime.
//	POST /v1/queue/lease        distributed mode only (Options.Queue): the
//	POST /v1/queue/{id}/...     worker fleet's lease/heartbeat/complete/
//	GET  /v1/queue/dead         fail protocol and DLQ inspection — see
//	                            queue.go and docs/SERVICE.md.
//	GET  /metrics               Prometheus text-format metrics.
//	GET  /healthz               readiness: probes the result store for
//	                            writability; degraded stores answer 503.
//
// Every error is a JSON object {"error": "...", "request_id": "..."} with
// a meaningful status code. Every response carries an X-Request-ID header
// (echoing the client's, if well-formed) matching the request's access
// log line. See docs/SERVICE.md for the full reference.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"slicc"
	"slicc/internal/queue"
	"slicc/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Timeout bounds synchronous request handling: experiment runs and
	// ?wait=1 simulation waits are cancelled when it expires (default
	// 2 minutes). Submitted simulations keep running in the background
	// after their submitting request times out.
	Timeout time.Duration
	// EventBuffer is the per-subscriber buffer of a sweep SSE stream
	// (default 256 events). A subscriber that falls this far behind is
	// disconnected rather than blocking the sweep or buffering without
	// bound; it reconnects with Last-Event-ID and replays losslessly.
	EventBuffer int
	// Heartbeat is the interval between SSE comment keep-alives on idle
	// event streams (default 30s), so proxies don't cut long quiet cells.
	Heartbeat time.Duration
	// MaxTrackedSweeps bounds the in-memory sweep map (default 256): past
	// it the oldest *completed* sweeps are dropped. Their event streams
	// have already delivered a terminal event (streams end at completion),
	// their cells persist in the store, and their ids poll as 404.
	MaxTrackedSweeps int
	// Logger receives the server's structured logs: one access line per
	// request, sweep lifecycle events, and (at debug level) spans and
	// per-cell completions. Nil discards everything.
	Logger *slog.Logger
	// Metrics is the registry /metrics exposes. Nil gets a fresh registry,
	// which is almost always right — sharing one registry between servers
	// panics on the second server's callback registrations.
	Metrics *telemetry.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiles expose internals, so enabling is a deployment
	// decision (sliccd -pprof).
	Pprof bool
	// NoResponseCache disables caching of marshaled response bytes for
	// completed simulations and sweeps (see respcache.go). Conditional
	// GETs (ETag / If-None-Match → 304) work either way; the switch
	// exists for A/B measurement and memory-constrained deployments.
	NoResponseCache bool
	// Queue, when set, mounts the distributed-execution queue API
	// (/v1/queue/*) over it and adds the slicc_queue_* metric families
	// and the stats queue block. The caller owns the queue (sliccd opens
	// and closes it alongside the engine); the server only serves it.
	Queue *queue.Queue
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 256
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 30 * time.Second
	}
	if o.MaxTrackedSweeps <= 0 {
		o.MaxTrackedSweeps = 256
	}
	return o
}

// Server routes HTTP requests onto one shared engine.
type Server struct {
	eng  *slicc.Engine
	opts Options
	// sweepRun executes one sweep, publishing its events as they land. It
	// is Engine.SweepStream in production; tests substitute a scripted
	// implementation to control event timing and inject failures.
	sweepRun func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error)

	// baseCtx parents every simulation execution; Close cancels it so
	// in-flight simulations abort during shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc
	// running tracks in-flight simulation goroutines; Close waits for them
	// so the engine (and its store) can be closed safely afterwards.
	running sync.WaitGroup

	// logger is never nil (a discard logger stands in); metrics holds the
	// registry plus the handles the request path updates; tracer turns
	// ctx spans into debug logs and the span-duration histogram.
	logger  *slog.Logger
	metrics *serverMetrics
	tracer  *telemetry.Tracer
	start   time.Time

	mu   sync.Mutex
	sims map[string]*simEntry
	// order is the insertion order of sims, for bounded-memory eviction of
	// completed entries.
	order []string

	sweeps     map[string]*sweepEntry
	sweepOrder []string
}

// maxTrackedSims bounds the service-level result map: past this, the
// oldest *completed* entries are dropped (their results persist in the
// store if one is configured; a dropped id simply polls as 404).
const maxTrackedSims = 4096

// (Sweeps are bounded the same way by Options.MaxTrackedSweeps — default
// 256, lower than sims because sweep results are cell tables, KBs not
// bytes; the underlying simulations persist in the store regardless.)

// simEntry is one content-keyed simulation accepted by the service. The
// entry outlives its submitting request: status is poll-able until the
// server exits.
type simEntry struct {
	id   string
	cfg  slicc.Config
	done chan struct{} // closed when result/err are valid

	result slicc.Result
	err    error
	// resp caches the marshaled bytes of the completed (done, non-failed)
	// entry — immutable, like the result it renders.
	resp respCache
}

// New builds a Server over eng. The caller retains ownership of the
// engine; closing the Server stops in-flight simulations but does not
// close the engine.
func New(eng *slicc.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	logger := opts.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		eng:     eng,
		opts:    opts,
		logger:  logger,
		metrics: newServerMetrics(reg),
		start:   time.Now(),
	}
	s.tracer = &telemetry.Tracer{
		Logger: logger,
		OnSpan: func(name string, d time.Duration) {
			reg.Histogram("slicc_span_duration_seconds",
				"Traced span durations by span name.", nil,
				telemetry.L("span", name)).Observe(d.Seconds())
		},
	}
	// Background work (sims, sweeps) runs under baseCtx, which outlives the
	// submitting request; the tracer and logger ride along so engine-side
	// spans are recorded, and each launch attaches its requester's ID.
	ctx, cancel := context.WithCancel(context.Background())
	ctx = telemetry.WithLogger(ctx, logger)
	ctx = telemetry.WithTracer(ctx, s.tracer)
	s.baseCtx, s.cancel = ctx, cancel
	s.sims = make(map[string]*simEntry)
	s.sweeps = make(map[string]*sweepEntry)
	s.sweepRun = func(ctx context.Context, spec slicc.SweepSpec, emit func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
		return eng.SweepStream(ctx, spec, emit)
	}
	s.registerMetrics()
	if s.opts.Queue != nil {
		s.registerQueueMetrics()
	}
	return s
}

// Close aborts in-flight simulations and waits for their goroutines to
// drain, so the caller may close the engine immediately afterwards. It
// does not close the engine itself.
func (s *Server) Close() error {
	s.cancel()
	s.running.Wait()
	return nil
}

// Handler returns the server's routing handler. Every route runs under
// the telemetry middleware, labelled by its registered pattern (bounded
// cardinality — patterns, not paths, become metric labels).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	add := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, h))
	}
	add("GET /healthz", "/healthz", s.handleHealthz)
	add("GET /metrics", "/metrics", s.metrics.reg.Handler().ServeHTTP)
	add("GET /v1/stats", "/v1/stats", s.handleStats)
	add("POST /v1/simulations", "/v1/simulations", s.handleSubmit)
	add("GET /v1/simulations/{id}", "/v1/simulations/{id}", s.handleSimulation)
	add("POST /v1/sweeps", "/v1/sweeps", s.handleSweepSubmit)
	add("GET /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleSweep)
	add("GET /v1/sweeps/{id}/events", "/v1/sweeps/{id}/events", s.handleSweepEvents)
	add("POST /v1/sweeps/{id}/resume", "/v1/sweeps/{id}/resume", s.handleSweepResume)
	add("GET /v1/experiments/{id}", "/v1/experiments/{id}", s.handleExperiment)
	if s.opts.Queue != nil {
		s.queueRoutes(add)
	}
	if s.opts.Pprof {
		// Deliberately uninstrumented: profile endpoints stream for their
		// whole -seconds window and would skew the latency histograms.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	add("/", "other", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// errorBody is the uniform JSON error envelope. RequestID lets a client
// quote the exact server log line its failure produced.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg, RequestID: telemetry.RequestID(r.Context())})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the ResponseWriter: once the status line is
	// out an encoding failure could only produce a truncated body.
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		code = http.StatusInternalServerError
		b, _ = json.Marshal(errorBody{Error: "encoding response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// handleHealthz is a readiness check, not just liveness: when the engine
// has a persistent store, it probes the store directory with a temp-file
// create/remove — the first thing every result Put does — so a full disk
// or vanished directory flips the endpoint to 503 before sweeps start
// failing mysteriously.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state, err := s.checkStore()
	body := map[string]string{"status": "ok", "store": state}
	if err != nil {
		body["status"] = "degraded"
		body["reason"] = "store probe: " + err.Error()
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// storeStatsBody mirrors slicc.StoreStats for the stats endpoint; the
// numbers are the same ones /metrics samples, so the surfaces agree.
// Evictions are split per tier: disk entries evicted under the
// -store-max-mb budget vs memory-tier entries evicted under
// -store-mem-mb (both process-local).
type storeStatsBody struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	DiskEvictions int64 `json:"evictions_disk"`
	MemEntries    int   `json:"mem_entries"`
	MemBytes      int64 `json:"mem_bytes"`
	MemEvictions  int64 `json:"evictions_mem"`
	MemHits       int64 `json:"mem_hits"`
	MemMisses     int64 `json:"mem_misses"`
	NegativeHits  int64 `json:"negative_hits"`
}

// respCacheBody reports the response-byte cache and conditional-GET
// counters (the same values the slicc_response_cache_* and
// slicc_http_not_modified_total metric families expose).
type respCacheBody struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	NotModified uint64 `json:"not_modified"`
}

// statsResponse reports engine counters plus service-level bookkeeping.
type statsResponse struct {
	Engine slicc.EngineStats `json:"engine"`
	// Store is present only when the engine has a persistent store.
	Store         *storeStatsBody `json:"store,omitempty"`
	ResponseCache respCacheBody   `json:"response_cache"`
	// Queue is present only on distributed control planes (sliccd
	// -distributed): the durable job queue's depth, DLQ and lifetime
	// counters.
	Queue       *queueStatsBody `json:"queue,omitempty"`
	Simulations int             `json:"simulations"`
	// Sweeps counts tracked sweep entries (running and retained
	// completed/failed ones); SweepsRunning counts only the running
	// subset, whose unfinished result cells are SweepCellsPending. In
	// distributed mode the queue block splits that pending work further
	// into queued-but-unleased vs in-flight-on-a-worker.
	Sweeps            int     `json:"sweeps"`
	SweepsRunning     int     `json:"sweeps_running"`
	SweepCellsPending int     `json:"sweep_cells_pending"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, ns := len(s.sims), len(s.sweeps)
	s.mu.Unlock()
	running, pending := s.sweepDepth()
	resp := statsResponse{
		Engine: s.eng.Stats(),
		ResponseCache: respCacheBody{
			Hits:        s.metrics.respCacheHits.Value(),
			Misses:      s.metrics.respCacheMisses.Value(),
			NotModified: s.metrics.notModified.Value(),
		},
		Simulations:       n,
		Sweeps:            ns,
		SweepsRunning:     running,
		SweepCellsPending: pending,
		UptimeSeconds:     time.Since(s.start).Seconds(),
	}
	if q := s.opts.Queue; q != nil {
		st := q.Stats()
		resp.Queue = &queueStatsBody{
			Pending: st.Pending, Leased: st.Leased, Dead: st.Dead,
			Enqueued: st.Enqueued, Leases: st.Leases, Heartbeats: st.Heartbeats,
			Expirations: st.Expirations, Completions: st.Completions, Failures: st.Failures,
		}
	}
	if st, ok := s.eng.StoreStats(); ok {
		resp.Store = &storeStatsBody{
			Entries:       st.Entries,
			Bytes:         st.Bytes,
			DiskEvictions: st.DiskEvictions,
			MemEntries:    st.MemEntries,
			MemBytes:      st.MemBytes,
			MemEvictions:  st.MemEvictions,
			MemHits:       st.MemHits,
			MemMisses:     st.MemMisses,
			NegativeHits:  st.NegativeHits,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// simResponse describes one simulation's state.
type simResponse struct {
	ID string `json:"id"`
	// Status is "running", "done" or "failed".
	Status string        `json:"status"`
	Config slicc.Config  `json:"config"`
	Result *slicc.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

func (e *simEntry) response() simResponse {
	resp := simResponse{ID: e.id, Status: "running", Config: e.cfg}
	select {
	case <-e.done:
		if e.err != nil {
			resp.Status = "failed"
			resp.Error = e.err.Error()
		} else {
			resp.Status = "done"
			r := e.result
			resp.Result = &r
		}
	default:
	}
	return resp
}

// handleSubmit accepts a slicc.Config and coalesces it onto the existing
// execution of the same content key, starting one if needed.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var cfg slicc.Config
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding config: "+err.Error())
		return
	}
	// TracePath names a file on the *server's* filesystem; accepting it
	// from the network would let clients probe arbitrary paths and hash
	// unbounded special files. Trace replay stays a CLI/library feature
	// (warm the store with tracegen/experiments -store instead).
	if cfg.TracePath != "" {
		writeError(w, r, http.StatusUnprocessableEntity,
			"TracePath is not accepted over the API; replay traces via the CLIs and share results through the store")
		return
	}
	id, err := cfg.Key()
	if err != nil {
		writeError(w, r, http.StatusUnprocessableEntity, err.Error())
		return
	}

	s.mu.Lock()
	e, existed := s.sims[id]
	if !existed {
		e = &simEntry{id: id, cfg: cfg, done: make(chan struct{})}
		s.sims[id] = e
		s.order = append(s.order, id)
		s.evictCompletedLocked()
		s.running.Add(1)
		// The run belongs to the service (baseCtx), not the submitting
		// request, but it keeps the submitter's request ID so its spans
		// trace back to the access log line that started it.
		runCtx := telemetry.WithRequestID(s.baseCtx, telemetry.RequestID(r.Context()))
		go func() {
			defer s.running.Done()
			// The simulation belongs to the service, not the submitting
			// request: it survives client disconnects and is aborted only
			// by server shutdown.
			e.result, e.err = s.eng.Run(runCtx, e.cfg)
			close(e.done)
			if e.err != nil {
				// Drop failed entries so a later identical submission
				// retries instead of replaying a possibly transient
				// failure forever (mirroring the pool's own evict-on-fail
				// policy). Waiters holding the entry still see the error.
				s.evict(id, e)
			}
		}()
	}
	s.mu.Unlock()

	if boolParam(r, "wait") {
		select {
		case <-e.done:
		case <-time.After(s.opts.Timeout):
			// Not an error: the job is accepted and still running.
		case <-r.Context().Done():
		case <-s.baseCtx.Done():
		}
	}
	resp := e.response()
	code := http.StatusOK
	if !existed && resp.Status == "running" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, resp)
}

// evict removes id's entry if it is still e (a newer retry must survive).
func (s *Server) evict(id string, e *simEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sims[id] == e {
		delete(s.sims, id)
	}
}

// evictCompletedLocked bounds s.sims at maxTrackedSims by dropping the
// oldest completed entries (running ones are never dropped). Caller holds
// s.mu.
func (s *Server) evictCompletedLocked() {
	if len(s.sims) <= maxTrackedSims {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		e, ok := s.sims[id]
		if !ok {
			continue // already evicted (failure path)
		}
		completed := false
		select {
		case <-e.done:
			completed = true
		default:
		}
		if completed && len(s.sims) > maxTrackedSims {
			delete(s.sims, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleSimulation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sims[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Sprintf("unknown simulation %q", id))
		return
	}
	if boolParam(r, "wait") {
		select {
		case <-e.done:
		case <-time.After(s.opts.Timeout):
		case <-r.Context().Done():
		case <-s.baseCtx.Done():
		}
	}
	resp := e.response()
	if resp.Status == "done" {
		// Done simulations are immutable content keyed by id: serve the
		// conditional-GET / cached-bytes fast path.
		if s.serveCached(w, r, &e.resp, id, "json", "application/json",
			func() ([]byte, error) { return marshalResponse(resp) }) {
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepEntry is one content-keyed sweep accepted by the service.
type sweepEntry struct {
	id   string
	spec slicc.SweepSpec
	done chan struct{} // closed when result/err are valid
	// prog accumulates the run's streamed events: the replayable SSE log,
	// the finished cells for partial GET responses, and live subscribers.
	prog *sweepProgress

	result *slicc.SweepResult
	err    error
	// resp caches the marshaled bytes (per format) of the completed
	// (done, non-failed) sweep. Failed sweeps are never cached: they are
	// retained mutable, retried in place by re-POST/resume.
	resp respCache
}

// failed reports whether the entry's run has completed with an error.
func (e *sweepEntry) failed() bool {
	select {
	case <-e.done:
		return e.err != nil
	default:
		return false
	}
}

// sweepResponse describes one sweep's state.
type sweepResponse struct {
	ID string `json:"id"`
	// Status is "running", "done" or "failed".
	Status string          `json:"status"`
	Spec   slicc.SweepSpec `json:"spec"`
	// Completed of Total result cells have finished (baselines excluded).
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Partial lists the cells finished so far in expansion order. Present
	// while running or failed; a done sweep's Result carries every cell.
	Partial []slicc.SweepCellResult `json:"partial,omitempty"`
	Result  *slicc.SweepResult      `json:"result,omitempty"`
	Error   string                  `json:"error,omitempty"`
}

func (e *sweepEntry) response() sweepResponse {
	resp := sweepResponse{ID: e.id, Status: "running", Spec: e.spec}
	resp.Completed, resp.Total = e.prog.counts()
	select {
	case <-e.done:
		if e.err != nil {
			resp.Status = "failed"
			resp.Error = e.err.Error()
			resp.Partial = e.prog.partialCells()
		} else {
			resp.Status = "done"
			resp.Result = e.result
		}
	default:
		resp.Partial = e.prog.partialCells()
	}
	return resp
}

// handleSweepSubmit accepts a slicc.SweepSpec and coalesces it onto the
// existing run of the same content key, starting one if needed. Sweep
// specs are pure benchmark axes — no TracePath-style server filesystem
// references exist in the schema — so the whole spec is safe to accept
// from the network; expansion itself enforces the cell limit.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec slicc.SweepSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding sweep spec: "+err.Error())
		return
	}
	id, err := spec.Key()
	if err != nil {
		writeError(w, r, http.StatusUnprocessableEntity, err.Error())
		return
	}

	reqID := telemetry.RequestID(r.Context())
	s.mu.Lock()
	e, existed := s.sweeps[id]
	fresh := !existed
	if existed && e.failed() {
		// Failed sweeps are retained (inspectable via GET, with the error
		// and partial cells); resubmitting the spec retries in place
		// rather than replaying the failure — same contract as the resume
		// endpoint, and the reason identical re-POSTs never poison.
		e = s.startSweepLocked(id, e.spec, reqID)
		fresh = true
	} else if !existed {
		e = s.startSweepLocked(id, spec, reqID)
	}
	s.mu.Unlock()

	if boolParam(r, "wait") {
		select {
		case <-e.done:
		case <-time.After(s.opts.Timeout):
			// Not an error: the sweep is accepted and still running.
		case <-r.Context().Done():
		case <-s.baseCtx.Done():
		}
	}
	resp := e.response()
	code := http.StatusOK
	if fresh && resp.Status == "running" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, resp)
}

// startSweepLocked registers a (possibly replacement) sweep entry under id
// and launches its run, tagged with the starting request's ID. Caller
// holds s.mu.
func (s *Server) startSweepLocked(id string, spec slicc.SweepSpec, reqID string) *sweepEntry {
	total, err := spec.CellCount()
	if err != nil {
		total = 0 // unreachable: the spec's Key() already validated it
	}
	prog := newSweepProgress(total, s.opts.EventBuffer)
	prog.onDrop = s.metrics.sseDropped.Inc
	e := &sweepEntry{
		id:   id,
		spec: spec,
		done: make(chan struct{}),
		prog: prog,
	}
	if _, ok := s.sweeps[id]; !ok {
		s.sweepOrder = append(s.sweepOrder, id)
	}
	s.sweeps[id] = e
	s.evictCompletedSweepsLocked()
	s.running.Add(1)
	logger := s.logger.With(slog.String("sweep_id", id), slog.String("request_id", reqID))
	logger.Info("sweep start", slog.Int("cells", total))
	// emit wraps the progress publisher with the cell counter and a debug
	// completion log; Engine.SweepStream calls it serially, preserving
	// publish's contract.
	emit := func(ev slicc.SweepEvent) {
		if ev.Type == slicc.SweepEventCell {
			s.metrics.sweepCells.Inc()
			logger.Debug("sweep cell",
				slog.Int("index", ev.Index),
				slog.Int("completed", ev.Completed),
				slog.Int("total", ev.Total),
				slog.Bool("store_hit", ev.StoreHit))
		}
		e.prog.publish(ev)
	}
	runCtx := telemetry.WithRequestID(s.baseCtx, reqID)
	start := time.Now()
	go func() {
		defer s.running.Done()
		// Like simulations, the sweep belongs to the service: it survives
		// client disconnects and only shutdown aborts it. finish publishes
		// the stream's terminal event before done closes, so every
		// connected subscriber sees "done"/"error", never a silent stall.
		res, err := s.sweepRun(runCtx, e.spec, emit)
		e.result, e.err = res, err
		e.prog.finish(res, err)
		close(e.done)
		d := time.Since(start)
		if err != nil {
			logger.Warn("sweep failed", slog.Duration("duration", d), slog.String("error", err.Error()))
		} else {
			logger.Info("sweep done", slog.Duration("duration", d), slog.Int("cells", total))
		}
	}()
	return e
}

// evictCompletedSweepsLocked bounds s.sweeps at Options.MaxTrackedSweeps
// by dropping the oldest completed entries. An evicted sweep's event
// stream has already ended — finish publishes the terminal event at
// completion, and only completed entries are evicted — so eviction can
// never strand a connected client; new connections to the id get 404.
// Caller holds s.mu.
func (s *Server) evictCompletedSweepsLocked() {
	if len(s.sweeps) <= s.opts.MaxTrackedSweeps {
		return
	}
	kept := s.sweepOrder[:0]
	for _, id := range s.sweepOrder {
		e, ok := s.sweeps[id]
		if !ok {
			continue // no longer tracked
		}
		completed := false
		select {
		case <-e.done:
			completed = true
		default:
		}
		if completed && len(s.sweeps) > s.opts.MaxTrackedSweeps {
			delete(s.sweeps, id)
			continue
		}
		kept = append(kept, id)
	}
	s.sweepOrder = kept
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Sprintf("unknown sweep %q", id))
		return
	}
	if boolParam(r, "wait") {
		select {
		case <-e.done:
		case <-time.After(s.opts.Timeout):
		case <-r.Context().Done():
		case <-s.baseCtx.Done():
		}
	}
	resp := e.response()
	format := r.URL.Query().Get("format")
	if resp.Status == "done" {
		// Done sweeps are immutable content keyed by id (+format for the
		// non-JSON representations): conditional GETs and cached bytes.
		switch format {
		case "csv":
			if s.serveCached(w, r, &e.resp, id, "csv", "text/csv; charset=utf-8",
				buffered(func(buf *bytes.Buffer) error { return resp.Result.WriteCSV(buf) })) {
				return
			}
		case "text":
			if s.serveCached(w, r, &e.resp, id, "text", "text/plain; charset=utf-8",
				buffered(func(buf *bytes.Buffer) error {
					t := slicc.SweepTable(resp.Result)
					t.Format(buf)
					return nil
				})) {
				return
			}
		default:
			if s.serveCached(w, r, &e.resp, id, "json", "application/json",
				func() ([]byte, error) { return marshalResponse(resp) }) {
				return
			}
		}
	}
	if resp.Status == "done" {
		// Fallthrough from a disabled or failed response cache: render the
		// requested format directly (pre-cache behavior).
		switch format {
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			if err := resp.Result.WriteCSV(w); err != nil {
				// Headers are out; nothing meaningful left to send.
				return
			}
			return
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			t := slicc.SweepTable(resp.Result)
			t.Format(w)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// experimentResponse carries one experiment's rendered tables.
type experimentResponse struct {
	ID     string                  `json:"id"`
	Quick  bool                    `json:"quick"`
	Seed   int64                   `json:"seed"`
	Tables []slicc.ExperimentTable `json:"tables"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	known := false
	for _, kid := range slicc.ExperimentIDs() {
		if id == kid {
			known = true
			break
		}
	}
	if !known {
		writeError(w, r, http.StatusNotFound,
			fmt.Sprintf("unknown experiment %q (have %s)", id, strings.Join(slicc.ExperimentIDs(), ", ")))
		return
	}
	seed := int64(1)
	if v := r.URL.Query().Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = n
	}
	quick := boolParam(r, "quick")

	ctx, cancelTimeout := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancelTimeout()
	// Shutdown aborts experiment simulations too.
	ctx, cancelBase := mergeCancel(ctx, s.baseCtx)
	defer cancelBase()

	tables, err := s.eng.Experiment(ctx, id, quick, seed)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		writeError(w, r, code, err.Error())
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range tables {
			t.Format(w)
		}
		return
	}
	writeJSON(w, http.StatusOK, experimentResponse{ID: id, Quick: quick, Seed: seed, Tables: tables})
}

// boolParam interprets ?name=1/true/yes (missing or anything else = false).
func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// mergeCancel derives a context from primary that is additionally cancelled
// when secondary ends.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	go func() {
		select {
		case <-secondary.Done():
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
