package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"slicc"
)

// newTestServer boots a handler over a fresh engine (store-backed when dir
// is non-empty).
func newTestServer(t *testing.T, dir string) (*httptest.Server, *slicc.Engine) {
	t.Helper()
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Timeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return ts, eng
}

// tinyBody is a sub-second simulation request.
const tinyBody = `{"Benchmark":"tpcc1","Policy":"base","Threads":6,"Seed":3,"Scale":0.1}`

func decode[T any](t *testing.T, r *http.Response) T {
	t.Helper()
	defer r.Body.Close()
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if got := decode[map[string]string](t, r); got["status"] != "ok" {
		t.Fatalf("body %v", got)
	}
}

func TestSubmitWaitAndPoll(t *testing.T) {
	ts, eng := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	resp := decode[simResponse](t, r)
	if resp.Status != "done" || resp.Result == nil || len(resp.ID) != 64 {
		t.Fatalf("response %+v", resp)
	}
	if resp.Result.Instructions == 0 || resp.Result.Cycles == 0 {
		t.Fatalf("empty result %+v", resp.Result)
	}
	if resp.Config.Policy != slicc.Baseline || resp.Config.Benchmark != slicc.TPCC1 {
		t.Fatalf("config echo %+v", resp.Config)
	}

	// Poll the id.
	r2, err := http.Get(ts.URL + "/v1/simulations/" + resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2 := decode[simResponse](t, r2)
	if resp2.Status != "done" || resp2.Result == nil || resp2.Result.Cycles != resp.Result.Cycles {
		t.Fatalf("poll %+v", resp2)
	}

	// A differently spelled but identical config coalesces onto the same
	// id without executing again.
	explicit := `{"Benchmark":"tpcc1","Policy":"base","Threads":6,"Seed":3,"Scale":0.1,"Cores":16,"L1IKB":32,"L1DKB":32}`
	r3, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(explicit))
	if err != nil {
		t.Fatal(err)
	}
	resp3 := decode[simResponse](t, r3)
	if resp3.ID != resp.ID {
		t.Fatalf("defaulted and explicit configs got distinct ids %s / %s", resp.ID, resp3.ID)
	}
	if s := eng.Stats(); s.SimsExecuted != 1 {
		t.Fatalf("stats %+v, want exactly one execution", s)
	}
}

func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	ts, eng := newTestServer(t, "")
	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
			if err != nil {
				t.Error(err)
				return
			}
			resp := decode[simResponse](t, r)
			if resp.Status != "done" {
				t.Errorf("submission %d: %+v", i, resp)
			}
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("ids diverge: %v", ids)
		}
	}
	if s := eng.Stats(); s.SimsExecuted != 1 {
		t.Fatalf("stats %+v: concurrent identical submissions must execute once", s)
	}
}

func TestSubmitErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed-json", `{"Benchmark":`, http.StatusBadRequest},
		{"unknown-field", `{"Benchmrk":"tpcc1"}`, http.StatusBadRequest},
		{"unknown-benchmark", `{"Benchmark":"tpcz"}`, http.StatusBadRequest},
		{"unknown-policy", `{"Policy":"fancy"}`, http.StatusBadRequest},
		{"invalid-config", `{"Threads":-1}`, http.StatusUnprocessableEntity},
		// TracePath names server-side files; the API must refuse it.
		{"trace-path", `{"TracePath":"/etc/passwd"}`, http.StatusUnprocessableEntity},
		{"trace-and-benchmark", `{"Benchmark":"tpce","TracePath":"/tmp/x.trace"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := http.Post(ts.URL+"/v1/simulations", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if r.StatusCode != tc.code {
				t.Fatalf("status %d, want %d", r.StatusCode, tc.code)
			}
			if e := decode[errorBody](t, r); e.Error == "" {
				t.Fatal("empty JSON error")
			}
		})
	}
}

// TestFailedSimulationRetries: a failed run must not poison its id — the
// entry is evicted so the next identical submission starts fresh. The
// deterministic failure here is a server whose base context is already
// cancelled (Close), making every accepted run fail immediately.
func TestFailedSimulationRetries(t *testing.T) {
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := New(eng, Options{Timeout: time.Minute})
	srv.Close() // cancels baseCtx; runs now fail with context.Canceled
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[simResponse](t, r)
	// The wait may observe the cancelled base context before the run
	// goroutine publishes its failure, so "running" is a legal snapshot;
	// what matters is that the failure is never retained.
	if resp.Status == "done" {
		t.Fatalf("response %+v, want a failing run", resp)
	}
	// The failed entry must not linger: once its goroutine finishes, the
	// map is empty again, so a resubmission would re-execute rather than
	// replay the stale failure.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.sims)
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failed entry still tracked (%d entries)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUnknownRoutesAndIDs(t *testing.T) {
	ts, _ := newTestServer(t, "")
	for _, path := range []string{"/v1/simulations/no-such-id", "/v1/experiments/fig99", "/nope"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, r.StatusCode)
		}
		if e := decode[errorBody](t, r); e.Error == "" {
			t.Fatalf("%s: empty JSON error", path)
		}
	}
}

func TestExperimentEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	// table2 is simulation-free, so this is instant even in full mode.
	r, err := http.Get(ts.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	resp := decode[experimentResponse](t, r)
	if resp.ID != "table2" || len(resp.Tables) == 0 || len(resp.Tables[0].Rows) == 0 {
		t.Fatalf("response %+v", resp)
	}

	rt, err := http.Get(ts.URL + "/v1/experiments/table2?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Body.Close()
	text, err := io.ReadAll(rt.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "Table 2") {
		t.Fatalf("text rendering missing title: %q", text)
	}
	if ct := rt.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())
	if _, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody)); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[statsResponse](t, r)
	if resp.Simulations != 1 || resp.Engine.SimsRequested != 1 || resp.Engine.SimsExecuted != 1 {
		t.Fatalf("stats %+v", resp)
	}
	if resp.Engine.StorePuts != 1 {
		t.Fatalf("stats %+v: store-backed engine should have recorded the result", resp)
	}
}

// TestStoreHitAcrossServers is the in-process version of the CI smoke test:
// a second service over the same store serves the simulation from disk.
func TestStoreHitAcrossServers(t *testing.T) {
	dir := t.TempDir()
	ts1, eng1 := newTestServer(t, dir)
	r1, err := http.Post(ts1.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp1 := decode[simResponse](t, r1)
	if resp1.Status != "done" {
		t.Fatalf("first run %+v", resp1)
	}
	if s := eng1.Stats(); s.SimsExecuted != 1 || s.StoreHits != 0 {
		t.Fatalf("first server stats %+v", s)
	}

	ts2, eng2 := newTestServer(t, dir)
	r2, err := http.Post(ts2.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	resp2 := decode[simResponse](t, r2)
	if resp2.Status != "done" {
		t.Fatalf("second run %+v", resp2)
	}
	if s := eng2.Stats(); s.SimsExecuted != 0 || s.StoreHits != 1 {
		t.Fatalf("second server stats %+v, want a pure store hit", s)
	}
	if resp1.Result.Cycles != resp2.Result.Cycles || resp1.Result.Instructions != resp2.Result.Instructions {
		t.Fatalf("store-served result diverged: %+v vs %+v", resp1.Result, resp2.Result)
	}
}

// TestResultJSONPolicyNames pins the wire encoding: benchmarks and policies
// marshal as their canonical tokens, not ints.
func TestResultJSONPolicyNames(t *testing.T) {
	ts, _ := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/simulations?wait=1", "application/json", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Benchmark": "tpcc1"`, `"Policy": "base"`, `"status": "done"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("wire encoding missing %s in:\n%s", want, raw)
		}
	}
	if strings.Contains(string(raw), `"Benchmark": 0`) {
		t.Fatalf("numeric benchmark leaked into wire encoding:\n%s", raw)
	}
}

// tinySweepBody is a sub-second 2x2 sweep request.
const tinySweepBody = `{"workloads":["tpcc1","skewed"],"policies":["base","slicc-sw"],"threads":[6],"scales":[0.05]}`

func TestSweepSubmitWaitAndPoll(t *testing.T) {
	ts, eng := newTestServer(t, "")
	r, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	resp := decode[sweepResponse](t, r)
	if resp.Status != "done" || resp.Result == nil || len(resp.ID) != 64 {
		t.Fatalf("response %+v", resp)
	}
	if len(resp.Result.Cells) != 4 || resp.Result.Best() == nil {
		t.Fatalf("sweep result %+v", resp.Result)
	}
	executed := eng.Stats().SimsExecuted

	// Poll the id; also exercise the csv and text renderings.
	r2, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2 := decode[sweepResponse](t, r2)
	if resp2.Status != "done" || len(resp2.Result.Cells) != 4 {
		t.Fatalf("poll %+v", resp2)
	}
	rc, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID + "?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Body.Close()
	csvBytes, _ := io.ReadAll(rc.Body)
	if ct := rc.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv content type %q", ct)
	}
	if lines := strings.Split(strings.TrimSpace(string(csvBytes)), "\n"); len(lines) != 5 {
		t.Fatalf("csv rendering has %d lines:\n%s", len(lines), csvBytes)
	}
	rt, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Body.Close()
	text, _ := io.ReadAll(rt.Body)
	if !strings.Contains(string(text), "## Sweep") {
		t.Fatalf("text rendering:\n%s", text)
	}

	// An identical spec — here spelled with its defaults explicit —
	// coalesces onto the same id and executes nothing new.
	explicit := `{"workloads":["tpcc1","skewed"],"policies":["base","slicc-sw"],"threads":[6],"seeds":[1],"scales":[0.05],"cores":[16],"baseline":"base","objective":"speedup"}`
	r3, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(explicit))
	if err != nil {
		t.Fatal(err)
	}
	resp3 := decode[sweepResponse](t, r3)
	if resp3.ID != resp.ID {
		t.Fatalf("defaulted and explicit specs got distinct ids %s / %s", resp.ID, resp3.ID)
	}
	if got := eng.Stats().SimsExecuted; got != executed {
		t.Fatalf("coalesced resubmission executed %d extra simulations", got-executed)
	}
}

func TestSweepSubmitErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed-json", `{"workloads":`, http.StatusBadRequest},
		{"unknown-field", `{"wrkloads":["tpcc1"]}`, http.StatusBadRequest},
		{"unknown-workload", `{"workloads":["tpcz"]}`, http.StatusUnprocessableEntity},
		{"unknown-policy", `{"policies":["fancy"]}`, http.StatusUnprocessableEntity},
		{"unknown-preset", `{"preset":"nosuch"}`, http.StatusUnprocessableEntity},
		{"oversized", `{"fillup_t":{"from":1,"to":100,"step":1},"matched_t":{"from":1,"to":100,"step":1}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if r.StatusCode != tc.code {
				t.Fatalf("status %d, want %d", r.StatusCode, tc.code)
			}
			if e := decode[errorBody](t, r); e.Error == "" {
				t.Fatal("empty JSON error")
			}
		})
	}
	// Unknown sweep ids are 404s.
	r, err := http.Get(ts.URL + "/v1/sweeps/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestSweepStoreReuse: a sweep on a store-backed server reuses simulations
// an earlier plain submission already persisted, and a second server over
// the same store re-renders the whole sweep from disk.
func TestSweepStoreReuse(t *testing.T) {
	dir := t.TempDir()
	ts1, eng1 := newTestServer(t, dir)
	if _, err := http.Post(ts1.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody)); err != nil {
		t.Fatal(err)
	}
	if s := eng1.Stats(); s.SimsExecuted == 0 || s.StorePuts != s.SimsExecuted {
		t.Fatalf("first server stats %+v", s)
	}

	ts2, eng2 := newTestServer(t, dir)
	r, err := http.Post(ts2.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[sweepResponse](t, r)
	if resp.Status != "done" {
		t.Fatalf("second server sweep %+v", resp)
	}
	if s := eng2.Stats(); s.SimsExecuted != 0 || s.StoreHits == 0 {
		t.Fatalf("second server stats %+v, want pure store hits", s)
	}
}
