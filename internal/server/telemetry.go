package server

// HTTP-layer telemetry: the access-log + metrics middleware every route
// runs under, the /metrics registration of server, engine and store
// metric families, and the request-ID plumbing.
//
// Every request gets an ID — the client's X-Request-ID when it sends a
// well-formed one, a generated one otherwise — echoed in the response
// header and in JSON error bodies, stamped on the request's access log
// line, and used as the trace ID for the span tree the request's work
// produces (handler → engine → runner job → sim run). One request, one
// access line, one grep-able ID across client, logs and traces.
//
// Metric families follow the Prometheus conventions: *_total counters,
// *_seconds histograms, gauges for states. Engine and store counters are
// not double-counted: /metrics samples the same runner.Stats and
// store.Stats that /v1/stats reports, via scrape-time callbacks, so the
// two surfaces always agree.

import (
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"slicc"
	"slicc/internal/telemetry"
)

// serverMetrics bundles the handles the request path updates directly.
// Everything sampled at scrape time (engine counters, store stats, queue
// depth, uptime) is registered as a callback in registerMetrics instead.
type serverMetrics struct {
	reg             *telemetry.Registry
	inFlight        *telemetry.Gauge
	sseSubscribers  *telemetry.Gauge
	sseDropped      *telemetry.Counter
	sweepCells      *telemetry.Counter
	respCacheHits   *telemetry.Counter
	respCacheMisses *telemetry.Counter
	notModified     *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		inFlight: reg.Gauge("slicc_http_requests_in_flight",
			"HTTP requests currently being handled."),
		sseSubscribers: reg.Gauge("slicc_sse_subscribers",
			"Live sweep event-stream subscribers."),
		sseDropped: reg.Counter("slicc_sse_dropped_total",
			"Event-stream subscribers disconnected for falling a full buffer behind."),
		sweepCells: reg.Counter("slicc_sweep_cells_completed_total",
			"Sweep result cells completed across all sweeps."),
		respCacheHits: reg.Counter("slicc_response_cache_hits_total",
			"Completed-resource GETs served from cached response bytes."),
		respCacheMisses: reg.Counter("slicc_response_cache_misses_total",
			"Completed-resource GETs that built (and cached) their response bytes."),
		notModified: reg.Counter("slicc_http_not_modified_total",
			"Conditional GETs answered 304 via If-None-Match."),
	}
}

// registerMetrics wires the scrape-time families: engine work counters
// bridged from runner.Stats, store entry/byte/eviction stats, sweep queue
// depth, and process uptime.
func (s *Server) registerMetrics() {
	reg := s.metrics.reg
	eng := s.eng
	engCounter := func(name, help string, f func(slicc.EngineStats) float64) {
		reg.CounterFunc(name, help, func() float64 { return f(eng.Stats()) })
	}
	engCounter("slicc_sims_requested_total",
		"Simulations requested of the engine (executions + dedup hits + store hits).",
		func(e slicc.EngineStats) float64 { return float64(e.SimsRequested) })
	engCounter("slicc_sims_executed_total",
		"Simulations actually executed (cache misses).",
		func(e slicc.EngineStats) float64 { return float64(e.SimsExecuted) })
	engCounter("slicc_sims_remote_total",
		"Simulations dispatched to the distributed worker fleet.",
		func(e slicc.EngineStats) float64 { return float64(e.SimsRemote) })
	engCounter("slicc_dedup_hits_total",
		"Simulations served by an identical in-process execution.",
		func(e slicc.EngineStats) float64 { return float64(e.DedupHits) })
	engCounter("slicc_store_hits_total",
		"Simulations served from the persistent result store.",
		func(e slicc.EngineStats) float64 { return float64(e.StoreHits) })
	engCounter("slicc_store_puts_total",
		"Executed results recorded into the persistent result store.",
		func(e slicc.EngineStats) float64 { return float64(e.StorePuts) })
	engCounter("slicc_workloads_built_total",
		"Workload syntheses and trace opens (workload-cache misses).",
		func(e slicc.EngineStats) float64 { return float64(e.WorkloadsBuilt) })
	engCounter("slicc_workload_hits_total",
		"Workload-cache hits.",
		func(e slicc.EngineStats) float64 { return float64(e.WorkloadHits) })
	engCounter("slicc_instructions_simulated_total",
		"Instructions simulated across executed simulations.",
		func(e slicc.EngineStats) float64 { return float64(e.InstructionsSimulated) })
	engCounter("slicc_sim_cells_batched_total",
		"Simulations that ran inside lockstep sweep batches.",
		func(e slicc.EngineStats) float64 { return float64(e.CellsBatched) })
	engCounter("slicc_sim_batches_executed_total",
		"Lockstep batch passes executed.",
		func(e slicc.EngineStats) float64 { return float64(e.BatchesExecuted) })
	engCounter("slicc_batch_ops_decoded_total",
		"Trace ops decoded once into shared lockstep batch tables.",
		func(e slicc.EngineStats) float64 { return float64(e.BatchOpsDecoded) })
	engCounter("slicc_batch_ops_served_total",
		"Instructions batched simulations executed from shared batch tables.",
		func(e slicc.EngineStats) float64 { return float64(e.BatchOpsServed) })

	if _, ok := eng.StoreStats(); ok {
		reg.GaugeFunc("slicc_store_entries",
			"Entry files in the persistent result store directory.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.Entries) })
		reg.GaugeFunc("slicc_store_bytes",
			"Total size of the persistent result store's entry files.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.Bytes) })
		reg.CounterFunc("slicc_store_evictions_total",
			"Disk store entries evicted under the -store-max-mb budget by this process.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.DiskEvictions) })
		// Memory-tier families are registered whenever a store exists and
		// simply read zero while -store-mem-mb is off, so dashboards need
		// no conditional wiring.
		reg.GaugeFunc("slicc_store_mem_entries",
			"Entries in the store's in-memory hot tier.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.MemEntries) })
		reg.GaugeFunc("slicc_store_mem_bytes",
			"Bytes held by the store's in-memory hot tier.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.MemBytes) })
		reg.CounterFunc("slicc_store_mem_evictions_total",
			"Memory-tier entries evicted under the -store-mem-mb budget.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.MemEvictions) })
		reg.CounterFunc("slicc_store_mem_hits_total",
			"Store lookups served from the in-memory hot tier (no disk I/O).",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.MemHits) })
		reg.CounterFunc("slicc_store_mem_misses_total",
			"Store lookups that fell through the in-memory hot tier.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.MemMisses) })
		reg.CounterFunc("slicc_store_negative_hits_total",
			"Store misses answered by the negative cache without touching disk.",
			func() float64 { st, _ := eng.StoreStats(); return float64(st.NegativeHits) })
	}

	reg.GaugeFunc("slicc_sweeps_running",
		"Sweeps currently executing.",
		func() float64 { r, _ := s.sweepDepth(); return float64(r) })
	reg.GaugeFunc("slicc_sweep_cells_pending",
		"Result cells of running sweeps not yet completed (the sweep queue depth).",
		func() float64 { _, p := s.sweepDepth(); return float64(p) })
	reg.GaugeFunc("slicc_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// sweepDepth reports how many sweeps are running and how many of their
// result cells are still pending.
func (s *Server) sweepDepth() (running, pending int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.sweeps {
		select {
		case <-e.done:
		default:
			completed, total := e.prog.counts()
			running++
			pending += total - completed
		}
	}
	return running, pending
}

// requestID returns the request's ID: a well-formed client X-Request-ID
// (letters, digits, '.', '_', '-'; at most 64 bytes — it is logged and
// echoed, so arbitrary bytes are not accepted), else a generated one.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 64 {
		return telemetry.NewRequestID()
	}
	for _, c := range []byte(id) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return telemetry.NewRequestID()
		}
	}
	return id
}

// statusRecorder captures the response status for the access log and
// request counter, forwarding Flush so streaming handlers (SSE) keep
// working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a route handler with the telemetry middleware:
// request-ID propagation (header in, header out, context through),
// request-scoped logger and tracer, in-flight/request/latency metrics,
// and exactly one structured access log line per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.reg.Histogram("slicc_http_request_duration_seconds",
		"HTTP request handling latency by route.", nil, telemetry.L("route", route))
	// The request counter's registry lookup rebuilds a label signature on
	// every call; routes see few distinct (method, status) pairs, so a
	// small per-route cache keeps the hot path to one map read.
	var countersMu sync.RWMutex
	counters := map[[2]string]*telemetry.Counter{}
	requestCounter := func(method string, status int) *telemetry.Counter {
		key := [2]string{method, strconv.Itoa(status)}
		countersMu.RLock()
		c, ok := counters[key]
		countersMu.RUnlock()
		if !ok {
			c = s.metrics.reg.Counter("slicc_http_requests_total",
				"HTTP requests by route, method and status code.",
				telemetry.L("route", route), telemetry.L("method", key[0]),
				telemetry.L("code", key[1]))
			countersMu.Lock()
			counters[key] = c
			countersMu.Unlock()
		}
		return c
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)
		logger := s.logger.With(slog.String("request_id", id))
		ctx := telemetry.WithRequestID(r.Context(), id)
		ctx = telemetry.WithLogger(ctx, logger)
		ctx = telemetry.WithTracer(ctx, s.tracer)
		ctx, sp := telemetry.StartSpan(ctx, "http.request", slog.String("route", route))
		rec := &statusRecorder{ResponseWriter: w}
		s.metrics.inFlight.Inc()
		h(rec, r.WithContext(ctx))
		s.metrics.inFlight.Dec()
		sp.End()
		if rec.status == 0 {
			rec.status = http.StatusOK // handler wrote nothing: implicit 200
		}
		d := time.Since(start)
		hist.Observe(d.Seconds())
		requestCounter(r.Method, rec.status).Inc()
		logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", d),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// checkStore probes the health of the engine's persistent store by
// creating and removing a temp file in its directory — the same operation
// every result Put starts with. It returns the store state token for the
// health body ("none" without a store, "rw" when writable) and a nil or
// describing error.
func (s *Server) checkStore() (state string, err error) {
	dir := s.eng.StoreDir()
	if dir == "" {
		return "none", nil
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return "error", err
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return "rw", nil
}
