package server

// Telemetry behavior at the HTTP surface: /metrics exposition over a real
// sweep, counter monotonicity across scrapes, access logs (exactly one
// line per request, carrying the request ID), request-ID echo in headers
// and error bodies, readiness degradation, and scrape/update races.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"slicc"
	"slicc/internal/telemetry"
	"slicc/internal/telemetry/telemetrytest"
)

// syncBuffer is a goroutine-safe log sink: handlers and background sweep
// goroutines log concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newTelemetryServer is newTestServer with the telemetry surface exposed:
// JSON logs into the returned buffer, and the Server itself for registry
// access.
func newTelemetryServer(t *testing.T, dir string) (*httptest.Server, *Server, *syncBuffer) {
	t.Helper()
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	buf := &syncBuffer{}
	logger, err := telemetry.NewLogger(buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Timeout: time.Minute, Logger: logger})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return ts, srv, buf
}

func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return telemetrytest.ParsePrometheus(t, b.String())
}

// TestMetricsAfterSweep runs a real sweep through the API and checks the
// exposition: families spanning server, engine and store layers, engine
// counters consistent with the work done, and monotonic counters across
// scrapes.
func TestMetricsAfterSweep(t *testing.T) {
	ts, _, _ := newTelemetryServer(t, t.TempDir())
	r, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode[sweepResponse](t, r)
	if resp.Status != "done" {
		t.Fatalf("sweep status %q (%s)", resp.Status, resp.Error)
	}

	first := scrape(t, ts)
	for _, want := range []string{
		// server layer
		`slicc_http_requests_total{route="/v1/sweeps",method="POST",code="200"}`,
		"slicc_http_requests_in_flight",
		"slicc_sweep_cells_completed_total",
		// engine layer
		"slicc_sims_requested_total",
		"slicc_sims_executed_total",
		"slicc_instructions_simulated_total",
		// store layer
		"slicc_store_entries",
		"slicc_store_puts_total",
		// tracing + process
		"slicc_uptime_seconds",
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("missing sample %q", want)
		}
	}
	if first["slicc_sims_executed_total"] == 0 {
		t.Error("slicc_sims_executed_total is zero after a sweep")
	}
	if got := first["slicc_sweep_cells_completed_total"]; got != 4 {
		t.Errorf("sweep cells completed = %v, want 4 (2x2 sweep)", got)
	}
	if first["slicc_store_entries"] == 0 || first["slicc_store_puts_total"] == 0 {
		t.Errorf("store metrics empty: entries=%v puts=%v",
			first["slicc_store_entries"], first["slicc_store_puts_total"])
	}
	// Spans from the sweep's own execution (sweep.run, runner.job, sim.run)
	// land in the span histogram.
	if first[`slicc_span_duration_seconds_count{span="sweep.run"}`] == 0 {
		t.Errorf("no sweep.run spans recorded; samples: %v", keysWithPrefix(first, "slicc_span"))
	}
	if first[`slicc_span_duration_seconds_count{span="sim.run"}`] == 0 {
		t.Errorf("no sim.run spans recorded")
	}

	// More traffic, then re-scrape: every *_total counter is monotonic.
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	second := scrape(t, ts)
	for k, v := range first {
		if !strings.Contains(k, "_total") {
			continue
		}
		if second[k] < v {
			t.Errorf("counter %s went backwards: %v -> %v", k, v, second[k])
		}
	}
	if second[`slicc_http_requests_total{route="/metrics",method="GET",code="200"}`] < 1 {
		t.Error("the first scrape did not count itself")
	}
}

func keysWithPrefix(m map[string]float64, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// TestAccessLogs checks the logging contract: exactly one "request" line
// per request, each carrying the request ID the response header named,
// and error bodies echoing the same ID.
func TestAccessLogs(t *testing.T) {
	ts, _, buf := newTelemetryServer(t, "")

	get := func(path, reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	r1 := get("/healthz", "")
	if r1.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID generated for a bare request")
	}
	r1.Body.Close()

	r2 := get("/v1/stats", "my-req.2")
	if got := r2.Header.Get("X-Request-ID"); got != "my-req.2" {
		t.Errorf("client request ID not echoed: %q", got)
	}
	r2.Body.Close()

	// Malformed client IDs (spaces, over-long) are replaced, not echoed.
	r3 := get("/healthz", "bad id with spaces")
	if got := r3.Header.Get("X-Request-ID"); got == "bad id with spaces" || got == "" {
		t.Errorf("malformed client ID handling: %q", got)
	}
	r3.Body.Close()

	// A 404 carries the request ID in its JSON error body too.
	r4 := get("/no/such/route", "err-req-4")
	var errBody struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(r4.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound || errBody.RequestID != "err-req-4" {
		t.Errorf("error body: status %d, request_id %q", r4.StatusCode, errBody.RequestID)
	}

	// Exactly one access line per request, every one with the full field
	// set, and the known IDs appear on their lines.
	type accessLine struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Route     string  `json:"route"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Duration  float64 `json:"duration"`
	}
	var access []accessLine
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line accessLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable log line %q: %v", sc.Text(), err)
		}
		if line.Msg != "request" {
			continue
		}
		if line.RequestID == "" || line.Method == "" || line.Route == "" ||
			line.Path == "" || line.Status == 0 || line.Duration == 0 {
			t.Errorf("incomplete access line: %+v", line)
		}
		access = append(access, line)
	}
	if len(access) != 4 {
		t.Fatalf("want 4 access lines, got %d:\n%s", len(access), buf.String())
	}
	byID := make(map[string]accessLine)
	for _, l := range access {
		byID[l.RequestID] = l
	}
	if l, ok := byID["my-req.2"]; !ok || l.Route != "/v1/stats" || l.Status != 200 {
		t.Errorf("stats access line: %+v", l)
	}
	if l, ok := byID["err-req-4"]; !ok || l.Status != 404 || l.Route != "other" {
		t.Errorf("404 access line: %+v", l)
	}
}

// TestHealthzReadiness covers both sides of the readiness probe: a
// writable store answers ok/rw, a vanished store directory degrades to
// 503 with a reason. (Degradation is simulated by removing the directory
// — permission tricks don't bite when tests run as root.)
func TestHealthzReadiness(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := newTelemetryServer(t, dir)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d", r.StatusCode)
	}
	if got := decode[map[string]string](t, r); got["status"] != "ok" || got["store"] != "rw" {
		t.Fatalf("healthy body %v", got)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded status %d, want 503", r2.StatusCode)
	}
	got := decode[map[string]string](t, r2)
	if got["status"] != "degraded" || got["store"] != "error" || got["reason"] == "" {
		t.Fatalf("degraded body %v", got)
	}
}

// TestMetricsDuringStreamingSweep scrapes /metrics from several goroutines
// while a streaming sweep runs and an SSE subscriber drains its events —
// the registry-race test at the service level (meaningful under -race).
func TestMetricsDuringStreamingSweep(t *testing.T) {
	ts, _, _ := newTelemetryServer(t, "")

	r, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tinySweepBody))
	if err != nil {
		t.Fatal(err)
	}
	id := decode[sweepResponse](t, r).ID

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrape(t, ts)
				}
			}
		}()
	}
	// Drain the event stream concurrently; it ends at the terminal event.
	wg.Add(1)
	go func() {
		defer wg.Done()
		er, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
		if err != nil {
			t.Error(err)
			return
		}
		defer er.Body.Close()
		sc := bufio.NewScanner(er.Body)
		for sc.Scan() {
		}
	}()

	wr, err := http.Get(ts.URL + "/v1/sweeps/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if st := decode[sweepResponse](t, wr).Status; st != "done" {
		t.Fatalf("sweep status %q", st)
	}
	close(stop)
	wg.Wait()

	final := scrape(t, ts)
	if final["slicc_sweep_cells_completed_total"] != 4 {
		t.Fatalf("cells completed %v", final["slicc_sweep_cells_completed_total"])
	}
	if final["slicc_http_requests_in_flight"] != 1 {
		// Only the scrape itself is in flight.
		t.Errorf("in flight %v, want 1", final["slicc_http_requests_in_flight"])
	}
}
