package sim

// Lockstep multi-cell batching: advance N independent machines — same
// workload, different configurations — through interleaved execution
// quanta, so the op stream each machine replays is decoded once into a
// shared table (see workload.BatchThreads) and stays resident in the
// last-level cache while every machine consumes it.
//
// Byte-identity with the scalar path holds by construction. Machines never
// share mutable state, so any interleaving *between* them is safe; *within*
// a machine, a quantum is the scalar event-horizon loop itself (runLoop)
// paused after a budget of instructions — not a reimplementation of the
// scheduling rule — and all loop state lives in the Machine, so the quantum
// boundary is invisible in the instruction interleaving.
// TestBatchMatchesScalar holds the proof obligation.

import "context"

// DefaultBatchQuantum is how many instructions RunBatch advances one
// machine before rotating to the next. A machine's model state (caches,
// directory, policy tables) is several MB; every rotation re-warms it from
// the next cache level down, so the quantum must be large enough to
// amortize that re-warm over real work. Measured on the fig7-thresholds
// sweep, 1M instructions (~0.1s of execution) recovers scalar-run locality
// while still rotating a gang many times per cell; 16K quanta cost ~15%.
const DefaultBatchQuantum = 1 << 20

// RunBatch executes the machines to completion in lockstep: round-robin
// quanta of `quantum` instructions each (0 selects DefaultBatchQuantum).
// Machines must be freshly built over the same workload's threads and are
// consumed by the call, exactly as Run consumes a machine. Results are
// per-machine, in input order, and bit-identical to what each machine's
// own scalar Run would have produced.
//
// Cancellation mirrors RunContext: when ctx is cancelled the pass stops at
// the next quantum boundary, unfinished machines report Aborted partial
// results, and ctx.Err() is returned alongside them.
func RunBatch(ctx context.Context, machines []*Machine, quantum uint64) ([]Result, error) {
	if quantum == 0 {
		quantum = DefaultBatchQuantum
	}
	done := make([]bool, len(machines))
	for _, m := range machines {
		m.startBatch()
	}
	live := len(machines)
	var err error
	for live > 0 && err == nil {
		for i, m := range machines {
			if done[i] {
				continue
			}
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				break
			}
			if m.runQuantum(quantum) {
				done[i] = true
				live--
			}
		}
	}
	if err != nil {
		for i, m := range machines {
			if !done[i] {
				m.aborted = true
			}
		}
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = m.result()
	}
	return results, err
}

// startBatch prepares a machine for quantum-driven execution: the same
// policy attach and initial fill RunContext performs before entering its
// loop.
func (m *Machine) startBatch() {
	if m.referenceLoop {
		// Match the reference-mode contract (RunContext): disable the line
		// micro-caches so every access goes through the full model and
		// differential runs check the fast paths rather than share them.
		m.fastFetch, m.fastData = false, false
	}
	m.policy.Attach(m, m.threads)
	m.enqueue, _ = m.policy.(enqueuer)
	m.fillIdleCores()
}

// runQuantum advances the machine by up to n instructions and reports
// whether the run has finished — all threads complete, or the
// MaxInstructions abort tripped. It is the scalar scheduler itself with a
// budget: the event-horizon loop for normal machines, the per-instruction
// scan for reference-loop ones, so a batched machine executes the exact
// instruction sequence its scalar twin would.
func (m *Machine) runQuantum(n uint64) bool {
	if m.referenceLoop {
		return m.runQuantumReference(n)
	}
	finished, _ := m.runLoop(nil, n)
	return finished
}

// runQuantumReference is the reference loop (one nextCore scan per
// instruction) bounded to n instructions, used for batched machines under
// the `slowsim` tag or UseReferenceLoop.
func (m *Machine) runQuantumReference(n uint64) bool {
	for executed := uint64(0); executed < n; {
		c := m.nextCore()
		if c < 0 {
			if !m.fillIdleCores() {
				return true
			}
			continue
		}
		executed++
		m.step(c)
		if m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions {
			m.aborted = true
			return true
		}
	}
	return false
}
