package sim_test

// Differential tests for lockstep batching: RunBatch must produce results
// bit-identical to each machine's own scalar Run — across policy families,
// machine features, mixed configurations inside one batch, quantum sizes,
// and the workload's shared decoded-op table (BatchThreads) versus the
// scalar per-machine sources.

import (
	"context"
	"reflect"
	"testing"

	"slicc/internal/prefetch"
	"slicc/internal/sched"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

// batchCell is one machine configuration of a differential batch.
type batchCell struct {
	name      string
	cfg       sim.Config
	newPolicy func() sim.Policy
	newPref   func() sim.Prefetcher
}

func (c batchCell) machine(threads []trace.Thread) *sim.Machine {
	var pref sim.Prefetcher
	if c.newPref != nil {
		pref = c.newPref()
	}
	return sim.New(c.cfg, c.newPolicy(), pref, threads)
}

// runBatchAgainstScalar runs every cell twice — once inside a single
// RunBatch pass over the workload's shared decoded table, once alone on
// the scalar path over the workload's own sources — and requires deeply
// equal results per cell. The comparison therefore covers the lockstep
// scheduler, the quantum boundaries, and BatchThreads' table in one shot.
func runBatchAgainstScalar(t *testing.T, w *workload.Workload, quantum uint64, cells []batchCell) {
	t.Helper()
	batchThreads, _ := w.BatchThreads()
	machines := make([]*sim.Machine, len(cells))
	for i, c := range cells {
		machines[i] = c.machine(batchThreads)
	}
	got, err := sim.RunBatch(context.Background(), machines, quantum)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, c := range cells {
		want := c.machine(w.Threads()).Run()
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%s: batched result diverges from scalar:\n got: %+v\nwant: %+v", c.name, got[i], want)
		}
	}
}

// matrixCells is the policy/feature matrix every batch variant is checked
// against; it mirrors the event-horizon differential matrix.
func matrixCells() []batchCell {
	classify := sim.Config{Cores: 4, EnableTLB: true, TrackReuse: true}
	classify.L1I.Classify = true
	classify.L1D.Classify = true
	return []batchCell{
		{"base", sim.Config{Cores: 8},
			func() sim.Policy { return sched.NewBaseline() }, nil},
		{"base-1core", sim.Config{Cores: 1},
			func() sim.Policy { return sched.NewBaseline() }, nil},
		{"steps-events", sim.Config{Cores: 4, LogEvents: true},
			func() sim.Policy { return sched.NewSTEPS() }, nil},
		{"slicc-events", sim.Config{Cores: 8, LogEvents: true},
			func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.Oblivious)) }, nil},
		{"slicc-sw-yield", sim.Config{Cores: 8, LogEvents: true},
			func() sim.Policy {
				cfg := islicc.DefaultConfig(islicc.SW)
				cfg.YieldOnStay = true
				return islicc.New(cfg)
			}, nil},
		{"slicc-exact", sim.Config{Cores: 4},
			func() sim.Policy {
				cfg := islicc.DefaultConfig(islicc.Oblivious)
				cfg.ExactSearch = true
				return islicc.New(cfg)
			}, nil},
		{"observed-machine", classify,
			func() sim.Policy { return sched.NewBaseline() },
			func() sim.Prefetcher { return prefetch.NewNextLine() }},
		{"peer-transfer", sim.Config{Cores: 4, InstrPeerTransfer: true},
			func() sim.Policy { return sched.NewBaseline() }, nil},
		// The MaxInstructions abort must trip at the same instruction while
		// the rest of the batch runs to completion around it.
		{"aborted", sim.Config{Cores: 4, MaxInstructions: 5000},
			func() sim.Policy { return sched.NewBaseline() }, nil},
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	// The whole matrix runs as ONE mixed batch: heterogeneous core counts,
	// policies, observers and an aborting cell interleaved in one pass.
	runBatchAgainstScalar(t, tinyWorkload(t), 0, matrixCells())
}

// TestBatchMatchesScalarScenarios repeats the check over the scenario
// workload families, whose phase changes and skew exercise scheduling
// patterns TPC-C does not.
func TestBatchMatchesScalarScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	family := []batchCell{
		{"base", sim.Config{Cores: 8},
			func() sim.Policy { return sched.NewBaseline() }, nil},
		{"slicc", sim.Config{Cores: 8},
			func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.Oblivious)) }, nil},
		{"slicc-sw", sim.Config{Cores: 4},
			func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.SW)) }, nil},
		{"steps", sim.Config{Cores: 4},
			func() sim.Policy { return sched.NewSTEPS() }, nil},
	}
	for _, kind := range []workload.Kind{workload.Phased, workload.Skewed, workload.Microservice} {
		t.Run(kind.String(), func(t *testing.T) {
			w := workload.New(workload.Config{Kind: kind, Threads: 8, Seed: 7, Scale: 0.02})
			runBatchAgainstScalar(t, w, 0, family)
		})
	}
}

// TestBatchQuantumInvariance pins the quantum-boundary claim directly: the
// rotation granularity must be invisible in the results, from one
// instruction per turn to effectively run-to-completion.
func TestBatchQuantumInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	w := tinyWorkload(t)
	cells := []batchCell{
		{"base", sim.Config{Cores: 8},
			func() sim.Policy { return sched.NewBaseline() }, nil},
		{"slicc", sim.Config{Cores: 4},
			func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.Oblivious)) }, nil},
	}
	for _, quantum := range []uint64{1, 257, 1 << 40} {
		runBatchAgainstScalar(t, w, quantum, cells)
	}
}

// TestBatchCancel verifies RunBatch's cancellation contract: ctx.Err() is
// returned and unfinished machines report aborted partial results.
func TestBatchCancel(t *testing.T) {
	w := tinyWorkload(t)
	threads, _ := w.BatchThreads()
	cells := []batchCell{
		{"a", sim.Config{Cores: 4}, func() sim.Policy { return sched.NewBaseline() }, nil},
		{"b", sim.Config{Cores: 8}, func() sim.Policy { return sched.NewBaseline() }, nil},
	}
	machines := make([]*sim.Machine, len(cells))
	for i, c := range cells {
		machines[i] = c.machine(threads)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := sim.RunBatch(ctx, machines, 0)
	if err != context.Canceled {
		t.Fatalf("RunBatch on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if len(results) != len(cells) {
		t.Fatalf("got %d partial results, want %d", len(results), len(cells))
	}
	for i, r := range results {
		if !r.Aborted {
			t.Errorf("machine %d: partial result not marked aborted", i)
		}
	}
}

// TestBatchSteadyStateAllocs asserts the lockstep loop does not allocate
// per instruction: batch runs differing by ~320k instructions must
// allocate the same within a small constant.
func TestBatchSteadyStateAllocs(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 8, Seed: 5, Scale: 0.05})
	threads, _ := w.BatchThreads()
	run := func(max uint64) func() {
		return func() {
			ms := []*sim.Machine{
				sim.New(sim.Config{Cores: 4, MaxInstructions: max}, sched.NewBaseline(), nil, threads),
				sim.New(sim.Config{Cores: 8, MaxInstructions: max}, sched.NewBaseline(), nil, threads),
			}
			if _, err := sim.RunBatch(context.Background(), ms, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(0)() // warm anything one-time
	short := testing.AllocsPerRun(5, run(40_000))
	long := testing.AllocsPerRun(5, run(200_000))
	if diff := long - short; diff > 100 {
		t.Fatalf("batch loop allocates: %.0f extra allocs over 320k extra instructions (short %.0f, long %.0f)",
			diff, short, long)
	}
}
