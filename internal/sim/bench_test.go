package sim_test

// Simulator hot-loop benchmarks: the BenchmarkMachineRun family measures
// cold single-simulation throughput (the cost every new scenario or trace
// pays before the result store can help) per scheduling policy. Each
// iteration builds a fresh machine — machines are single-use — and runs a
// small TPC-C workload to completion; instructions/sec is reported as the
// headline metric so trajectory points in BENCH_SIM.json are comparable
// across workload-size tweaks.
//
// Regenerate the BENCH_SIM.json point with:
//
//	go test -run '^$' -bench BenchmarkMachineRun -benchmem ./internal/sim/

import (
	"testing"

	"slicc/internal/sched"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/workload"
)

// benchWorkload returns a small but representative OLTP workload: enough
// threads to keep all 16 cores busy and a footprint that misses in the
// L1-I, so the benchmark exercises the directory, the NoC and the memory
// hierarchy, not just the fetch fast path.
func benchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	return workload.New(workload.Config{Kind: workload.TPCC1, Threads: 32, Seed: 1, Scale: 0.1})
}

// runMachine builds and runs one machine, returning the executed
// instruction count.
func runMachine(b *testing.B, w *workload.Workload, policy sim.Policy) uint64 {
	b.Helper()
	m := sim.New(sim.Config{}, policy, nil, w.Threads())
	r := m.Run()
	if r.ThreadsFinished != len(w.Threads()) {
		b.Fatalf("run finished %d of %d threads", r.ThreadsFinished, len(w.Threads()))
	}
	return r.Instructions
}

func benchMachineRun(b *testing.B, newPolicy func() sim.Policy) {
	w := benchWorkload(b)
	// Two warmup runs settle the workload's op-stream cache (threads
	// materialize on their second replay), so iterations measure the
	// steady state an experiment batch runs in — one workload synthesis
	// feeding dozens of simulations.
	for i := 0; i < 2; i++ {
		runMachine(b, w, newPolicy())
	}
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instr += runMachine(b, w, newPolicy())
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
	}
}

// BenchmarkMachineRun measures cold-run throughput per policy: the baseline
// scheduler (the pure hot-loop cost), STEPS (adds same-core context
// switches) and SLICC (adds bloom signatures, segment searches and
// migrations).
func BenchmarkMachineRun(b *testing.B) {
	b.Run("base", func(b *testing.B) {
		benchMachineRun(b, func() sim.Policy { return sched.NewBaseline() })
	})
	b.Run("steps", func(b *testing.B) {
		benchMachineRun(b, func() sim.Policy { return sched.NewSTEPS() })
	})
	b.Run("slicc", func(b *testing.B) {
		benchMachineRun(b, func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.Oblivious)) })
	})
}
