package sim

import (
	"math/bits"

	"slicc/internal/oatable"
)

// directory tracks which cores hold each data block, the minimum coherence
// state needed to produce the paper's migration-induced data-miss scenarios
// (Section 5.5): re-fetches after migration, write invalidations of copies
// left behind, and misses on return to a core whose copy was invalidated.
// It is a behavioural MESI: sharer sets without transient states.
//
// The sharer sets live in an oatable.Table rather than a Go map: the
// directory is consulted on every data-cache miss, eviction and store, and
// the open-addressing table keeps those lookups to one hash and a short
// linear probe with no per-insert allocation. An absent block reads as a
// zero mask ("no sharers"), and empty masks are deleted, so the table's
// size tracks the blocks currently resident in some L1-D.
type directory struct {
	cores int
	tab   oatable.Table[uint64] // block -> core bitmask
}

// dirTableMinCap is the initial capacity; big enough that small runs never
// rehash, small enough to be negligible per machine.
const dirTableMinCap = 1 << 10

func newDirectory(cores int) *directory {
	if cores > 64 {
		panic("sim: directory supports at most 64 cores")
	}
	d := &directory{cores: cores}
	d.tab.Init(dirTableMinCap)
	return d
}

func (d *directory) addSharer(block uint64, core int) {
	*d.tab.Ref(block) |= 1 << uint(core)
}

func (d *directory) removeSharer(block uint64, core int) {
	s, ok := d.tab.Get(block)
	if !ok {
		return
	}
	if s &^= 1 << uint(core); s == 0 {
		d.tab.Del(block)
	} else {
		d.tab.Put(block, s)
	}
}

// othersOf returns the sharer mask excluding core.
func (d *directory) othersOf(block uint64, core int) uint64 {
	s, _ := d.tab.Get(block) // zero mask when absent
	return s &^ (1 << uint(core))
}

// setExclusive makes core the sole sharer.
func (d *directory) setExclusive(block uint64, core int) {
	d.tab.Put(block, 1<<uint(core))
}

// sharerCount returns the number of cores holding block.
func (d *directory) sharerCount(block uint64) int {
	s, _ := d.tab.Get(block)
	return bits.OnesCount64(s)
}
