package sim

// directory tracks which cores hold each data block, the minimum coherence
// state needed to produce the paper's migration-induced data-miss scenarios
// (Section 5.5): re-fetches after migration, write invalidations of copies
// left behind, and misses on return to a core whose copy was invalidated.
// It is a behavioural MESI: sharer sets without transient states.
type directory struct {
	cores   int
	sharers map[uint64]uint64 // block -> core bitmask
}

func newDirectory(cores int) *directory {
	if cores > 64 {
		panic("sim: directory supports at most 64 cores")
	}
	return &directory{cores: cores, sharers: make(map[uint64]uint64)}
}

func (d *directory) addSharer(block uint64, core int) {
	d.sharers[block] |= 1 << uint(core)
}

func (d *directory) removeSharer(block uint64, core int) {
	s := d.sharers[block] &^ (1 << uint(core))
	if s == 0 {
		delete(d.sharers, block)
	} else {
		d.sharers[block] = s
	}
}

// othersOf returns the sharer mask excluding core.
func (d *directory) othersOf(block uint64, core int) uint64 {
	return d.sharers[block] &^ (1 << uint(core))
}

// setExclusive makes core the sole sharer.
func (d *directory) setExclusive(block uint64, core int) {
	d.sharers[block] = 1 << uint(core)
}

// sharerCount returns the number of cores holding block.
func (d *directory) sharerCount(block uint64) int {
	n := 0
	for s := d.sharers[block]; s != 0; s &= s - 1 {
		n++
	}
	return n
}
