package sim_test

// Differential tests for the event-horizon scheduler: RunContext's batched
// loop must produce bit-identical results — counters, cycles, event logs,
// per-core stats, transaction latencies — to the one-instruction-per-scan
// reference loop (Machine.UseReferenceLoop), across every policy family
// and machine feature that touches the hot path. The reference loop also
// decodes ops through plain Source.Next, so these runs double as
// NextBatch-vs-Next equivalence checks over real workloads.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slicc/internal/prefetch"
	"slicc/internal/sched"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

// tinyWorkload synthesizes a small but feature-complete OLTP workload.
func tinyWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	return workload.New(workload.Config{Kind: workload.TPCC1, Threads: 10, Seed: 3, Scale: 0.02})
}

// runBoth executes the same configuration under the batched and reference
// schedulers and requires deeply equal results.
func runBoth(t *testing.T, name string, cfg sim.Config, threads []trace.Thread, newPolicy func() sim.Policy, newPref func() sim.Prefetcher) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		var pref sim.Prefetcher
		if newPref != nil {
			pref = newPref()
		}
		fast := sim.New(cfg, newPolicy(), pref, threads)
		got := fast.Run()

		if newPref != nil {
			pref = newPref()
		}
		slow := sim.New(cfg, newPolicy(), pref, threads)
		slow.UseReferenceLoop(true)
		want := slow.Run()

		if !reflect.DeepEqual(got, want) {
			t.Errorf("batched result diverges from reference:\n got: %+v\nwant: %+v", got, want)
		}
	})
}

func TestEventHorizonMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	w := tinyWorkload(t)
	threads := w.Threads()

	runBoth(t, "base", sim.Config{Cores: 8}, threads,
		func() sim.Policy { return sched.NewBaseline() }, nil)

	runBoth(t, "base-1core", sim.Config{Cores: 1}, threads,
		func() sim.Policy { return sched.NewBaseline() }, nil)

	runBoth(t, "steps-events", sim.Config{Cores: 4, LogEvents: true}, threads,
		func() sim.Policy { return sched.NewSTEPS() }, nil)

	runBoth(t, "slicc-events", sim.Config{Cores: 8, LogEvents: true}, threads,
		func() sim.Policy { return islicc.New(islicc.DefaultConfig(islicc.Oblivious)) }, nil)

	runBoth(t, "slicc-sw-yield", sim.Config{Cores: 8, LogEvents: true}, threads,
		func() sim.Policy {
			cfg := islicc.DefaultConfig(islicc.SW)
			cfg.YieldOnStay = true
			return islicc.New(cfg)
		}, nil)

	runBoth(t, "slicc-exact", sim.Config{Cores: 4}, threads,
		func() sim.Policy {
			cfg := islicc.DefaultConfig(islicc.Oblivious)
			cfg.ExactSearch = true
			return islicc.New(cfg)
		}, nil)

	// Fetch observers (prefetcher, TLB, classification, reuse tracking)
	// disable the fast fetch/data paths; the two loops must still agree.
	classify := sim.Config{Cores: 4, EnableTLB: true, TrackReuse: true}
	classify.L1I.Classify = true
	classify.L1D.Classify = true
	runBoth(t, "observed-machine", classify, threads,
		func() sim.Policy { return sched.NewBaseline() },
		func() sim.Prefetcher { return prefetch.NewNextLine() })

	runBoth(t, "peer-transfer", sim.Config{Cores: 4, InstrPeerTransfer: true}, threads,
		func() sim.Policy { return sched.NewBaseline() }, nil)

	// The MaxInstructions abort must trigger at the same instruction.
	runBoth(t, "aborted", sim.Config{Cores: 4, MaxInstructions: 5000}, threads,
		func() sim.Policy { return sched.NewBaseline() }, nil)
}

// TestEventHorizonMatchesReferenceTrace replays a recorded v2 container so
// the differential run exercises FileSource.NextBatch against its plain
// Next decoder inside the machine.
func TestEventHorizonMatchesReferenceTrace(t *testing.T) {
	w := tinyWorkload(t)
	path := filepath.Join(t.TempDir(), "wl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteWorkload(f, "diff", w.Threads()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.OpenWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	runBoth(t, "trace-base", sim.Config{Cores: 8}, c.Threads(),
		func() sim.Policy { return sched.NewBaseline() }, nil)
	runBoth(t, "trace-steps", sim.Config{Cores: 4, LogEvents: true}, c.Threads(),
		func() sim.Policy { return sched.NewSTEPS() }, nil)
}

// TestSteadyStateAllocs asserts the simulation loop does not allocate per
// instruction: runs differing by ~160k instructions must allocate the same
// within a small constant (machine construction, op-cache bookkeeping).
func TestSteadyStateAllocs(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 8, Seed: 5, Scale: 0.05})
	threads := w.Threads()
	run := func(max uint64) func() {
		return func() {
			m := sim.New(sim.Config{Cores: 4, MaxInstructions: max}, sched.NewBaseline(), nil, threads)
			m.Run()
		}
	}
	// Warm the workload's op-stream cache so recording garbage is not
	// charged to the measured runs.
	run(0)()
	run(0)()

	short := testing.AllocsPerRun(5, run(40_000))
	long := testing.AllocsPerRun(5, run(200_000))
	if diff := long - short; diff > 100 {
		t.Fatalf("steady-state loop allocates: %.0f extra allocs over 160k extra instructions (short %.0f, long %.0f)",
			diff, short, long)
	}
}
