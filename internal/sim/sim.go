// Package sim implements the trace-driven multicore simulator the
// reproduction runs on: N cores with private L1-I/L1-D caches, a shared
// NUCA L2 over a 2D torus, a MESI-style L1-D directory, hardware thread
// migration, and pluggable scheduling policies (the baseline OS scheduler
// in internal/sched, SLICC in internal/slicc) and instruction prefetchers
// (internal/prefetch).
//
// The machine replays workload threads (transactions) to completion and
// reports the paper's metrics: I-/D-MPKI, cycles (performance), migrations,
// search broadcasts (BPKI) and miss classifications. Timing follows the
// internal/cpu model; see DESIGN.md for the substitution rationale.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"slicc/internal/cache"
	"slicc/internal/cpu"
	"slicc/internal/mem"
	"slicc/internal/noc"
	"slicc/internal/tlb"
	"slicc/internal/trace"
)

// Config describes a machine.
type Config struct {
	// Cores is the core count (default 16, Table 2).
	Cores int
	// TorusWidth/TorusHeight shape the interconnect (default 4x4).
	TorusWidth, TorusHeight int
	// HopLatency is the per-hop cycle cost (default 1).
	HopLatency int
	// L1I and L1D configure the private caches (default 32KB, 8-way, 64B
	// blocks, 3-cycle).
	L1I, L1D cache.Config
	// Mem configures the shared L2/NUCA and memory.
	Mem mem.Config
	// CPU configures the timing model.
	CPU cpu.Config
	// TrackReuse enables the Figure 3 instruction-block reuse tracker
	// (costs memory proportional to the code footprint).
	TrackReuse bool
	// MaxInstructions aborts the run after this many instructions
	// (0 = unlimited). A safety net for exploratory configurations.
	MaxInstructions uint64
	// InstrPeerTransfer serves L1-I misses from peer L1-I caches over the
	// NoC when possible (an ablation extension; the paper's machine keeps
	// coherence for L1-D only, so this defaults to off).
	InstrPeerTransfer bool
	// EnableTLB adds per-core I-/D-TLBs (64-entry, 4KB pages) and charges
	// page-walk latency. Off by default: the paper reports TLB effects as
	// a secondary observation (Section 5.5) and the headline calibration
	// excludes them.
	EnableTLB bool
	// LogEvents records every migration and context switch in the result
	// (costs memory proportional to the event count).
	LogEvents bool
	// TLB configures the TLBs when EnableTLB is set.
	TLB tlb.Config
}

// WithDefaults returns the configuration with every zero field replaced by
// its default. It is idempotent; job-oriented callers (internal/runner) use
// it to normalize configurations before content-keying them.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.TorusWidth == 0 || c.TorusHeight == 0 {
		// Choose the most square torus covering the cores.
		w := 1
		for w*w < c.Cores {
			w++
		}
		c.TorusWidth = w
		c.TorusHeight = (c.Cores + w - 1) / w
	}
	if c.HopLatency == 0 {
		c.HopLatency = 1
	}
	if c.L1I.SizeBytes == 0 {
		c.L1I.SizeBytes = 32 * 1024
	}
	if c.L1D.SizeBytes == 0 {
		c.L1D.SizeBytes = 32 * 1024
	}
	return c
}

// ThreadState is a transaction in flight.
type ThreadState struct {
	// ID and Type identify the thread; Type is only visible to type-aware
	// policies (SLICC-SW receives it from the software layer, SLICC-Pp
	// re-derives it on the scout core).
	ID   int
	Type int
	// TypeName is the transaction type's display name.
	TypeName string

	src trace.Source
	// batcher/spanner are src's optional bulk-decode fast paths, resolved
	// once at machine construction. batch[batchPos:batchLen] are
	// decoded-but-unexecuted ops: a reusable buffer the batcher fills, or
	// a borrowed view of the spanner's backing storage (no copy).
	batcher  trace.BatchSource
	spanner  trace.SpanSource
	batch    []trace.Op
	batchPos int
	batchLen int

	// ReadyAt is the earliest cycle the thread may (re)start after a
	// migration context transfer or preprocessing delay.
	ReadyAt float64
	// StartedAt is the cycle the thread first ran; Started marks it valid.
	StartedAt float64
	Started   bool
	// Instr counts executed instructions.
	Instr uint64
	// InstrOnCore counts instructions since the thread last changed core.
	InstrOnCore uint64
	// Migrations counts completed migrations.
	Migrations int
	// Done marks completion.
	Done bool
}

// Fetch describes one instruction fetch outcome for policy observation.
type Fetch struct {
	PC    uint64
	Block uint64 // instruction block address
	IMiss bool
	DMiss bool
}

// Policy schedules threads onto cores and decides migrations. The machine
// owns only the running thread per core; all queueing is the policy's.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Attach wires the policy to the machine and hands it the full thread
	// list before the run starts (a closed system: the paper replays a
	// fixed task set).
	Attach(m *Machine, threads []*ThreadState)
	// NextThread returns the next thread to start on the idle core, or
	// nil if the policy has nothing for it right now.
	NextThread(core int) *ThreadState
	// OnInstr observes the instruction just executed by the running
	// thread on core and may request a migration by returning dest >= 0
	// (dest == core is treated as staying put).
	OnInstr(core int, t *ThreadState, f Fetch) (dest int)
	// OnThreadFinish observes a thread completing on core.
	OnThreadFinish(core int, t *ThreadState)
}

// Prefetcher reacts to instruction fetches on a core, typically by calling
// Machine.PrefetchInstr.
type Prefetcher interface {
	Name() string
	OnFetch(m *Machine, core int, pc uint64, miss bool)
}

// coreState is the per-core execution context.
type coreState struct {
	time    float64
	running *ThreadState
	instr   uint64
	imiss   uint64
	// fetchBlock/fetchValid are the core's current fetch line: when the
	// machine has no per-fetch observers (fastFetch), a fetch from the
	// same instruction block as the previous one is known resident and
	// skips the cache model entirely (sequential fetch through a line is
	// ~15 of every 16 instructions). Only this core's own fetch path and
	// PrefetchInstr can change the L1-I, and both maintain these fields.
	fetchBlock uint64
	fetchValid bool
	// dataBlock/dataValid mirror fetchBlock for the core's last data
	// line: a *read* of the same block is a known hit with no model side
	// effects (a row scan walks a block word by word). Writes always take
	// the full path (directory upgrade), and a remote write invalidating
	// this block clears the flag (see dataAccess).
	dataBlock uint64
	dataValid bool
}

// Event is one scheduling event (migration or same-core context switch).
type Event struct {
	Cycle    float64
	ThreadID int
	From, To int
	// Switch marks same-core context switches (STEPS); migrations
	// otherwise.
	Switch bool
}

// enqueuer is the optional policy extension through which the machine
// delivers migrated (or locally yielded) threads back to a policy queue.
type enqueuer interface {
	EnqueueMigrated(core int, t *ThreadState)
}

// Machine is a configured multicore instance, single-use: build, Run, read
// results.
type Machine struct {
	cfg    Config
	torus  *noc.Torus
	hier   *mem.Hierarchy
	l1i    []*cache.Cache
	l1d    []*cache.Cache
	timing cpu.Timing
	policy Policy
	pref   Prefetcher
	// enqueue is the policy's EnqueueMigrated, type-asserted once at run
	// start instead of on every migration (nil for policies that never
	// migrate, e.g. the baseline scheduler).
	enqueue enqueuer
	// referenceLoop forces the pre-batching scheduler (see
	// UseReferenceLoop).
	referenceLoop bool
	// fastFetch enables the per-core fetch-line micro-cache: legal only
	// when nothing observes individual fetches — no prefetcher, TLB,
	// reuse tracker or L1-I miss classification — because the skipped
	// same-line accesses are pure hits with no model side effects.
	fastFetch bool
	// fastData is fastFetch's data-side twin (no D-TLB, no L1-D miss
	// classification).
	fastData bool
	// iBlockShift/dBlockShift cache the L1 block shifts for the fast
	// paths.
	iBlockShift uint
	dBlockShift uint
	// The running cores live in a two-tier event queue ordered by (local
	// clock, core index); membership mirrors coreState.running exactly
	// (fillIdleCores pushes, the finish/migrate/switch paths remove, the
	// batched loop floats the core it is stepping).
	//
	//   - cur[curPos:] is the *current round*: a sorted snapshot of core
	//     clocks. While every stepped core lands beyond the horizon — the
	//     next entry's clock — picking the global minimum is one compare
	//     and a cursor bump.
	//   - fut is a min-heap of everything else: cores already stepped
	//     this round, refilled cores, migration targets. Its root is the
	//     horizon the current round is checked against.
	//
	// When the round is exhausted, fut (typically already near-sorted,
	// because lockstep cores re-arrive in clock order) becomes the next
	// round via one insertion sort. The global minimum is therefore
	// min(cur[curPos], fut[0]) at every step — exactly the core a full
	// scan would pick — at an amortized couple of compares per
	// instruction instead of an O(cores) scan or an O(log cores) sift.
	cur    []heapEntry
	curPos int
	fut    []heapEntry
	// floating is the core currently being stepped by the batched loop
	// (absent from both tiers); -1 otherwise. heapRemove uses it to make
	// mid-step removals O(1).
	floating int32

	cores   []coreState
	threads []*ThreadState
	dir     *directory
	reuse   *ReuseTracker
	itlb    []*tlb.TLB
	dtlb    []*tlb.TLB

	events    []Event
	latencies []float64
	// instr doubles as the instruction-fetch access count: every executed
	// instruction performs exactly one fetch.
	instr      uint64
	iMis       uint64
	iPeer      uint64
	dAcc, dMis uint64
	migrations uint64
	switches   uint64
	invals     uint64
	finished   int
	aborted    bool
}

// New builds a machine over the given workload threads. policy is required;
// pref may be nil.
func New(cfg Config, policy Policy, pref Prefetcher, threads []trace.Thread) *Machine {
	cfg = cfg.withDefaults()
	if policy == nil {
		panic("sim: nil policy")
	}
	m := &Machine{
		cfg:           cfg,
		torus:         noc.New(cfg.TorusWidth, cfg.TorusHeight, cfg.HopLatency),
		timing:        cpu.NewTiming(cfg.CPU),
		policy:        policy,
		pref:          pref,
		cores:         make([]coreState, cfg.Cores),
		dir:           newDirectory(cfg.Cores),
		referenceLoop: slowSimDefault,
		cur:           make([]heapEntry, 0, cfg.Cores),
		fut:           make([]heapEntry, 0, cfg.Cores),
		floating:      -1,
	}
	m.hier = mem.New(cfg.Mem, m.torus)
	m.l1i = make([]*cache.Cache, cfg.Cores)
	m.l1d = make([]*cache.Cache, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		ic := cfg.L1I
		dc := cfg.L1D
		ic.Seed = int64(c + 1)
		dc.Seed = int64(1000 + c)
		m.l1i[c] = cache.New(ic)
		m.l1d[c] = cache.New(dc)
	}
	m.threads = make([]*ThreadState, len(threads))
	for i, th := range threads {
		t := &ThreadState{
			ID:       th.ID,
			Type:     th.Type,
			TypeName: th.TypeName,
			src:      th.New(),
		}
		if ss, ok := t.src.(trace.SpanSource); ok {
			t.spanner = ss
		} else if bs, ok := t.src.(trace.BatchSource); ok {
			t.batcher = bs
			t.batch = make([]trace.Op, opBatchLen)
		}
		m.threads[i] = t
	}
	if cfg.TrackReuse {
		m.reuse = NewReuseTracker(len(threads))
	}
	if cfg.EnableTLB {
		m.itlb = make([]*tlb.TLB, cfg.Cores)
		m.dtlb = make([]*tlb.TLB, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			m.itlb[c] = tlb.New(cfg.TLB)
			m.dtlb[c] = tlb.New(cfg.TLB)
		}
	}
	// The per-core line micro-caches are only sound when no component
	// observes the individual accesses they elide; see Machine.fastFetch
	// and Machine.fastData.
	m.fastFetch = pref == nil && m.itlb == nil && m.reuse == nil && !m.l1i[0].Config().Classify
	m.iBlockShift = uint(bits.TrailingZeros64(uint64(m.l1i[0].Config().BlockBytes)))
	m.fastData = m.dtlb == nil && !m.l1d[0].Config().Classify
	m.dBlockShift = uint(bits.TrailingZeros64(uint64(m.l1d[0].Config().BlockBytes)))
	return m
}

// Accessors used by policies, prefetchers and experiments.

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Torus returns the interconnect model.
func (m *Machine) Torus() *noc.Torus { return m.torus }

// Hierarchy returns the shared L2/memory model.
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// L1I returns core c's instruction cache.
func (m *Machine) L1I(c int) *cache.Cache { return m.l1i[c] }

// L1D returns core c's data cache.
func (m *Machine) L1D(c int) *cache.Cache { return m.l1d[c] }

// Timing returns the cycle-cost model.
func (m *Machine) Timing() cpu.Timing { return m.timing }

// Running returns the thread currently executing on core c, or nil.
func (m *Machine) Running(c int) *ThreadState { return m.cores[c].running }

// Now returns core c's local clock.
func (m *Machine) Now(c int) float64 { return m.cores[c].time }

// Reuse returns the Figure 3 tracker (nil unless Config.TrackReuse).
func (m *Machine) Reuse() *ReuseTracker { return m.reuse }

// PrefetchInstr fills the block containing addr into core c's L1-I,
// updating L2 state; the fill latency is assumed hidden (prefetches are
// not on the critical path in this model).
func (m *Machine) PrefetchInstr(c int, addr uint64) {
	if m.l1i[c].Contains(addr) {
		return
	}
	m.hier.FetchLatency(c, addr)
	m.l1i[c].Fill(addr)
	// The fill may have evicted the core's current fetch line; drop the
	// fast-fetch assumption until the next modeled fetch re-establishes it.
	m.cores[c].fetchValid = false
}

// Run executes all threads to completion and returns the results.
func (m *Machine) Run() Result {
	r, _ := m.RunContext(context.Background())
	return r
}

// cancelCheckMask throttles the cancellation poll to every 1024 steps; a
// channel select per instruction would dominate the simulation loop.
const cancelCheckMask = 1024 - 1

// opBatchLen is how many ops the machine decodes per BatchSource call into
// a thread's reusable buffer.
const opBatchLen = 256

// RunContext is Run with cooperative cancellation: when ctx is cancelled the
// run stops within a bounded number of simulated instructions and the
// partial result is returned alongside ctx.Err(). A completed run returns a
// nil error.
//
// The scheduler is event-horizon batched (see the cur/fut fields): every
// instruction executes on the core a full per-instruction scan would pick
// — the global (clock, index) minimum — but the pick costs an amortized
// couple of compares, because stepping the minimum core never advances any
// other core's clock. The interleaving, and therefore the result, is
// bit-identical to the reference scheduler's (see DESIGN.md and
// TestEventHorizonMatchesReference).
func (m *Machine) RunContext(ctx context.Context) (Result, error) {
	done := ctx.Done()
	m.policy.Attach(m, m.threads)
	m.enqueue, _ = m.policy.(enqueuer)
	m.fillIdleCores()
	if m.referenceLoop {
		// The reference loop is the oracle: disable the line micro-caches
		// too, so every access goes through the full cache model and the
		// differential tests check the fast paths rather than share them.
		m.fastFetch, m.fastData = false, false
		return m.runReference(ctx, done)
	}
	if _, cancelled := m.runLoop(done, math.MaxUint64); cancelled {
		m.aborted = true
		return m.result(), ctx.Err()
	}
	return m.result(), nil
}

// runLoop advances the event-horizon scheduler by at most budget
// instructions. It returns finished=true when the machine has no work left
// — every thread done, or the MaxInstructions abort tripped (m.aborted
// distinguishes) — and cancelled=true when the done channel fired at a
// poll point. Both false means the budget ran out with work remaining; all
// loop state lives in the Machine and the queue is left consistent, so a
// later call resumes at exactly the instruction this one stopped before.
// RunBatch's lockstep quanta rest on that resumability, which is why the
// budget checks sit on the post-step paths rather than a cheaper outer
// wrapper.
func (m *Machine) runLoop(done <-chan struct{}, budget uint64) (finished, cancelled bool) {
	steps := uint64(0)
	for {
		if done != nil && steps&cancelCheckMask == 0 {
			select {
			case <-done:
				return false, true
			default:
			}
		}
		if m.curPos >= len(m.cur) {
			// Round exhausted: the stepped cores become the next round.
			if len(m.fut) == 0 {
				if !m.fillIdleCores() {
					return true, false
				}
				continue
			}
			m.cur, m.fut = m.fut, m.cur[:0]
			m.curPos = 0
			sortEntries(m.cur)
			continue
		}
		e := m.cur[m.curPos]
		if len(m.fut) > 0 && m.fut[0].less(e) {
			// A stepped or refilled core is behind the whole round: run it
			// off the future heap until it crosses back over. Its event
			// horizon — the nearest clock that could take the minimum over
			// — is the smaller of the round head and the heap root's
			// children, computed once; until the streak crosses it, each
			// instruction costs one compare and no queue updates.
			root := m.fut[0]
			c := int(root.c)
			hz := e
			if len(m.fut) > 1 {
				l := 1
				if len(m.fut) > 2 && m.fut[2].less(m.fut[1]) {
					l = 2
				}
				if m.fut[l].less(hz) {
					hz = m.fut[l]
				}
			}
			for {
				if done != nil && steps&cancelCheckMask == 0 {
					select {
					case <-done:
						return false, true
					default:
					}
				}
				steps++
				sched := m.step(c)
				if m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions {
					m.aborted = true
					return true, false
				}
				if sched {
					break
				}
				ct := m.cores[c].time
				if ct < hz.t || (ct == hz.t && root.c < hz.c) {
					if steps < budget {
						continue
					}
					// Budget exhausted mid-streak: the heap root's key is
					// stale (that staleness is the streak optimization), so
					// re-sync it before pausing to leave a resumable queue.
					m.fut[0].t = ct
					m.siftDown(0)
					return false, false
				}
				m.fut[0].t = ct
				m.siftDown(0)
				break
			}
			if steps >= budget {
				return false, false
			}
			continue
		}
		c := int(e.c)
		m.curPos++
		m.floating = e.c
		steps++
		sched := m.step(c)
		if m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions {
			m.aborted = true
			return true, false
		}
		if !sched {
			// Still running: rejoin the queue with the advanced clock.
			// (On sched events heapRemove consumed the float marker, and
			// any refill re-entered the core through heapPush.)
			m.futPush(heapEntry{t: m.cores[c].time, c: e.c})
		}
		m.floating = -1
		if steps >= budget {
			return false, false
		}
	}
}

// runReference is the pre-batching scheduler: one nextCore scan per
// instruction and unbatched Source.Next decoding. It is the differential-
// testing oracle for the event-horizon loop (forced globally by the
// `slowsim` build tag, per machine by UseReferenceLoop) and is kept
// byte-for-byte at the original loop structure.
func (m *Machine) runReference(ctx context.Context, done <-chan struct{}) (Result, error) {
	for steps := uint64(0); ; steps++ {
		if done != nil && steps&cancelCheckMask == 0 {
			select {
			case <-done:
				m.aborted = true
				return m.result(), ctx.Err()
			default:
			}
		}
		c := m.nextCore()
		if c < 0 {
			if !m.fillIdleCores() {
				break
			}
			continue
		}
		m.step(c)
		if m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions {
			m.aborted = true
			break
		}
	}
	return m.result(), nil
}

// UseReferenceLoop selects (true) or deselects (false) the one-instruction-
// per-scan reference scheduler for this machine. Call it before Run; it
// exists for differential testing against the event-horizon loop. The
// `slowsim` build tag flips the default for every machine in the binary.
func (m *Machine) UseReferenceLoop(v bool) { m.referenceLoop = v }

// nextCore picks the running core with the smallest local time (the
// reference loop's per-instruction scan; the batched loop reads the heap
// root instead).
func (m *Machine) nextCore() int {
	best, bestT := -1, math.Inf(1)
	for c := range m.cores {
		if m.cores[c].running != nil && m.cores[c].time < bestT {
			best, bestT = c, m.cores[c].time
		}
	}
	return best
}

// heapEntry is one running core with its clock copied in as the sort key.
type heapEntry struct {
	t float64
	c int32
}

// less orders entries by (clock, core index) — the same total order the
// scan's "strictly smaller time, first index wins" rule induces. Keys are
// unique, so the heap root is always the scan's unique pick.
func (a heapEntry) less(b heapEntry) bool {
	return a.t < b.t || (a.t == b.t && a.c < b.c)
}

// heapPush enters core c into the event queue (always the future tier;
// the current round is an immutable sorted snapshot).
func (m *Machine) heapPush(c int) {
	m.futPush(heapEntry{t: m.cores[c].time, c: int32(c)})
}

// heapRemove drops core c from the event queue. In the batched loop c is
// the stepping core — floated out of both tiers — so this is one compare;
// the scans below serve the reference loop, where the queue is maintained
// but never consulted.
func (m *Machine) heapRemove(c int) {
	if int32(c) == m.floating {
		m.floating = -1
		return
	}
	for i := range m.fut {
		if int(m.fut[i].c) == c {
			last := len(m.fut) - 1
			if i != last {
				m.fut[i] = m.fut[last]
				m.fut = m.fut[:last]
				m.siftDown(i)
				m.siftUp(i)
			} else {
				m.fut = m.fut[:last]
			}
			return
		}
	}
	for i := m.curPos; i < len(m.cur); i++ {
		if int(m.cur[i].c) == c {
			m.cur = append(m.cur[:i], m.cur[i+1:]...)
			return
		}
	}
}

// sortEntries insertion-sorts a round snapshot. Rounds arrive near-sorted
// (lockstep cores re-enter the future tier in clock order), so this is
// typically one compare per entry; core counts are small either way.
func sortEntries(h []heapEntry) {
	for i := 1; i < len(h); i++ {
		e := h[i]
		j := i - 1
		for j >= 0 && e.less(h[j]) {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = e
	}
}

func (m *Machine) futPush(e heapEntry) {
	m.fut = append(m.fut, e)
	m.siftUp(len(m.fut) - 1)
}

func (m *Machine) siftUp(i int) {
	h := m.fut
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (m *Machine) siftDown(i int) {
	h := m.fut
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			small = r
		}
		if !h[small].less(h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// fillIdleCores polls the policy for work on every idle core; it reports
// whether any core received a thread.
func (m *Machine) fillIdleCores() bool {
	any := false
	for c := range m.cores {
		if m.cores[c].running != nil {
			continue
		}
		t := m.policy.NextThread(c)
		if t == nil {
			continue
		}
		if t.Done {
			panic(fmt.Sprintf("sim: policy scheduled finished thread %d", t.ID))
		}
		if t.ReadyAt > m.cores[c].time {
			m.cores[c].time = t.ReadyAt
		}
		if !t.Started {
			t.Started = true
			t.StartedAt = m.cores[c].time
		}
		t.InstrOnCore = 0
		m.cores[c].running = t
		m.heapPush(c)
		any = true
	}
	return any
}

// refillOp is nextOp's slow path: pull the next op window from the
// thread's bulk decoder, or fall back to Source.Next. The reference loop
// always takes the Next path, so the differential test exercises the batch
// decoders against the plain decoder too.
func (m *Machine) refillOp(t *ThreadState) (trace.Op, bool) {
	if m.referenceLoop {
		return t.src.Next()
	}
	if t.spanner != nil {
		sp := t.spanner.NextSpan(opBatchLen)
		if len(sp) == 0 {
			return trace.Op{}, false
		}
		t.batch = sp
		t.batchPos, t.batchLen = 1, len(sp)
		return sp[0], true
	}
	if t.batcher != nil {
		n := t.batcher.NextBatch(t.batch)
		if n <= 0 {
			return trace.Op{}, false
		}
		t.batchPos, t.batchLen = 1, n
		return t.batch[0], true
	}
	return t.src.Next()
}

// step executes one instruction on core c. It reports whether the running
// set changed (thread finish, migration or context switch) — the events
// that invalidate the caller's scheduling horizon.
func (m *Machine) step(c int) (sched bool) {
	t := m.cores[c].running
	// The batch-consume fast path is written out here: this is the hottest
	// load in the simulator and the refill branch is cold.
	var op trace.Op
	var ok bool
	if t.batchPos < t.batchLen {
		op = t.batch[t.batchPos]
		t.batchPos++
		ok = true
	} else {
		op, ok = m.refillOp(t)
	}
	if !ok {
		t.Done = true
		m.finished++
		m.latencies = append(m.latencies, m.cores[c].time-t.StartedAt)
		m.cores[c].running = nil
		m.heapRemove(c)
		m.policy.OnThreadFinish(c, t)
		m.fillIdleCores()
		return true
	}

	// Instruction fetch. A miss is served by the L2/memory hierarchy;
	// optionally (Config.InstrPeerTransfer, an extension ablation — the
	// paper's Table 2 machine keeps MESI for L1-D only) by cache-to-cache
	// transfer from the nearest peer L1-I holding the block.
	//
	// A fetch from the core's current line (fastFetch) is a known hit with
	// no model side effects — the cache's own episode rule would skip the
	// replacement update too — so the cache model is consulted only on
	// line changes.
	block := op.PC >> m.iBlockShift
	iHit := true
	ilat := 0
	if !m.fastFetch || block != m.cores[c].fetchBlock || !m.cores[c].fetchValid {
		ires := m.l1i[c].Access(op.PC, false)
		m.cores[c].fetchBlock, m.cores[c].fetchValid = block, true
		iHit = ires.Hit
		if !ires.Hit {
			m.iMis++
			m.cores[c].imiss++
			peer := -1
			if m.cfg.InstrPeerTransfer {
				peer = m.nearestInstrPeer(c, block)
			}
			if peer >= 0 {
				m.iPeer++
				ilat = 2*m.torus.Latency(c, peer) + peerTagCycles
			} else {
				ilat = m.hier.FetchLatency(c, op.PC)
			}
		}
		if m.itlb != nil {
			ilat += m.itlb[c].Access(op.PC)
		}
		if m.pref != nil {
			m.pref.OnFetch(m, c, op.PC, !ires.Hit)
		}
		if m.reuse != nil {
			m.reuse.Record(block, t.ID, t.Type)
		}
	}

	// Data access.
	dlat := 0
	dmiss := false
	if op.HasData {
		dlat, dmiss = m.dataAccess(c, op.DataAddr, op.IsWrite)
		if m.dtlb != nil {
			dlat += m.dtlb[c].Access(op.DataAddr)
		}
	}

	m.cores[c].time += m.timing.InstrCycles(ilat, dlat)
	t.Instr++
	t.InstrOnCore++
	m.cores[c].instr++
	m.instr++

	f := Fetch{PC: op.PC, Block: block, IMiss: !iHit, DMiss: dmiss}
	if dest := m.policy.OnInstr(c, t, f); dest >= 0 && dest < m.cfg.Cores {
		if dest == c {
			m.contextSwitch(c, t)
		} else {
			m.migrate(c, dest, t)
		}
		return true
	}
	return false
}

// contextSwitch yields the running thread back to its own core's queue
// (STEPS-style time multiplexing): no interconnect or L2 transfer, only the
// fixed pipeline-drain/state-save cost.
func (m *Machine) contextSwitch(c int, t *ThreadState) {
	cost := m.timing.Config().MigrationBaseCycles
	t.ReadyAt = m.cores[c].time + float64(cost)
	m.switches++
	if m.cfg.LogEvents {
		m.events = append(m.events, Event{Cycle: m.cores[c].time, ThreadID: t.ID, From: c, To: c, Switch: true})
	}
	m.cores[c].running = nil
	m.heapRemove(c)
	if m.enqueue == nil {
		panic(fmt.Sprintf("sim: policy %q yielded without EnqueueMigrated", m.policy.Name()))
	}
	m.enqueue.EnqueueMigrated(c, t)
	m.fillIdleCores()
}

// dataAccess performs a data reference with MESI-style directory
// bookkeeping and returns the added latency and miss flag.
func (m *Machine) dataAccess(c int, addr uint64, write bool) (lat int, miss bool) {
	m.dAcc++
	block := addr >> m.dBlockShift
	// A read of the core's current data line (fastData) is a known hit
	// with no model side effects — the cache's episode rule would skip
	// the replacement update too. Row scans walk a block word by word, so
	// this is the common data reference. Writes always take the full path
	// (they may need a directory upgrade).
	if !write && m.fastData && block == m.cores[c].dataBlock && m.cores[c].dataValid {
		return 0, false
	}
	l1d := m.l1d[c]
	res := l1d.Access(addr, write)
	m.cores[c].dataBlock, m.cores[c].dataValid = block, true
	if res.EvictedValid {
		m.dir.removeSharer(res.Evicted, c)
	}
	if !res.Hit {
		m.dMis++
		miss = true
		lat += m.hier.FetchLatency(c, addr)
		m.dir.addSharer(block, c)
	}
	if write {
		// Invalidate other sharers; the invalidation round trip is
		// charged once if any copies existed elsewhere (write-allocate,
		// MESI upgrade). The mask is walked bit by set bit (ascending
		// core order, same as the full scan it replaced).
		if others := m.dir.othersOf(block, c); others != 0 {
			for rem := others; rem != 0; rem &= rem - 1 {
				o := bits.TrailingZeros64(rem)
				m.l1d[o].InvalidateBlock(block)
				if m.cores[o].dataBlock == block {
					// The victim core's line micro-cache must not keep
					// reporting the invalidated block resident.
					m.cores[o].dataValid = false
				}
				m.invals++
			}
			m.dir.setExclusive(block, c)
			lat += m.torus.Broadcast(c, false)
		}
	}
	return lat, miss
}

// peerTagCycles is the fixed cost of a peer L1 tag probe + line read.
const peerTagCycles = 2

// nearestInstrPeer returns the closest other core whose L1-I holds the
// block, or -1.
func (m *Machine) nearestInstrPeer(c int, block uint64) int {
	best, bestD := -1, 1<<30
	for o := 0; o < m.cfg.Cores; o++ {
		if o == c || !m.l1i[o].ContainsBlock(block) {
			continue
		}
		if d := m.torus.Distance(c, o); d < bestD {
			best, bestD = o, d
		}
	}
	return best
}

// migrate moves the running thread on src to dst's policy queue, charging
// the context-transfer latency (Section 4.4: architectural state staged
// through the L2 near the target).
func (m *Machine) migrate(src, dst int, t *ThreadState) {
	nocRT := 2 * m.torus.Latency(src, dst)
	cost := m.timing.MigrationCycles(nocRT, m.hier.Config().L2HitLatency, m.hier.Config().BlockBytes)
	t.ReadyAt = m.cores[src].time + float64(cost)
	t.Migrations++
	m.migrations++
	if m.cfg.LogEvents {
		m.events = append(m.events, Event{Cycle: m.cores[src].time, ThreadID: t.ID, From: src, To: dst})
	}
	m.cores[src].running = nil
	m.heapRemove(src)
	if m.enqueue == nil {
		panic(fmt.Sprintf("sim: policy %q requested migration without EnqueueMigrated", m.policy.Name()))
	}
	m.enqueue.EnqueueMigrated(dst, t)
	m.fillIdleCores()
}
