// Package sim implements the trace-driven multicore simulator the
// reproduction runs on: N cores with private L1-I/L1-D caches, a shared
// NUCA L2 over a 2D torus, a MESI-style L1-D directory, hardware thread
// migration, and pluggable scheduling policies (the baseline OS scheduler
// in internal/sched, SLICC in internal/slicc) and instruction prefetchers
// (internal/prefetch).
//
// The machine replays workload threads (transactions) to completion and
// reports the paper's metrics: I-/D-MPKI, cycles (performance), migrations,
// search broadcasts (BPKI) and miss classifications. Timing follows the
// internal/cpu model; see DESIGN.md for the substitution rationale.
package sim

import (
	"context"
	"fmt"
	"math"

	"slicc/internal/cache"
	"slicc/internal/cpu"
	"slicc/internal/mem"
	"slicc/internal/noc"
	"slicc/internal/tlb"
	"slicc/internal/trace"
)

// Config describes a machine.
type Config struct {
	// Cores is the core count (default 16, Table 2).
	Cores int
	// TorusWidth/TorusHeight shape the interconnect (default 4x4).
	TorusWidth, TorusHeight int
	// HopLatency is the per-hop cycle cost (default 1).
	HopLatency int
	// L1I and L1D configure the private caches (default 32KB, 8-way, 64B
	// blocks, 3-cycle).
	L1I, L1D cache.Config
	// Mem configures the shared L2/NUCA and memory.
	Mem mem.Config
	// CPU configures the timing model.
	CPU cpu.Config
	// TrackReuse enables the Figure 3 instruction-block reuse tracker
	// (costs memory proportional to the code footprint).
	TrackReuse bool
	// MaxInstructions aborts the run after this many instructions
	// (0 = unlimited). A safety net for exploratory configurations.
	MaxInstructions uint64
	// InstrPeerTransfer serves L1-I misses from peer L1-I caches over the
	// NoC when possible (an ablation extension; the paper's machine keeps
	// coherence for L1-D only, so this defaults to off).
	InstrPeerTransfer bool
	// EnableTLB adds per-core I-/D-TLBs (64-entry, 4KB pages) and charges
	// page-walk latency. Off by default: the paper reports TLB effects as
	// a secondary observation (Section 5.5) and the headline calibration
	// excludes them.
	EnableTLB bool
	// LogEvents records every migration and context switch in the result
	// (costs memory proportional to the event count).
	LogEvents bool
	// TLB configures the TLBs when EnableTLB is set.
	TLB tlb.Config
}

// WithDefaults returns the configuration with every zero field replaced by
// its default. It is idempotent; job-oriented callers (internal/runner) use
// it to normalize configurations before content-keying them.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.TorusWidth == 0 || c.TorusHeight == 0 {
		// Choose the most square torus covering the cores.
		w := 1
		for w*w < c.Cores {
			w++
		}
		c.TorusWidth = w
		c.TorusHeight = (c.Cores + w - 1) / w
	}
	if c.HopLatency == 0 {
		c.HopLatency = 1
	}
	if c.L1I.SizeBytes == 0 {
		c.L1I.SizeBytes = 32 * 1024
	}
	if c.L1D.SizeBytes == 0 {
		c.L1D.SizeBytes = 32 * 1024
	}
	return c
}

// ThreadState is a transaction in flight.
type ThreadState struct {
	// ID and Type identify the thread; Type is only visible to type-aware
	// policies (SLICC-SW receives it from the software layer, SLICC-Pp
	// re-derives it on the scout core).
	ID   int
	Type int
	// TypeName is the transaction type's display name.
	TypeName string

	src trace.Source

	// ReadyAt is the earliest cycle the thread may (re)start after a
	// migration context transfer or preprocessing delay.
	ReadyAt float64
	// StartedAt is the cycle the thread first ran; Started marks it valid.
	StartedAt float64
	Started   bool
	// Instr counts executed instructions.
	Instr uint64
	// InstrOnCore counts instructions since the thread last changed core.
	InstrOnCore uint64
	// Migrations counts completed migrations.
	Migrations int
	// Done marks completion.
	Done bool
}

// Fetch describes one instruction fetch outcome for policy observation.
type Fetch struct {
	PC    uint64
	Block uint64 // instruction block address
	IMiss bool
	DMiss bool
}

// Policy schedules threads onto cores and decides migrations. The machine
// owns only the running thread per core; all queueing is the policy's.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Attach wires the policy to the machine and hands it the full thread
	// list before the run starts (a closed system: the paper replays a
	// fixed task set).
	Attach(m *Machine, threads []*ThreadState)
	// NextThread returns the next thread to start on the idle core, or
	// nil if the policy has nothing for it right now.
	NextThread(core int) *ThreadState
	// OnInstr observes the instruction just executed by the running
	// thread on core and may request a migration by returning dest >= 0
	// (dest == core is treated as staying put).
	OnInstr(core int, t *ThreadState, f Fetch) (dest int)
	// OnThreadFinish observes a thread completing on core.
	OnThreadFinish(core int, t *ThreadState)
}

// Prefetcher reacts to instruction fetches on a core, typically by calling
// Machine.PrefetchInstr.
type Prefetcher interface {
	Name() string
	OnFetch(m *Machine, core int, pc uint64, miss bool)
}

// coreState is the per-core execution context.
type coreState struct {
	time    float64
	running *ThreadState
	instr   uint64
	imiss   uint64
}

// Event is one scheduling event (migration or same-core context switch).
type Event struct {
	Cycle    float64
	ThreadID int
	From, To int
	// Switch marks same-core context switches (STEPS); migrations
	// otherwise.
	Switch bool
}

// Machine is a configured multicore instance, single-use: build, Run, read
// results.
type Machine struct {
	cfg    Config
	torus  *noc.Torus
	hier   *mem.Hierarchy
	l1i    []*cache.Cache
	l1d    []*cache.Cache
	timing cpu.Timing
	policy Policy
	pref   Prefetcher

	cores   []coreState
	threads []*ThreadState
	dir     *directory
	reuse   *ReuseTracker
	itlb    []*tlb.TLB
	dtlb    []*tlb.TLB

	events     []Event
	latencies  []float64
	instr      uint64
	iAcc, iMis uint64
	iPeer      uint64
	dAcc, dMis uint64
	migrations uint64
	switches   uint64
	invals     uint64
	finished   int
	aborted    bool
}

// New builds a machine over the given workload threads. policy is required;
// pref may be nil.
func New(cfg Config, policy Policy, pref Prefetcher, threads []trace.Thread) *Machine {
	cfg = cfg.withDefaults()
	if policy == nil {
		panic("sim: nil policy")
	}
	m := &Machine{
		cfg:    cfg,
		torus:  noc.New(cfg.TorusWidth, cfg.TorusHeight, cfg.HopLatency),
		timing: cpu.NewTiming(cfg.CPU),
		policy: policy,
		pref:   pref,
		cores:  make([]coreState, cfg.Cores),
		dir:    newDirectory(cfg.Cores),
	}
	m.hier = mem.New(cfg.Mem, m.torus)
	m.l1i = make([]*cache.Cache, cfg.Cores)
	m.l1d = make([]*cache.Cache, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		ic := cfg.L1I
		dc := cfg.L1D
		ic.Seed = int64(c + 1)
		dc.Seed = int64(1000 + c)
		m.l1i[c] = cache.New(ic)
		m.l1d[c] = cache.New(dc)
	}
	m.threads = make([]*ThreadState, len(threads))
	for i, th := range threads {
		m.threads[i] = &ThreadState{
			ID:       th.ID,
			Type:     th.Type,
			TypeName: th.TypeName,
			src:      th.New(),
		}
	}
	if cfg.TrackReuse {
		m.reuse = NewReuseTracker(len(threads))
	}
	if cfg.EnableTLB {
		m.itlb = make([]*tlb.TLB, cfg.Cores)
		m.dtlb = make([]*tlb.TLB, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			m.itlb[c] = tlb.New(cfg.TLB)
			m.dtlb[c] = tlb.New(cfg.TLB)
		}
	}
	return m
}

// Accessors used by policies, prefetchers and experiments.

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Torus returns the interconnect model.
func (m *Machine) Torus() *noc.Torus { return m.torus }

// Hierarchy returns the shared L2/memory model.
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// L1I returns core c's instruction cache.
func (m *Machine) L1I(c int) *cache.Cache { return m.l1i[c] }

// L1D returns core c's data cache.
func (m *Machine) L1D(c int) *cache.Cache { return m.l1d[c] }

// Timing returns the cycle-cost model.
func (m *Machine) Timing() cpu.Timing { return m.timing }

// Running returns the thread currently executing on core c, or nil.
func (m *Machine) Running(c int) *ThreadState { return m.cores[c].running }

// Now returns core c's local clock.
func (m *Machine) Now(c int) float64 { return m.cores[c].time }

// Reuse returns the Figure 3 tracker (nil unless Config.TrackReuse).
func (m *Machine) Reuse() *ReuseTracker { return m.reuse }

// PrefetchInstr fills the block containing addr into core c's L1-I,
// updating L2 state; the fill latency is assumed hidden (prefetches are
// not on the critical path in this model).
func (m *Machine) PrefetchInstr(c int, addr uint64) {
	if m.l1i[c].Contains(addr) {
		return
	}
	m.hier.FetchLatency(c, addr)
	m.l1i[c].Fill(addr)
}

// Run executes all threads to completion and returns the results.
func (m *Machine) Run() Result {
	r, _ := m.RunContext(context.Background())
	return r
}

// cancelCheckMask throttles the cancellation poll to every 1024 steps; a
// channel select per instruction would dominate the simulation loop.
const cancelCheckMask = 1024 - 1

// RunContext is Run with cooperative cancellation: when ctx is cancelled the
// run stops within a bounded number of simulated instructions and the
// partial result is returned alongside ctx.Err(). A completed run returns a
// nil error.
func (m *Machine) RunContext(ctx context.Context) (Result, error) {
	done := ctx.Done()
	m.policy.Attach(m, m.threads)
	m.fillIdleCores()
	for steps := uint64(0); ; steps++ {
		if done != nil && steps&cancelCheckMask == 0 {
			select {
			case <-done:
				m.aborted = true
				return m.result(), ctx.Err()
			default:
			}
		}
		c := m.nextCore()
		if c < 0 {
			if !m.fillIdleCores() {
				break
			}
			continue
		}
		m.step(c)
		if m.cfg.MaxInstructions > 0 && m.instr >= m.cfg.MaxInstructions {
			m.aborted = true
			break
		}
	}
	return m.result(), nil
}

// nextCore picks the running core with the smallest local time.
func (m *Machine) nextCore() int {
	best, bestT := -1, math.Inf(1)
	for c := range m.cores {
		if m.cores[c].running != nil && m.cores[c].time < bestT {
			best, bestT = c, m.cores[c].time
		}
	}
	return best
}

// fillIdleCores polls the policy for work on every idle core; it reports
// whether any core received a thread.
func (m *Machine) fillIdleCores() bool {
	any := false
	for c := range m.cores {
		if m.cores[c].running != nil {
			continue
		}
		t := m.policy.NextThread(c)
		if t == nil {
			continue
		}
		if t.Done {
			panic(fmt.Sprintf("sim: policy scheduled finished thread %d", t.ID))
		}
		if t.ReadyAt > m.cores[c].time {
			m.cores[c].time = t.ReadyAt
		}
		if !t.Started {
			t.Started = true
			t.StartedAt = m.cores[c].time
		}
		t.InstrOnCore = 0
		m.cores[c].running = t
		any = true
	}
	return any
}

// step executes one instruction on core c.
func (m *Machine) step(c int) {
	t := m.cores[c].running
	op, ok := t.src.Next()
	if !ok {
		t.Done = true
		m.finished++
		m.latencies = append(m.latencies, m.cores[c].time-t.StartedAt)
		m.cores[c].running = nil
		m.policy.OnThreadFinish(c, t)
		m.fillIdleCores()
		return
	}

	// Instruction fetch. A miss is served by the L2/memory hierarchy;
	// optionally (Config.InstrPeerTransfer, an extension ablation — the
	// paper's Table 2 machine keeps MESI for L1-D only) by cache-to-cache
	// transfer from the nearest peer L1-I holding the block.
	m.iAcc++
	ires := m.l1i[c].Access(op.PC, false)
	ilat := 0
	if !ires.Hit {
		m.iMis++
		m.cores[c].imiss++
		peer := -1
		if m.cfg.InstrPeerTransfer {
			peer = m.nearestInstrPeer(c, m.l1i[c].BlockAddr(op.PC))
		}
		if peer >= 0 {
			m.iPeer++
			ilat = 2*m.torus.Latency(c, peer) + peerTagCycles
		} else {
			ilat = m.hier.FetchLatency(c, op.PC)
		}
	}
	if m.itlb != nil {
		ilat += m.itlb[c].Access(op.PC)
	}
	if m.pref != nil {
		m.pref.OnFetch(m, c, op.PC, !ires.Hit)
	}
	if m.reuse != nil {
		m.reuse.Record(m.l1i[c].BlockAddr(op.PC), t.ID, t.Type)
	}

	// Data access.
	dlat := 0
	dmiss := false
	if op.HasData {
		dlat, dmiss = m.dataAccess(c, op.DataAddr, op.IsWrite)
		if m.dtlb != nil {
			dlat += m.dtlb[c].Access(op.DataAddr)
		}
	}

	m.cores[c].time += m.timing.InstrCycles(ilat, dlat)
	t.Instr++
	t.InstrOnCore++
	m.cores[c].instr++
	m.instr++

	f := Fetch{PC: op.PC, Block: m.l1i[c].BlockAddr(op.PC), IMiss: !ires.Hit, DMiss: dmiss}
	if dest := m.policy.OnInstr(c, t, f); dest >= 0 && dest < m.cfg.Cores {
		if dest == c {
			m.contextSwitch(c, t)
		} else {
			m.migrate(c, dest, t)
		}
	}
}

// contextSwitch yields the running thread back to its own core's queue
// (STEPS-style time multiplexing): no interconnect or L2 transfer, only the
// fixed pipeline-drain/state-save cost.
func (m *Machine) contextSwitch(c int, t *ThreadState) {
	cost := m.timing.Config().MigrationBaseCycles
	t.ReadyAt = m.cores[c].time + float64(cost)
	m.switches++
	if m.cfg.LogEvents {
		m.events = append(m.events, Event{Cycle: m.cores[c].time, ThreadID: t.ID, From: c, To: c, Switch: true})
	}
	m.cores[c].running = nil
	enq, ok := m.policy.(interface {
		EnqueueMigrated(core int, t *ThreadState)
	})
	if !ok {
		panic(fmt.Sprintf("sim: policy %q yielded without EnqueueMigrated", m.policy.Name()))
	}
	enq.EnqueueMigrated(c, t)
	m.fillIdleCores()
}

// dataAccess performs a data reference with MESI-style directory
// bookkeeping and returns the added latency and miss flag.
func (m *Machine) dataAccess(c int, addr uint64, write bool) (lat int, miss bool) {
	m.dAcc++
	l1d := m.l1d[c]
	block := l1d.BlockAddr(addr)
	res := l1d.Access(addr, write)
	if res.EvictedValid {
		m.dir.removeSharer(res.Evicted, c)
	}
	if !res.Hit {
		m.dMis++
		miss = true
		lat += m.hier.FetchLatency(c, addr)
		m.dir.addSharer(block, c)
	}
	if write {
		// Invalidate other sharers; the invalidation round trip is
		// charged once if any copies existed elsewhere (write-allocate,
		// MESI upgrade).
		if others := m.dir.othersOf(block, c); others != 0 {
			for o := 0; o < m.cfg.Cores; o++ {
				if others&(1<<uint(o)) != 0 {
					m.l1d[o].InvalidateBlock(block)
					m.invals++
				}
			}
			m.dir.setExclusive(block, c)
			lat += m.torus.Broadcast(c, false)
		}
	}
	return lat, miss
}

// peerTagCycles is the fixed cost of a peer L1 tag probe + line read.
const peerTagCycles = 2

// nearestInstrPeer returns the closest other core whose L1-I holds the
// block, or -1.
func (m *Machine) nearestInstrPeer(c int, block uint64) int {
	best, bestD := -1, 1<<30
	for o := 0; o < m.cfg.Cores; o++ {
		if o == c || !m.l1i[o].ContainsBlock(block) {
			continue
		}
		if d := m.torus.Distance(c, o); d < bestD {
			best, bestD = o, d
		}
	}
	return best
}

// migrate moves the running thread on src to dst's policy queue, charging
// the context-transfer latency (Section 4.4: architectural state staged
// through the L2 near the target).
func (m *Machine) migrate(src, dst int, t *ThreadState) {
	nocRT := 2 * m.torus.Latency(src, dst)
	cost := m.timing.MigrationCycles(nocRT, m.hier.Config().L2HitLatency, m.hier.Config().BlockBytes)
	t.ReadyAt = m.cores[src].time + float64(cost)
	t.Migrations++
	m.migrations++
	if m.cfg.LogEvents {
		m.events = append(m.events, Event{Cycle: m.cores[src].time, ThreadID: t.ID, From: src, To: dst})
	}
	m.cores[src].running = nil
	if enq, ok := m.policy.(interface {
		EnqueueMigrated(core int, t *ThreadState)
	}); ok {
		enq.EnqueueMigrated(dst, t)
	} else {
		panic(fmt.Sprintf("sim: policy %q requested migration without EnqueueMigrated", m.policy.Name()))
	}
	m.fillIdleCores()
}
