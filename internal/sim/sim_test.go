package sim

import (
	"testing"

	"slicc/internal/trace"
)

// fifoPolicy is a minimal baseline-like policy for machine tests.
type fifoPolicy struct {
	pending []*ThreadState
	next    int
	// migrateAfter, when positive, migrates every thread to core
	// (current+1) mod N after that many instructions on a core.
	migrateAfter uint64
	queues       map[int][]*ThreadState
	cores        int
}

func (f *fifoPolicy) Name() string { return "fifo" }
func (f *fifoPolicy) Attach(m *Machine, ts []*ThreadState) {
	f.pending = ts
	f.queues = map[int][]*ThreadState{}
	f.cores = m.Cores()
}
func (f *fifoPolicy) NextThread(core int) *ThreadState {
	if q := f.queues[core]; len(q) > 0 {
		f.queues[core] = q[1:]
		return q[0]
	}
	if f.next < len(f.pending) {
		t := f.pending[f.next]
		f.next++
		return t
	}
	return nil
}
func (f *fifoPolicy) OnInstr(core int, t *ThreadState, _ Fetch) int {
	if f.migrateAfter > 0 && t.InstrOnCore >= f.migrateAfter {
		return (core + 1) % f.cores
	}
	return -1
}
func (f *fifoPolicy) OnThreadFinish(core int, t *ThreadState) {}
func (f *fifoPolicy) EnqueueMigrated(core int, t *ThreadState) {
	f.queues[core] = append(f.queues[core], t)
}

// loopThread builds a thread executing `blocks` sequential blocks `reps`
// times (16 instructions per 64B block).
func loopThread(id int, base uint64, blocks, reps int) trace.Thread {
	return trace.Thread{
		ID: id,
		New: func() trace.Source {
			var ops []trace.Op
			for r := 0; r < reps; r++ {
				for b := 0; b < blocks; b++ {
					for i := 0; i < 16; i++ {
						ops = append(ops, trace.Op{PC: base + uint64(b)*64 + uint64(i)*4})
					}
				}
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func dataThread(id int, addrs []uint64, writes bool) trace.Thread {
	return trace.Thread{
		ID: id,
		New: func() trace.Source {
			ops := make([]trace.Op, len(addrs))
			for i, a := range addrs {
				ops[i] = trace.Op{PC: 0x1000 + uint64(i)*4, HasData: true, DataAddr: a, IsWrite: writes}
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func TestRunCompletesAllThreads(t *testing.T) {
	threads := []trace.Thread{
		loopThread(0, 0x10000, 8, 3),
		loopThread(1, 0x20000, 8, 3),
		loopThread(2, 0x30000, 8, 3),
	}
	m := New(Config{Cores: 2}, &fifoPolicy{}, nil, threads)
	r := m.Run()
	if r.ThreadsFinished != 3 {
		t.Fatalf("finished %d/3 threads", r.ThreadsFinished)
	}
	if r.Instructions != 3*8*3*16 {
		t.Fatalf("instructions = %d, want %d", r.Instructions, 3*8*3*16)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles accumulated")
	}
	if r.Aborted {
		t.Fatal("run aborted")
	}
}

func TestInstructionMissesCounted(t *testing.T) {
	// One pass over 8 cold blocks: exactly 8 misses; second+third passes hit.
	m := New(Config{Cores: 1}, &fifoPolicy{}, nil, []trace.Thread{loopThread(0, 0x10000, 8, 3)})
	r := m.Run()
	if r.IMisses != 8 {
		t.Fatalf("IMisses = %d, want 8", r.IMisses)
	}
	if r.IAccesses != r.Instructions {
		t.Fatal("each instruction is one I-access")
	}
}

func TestMissLatencySlowsRun(t *testing.T) {
	// Same instruction count; one thread loops in-cache, the other streams.
	inCache := loopThread(0, 0x10000, 8, 64) // 8 blocks revisited
	stream := loopThread(1, 0x800000, 512, 1)
	r1 := New(Config{Cores: 1}, &fifoPolicy{}, nil, []trace.Thread{inCache}).Run()
	r2 := New(Config{Cores: 1}, &fifoPolicy{}, nil, []trace.Thread{stream}).Run()
	if r1.Instructions != r2.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", r1.Instructions, r2.Instructions)
	}
	if r2.Cycles <= r1.Cycles {
		t.Fatalf("streaming run (%f) not slower than cached run (%f)", r2.Cycles, r1.Cycles)
	}
}

func TestMigrationMovesThread(t *testing.T) {
	threads := []trace.Thread{loopThread(0, 0x10000, 64, 4)}
	p := &fifoPolicy{migrateAfter: 500}
	m := New(Config{Cores: 4}, p, nil, threads)
	r := m.Run()
	if r.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	if r.ThreadsFinished != 1 {
		t.Fatal("thread did not finish")
	}
	// Migration warms multiple caches: at least two L1-Is saw accesses.
	warmed := 0
	for c := 0; c < 4; c++ {
		if m.L1I(c).Stats().Accesses > 0 {
			warmed++
		}
	}
	if warmed < 2 {
		t.Fatalf("only %d caches touched despite migrations", warmed)
	}
}

func TestMigrationChargesLatency(t *testing.T) {
	base := New(Config{Cores: 4}, &fifoPolicy{}, nil,
		[]trace.Thread{loopThread(0, 0x10000, 8, 100)}).Run()
	migr := New(Config{Cores: 4}, &fifoPolicy{migrateAfter: 300}, nil,
		[]trace.Thread{loopThread(0, 0x10000, 8, 100)}).Run()
	if migr.Cycles <= base.Cycles {
		t.Fatalf("migrating run (%f cycles) not slower than pinned run (%f)", migr.Cycles, base.Cycles)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	// Two threads on two cores read the same block; then one writes it.
	shared := uint64(0xABC000)
	reads := make([]uint64, 50)
	for i := range reads {
		reads[i] = shared
	}
	t0 := dataThread(0, reads, false)
	t1 := dataThread(1, append(append([]uint64{}, reads...), shared), true)
	m := New(Config{Cores: 2}, &fifoPolicy{}, nil, []trace.Thread{t0, t1})
	r := m.Run()
	if r.Invalidations == 0 {
		t.Fatal("no invalidations recorded for write-shared block")
	}
}

func TestDirectoryTracksSharers(t *testing.T) {
	d := newDirectory(4)
	d.addSharer(7, 0)
	d.addSharer(7, 2)
	if d.sharerCount(7) != 2 {
		t.Fatalf("sharerCount = %d", d.sharerCount(7))
	}
	if d.othersOf(7, 0) != 1<<2 {
		t.Fatalf("othersOf = %b", d.othersOf(7, 0))
	}
	d.setExclusive(7, 0)
	if d.sharerCount(7) != 1 || d.othersOf(7, 0) != 0 {
		t.Fatal("setExclusive failed")
	}
	d.removeSharer(7, 0)
	if d.sharerCount(7) != 0 {
		t.Fatal("removeSharer failed")
	}
	if d.tab.Len() != 0 {
		t.Fatal("empty entry not deleted")
	}
}

func TestMaxInstructionsAborts(t *testing.T) {
	m := New(Config{Cores: 1, MaxInstructions: 100}, &fifoPolicy{}, nil,
		[]trace.Thread{loopThread(0, 0x10000, 64, 100)})
	r := m.Run()
	if !r.Aborted {
		t.Fatal("run not aborted")
	}
	if r.Instructions > 110 {
		t.Fatalf("ran %d instructions past the cap", r.Instructions)
	}
}

func TestReuseTracker(t *testing.T) {
	rt := NewReuseTracker(10)
	// Block 1: single thread; block 2: 3/10 threads (few);
	// block 3: 8/10 (most). One access per touch.
	rt.Record(1, 0, 0)
	for id := 0; id < 3; id++ {
		rt.Record(2, id, 0)
	}
	for id := 0; id < 8; id++ {
		rt.Record(3, id, 0)
	}
	g := rt.Global()
	total := 1.0 + 3 + 8
	if !approx(g.Single, 1/total) || !approx(g.Few, 3/total) || !approx(g.Most, 8/total) {
		t.Fatalf("global breakdown = %+v", g)
	}
}

func TestReuseTrackerPerType(t *testing.T) {
	rt := NewReuseTracker(8)
	// Type 0: threads 0..3; type 1: threads 4..7.
	// Block 5 is touched by all of type 0 (most within type) and one
	// thread of type 1 (single within type).
	for id := 0; id < 4; id++ {
		rt.Record(5, id, 0)
	}
	rt.Record(5, 4, 1)
	pt := rt.PerType()
	if !approx(pt.Most, 4.0/5) || !approx(pt.Single, 1.0/5) {
		t.Fatalf("per-type breakdown = %+v", pt)
	}
	// Globally 5/8 threads touched it: "most" (>60%).
	if g := rt.Global(); !approx(g.Most, 1) {
		t.Fatalf("global breakdown = %+v", g)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Instructions: 10000, IMisses: 350, DMisses: 100, Migrations: 4}
	if !approx(r.IMPKI(), 35) || !approx(r.DMPKI(), 10) || !approx(r.MPKI(), 45) {
		t.Fatalf("MPKI wrong: %v %v %v", r.IMPKI(), r.DMPKI(), r.MPKI())
	}
	if !approx(r.InstrPerMigration(), 2500) {
		t.Fatalf("InstrPerMigration = %v", r.InstrPerMigration())
	}
	base := Result{Cycles: 200}
	fast := Result{Cycles: 100}
	if !approx(fast.SpeedupOver(base), 2) {
		t.Fatal("SpeedupOver wrong")
	}
	if (Result{}).InstrPerMigration() <= 1e300 {
		t.Fatal("no-migration InstrPerMigration should be +Inf")
	}
}

func TestPrefetchInstrFills(t *testing.T) {
	m := New(Config{Cores: 1}, &fifoPolicy{}, nil, nil)
	m.PrefetchInstr(0, 0x4000)
	if !m.L1I(0).Contains(0x4000) {
		t.Fatal("prefetch did not fill L1-I")
	}
	if !m.Hierarchy().Contains(0x4000) {
		t.Fatal("prefetch did not install in L2")
	}
	// Idempotent.
	m.PrefetchInstr(0, 0x4000)
	if m.L1I(0).Stats().Fills != 1 {
		t.Fatal("duplicate prefetch filled again")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{}, &fifoPolicy{}, nil, nil)
	if m.Cores() != 16 {
		t.Fatalf("default cores = %d", m.Cores())
	}
	if m.Torus().Nodes() != 16 {
		t.Fatalf("default torus nodes = %d", m.Torus().Nodes())
	}
	if m.L1I(0).Config().SizeBytes != 32*1024 {
		t.Fatal("default L1I size wrong")
	}
}

func approx(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestPerCoreStats(t *testing.T) {
	threads := []trace.Thread{
		loopThread(0, 0x10000, 8, 3),
		loopThread(1, 0x20000, 8, 3),
	}
	m := New(Config{Cores: 2}, &fifoPolicy{}, nil, threads)
	r := m.Run()
	if len(r.PerCore) != 2 {
		t.Fatalf("PerCore has %d entries", len(r.PerCore))
	}
	var sum uint64
	for _, c := range r.PerCore {
		sum += c.Instructions
	}
	if sum != r.Instructions {
		t.Fatalf("per-core instructions sum %d != total %d", sum, r.Instructions)
	}
	if r.LoadImbalance() < 1 {
		t.Fatalf("LoadImbalance = %f < 1", r.LoadImbalance())
	}
}

func TestEventLog(t *testing.T) {
	threads := []trace.Thread{loopThread(0, 0x10000, 64, 4)}
	p := &fifoPolicy{migrateAfter: 500}
	m := New(Config{Cores: 4, LogEvents: true}, p, nil, threads)
	r := m.Run()
	if len(r.Events) == 0 {
		t.Fatal("no events logged")
	}
	if uint64(len(r.Events)) != r.Migrations+r.ContextSwitches {
		t.Fatalf("%d events != %d migrations + %d switches",
			len(r.Events), r.Migrations, r.ContextSwitches)
	}
	last := -1.0
	for _, e := range r.Events {
		if e.From == e.To && !e.Switch {
			t.Fatalf("self-migration event %+v", e)
		}
		if e.Cycle < last {
			// Events come from different cores, so strict global order is
			// not guaranteed; but per the single-thread setup here they
			// must be monotone.
			t.Fatalf("events out of order: %f after %f", e.Cycle, last)
		}
		last = e.Cycle
	}
}

func TestEventLogDisabledByDefault(t *testing.T) {
	threads := []trace.Thread{loopThread(0, 0x10000, 64, 4)}
	m := New(Config{Cores: 4}, &fifoPolicy{migrateAfter: 500}, nil, threads)
	r := m.Run()
	if r.Events != nil {
		t.Fatal("events logged without LogEvents")
	}
}

func TestTransactionLatencies(t *testing.T) {
	threads := []trace.Thread{
		loopThread(0, 0x10000, 8, 2),
		loopThread(1, 0x20000, 64, 4),
	}
	m := New(Config{Cores: 1}, &fifoPolicy{}, nil, threads)
	r := m.Run()
	if len(r.Latencies) != 2 {
		t.Fatalf("got %d latencies", len(r.Latencies))
	}
	if r.Latencies[0] > r.Latencies[1] {
		t.Fatal("latencies not sorted")
	}
	if r.LatencyPercentile(0) != r.Latencies[0] || r.LatencyPercentile(100) != r.Latencies[1] {
		t.Fatal("percentile extremes wrong")
	}
	if r.LatencyPercentile(50) <= 0 {
		t.Fatal("median not positive")
	}
	if (Result{}).LatencyPercentile(50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}
