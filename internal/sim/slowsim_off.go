//go:build !slowsim

package sim

// slowSimDefault selects the event-horizon batched scheduler for every
// machine. Build with `-tags slowsim` to force the one-instruction-per-scan
// reference loop instead (see Machine.UseReferenceLoop).
const slowSimDefault = false
