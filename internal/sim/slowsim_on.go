//go:build slowsim

package sim

// slowSimDefault under the slowsim tag forces the one-instruction-per-scan
// reference scheduler (and unbatched trace decoding) for every machine in
// the binary — the whole-program differential check: a `-tags slowsim`
// build must produce byte-identical experiment output, just slower.
const slowSimDefault = true
