package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"slicc/internal/mem"
	"slicc/internal/noc"
)

// Result aggregates a completed run's metrics.
type Result struct {
	Policy string

	Instructions uint64
	// Cycles is the makespan: the largest core-local clock when the last
	// transaction finishes. Performance comparisons divide makespans.
	Cycles float64

	IAccesses, IMisses uint64
	// IPeerHits counts instruction misses served by a remote L1-I
	// (cache-to-cache) instead of the L2/memory.
	IPeerHits          uint64
	DAccesses, DMisses uint64
	// IClass breaks instruction misses into compulsory/capacity/conflict
	// (zero unless the L1-I was configured with Classify).
	ICompulsory, ICapacity, IConflict uint64
	DCompulsory, DCapacity, DConflict uint64

	// ITLBMisses/DTLBMisses are zero unless Config.EnableTLB.
	ITLBMisses, DTLBMisses uint64

	Migrations uint64
	// ContextSwitches counts same-core yields (STEPS-style policies).
	ContextSwitches uint64
	Invalidations   uint64
	ThreadsFinished int
	Aborted         bool

	Noc noc.Stats
	Mem mem.Stats

	// Latencies holds each finished transaction's service time in cycles
	// (first dispatch to completion), sorted ascending.
	Latencies []float64
	// PerCore holds per-core activity (index = core id).
	PerCore []CoreStat
	// Events is the migration/context-switch log (nil unless
	// Config.LogEvents).
	Events []Event
}

// CoreStat summarizes one core's activity.
type CoreStat struct {
	Instructions uint64
	IMisses      uint64
	Cycles       float64
}

// LatencyPercentile returns the p-th percentile (0..100) transaction
// latency in cycles, or 0 when nothing finished.
func (r Result) LatencyPercentile(p float64) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	if p <= 0 {
		return r.Latencies[0]
	}
	if p >= 100 {
		return r.Latencies[len(r.Latencies)-1]
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[idx]
}

// LoadImbalance returns max/mean instructions across cores (1 = perfectly
// balanced); 0 for an idle machine.
func (r Result) LoadImbalance() float64 {
	if len(r.PerCore) == 0 {
		return 0
	}
	var max, sum float64
	active := 0
	for _, c := range r.PerCore {
		v := float64(c.Instructions)
		sum += v
		if v > max {
			max = v
		}
		active++
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(active))
}

// IMPKI returns instruction misses per kilo-instruction.
func (r Result) IMPKI() float64 { return mpki(r.IMisses, r.Instructions) }

// ITLBMPKI returns I-TLB misses per kilo-instruction.
func (r Result) ITLBMPKI() float64 { return mpki(r.ITLBMisses, r.Instructions) }

// DTLBMPKI returns D-TLB misses per kilo-instruction.
func (r Result) DTLBMPKI() float64 { return mpki(r.DTLBMisses, r.Instructions) }

// DMPKI returns data misses per kilo-instruction.
func (r Result) DMPKI() float64 { return mpki(r.DMisses, r.Instructions) }

// BPKI returns SLICC search broadcasts per kilo-instruction (Section 5.8).
func (r Result) BPKI() float64 { return mpki(r.Noc.SearchBroadcasts, r.Instructions) }

// MPKI returns total L1 misses per kilo-instruction.
func (r Result) MPKI() float64 { return mpki(r.IMisses+r.DMisses, r.Instructions) }

// InstrPerMigration returns the mean instructions between migrations
// (the paper reports ~3.2K); +Inf when no migrations occurred.
func (r Result) InstrPerMigration() float64 {
	if r.Migrations == 0 {
		return inf()
	}
	return float64(r.Instructions) / float64(r.Migrations)
}

// SpeedupOver returns base.Cycles / r.Cycles.
func (r Result) SpeedupOver(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return base.Cycles / r.Cycles
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %d instr, %.0f cycles, I-MPKI %.2f, D-MPKI %.2f, %d migrations",
		r.Policy, r.Instructions, r.Cycles, r.IMPKI(), r.DMPKI(), r.Migrations)
}

func mpki(misses, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(instr)
}

func inf() float64 { return math.Inf(1) }

// result snapshots the machine's counters.
func (m *Machine) result() Result {
	r := Result{
		Policy:          m.policy.Name(),
		Instructions:    m.instr,
		IAccesses:       m.instr, // one fetch per executed instruction
		IMisses:         m.iMis,
		IPeerHits:       m.iPeer,
		DAccesses:       m.dAcc,
		DMisses:         m.dMis,
		Migrations:      m.migrations,
		ContextSwitches: m.switches,
		Invalidations:   m.invals,
		ThreadsFinished: m.finished,
		Aborted:         m.aborted,
		Noc:             m.torus.Stats(),
		Mem:             m.hier.Stats(),
	}
	r.PerCore = make([]CoreStat, m.cfg.Cores)
	r.Events = m.events
	r.Latencies = append([]float64(nil), m.latencies...)
	sort.Float64s(r.Latencies)
	for c := 0; c < m.cfg.Cores; c++ {
		r.PerCore[c] = CoreStat{
			Instructions: m.cores[c].instr,
			IMisses:      m.cores[c].imiss,
			Cycles:       m.cores[c].time,
		}
		if m.cores[c].time > r.Cycles {
			r.Cycles = m.cores[c].time
		}
		if m.itlb != nil {
			r.ITLBMisses += m.itlb[c].Stats().Misses
			r.DTLBMisses += m.dtlb[c].Stats().Misses
		}
		is := m.l1i[c].Stats()
		r.ICompulsory += is.Compulsory
		r.ICapacity += is.Capacity
		r.IConflict += is.Conflict
		ds := m.l1d[c].Stats()
		r.DCompulsory += ds.Compulsory
		r.DCapacity += ds.Capacity
		r.DConflict += ds.Conflict
	}
	return r
}

// ReuseTracker classifies instruction-block accesses by how many threads
// touch each block over the run, reproducing Figure 3's single/few/most
// breakdown both globally and per transaction type.
type ReuseTracker struct {
	nThreads    int
	words       int
	masks       map[uint64][]uint64 // block -> thread bitmap
	accesses    map[uint64][]uint64 // block -> per-type access count
	typeThreads map[int]int         // type -> thread count (filled lazily)
	threadType  map[int]int
	maxType     int
}

// NewReuseTracker sizes a tracker for nThreads threads.
func NewReuseTracker(nThreads int) *ReuseTracker {
	return &ReuseTracker{
		nThreads:    nThreads,
		words:       (nThreads + 63) / 64,
		masks:       make(map[uint64][]uint64),
		accesses:    make(map[uint64][]uint64),
		typeThreads: make(map[int]int),
		threadType:  make(map[int]int),
	}
}

// Record notes one instruction-block access by a thread.
func (rt *ReuseTracker) Record(block uint64, threadID, typ int) {
	if _, ok := rt.threadType[threadID]; !ok {
		rt.threadType[threadID] = typ
		rt.typeThreads[typ]++
	}
	if typ > rt.maxType {
		rt.maxType = typ
	}
	mask, ok := rt.masks[block]
	if !ok {
		mask = make([]uint64, rt.words)
		rt.masks[block] = mask
	}
	mask[threadID/64] |= 1 << uint(threadID%64)

	acc, ok := rt.accesses[block]
	if !ok {
		acc = make([]uint64, rt.maxTypeSlots(typ))
		rt.accesses[block] = acc
	} else if typ >= len(acc) {
		grown := make([]uint64, rt.maxTypeSlots(typ))
		copy(grown, acc)
		acc = grown
		rt.accesses[block] = acc
	}
	acc[typ]++
}

func (rt *ReuseTracker) maxTypeSlots(typ int) int {
	n := rt.maxType
	if typ > n {
		n = typ
	}
	return n + 1
}

// ReuseBreakdown is the Figure 3 access-ratio split: blocks touched by a
// single thread, by at most 60% of threads ("few"), or by more ("most").
type ReuseBreakdown struct {
	Single, Few, Most float64
}

// Global computes the breakdown over all threads.
func (rt *ReuseTracker) Global() ReuseBreakdown {
	var single, few, most uint64
	for block, mask := range rt.masks {
		total := rt.totalAccesses(block)
		n := popcount(mask)
		switch {
		case n <= 1:
			single += total
		case float64(n) <= 0.6*float64(rt.nThreads):
			few += total
		default:
			most += total
		}
	}
	return normalize(single, few, most)
}

// PerType computes the breakdown where each block's reuse is judged against
// the thread population of the type whose threads accessed it (access-
// weighted across types, matching the paper's per-transaction view).
func (rt *ReuseTracker) PerType() ReuseBreakdown {
	var single, few, most uint64
	for block, mask := range rt.masks {
		perType := make(map[int]int)
		for id, typ := range rt.threadType {
			if mask[id/64]&(1<<uint(id%64)) != 0 {
				perType[typ]++
			}
		}
		acc := rt.accesses[block]
		for typ, count := range acc {
			if count == 0 {
				continue
			}
			n := perType[typ]
			pop := rt.typeThreads[typ]
			switch {
			case n <= 1:
				single += count
			case float64(n) <= 0.6*float64(pop):
				few += count
			default:
				most += count
			}
		}
	}
	return normalize(single, few, most)
}

func (rt *ReuseTracker) totalAccesses(block uint64) uint64 {
	var n uint64
	for _, c := range rt.accesses[block] {
		n += c
	}
	return n
}

func normalize(single, few, most uint64) ReuseBreakdown {
	total := float64(single + few + most)
	if total == 0 {
		return ReuseBreakdown{}
	}
	return ReuseBreakdown{
		Single: float64(single) / total,
		Few:    float64(few) / total,
		Most:   float64(most) / total,
	}
}

func popcount(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}
