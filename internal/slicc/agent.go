package slicc

// agent is the per-core Cache Monitor Unit (Figure 6): miss counter (MC),
// miss shift-vector (MSV) and missed-tag queue (MTQ).
type agent struct {
	// MC: saturating miss counter; full once mc >= fill-up_t.
	mc   int
	full bool

	// MSV: ring buffer of the last MSVWindow hit(0)/miss(1) outcomes.
	msv      []bool
	msvPos   int
	msvCount int // entries filled (≤ window)
	msvOnes  int

	// MTQ: FIFO of per-miss remote-residency masks, capacity MatchedT.
	mtq    []uint64
	mtqPos int
	mtqLen int
}

func newAgent(cfg Config) agent {
	return agent{
		msv: make([]bool, cfg.MSVWindow),
		mtq: make([]uint64, cfg.MatchedT),
	}
}

// pushMSV shifts one access outcome into the vector.
func (a *agent) pushMSV(miss bool) {
	if a.msvCount == len(a.msv) {
		if a.msv[a.msvPos] {
			a.msvOnes--
		}
	} else {
		a.msvCount++
	}
	a.msv[a.msvPos] = miss
	if miss {
		a.msvOnes++
	}
	a.msvPos++
	if a.msvPos == len(a.msv) {
		a.msvPos = 0
	}
}

// pushMTQ records the residency mask of the most recent miss.
func (a *agent) pushMTQ(mask uint64) {
	a.mtq[a.mtqPos] = mask
	a.mtqPos++
	if a.mtqPos == len(a.mtq) {
		a.mtqPos = 0
	}
	if a.mtqLen < len(a.mtq) {
		a.mtqLen++
	}
}

// mtqAND returns the cores holding every recently missed block.
func (a *agent) mtqAND() uint64 {
	if a.mtqLen == 0 {
		return 0
	}
	mask := ^uint64(0)
	for i := 0; i < a.mtqLen; i++ {
		mask &= a.mtq[i]
	}
	return mask
}

// resetMC clears the fill-up state, giving the next thread the chance to
// load a new segment (triggered when the core's thread queue drains).
func (a *agent) resetMC() {
	a.mc = 0
	a.full = false
}

// resetThreadState clears the MSV and MTQ after a migration decision.
func (a *agent) resetThreadState() {
	for i := range a.msv {
		a.msv[i] = false
	}
	a.msvPos, a.msvCount, a.msvOnes = 0, 0, 0
	a.mtqPos, a.mtqLen = 0, 0
}

// resetAll clears everything (team-completion reset).
func (a *agent) resetAll() {
	a.resetMC()
	a.resetThreadState()
}
