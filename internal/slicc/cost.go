package slicc

// Hardware storage cost accounting (Table 3). The paper budgets, per core:
// a Cache Monitor Unit (MTQ + MSV + bloom signature), a thread scheduler
// queue, and — for the type-aware variants — a team management table.

// CostBits itemizes SLICC's storage in bits.
type CostBits struct {
	MTQ            int
	MSV            int
	BloomSignature int
	CacheMonitor   int // MTQ + MSV + bloom

	ThreadQueue int
	TeamTable   int

	Total int
}

// Table 3 constants.
const (
	threadQueueEntries = 30
	threadQueueEntry   = 12 + 48 + 4 // numerical ID + context pointer + core ID
	teamTableEntries   = 60
	teamTableEntry     = 12 + 32 + 4 + 4 + 8 // ID + timestamp + type + team + index
)

// HardwareCost computes the Table 3 budget for a configuration on a
// cores-core machine. The MTQ stores, per entry, one presence bit per
// *other* core.
func HardwareCost(cfg Config, cores int) CostBits {
	cfg = cfg.WithDefaults()
	var c CostBits
	c.MTQ = cfg.MatchedT * (cores - 1)
	c.MSV = cfg.MSVWindow
	c.BloomSignature = cfg.BloomBits
	c.CacheMonitor = c.MTQ + c.MSV + c.BloomSignature
	c.ThreadQueue = threadQueueEntries * threadQueueEntry
	if cfg.Variant != Oblivious {
		c.TeamTable = teamTableEntries * teamTableEntry
	}
	c.Total = c.CacheMonitor + c.ThreadQueue + c.TeamTable
	return c
}

// TotalBytes returns the grand total in bytes, rounded up.
func (c CostBits) TotalBytes() int { return (c.Total + 7) / 8 }
