package slicc

import (
	"testing"

	"slicc/internal/sim"
	"slicc/internal/trace"
	"slicc/internal/workload"
)

// twoSegThread executes segment A (blocks at baseA), then segment B, then A
// again — the minimal A-B-A pattern that exercises fill-up, dilution and
// the remote search. Block addresses stride by 65 blocks to spread sets.
func twoSegThread(id int, baseA, baseB uint64, blocks, reps int) trace.Thread {
	seg := func(base uint64, ops []trace.Op) []trace.Op {
		for b := 0; b < blocks; b++ {
			for i := 0; i < 16; i++ {
				ops = append(ops, trace.Op{PC: base + uint64(b)*65*64 + uint64(i)*4})
			}
		}
		return ops
	}
	return trace.Thread{
		ID: id,
		New: func() trace.Source {
			var ops []trace.Op
			for r := 0; r < reps; r++ {
				ops = seg(baseA, ops)
				ops = seg(baseB, ops)
			}
			return trace.NewSliceSource(ops)
		},
	}
}

func TestFillUpGateBlocksEarlyMigration(t *testing.T) {
	// A thread whose total misses stay below fill-up_t must never migrate.
	th := twoSegThread(0, 0x100000, 0x900000, 100, 4) // 200 blocks < 256
	p := New(Config{Variant: Oblivious, DilutionT: 1}.WithDefaults())
	m := sim.New(sim.Config{Cores: 4}, p, nil, []trace.Thread{th})
	r := m.Run()
	if r.Migrations != 0 {
		t.Fatalf("thread migrated %d times below the fill-up threshold", r.Migrations)
	}
}

func TestMigrationAfterFillUp(t *testing.T) {
	// Two big alternating segments (700 blocks each) blow past fill-up_t
	// and produce miss dilution; with idle cores available the thread must
	// migrate at least once.
	th := twoSegThread(0, 0x100000, 0x9000000, 700, 3)
	p := New(Config{Variant: Oblivious, DilutionT: 5}.WithDefaults())
	m := sim.New(sim.Config{Cores: 4}, p, nil, []trace.Thread{th})
	r := m.Run()
	if r.Migrations == 0 {
		t.Fatal("no migration despite thrashing across two large segments")
	}
}

func TestMigrationTargetsSegmentHolder(t *testing.T) {
	// Warm core 1 with segment B by running a B-only thread there first;
	// then run an A-then-B thread from core 0: when it moves to B, the
	// search should find core 1.
	segB := uint64(0x9000000)
	warm := trace.Thread{ID: 0, New: func() trace.Source {
		var ops []trace.Op
		for rep := 0; rep < 3; rep++ {
			for b := 0; b < 700; b++ {
				for i := 0; i < 16; i++ {
					ops = append(ops, trace.Op{PC: segB + uint64(b)*65*64 + uint64(i)*4})
				}
			}
		}
		return trace.NewSliceSource(ops)
	}}
	mover := twoSegThread(1, 0x100000, segB, 700, 2)
	p := New(Config{Variant: Oblivious, DilutionT: 5}.WithDefaults())
	m := sim.New(sim.Config{Cores: 2}, p, nil, []trace.Thread{warm, mover})
	r := m.Run()
	if r.Migrations == 0 {
		t.Fatal("mover never migrated")
	}
	_, matched, _, _ := p.SearchStats()
	if matched == 0 {
		t.Fatal("no matched-segment migrations; search never found the warmed cache")
	}
}

func TestDisableIdleFallback(t *testing.T) {
	// A single thread on an otherwise idle machine: with the fallback off
	// and no other warmed caches, it must never find a destination.
	th := twoSegThread(0, 0x100000, 0x9000000, 700, 3)
	cfg := Config{Variant: Oblivious, DilutionT: 5, DisableIdleFallback: true}.WithDefaults()
	p := New(cfg)
	m := sim.New(sim.Config{Cores: 4}, p, nil, []trace.Thread{th})
	r := m.Run()
	if r.Migrations != 0 {
		t.Fatalf("migrated %d times with idle fallback disabled and no remote segments", r.Migrations)
	}
	searches, _, _, stayed := p.SearchStats()
	if searches == 0 || stayed != searches {
		t.Fatalf("searches=%d stayed=%d; every search should have stayed put", searches, stayed)
	}
}

func TestQueueGuardPreventsDeepQueues(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 64, Seed: 3, Scale: 0.3})
	p := New(DefaultConfig(SW))
	m := sim.New(sim.Config{Cores: 8}, p, nil, w.Threads())
	// Observe queue lengths during the run via OnInstr wrapping: simplest
	// is to run to completion and assert the invariant held at enqueue
	// time by checking the final state plus the guard constant.
	m.Run()
	for c := range p.queues {
		if len(p.queues[c]) != 0 {
			t.Fatalf("core %d queue not drained at end of run", c)
		}
	}
	if maxDestQueue != 2 {
		t.Fatalf("maxDestQueue = %d; tests assume 2", maxDestQueue)
	}
}

func TestPpPreprocessingSerializes(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 16, Seed: 5, Scale: 0.2})
	p := New(DefaultConfig(Pp))
	m := sim.New(sim.Config{Cores: 16}, p, nil, w.Threads())
	m.Run()
	// The 16th thread cannot have started before 15 preprocessing slots
	// elapsed: scoutFree advanced 16 times.
	want := 16 * p.cfg.ScoutCycles
	if p.scoutFree < want {
		t.Fatalf("scoutFree = %f, want >= %f", p.scoutFree, want)
	}
}

func TestTeamCompletionResetsAgents(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.MapReduce, Threads: 24, Seed: 5, Scale: 0.2})
	p := New(DefaultConfig(SW))
	m := sim.New(sim.Config{Cores: 4}, p, nil, w.Threads())
	m.Run()
	// After the run every team has completed, so the last reset leaves all
	// agents cold unless post-reset threads re-armed them; either way no
	// agent may hold stale MTQ contents.
	for c := range p.agents {
		if p.agents[c].mtqLen != 0 && !p.agents[c].full {
			t.Fatalf("core %d: MTQ populated while cache not even full", c)
		}
	}
}

func TestObliviousIgnoresTypes(t *testing.T) {
	// The oblivious variant must behave identically when thread types are
	// scrambled (it may not look at them).
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 32, Seed: 9, Scale: 0.3})
	run := func(scramble bool) sim.Result {
		threads := w.Threads()
		if scramble {
			scrambled := make([]trace.Thread, len(threads))
			copy(scrambled, threads)
			for i := range scrambled {
				scrambled[i].Type = 0
				scrambled[i].TypeName = "scrambled"
			}
			threads = scrambled
		}
		return sim.New(sim.Config{Cores: 8}, New(DefaultConfig(Oblivious)), nil, threads).Run()
	}
	a, b := run(false), run(true)
	if a.Cycles != b.Cycles || a.IMisses != b.IMisses || a.Migrations != b.Migrations {
		t.Fatal("oblivious SLICC behaved differently when types were hidden")
	}
}

func TestSWDependsOnTypes(t *testing.T) {
	// SLICC-SW must behave differently when all types collapse to one
	// (teams change) — guarding against the policy silently ignoring the
	// software-provided information.
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 48, Seed: 9, Scale: 0.3})
	run := func(collapse bool) sim.Result {
		threads := w.Threads()
		if collapse {
			c := make([]trace.Thread, len(threads))
			copy(c, threads)
			for i := range c {
				c[i].Type = 0
			}
			threads = c
		}
		return sim.New(sim.Config{Cores: 8}, New(DefaultConfig(SW)), nil, threads).Run()
	}
	a, b := run(false), run(true)
	if a.Cycles == b.Cycles && a.Migrations == b.Migrations {
		t.Fatal("SLICC-SW ignored transaction types entirely")
	}
}

func TestEnqueueMigratedFIFO(t *testing.T) {
	p := New(DefaultConfig(Oblivious))
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 4, Seed: 1, Scale: 0.1})
	m := sim.New(sim.Config{Cores: 2}, p, nil, w.Threads())
	_ = m // Attach happens in Run; set up manually for the unit check.
	p.Attach(m, nil)
	t1 := &sim.ThreadState{ID: 101}
	t2 := &sim.ThreadState{ID: 102}
	p.EnqueueMigrated(1, t1)
	p.EnqueueMigrated(1, t2)
	if got := p.NextThread(1); got != t1 {
		t.Fatalf("queue not FIFO: got %v", got.ID)
	}
	if got := p.NextThread(1); got != t2 {
		t.Fatal("second pop wrong")
	}
}

func TestYieldOnStayCombination(t *testing.T) {
	// The STEPS+SLICC combination (paper future work): when nothing can be
	// migrated to, yield the core to a queued teammate. On a 2-core
	// machine with many same-type threads, stay-put decisions are common
	// and yields must occur; the run must still complete.
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 24, Seed: 7, Scale: 0.3})
	cfg := DefaultConfig(SW)
	cfg.YieldOnStay = true
	p := New(cfg)
	m := sim.New(sim.Config{Cores: 2}, p, nil, w.Threads())
	r := m.Run()
	if r.ThreadsFinished != 24 {
		t.Fatalf("finished %d/24", r.ThreadsFinished)
	}
	if r.ContextSwitches != p.Yields() {
		t.Fatalf("machine counted %d switches, policy %d yields", r.ContextSwitches, p.Yields())
	}
}

func TestYieldOnStayOffByDefault(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 24, Seed: 7, Scale: 0.3})
	p := New(DefaultConfig(SW))
	r := sim.New(sim.Config{Cores: 2}, p, nil, w.Threads()).Run()
	if r.ContextSwitches != 0 {
		t.Fatal("yields happened without YieldOnStay")
	}
}
