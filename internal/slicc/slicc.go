// Package slicc implements the paper's contribution: SLICC, a hardware
// thread scheduling and migration policy that self-assembles L1-I cache
// collectives. A per-core agent (Section 4.2) watches the local cache with
// three structures:
//
//   - MC, a saturating miss counter detecting when the cache has filled
//     with a code segment (Q.1, "is the cache full?");
//   - MSV, a miss shift-vector over the last MSVWindow accesses measuring
//     miss dilution (Q.2, "is this thread leaving the cached segment?");
//   - MTQ, a missed-tag queue recording, for the last MatchedT misses,
//     which remote caches held the missed block (Q.3, "where to?").
//
// Remote residency is answered by per-core partial-address bloom filter
// signatures kept in sync with cache contents (Section 4.2.3). When the
// cache is full, dilution is high and all MTQ entries point at one remote
// core, the thread migrates there; failing that it migrates to an idle
// core; failing that it stays put.
//
// Three variants are provided (Section 4.3): type-oblivious SLICC, SLICC-SW
// (the software layer reveals each transaction's type) and SLICC-Pp (a
// dedicated scout core fingerprints types from the first instructions).
// The type-aware variants group same-type threads into teams and schedule
// teams onto core sets by size (Section 4.3.2).
package slicc

import (
	"fmt"

	"slicc/internal/bloom"
	"slicc/internal/sim"
)

// Variant selects the SLICC flavour.
type Variant int

// Variants of Section 4.3.
const (
	// Oblivious is basic SLICC: no type information.
	Oblivious Variant = iota
	// SW receives transaction types from the software layer.
	SW
	// Pp derives types in hardware on a dedicated scout core.
	Pp
)

func (v Variant) String() string {
	switch v {
	case Oblivious:
		return "SLICC"
	case SW:
		return "SLICC-SW"
	case Pp:
		return "SLICC-Pp"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config holds SLICC's thresholds (Section 5.2 settles on fill-up_t=256,
// matched_t=4, dilution_t=10 for a 32KB/512-block L1-I).
type Config struct {
	Variant Variant

	// FillUpT is the miss count at which the local cache is considered
	// full of a useful segment (default 256 = half the baseline L1-I's
	// 512 blocks).
	FillUpT int
	// MatchedT is how many recent missed tags must all be resident on one
	// remote cache before migrating there (default 4).
	MatchedT int
	// DilutionT is the minimum number of misses in the MSV window that
	// enables migration (default 10; 0 disables the dilution gate, the
	// Figure 7 exploration setting).
	DilutionT int
	// MSVWindow is the miss shift-vector length (default 100).
	MSVWindow int

	// BloomBits sizes the per-core cache signature (default 2048,
	// Section 5.3). BloomHashes defaults to 2.
	BloomBits   int
	BloomHashes int

	// PoolFactor caps live threads at PoolFactor*N (default 2: the paper's
	// pool of up to 2N threads).
	PoolFactor int

	// ExactSearch answers remote-residency queries from the actual cache
	// tags instead of the bloom signature (the Figure 7 "zero-overhead
	// exact search" assumption; also the ablation baseline for Figure 9).
	ExactSearch bool
	// CountSearchBroadcasts accounts one search broadcast per migration
	// evaluation on the NoC (Section 5.8's upper-bound accounting).
	// Disabled for the idealized threshold sweeps.
	CountSearchBroadcasts bool
	// DisableIdleFallback removes Q.3's step (2) (ablation).
	DisableIdleFallback bool

	// ScoutCycles is SLICC-Pp's per-thread preprocessing time on the
	// scout core (default 60 cycles: a few tens of instructions).
	ScoutCycles float64

	// YieldOnStay is the paper's future-work combination of SLICC with
	// STEPS-style time-domain pipelining (Section 6): when a migration
	// evaluation finds no destination (Q.3 case 3) but same-core threads
	// are queued, the thread yields locally so a teammate can reuse the
	// cached segment instead of both thrashing it. Extension; off by
	// default.
	YieldOnStay bool
}

// WithDefaults fills zero fields with the paper's configuration.
func (c Config) WithDefaults() Config {
	if c.FillUpT == 0 {
		c.FillUpT = 256
	}
	if c.MatchedT == 0 {
		c.MatchedT = 4
	}
	// DilutionT = 0 is meaningful (disabled); no default.
	if c.MSVWindow == 0 {
		c.MSVWindow = 100
	}
	if c.BloomBits == 0 {
		c.BloomBits = 2048
	}
	if c.BloomHashes == 0 {
		c.BloomHashes = 2
	}
	if c.PoolFactor == 0 {
		c.PoolFactor = 2
	}
	if c.ScoutCycles == 0 {
		c.ScoutCycles = 60
	}
	return c
}

// DefaultConfig returns the paper's evaluation configuration
// (Section 5.2): fill-up_t=256, matched_t=4, dilution_t=10.
func DefaultConfig(v Variant) Config {
	return Config{Variant: v, DilutionT: 10, CountSearchBroadcasts: true}.WithDefaults()
}

// fetchGroupBytes is the fetch-group size: one I-cache access covers this
// many instruction bytes (4 instructions of 4 bytes).
const fetchGroupBytes = 16

// Policy is the SLICC scheduler; it implements sim.Policy and the
// EnqueueMigrated extension the machine uses to deliver migrated threads.
type Policy struct {
	cfg Config
	m   *sim.Machine
	n   int

	agents []agent
	sigs   []*bloom.Filter

	queues [][]*sim.ThreadState // per-core waiting threads (the HW thread queues)
	live   int
	cap    int

	pending []*sim.ThreadState // oblivious admission FIFO
	teams   *teamScheduler     // SW/Pp admission

	scoutFree float64

	// statistics
	searches   uint64
	noDestStay uint64
	idleMoves  uint64
	matchMoves uint64
	yields     uint64
}

// New builds a SLICC policy.
func New(cfg Config) *Policy {
	return &Policy{cfg: cfg.WithDefaults()}
}

// Name implements sim.Policy.
func (p *Policy) Name() string { return p.cfg.Variant.String() }

// Config returns the policy configuration with defaults applied.
func (p *Policy) Config() Config { return p.cfg }

// scoutCore returns the dedicated preprocessing core for SLICC-Pp, or -1.
func (p *Policy) scoutCore() int {
	if p.cfg.Variant == Pp {
		return 0
	}
	return -1
}

// Attach implements sim.Policy.
func (p *Policy) Attach(m *sim.Machine, threads []*sim.ThreadState) {
	p.m = m
	p.n = m.Cores()
	p.cap = p.cfg.PoolFactor * p.n
	p.agents = make([]agent, p.n)
	for c := range p.agents {
		p.agents[c] = newAgent(p.cfg)
	}
	p.sigs = make([]*bloom.Filter, p.n)
	p.queues = make([][]*sim.ThreadState, p.n)
	for c := 0; c < p.n; c++ {
		f := bloom.New(bloom.Config{Bits: p.cfg.BloomBits, Hashes: p.cfg.BloomHashes})
		p.sigs[c] = f
		l1i := m.L1I(c)
		l1i.OnInsert = f.Insert
		l1i.OnEvict = f.Remove
	}

	switch p.cfg.Variant {
	case Oblivious:
		p.pending = append(p.pending[:0], threads...)
	case SW, Pp:
		workers := make([]int, 0, p.n)
		for c := 0; c < p.n; c++ {
			if c != p.scoutCore() {
				workers = append(workers, c)
			}
		}
		p.teams = newTeamScheduler(workers, threads)
		if p.cfg.Variant == Pp {
			// Every thread passes through the scout core before it is
			// eligible to run; the scout serializes at ScoutCycles each.
			for _, t := range threads {
				if p.scoutFree > t.ReadyAt {
					t.ReadyAt = p.scoutFree
				}
				p.scoutFree = t.ReadyAt + p.cfg.ScoutCycles
			}
		}
	}
}

// NextThread implements sim.Policy.
func (p *Policy) NextThread(core int) *sim.ThreadState {
	if core == p.scoutCore() {
		return nil // the scout core never runs transactions
	}
	// 1. The core's own hardware queue (migrated threads) first. The MSV
	// and MTQ track the *running* thread, so they reset on every switch;
	// the MC tracks the cache and is reset only when the queue drains
	// (Section 4.1, Q.1), giving the next thread a chance to load a new
	// segment while keeping the cached one discoverable.
	if q := p.queues[core]; len(q) > 0 {
		t := q[0]
		p.queues[core] = q[1:]
		p.agents[core].resetThreadState()
		if len(p.queues[core]) == 0 {
			p.agents[core].resetMC()
		}
		return t
	}
	// 2. Admit a new transaction if the pool has room. The queue is empty
	// here, so the same queue-empty rule applies: the new transaction may
	// cache a fresh segment before migrations are re-enabled. This is
	// also what keeps SLICC off the backs of cache-resident workloads
	// (MapReduce): a footprint smaller than fill-up_t never re-arms
	// migration.
	if p.live >= p.cap {
		return nil
	}
	var t *sim.ThreadState
	switch p.cfg.Variant {
	case Oblivious:
		if len(p.pending) > 0 {
			t = p.pending[0]
			p.pending = p.pending[1:]
		}
	default:
		t = p.teams.next(core)
	}
	if t != nil {
		p.live++
		p.agents[core].resetAll()
	}
	return t
}

// EnqueueMigrated receives a migrated (or locally yielded) thread for
// core's queue.
func (p *Policy) EnqueueMigrated(core int, t *sim.ThreadState) {
	p.queues[core] = append(p.queues[core], t)
}

// Yields reports the YieldOnStay context switches taken (extension metric).
func (p *Policy) Yields() uint64 { return p.yields }

// OnInstr implements sim.Policy: the per-core agent logic of Figure 5.
func (p *Policy) OnInstr(core int, t *sim.ThreadState, f sim.Fetch) int {
	a := &p.agents[core]
	if !a.full {
		if f.IMiss {
			a.mc++
			if a.mc >= p.cfg.FillUpT {
				a.full = true
			}
		}
		return -1
	}

	// The MSV records I-cache *accesses*, one per fetch group (the 6-wide
	// front end fetches ~4 instructions per access), not one per
	// instruction; miss dilution thresholds are calibrated to that rate.
	if f.PC%fetchGroupBytes == 0 || f.IMiss {
		a.pushMSV(f.IMiss)
	}
	if f.IMiss {
		a.pushMTQ(p.whereCached(f.Block, core))
	}
	if a.mtqLen < p.cfg.MatchedT {
		return -1
	}
	if a.msvOnes < p.cfg.DilutionT {
		return -1
	}

	// Migration evaluation: one remote segment search.
	p.searches++
	if p.cfg.CountSearchBroadcasts {
		p.m.Torus().Broadcast(core, true)
	}
	cand := a.mtqAND() &^ (1 << uint(core))
	dest := -1
	if cand != 0 {
		dest = p.nearest(core, cand)
	}
	if dest >= 0 {
		p.matchMoves++
	} else if !p.cfg.DisableIdleFallback {
		dest = p.idleCore(core)
		if dest >= 0 {
			p.idleMoves++
		}
	}
	// Whatever the outcome, this decision consumed the evidence: the MSV
	// is reset with every migration and the MTQ must refill before the
	// next evaluation.
	a.resetThreadState()
	if dest < 0 {
		p.noDestStay++
		if p.cfg.YieldOnStay && len(p.queues[core]) > 0 {
			// Time-domain fallback: hand the core to a queued thread
			// (which wants this cache's contents) rather than evicting
			// them. Returning the own core signals a context switch.
			p.yields++
			return core
		}
	}
	return dest
}

// OnThreadFinish implements sim.Policy.
func (p *Policy) OnThreadFinish(core int, t *sim.ThreadState) {
	p.live--
	if p.teams != nil && p.teams.finish(t) {
		// A team completed: reset all monitor units (Section 4.3.2).
		for c := range p.agents {
			p.agents[c].resetAll()
		}
	}
}

// whereCached returns the mask of other cores whose L1-I (per signature, or
// per actual tags under ExactSearch) holds the block.
func (p *Policy) whereCached(block uint64, self int) uint64 {
	var mask uint64
	for c := 0; c < p.n; c++ {
		if c == self {
			continue
		}
		var has bool
		if p.cfg.ExactSearch {
			has = p.m.L1I(c).ContainsBlock(block)
		} else {
			has = p.sigs[c].Contains(block)
		}
		if has {
			mask |= 1 << uint(c)
		}
	}
	return mask
}

// maxDestQueue caps the destination's hardware thread queue: migrating
// behind a deep queue forfeits the locality win to waiting time, so such
// candidates are skipped (the thread stays put and misses locally, Q.3
// case 3).
const maxDestQueue = 2

// nearest picks the candidate core closest on the torus (ties to the lowest
// index), skipping cores with saturated thread queues.
func (p *Policy) nearest(from int, mask uint64) int {
	best, bestD := -1, 1<<30
	for c := 0; c < p.n; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		if len(p.queues[c]) >= maxDestQueue {
			continue
		}
		if d := p.m.Torus().PeekLatency(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// idleCore finds the nearest core with no running thread and an empty
// queue, or -1.
func (p *Policy) idleCore(from int) int {
	best, bestD := -1, 1<<30
	for c := 0; c < p.n; c++ {
		if c == from || c == p.scoutCore() {
			continue
		}
		if p.m.Running(c) != nil || len(p.queues[c]) > 0 {
			continue
		}
		if d := p.m.Torus().PeekLatency(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// SearchStats reports migration-evaluation outcomes (for tests and the
// Section 5.8 analysis): total searches, matched-segment moves, idle-core
// moves, and stay-put decisions.
func (p *Policy) SearchStats() (searches, matched, idle, stayed uint64) {
	return p.searches, p.matchMoves, p.idleMoves, p.noDestStay
}

// StrayFraction reports the fraction of threads classified stray (0 for
// the oblivious variant, which has no teams).
func (p *Policy) StrayFraction() float64 {
	if p.teams == nil {
		return 0
	}
	return p.teams.strayFraction()
}
