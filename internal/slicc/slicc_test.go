package slicc

import (
	"testing"
	"testing/quick"

	"slicc/internal/sched"
	"slicc/internal/sim"
	"slicc/internal/workload"
)

func TestVariantString(t *testing.T) {
	if Oblivious.String() != "SLICC" || SW.String() != "SLICC-SW" || Pp.String() != "SLICC-Pp" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() != "Variant(9)" {
		t.Fatal("out-of-range variant name")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.FillUpT != 256 || cfg.MatchedT != 4 || cfg.MSVWindow != 100 ||
		cfg.BloomBits != 2048 || cfg.PoolFactor != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.DilutionT != 0 {
		t.Fatal("DilutionT must not default (0 is the disabled setting)")
	}
	if DefaultConfig(SW).DilutionT != 10 {
		t.Fatal("DefaultConfig must use the paper's dilution_t = 10")
	}
}

// --- agent unit tests --------------------------------------------------------

func TestAgentMSVWindow(t *testing.T) {
	a := newAgent(Config{MSVWindow: 4, MatchedT: 2}.WithDefaults())
	a.pushMSV(true)
	a.pushMSV(true)
	a.pushMSV(false)
	a.pushMSV(false)
	if a.msvOnes != 2 {
		t.Fatalf("ones = %d, want 2", a.msvOnes)
	}
	// Window slides: the two leading misses fall out.
	a.pushMSV(false)
	a.pushMSV(false)
	if a.msvOnes != 0 {
		t.Fatalf("ones = %d after slide, want 0", a.msvOnes)
	}
}

func TestAgentMTQAnd(t *testing.T) {
	a := newAgent(Config{MSVWindow: 4, MatchedT: 3}.WithDefaults())
	if a.mtqAND() != 0 {
		t.Fatal("empty MTQ must AND to 0")
	}
	a.pushMTQ(0b0110)
	a.pushMTQ(0b0111)
	a.pushMTQ(0b1110)
	if got := a.mtqAND(); got != 0b0110 {
		t.Fatalf("AND = %b, want 0110", got)
	}
	// FIFO overwrite: pushing a 4th entry replaces the oldest.
	a.pushMTQ(0b0010)
	if got := a.mtqAND(); got != 0b0010 {
		t.Fatalf("AND after wrap = %b, want 0010", got)
	}
	if a.mtqLen != 3 {
		t.Fatalf("mtqLen = %d, want 3 (capacity)", a.mtqLen)
	}
}

func TestAgentResets(t *testing.T) {
	a := newAgent(Config{MSVWindow: 8, MatchedT: 2}.WithDefaults())
	a.mc = 200
	a.full = true
	a.pushMSV(true)
	a.pushMTQ(1)
	a.resetThreadState()
	if a.msvOnes != 0 || a.mtqLen != 0 {
		t.Fatal("resetThreadState incomplete")
	}
	if !a.full {
		t.Fatal("resetThreadState must not clear fill-up state")
	}
	a.resetAll()
	if a.full || a.mc != 0 {
		t.Fatal("resetAll incomplete")
	}
}

// Property: msvOnes always equals the number of true bits in the window.
func TestPropMSVConsistent(t *testing.T) {
	f := func(bits []bool) bool {
		a := newAgent(Config{MSVWindow: 16, MatchedT: 2}.WithDefaults())
		window := make([]bool, 0, 16)
		for _, b := range bits {
			a.pushMSV(b)
			window = append(window, b)
			if len(window) > 16 {
				window = window[1:]
			}
			ones := 0
			for _, w := range window {
				if w {
					ones++
				}
			}
			if ones != a.msvOnes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- team scheduler ----------------------------------------------------------

func mkThreads(types []int) []*sim.ThreadState {
	ts := make([]*sim.ThreadState, len(types))
	for i, ty := range types {
		ts[i] = &sim.ThreadState{ID: i, Type: ty}
	}
	return ts
}

func TestTeamFormationSizes(t *testing.T) {
	// 8 workers: large >= 12, medium 4..11, small < 4 (strays).
	types := make([]int, 0, 40)
	for i := 0; i < 20; i++ {
		types = append(types, 0) // large team capped at 16, then a team of 4
	}
	for i := 0; i < 6; i++ {
		types = append(types, 1) // medium team
	}
	for i := 0; i < 2; i++ {
		types = append(types, 2) // strays
	}
	ts := newTeamScheduler([]int{0, 1, 2, 3, 4, 5, 6, 7}, mkThreads(types))
	if len(ts.strayQ) != 2 {
		t.Fatalf("strays = %d, want 2", len(ts.strayQ))
	}
	if got := ts.strayFraction(); got < 0.07 || got > 0.08 {
		t.Fatalf("strayFraction = %f", got)
	}
	if len(ts.pendingTeams) != 3 {
		t.Fatalf("teams = %d, want 3 (16+4 of type0, 6 of type1)", len(ts.pendingTeams))
	}
	if ts.pendingTeams[0].total != 16 {
		t.Fatalf("first team size = %d, want 16", ts.pendingTeams[0].total)
	}
}

func TestTeamSchedulerAdmission(t *testing.T) {
	types := make([]int, 16)
	for i := 8; i < 16; i++ {
		types[i] = 1
	}
	workers := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ts := newTeamScheduler(workers, mkThreads(types))
	// Two medium teams of 8: each gets half the cores.
	got := map[int]int{} // type -> admissions
	for _, c := range workers {
		if th := ts.next(c); th != nil {
			got[th.Type]++
		}
	}
	if got[0] == 0 || got[1] == 0 {
		t.Fatalf("admissions by type = %v; both medium teams should be co-scheduled", got)
	}
}

func TestTeamCompletionDetection(t *testing.T) {
	types := []int{0, 0, 0, 0, 0, 0, 0, 0}
	threads := mkThreads(types)
	ts := newTeamScheduler([]int{0, 1, 2, 3}, threads)
	for i, th := range threads {
		done := ts.finish(th)
		if (i == len(threads)-1) != done {
			t.Fatalf("finish(%d) = %v", i, done)
		}
	}
}

func TestClassify(t *testing.T) {
	n := 16
	cases := []struct {
		size int
		want sizeClass
	}{
		{1, smallTeam}, {7, smallTeam}, {8, mediumTeam},
		{16, mediumTeam}, {23, mediumTeam}, {24, largeTeam}, {32, largeTeam},
	}
	for _, c := range cases {
		if got := classify(c.size, n); got != c.want {
			t.Errorf("classify(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

// --- hardware cost (Table 3) -------------------------------------------------

func TestHardwareCostTable3(t *testing.T) {
	c := HardwareCost(DefaultConfig(SW), 16)
	if c.MTQ != 60 {
		t.Fatalf("MTQ = %d bits, want 60", c.MTQ)
	}
	if c.MSV != 100 {
		t.Fatalf("MSV = %d bits, want 100", c.MSV)
	}
	if c.BloomSignature != 2048 {
		t.Fatalf("bloom = %d bits, want 2048", c.BloomSignature)
	}
	if c.CacheMonitor != 2208 {
		t.Fatalf("cache monitor = %d bits, want 2208", c.CacheMonitor)
	}
	if c.ThreadQueue != 1920 {
		t.Fatalf("thread queue = %d bits, want 1920", c.ThreadQueue)
	}
	if c.TeamTable != 3600 {
		t.Fatalf("team table = %d bits, want 3600", c.TeamTable)
	}
	if c.Total != 7728 || c.TotalBytes() != 966 {
		t.Fatalf("total = %d bits (%d bytes), want 7728 (966)", c.Total, c.TotalBytes())
	}
}

func TestHardwareCostOblivious(t *testing.T) {
	c := HardwareCost(DefaultConfig(Oblivious), 16)
	if c.TeamTable != 0 {
		t.Fatal("oblivious SLICC must not pay for the team table")
	}
	if c.Total != 7728-3600 {
		t.Fatalf("total = %d", c.Total)
	}
}

// --- end-to-end behaviour ----------------------------------------------------

func runTPCC(t *testing.T, policy sim.Policy) sim.Result {
	t.Helper()
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 48, Seed: 21, Scale: 0.4})
	m := sim.New(sim.Config{Cores: 16}, policy, nil, w.Threads())
	r := m.Run()
	if r.ThreadsFinished != 48 {
		t.Fatalf("%s finished %d/48 threads", policy.Name(), r.ThreadsFinished)
	}
	return r
}

// The headline result in miniature: SLICC-SW substantially reduces I-MPKI
// and improves performance over the baseline on TPC-C.
func TestSLICCSWBeatsBaselineOnTPCC(t *testing.T) {
	base := runTPCC(t, sched.NewBaseline())
	sw := runTPCC(t, New(DefaultConfig(SW)))

	if sw.Migrations == 0 {
		t.Fatal("SLICC-SW never migrated")
	}
	reduction := 1 - sw.IMPKI()/base.IMPKI()
	if reduction < 0.25 {
		t.Fatalf("I-MPKI reduction %.2f too small (base %.1f, slicc %.1f)",
			reduction, base.IMPKI(), sw.IMPKI())
	}
	if speed := sw.SpeedupOver(base); speed < 1.1 {
		t.Fatalf("speedup %.3f < 1.1 (base %.0f cycles, slicc %.0f)",
			speed, base.Cycles, sw.Cycles)
	}
	if sw.DMPKI() < base.DMPKI() {
		t.Logf("note: D-MPKI decreased (%.2f -> %.2f); paper expects a small increase",
			base.DMPKI(), sw.DMPKI())
	}
}

func TestObliviousSLICCAlsoHelps(t *testing.T) {
	base := runTPCC(t, sched.NewBaseline())
	ob := runTPCC(t, New(DefaultConfig(Oblivious)))
	if ob.Migrations == 0 {
		t.Fatal("oblivious SLICC never migrated")
	}
	if ob.IMPKI() >= base.IMPKI() {
		t.Fatalf("oblivious SLICC I-MPKI %.1f not below baseline %.1f", ob.IMPKI(), base.IMPKI())
	}
}

// MapReduce robustness (Section 5.6): SLICC must not hurt a workload whose
// footprint fits in one cache.
func TestSLICCRobustOnMapReduce(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.MapReduce, Threads: 60, Seed: 5, Scale: 0.3})
	base := sim.New(sim.Config{Cores: 16}, sched.NewBaseline(), nil, w.Threads()).Run()
	sw := sim.New(sim.Config{Cores: 16}, New(DefaultConfig(SW)), nil, w.Threads()).Run()
	if ratio := sw.Cycles / base.Cycles; ratio > 1.05 {
		t.Fatalf("SLICC slowed MapReduce by %.1f%%", (ratio-1)*100)
	}
}

func TestSearchBroadcastsCounted(t *testing.T) {
	sw := runTPCC(t, New(DefaultConfig(SW)))
	if sw.Noc.SearchBroadcasts == 0 {
		t.Fatal("no search broadcasts recorded")
	}
	if sw.BPKI() <= 0 {
		t.Fatal("BPKI not positive")
	}
}

func TestZeroOverheadSearchSkipsBroadcasts(t *testing.T) {
	cfg := DefaultConfig(SW)
	cfg.CountSearchBroadcasts = false
	r := runTPCC(t, New(cfg))
	if r.Noc.SearchBroadcasts != 0 {
		t.Fatal("broadcasts recorded despite zero-overhead search")
	}
}

func TestPpDedicatesScoutCore(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 32, Seed: 9, Scale: 0.3})
	p := New(DefaultConfig(Pp))
	m := sim.New(sim.Config{Cores: 16}, p, nil, w.Threads())
	r := m.Run()
	if r.ThreadsFinished != 32 {
		t.Fatalf("finished %d/32", r.ThreadsFinished)
	}
	if m.L1I(0).Stats().Accesses != 0 {
		t.Fatal("scout core executed transaction instructions")
	}
}

func TestStrayFraction(t *testing.T) {
	w := workload.New(workload.Config{Kind: workload.TPCC1, Threads: 96, Seed: 33, Scale: 0.2})
	p := New(DefaultConfig(SW))
	m := sim.New(sim.Config{Cores: 16}, p, nil, w.Threads())
	m.Run()
	sf := p.StrayFraction()
	if sf <= 0 || sf > 0.4 {
		t.Fatalf("TPC-C stray fraction = %.3f; expected a modest share", sf)
	}
}

func TestExactSearchWorks(t *testing.T) {
	cfg := DefaultConfig(SW)
	cfg.ExactSearch = true
	r := runTPCC(t, New(cfg))
	if r.Migrations == 0 {
		t.Fatal("no migrations under exact search")
	}
}

func TestSearchStatsAccounted(t *testing.T) {
	p := New(DefaultConfig(SW))
	runTPCC(t, p)
	searches, matched, idle, stayed := p.SearchStats()
	if searches == 0 {
		t.Fatal("no searches")
	}
	if matched+idle+stayed != searches {
		t.Fatalf("outcome split %d+%d+%d != %d searches", matched, idle, stayed, searches)
	}
}
