package slicc

import "slicc/internal/sim"

// Team scheduling for the type-aware variants (Section 4.3.2): same-type
// threads are grouped into teams; the oldest team is scheduled first; team
// size classes get different core allocations (large: all cores, medium:
// half), and small teams' threads become strays that individually fill
// idle cores.

// team is a group of same-type transactions.
type team struct {
	typ       int
	arrival   int // timestamp of the oldest thread
	threads   []*sim.ThreadState
	started   int
	finished  int
	total     int
	coreSet   map[int]bool
	active    bool
	completed bool
}

// sizeClass buckets per Section 4.3.2 relative to the worker-core count n.
type sizeClass int

const (
	smallTeam  sizeClass = iota // < 0.5N: threads become strays
	mediumTeam                  // 0.5N..1.5N: gets half the cores
	largeTeam                   // >= 1.5N (max 2N): gets all cores
)

func classify(size, n int) sizeClass {
	switch {
	case float64(size) < 0.5*float64(n):
		return smallTeam
	case float64(size) < 1.5*float64(n):
		return mediumTeam
	default:
		return largeTeam
	}
}

// teamScheduler owns team formation, activation and admission.
type teamScheduler struct {
	workers []int // usable cores (excludes the scout core under Pp)
	n       int

	pendingTeams []*team
	strayQ       []*sim.ThreadState
	active       []*team
	byThread     map[int]*team

	strayCount int
	total      int
}

// newTeamScheduler forms teams from the arrival-ordered thread list. Teams
// are capped at 2N threads (the paper's largest class); runs shorter than
// 0.5N become strays.
func newTeamScheduler(workers []int, threads []*sim.ThreadState) *teamScheduler {
	ts := &teamScheduler{
		workers:  workers,
		n:        len(workers),
		byThread: make(map[int]*team),
		total:    len(threads),
	}
	open := map[int]*team{} // type -> accumulating team
	closeTeam := func(tm *team) {
		tm.total = len(tm.threads)
		if classify(tm.total, ts.n) == smallTeam {
			// Stray threads are not grouped (Section 4.3.2).
			ts.strayQ = append(ts.strayQ, tm.threads...)
			ts.strayCount += tm.total
			for _, t := range tm.threads {
				delete(ts.byThread, t.ID)
			}
			return
		}
		ts.pendingTeams = append(ts.pendingTeams, tm)
	}
	for i, t := range threads {
		tm := open[t.Type]
		if tm == nil {
			tm = &team{typ: t.Type, arrival: i}
			open[t.Type] = tm
		}
		tm.threads = append(tm.threads, t)
		ts.byThread[t.ID] = tm
		if len(tm.threads) >= 2*ts.n {
			closeTeam(tm)
			delete(open, t.Type)
		}
	}
	// Close remaining partial teams in arrival order.
	for {
		var oldest *team
		for _, tm := range open {
			if oldest == nil || tm.arrival < oldest.arrival {
				oldest = tm
			}
		}
		if oldest == nil {
			break
		}
		closeTeam(oldest)
		delete(open, oldest.typ)
	}
	// Pending teams scheduled oldest-first.
	sortTeams(ts.pendingTeams)
	return ts
}

func sortTeams(teams []*team) {
	for i := 1; i < len(teams); i++ {
		for j := i; j > 0 && teams[j].arrival < teams[j-1].arrival; j-- {
			teams[j], teams[j-1] = teams[j-1], teams[j]
		}
	}
}

// refresh activates pending teams onto currently free cores.
func (ts *teamScheduler) refresh() {
	free := map[int]bool{}
	for _, c := range ts.workers {
		free[c] = true
	}
	for _, tm := range ts.active {
		for c := range tm.coreSet {
			delete(free, c)
		}
	}
	for len(ts.pendingTeams) > 0 && len(free) > 0 {
		tm := ts.pendingTeams[0]
		want := ts.n
		if classify(tm.total, ts.n) == mediumTeam {
			want = (ts.n + 1) / 2
		}
		if len(free) < want && len(ts.active) > 0 {
			// Wait for a full allocation rather than starving the oldest
			// team onto scraps while another team runs.
			break
		}
		tm.coreSet = map[int]bool{}
		for _, c := range ts.workers {
			if free[c] && len(tm.coreSet) < want {
				tm.coreSet[c] = true
				delete(free, c)
			}
		}
		tm.active = true
		ts.active = append(ts.active, tm)
		ts.pendingTeams = ts.pendingTeams[1:]
	}
}

// next admits a thread for an idle core: first from an active team owning
// the core, then from the stray queue, and finally — to keep the machine
// work-conserving, cores are "time-multiplexed among teams" — from any
// active or pending team regardless of core set.
func (ts *teamScheduler) next(core int) *sim.ThreadState {
	ts.refresh()
	for _, tm := range ts.active {
		if tm.coreSet[core] {
			if t := ts.take(tm); t != nil {
				return t
			}
		}
	}
	if len(ts.strayQ) > 0 {
		t := ts.strayQ[0]
		ts.strayQ = ts.strayQ[1:]
		return t
	}
	// Work-conserving fallback: an idle core outside every core set still
	// pulls from the oldest team with pending threads.
	for _, tm := range ts.active {
		if t := ts.take(tm); t != nil {
			return t
		}
	}
	if len(ts.pendingTeams) > 0 {
		tm := ts.pendingTeams[0]
		if t := ts.take(tm); t != nil {
			if tm.started < tm.total {
				// Partially admitted without a core set: adopt this core.
				if tm.coreSet == nil {
					tm.coreSet = map[int]bool{}
				}
				tm.coreSet[core] = true
			}
			return t
		}
	}
	return nil
}

// take pops the team's next pending thread, deactivating the team once
// fully admitted (in-flight threads finish on their own).
func (ts *teamScheduler) take(tm *team) *sim.ThreadState {
	if tm.started >= len(tm.threads) {
		return nil
	}
	t := tm.threads[tm.started]
	tm.started++
	if tm.started == tm.total {
		ts.deactivate(tm)
		if len(ts.pendingTeams) > 0 && ts.pendingTeams[0] == tm {
			ts.pendingTeams = ts.pendingTeams[1:]
		}
	}
	return t
}

// finish records a thread completion; it returns true when the thread's
// team just completed (triggering the monitor-unit reset).
func (ts *teamScheduler) finish(t *sim.ThreadState) bool {
	tm := ts.byThread[t.ID]
	if tm == nil {
		return false // stray
	}
	tm.finished++
	if tm.finished < tm.total {
		return false
	}
	tm.completed = true
	ts.deactivate(tm)
	return true
}

// deactivate removes a team from the active list (idempotent).
func (ts *teamScheduler) deactivate(tm *team) {
	for i, a := range ts.active {
		if a == tm {
			ts.active = append(ts.active[:i], ts.active[i+1:]...)
			return
		}
	}
}

// strayFraction reports the share of threads classified stray.
func (ts *teamScheduler) strayFraction() float64 {
	if ts.total == 0 {
		return 0
	}
	return float64(ts.strayCount) / float64(ts.total)
}
