package slicc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slicc/internal/sim"
)

// TestPropTeamsAdmitEachThreadOnce drives the team scheduler with random
// next/finish interleavings and checks the fundamental invariants: every
// thread is admitted exactly once, and team completion fires exactly once
// per team.
func TestPropTeamsAdmitEachThreadOnce(t *testing.T) {
	f := func(seed int64, nThreads uint8, nTypes uint8, nCores uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		threads := int(nThreads%100) + 1
		types := int(nTypes%6) + 1
		cores := int(nCores%8) + 1

		ts := make([]*sim.ThreadState, threads)
		for i := range ts {
			ts[i] = &sim.ThreadState{ID: i, Type: rng.Intn(types)}
		}
		workers := make([]int, cores)
		for i := range workers {
			workers[i] = i
		}
		sched := newTeamScheduler(workers, ts)

		admitted := map[int]int{}
		var inFlight []*sim.ThreadState
		completions := 0
		for steps := 0; steps < 10*threads+50; steps++ {
			if rng.Intn(2) == 0 {
				th := sched.next(rng.Intn(cores))
				if th != nil {
					admitted[th.ID]++
					if admitted[th.ID] > 1 {
						return false
					}
					inFlight = append(inFlight, th)
				}
			} else if len(inFlight) > 0 {
				i := rng.Intn(len(inFlight))
				th := inFlight[i]
				inFlight = append(inFlight[:i], inFlight[i+1:]...)
				if sched.finish(th) {
					completions++
				}
			}
		}
		// Drain: everything must eventually be admitted exactly once.
		for c := 0; ; c = (c + 1) % cores {
			th := sched.next(c)
			if th == nil {
				break
			}
			admitted[th.ID]++
			if admitted[th.ID] > 1 {
				return false
			}
		}
		return len(admitted) == threads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropStrayPlusTeamsCoverAll verifies formation partitions threads:
// strays + team members = all threads, no duplicates.
func TestPropStrayPlusTeamsCoverAll(t *testing.T) {
	f := func(seed int64, nThreads uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		threads := int(nThreads%120) + 1
		ts := make([]*sim.ThreadState, threads)
		for i := range ts {
			ts[i] = &sim.ThreadState{ID: i, Type: rng.Intn(5)}
		}
		sched := newTeamScheduler([]int{0, 1, 2, 3, 4, 5, 6, 7}, ts)
		seen := map[int]bool{}
		add := func(th *sim.ThreadState) bool {
			if seen[th.ID] {
				return false
			}
			seen[th.ID] = true
			return true
		}
		for _, th := range sched.strayQ {
			if !add(th) {
				return false
			}
		}
		for _, tm := range sched.pendingTeams {
			for _, th := range tm.threads {
				if !add(th) {
					return false
				}
			}
		}
		return len(seen) == threads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
