package store

import (
	"sync"
	"sync/atomic"
)

// The in-memory hot tier caches verified entry payloads above the disk
// store. It leans entirely on the store's immutability invariant: a key's
// payload can never change — it can only appear (Put) or disappear
// (Delete, eviction). Cached payloads therefore need no re-verification,
// no checksums, and no cross-process invalidation protocol for *content*;
// the only cross-process staleness possible is about *existence* (a key
// another process deleted or evicted may still be served from this
// process's memory), which is benign: the bytes are still the one true
// payload for that key.
//
// The tier is sharded to keep the hot-hit path contention-free: each
// shard owns a mutex, a map, and an intrusive LRU ring, and carries its
// own slice of the byte budget so eviction never takes more than one
// shard lock. A hit is a map lookup, two pointer splices and an atomic
// increment — no allocation, no I/O.
//
// Each shard also keeps a small negative cache of keys recently observed
// absent on disk, so repeated misses (pollers probing a key before its
// Put lands) skip the filesystem. A Put through this Store invalidates
// the negative entry; a Put by *another process* does not, so a negative
// entry may briefly hide a foreign write. It is capped, cleared
// wholesale on overflow, and never outlives a local Put.

// memShardCount is the number of shards (power of two, so the shard
// picker is a mask).
const memShardCount = 16

// memNegCap bounds each shard's negative cache; on overflow the shard's
// negative set is dropped wholesale (misses are cheap to re-discover).
const memNegCap = 256

// memEntryOverhead approximates the per-entry bookkeeping cost (struct,
// map bucket, key header) charged against the byte budget on top of the
// key and payload bytes.
const memEntryOverhead = 128

// lookup outcomes.
const (
	memMiss     = iota // not cached either way: fall through to disk
	memHit             // payload served from memory
	memNegative        // known-absent: report a miss without touching disk
)

// memEntry is one cached payload, linked into its shard's LRU ring.
type memEntry struct {
	key        string
	payload    []byte
	size       int64
	prev, next *memEntry
}

type memShard struct {
	mu      sync.Mutex
	entries map[string]*memEntry
	// root anchors the LRU ring: root.next is most-recent, root.prev is
	// the eviction candidate.
	root  memEntry
	bytes int64
	neg   map[string]struct{}
}

type memTier struct {
	shardMax int64 // per-shard byte budget
	shards   [memShardCount]memShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	negHits   atomic.Int64
}

func newMemTier(maxBytes int64) *memTier {
	t := &memTier{shardMax: maxBytes / memShardCount}
	if t.shardMax < 1 {
		t.shardMax = 1
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.entries = make(map[string]*memEntry)
		sh.root.next = &sh.root
		sh.root.prev = &sh.root
		sh.neg = make(map[string]struct{})
	}
	return t
}

// shard picks the shard for key with an inline FNV-1a hash (no
// allocation; hash/fnv would force the key through an io.Writer).
func (t *memTier) shard(key string) *memShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &t.shards[h&(memShardCount-1)]
}

// lookup is the tier's read path. On memHit the returned payload is the
// cached slice itself — shared, to be treated as read-only by callers
// (see Store.Get's contract).
func (t *memTier) lookup(key string) ([]byte, int) {
	sh := t.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		// Splice to the front of the ring (most-recent).
		e.prev.next = e.next
		e.next.prev = e.prev
		e.prev = &sh.root
		e.next = sh.root.next
		sh.root.next.prev = e
		sh.root.next = e
		sh.mu.Unlock()
		t.hits.Add(1)
		return e.payload, memHit
	}
	_, negative := sh.neg[key]
	sh.mu.Unlock()
	if negative {
		t.negHits.Add(1)
		return nil, memNegative
	}
	t.misses.Add(1)
	return nil, memMiss
}

// insert caches payload under key, clearing any negative entry and
// evicting the shard's least-recent entries past its budget. When
// copyPayload is set the bytes are copied first (Put callers own their
// buffer and may reuse it); promotion from a disk read passes false and
// aliases the freshly read slice. Entries too large for a whole shard
// are not cached.
func (t *memTier) insert(key string, payload []byte, copyPayload bool) {
	size := int64(len(key)+len(payload)) + memEntryOverhead
	sh := t.shard(key)
	sh.mu.Lock()
	delete(sh.neg, key)
	if size > t.shardMax {
		sh.mu.Unlock()
		return
	}
	if e, ok := sh.entries[key]; ok {
		// Immutability: the payload is necessarily the same bytes; just
		// refresh recency.
		e.prev.next = e.next
		e.next.prev = e.prev
		e.prev = &sh.root
		e.next = sh.root.next
		sh.root.next.prev = e
		sh.root.next = e
		sh.mu.Unlock()
		return
	}
	if copyPayload {
		payload = append([]byte(nil), payload...)
	}
	e := &memEntry{key: key, payload: payload, size: size}
	e.prev = &sh.root
	e.next = sh.root.next
	sh.root.next.prev = e
	sh.root.next = e
	sh.entries[key] = e
	sh.bytes += size
	var evicted int64
	for sh.bytes > t.shardMax {
		victim := sh.root.prev
		if victim == &sh.root || victim == e {
			break // never evict the entry just inserted
		}
		victim.prev.next = victim.next
		victim.next.prev = victim.prev
		delete(sh.entries, victim.key)
		sh.bytes -= victim.size
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		t.evictions.Add(evicted)
	}
}

// invalidate drops key's cached payload (Delete, or the disk tier
// evicting the entry) and records the key as absent. Not counted as an
// eviction: evictions measure budget pressure, invalidations track the
// disk tier's truth.
func (t *memTier) invalidate(key string) {
	sh := t.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		e.prev.next = e.next
		e.next.prev = e.prev
		delete(sh.entries, key)
		sh.bytes -= e.size
	}
	sh.negAddLocked(key)
	sh.mu.Unlock()
}

// negAdd records key as absent on disk so the next lookup skips the
// filesystem.
func (t *memTier) negAdd(key string) {
	sh := t.shard(key)
	sh.mu.Lock()
	sh.negAddLocked(key)
	sh.mu.Unlock()
}

func (sh *memShard) negAddLocked(key string) {
	if len(sh.neg) >= memNegCap {
		clear(sh.neg)
	}
	sh.neg[key] = struct{}{}
}

// addStats folds the tier's counters and current occupancy into st.
func (t *memTier) addStats(st *Stats) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		st.MemEntries += len(sh.entries)
		st.MemBytes += sh.bytes
		sh.mu.Unlock()
	}
	st.MemEvictions = t.evictions.Load()
	st.MemHits = t.hits.Load()
	st.MemMisses = t.misses.Load()
	st.NegativeHits = t.negHits.Load()
}
