package store

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// memOpts enables a comfortably large memory tier for tests that only
// care about hit/miss behavior, not budget pressure.
var memOpts = Options{MemBytes: 64 << 20}

func TestMemTierServesWithoutDisk(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	payload := []byte("cached payload bytes")
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	// Put inserted the payload into the tier: remove the disk file and the
	// key must still be served — a memory hit does zero disk I/O.
	if err := os.Remove(entryPath(t, s, "k")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("mem tier miss after disk removal: ok=%v got=%q", ok, got)
	}
	if !s.Contains("k") {
		t.Fatal("Contains disagrees with Get on a memory hit")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemHits < 2 || st.MemEntries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMemTierPromotesDiskHits(t *testing.T) {
	dir := t.TempDir()
	// Write through a tier-less handle so the first tiered Get is a real
	// disk read.
	w := mustOpen(t, dir, Options{})
	payload := []byte("promote me")
	if err := w.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, memOpts)
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk hit: ok=%v got=%q", ok, got)
	}
	if err := os.Remove(entryPath(t, s, "k")); err != nil {
		t.Fatal(err)
	}
	// The disk hit promoted the payload; the second Get is a memory hit.
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("promotion lost: ok=%v got=%q", ok, got)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemMisses != 1 || st.MemHits != 1 {
		t.Fatalf("want 1 miss (promote) + 1 hit, got %+v", st)
	}
}

func TestMemTierDeleteInvalidates(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key served from memory")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemEntries != 0 || st.MemBytes != 0 {
		t.Fatalf("tier retains deleted entry: %+v", st)
	}
	// Delete also seeded the negative cache: the miss above never touched
	// the filesystem.
	if st.NegativeHits != 1 {
		t.Fatalf("want 1 negative hit, got %d", st.NegativeHits)
	}
}

func TestNegativeCache(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	// First miss reads disk and seeds the negative cache; repeats are
	// answered from memory.
	for i := 0; i < 3; i++ {
		if _, ok := s.Get("absent"); ok {
			t.Fatal("hit for absent key")
		}
	}
	if s.Contains("absent") {
		t.Fatal("Contains hit for absent key")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemMisses != 1 || st.NegativeHits != 3 {
		t.Fatalf("want 1 real miss + 3 negative hits, got %+v", st)
	}
	// A local Put clears the negative entry immediately.
	if err := s.Put("absent", []byte("now present")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("absent"); !ok || string(got) != "now present" {
		t.Fatalf("negative entry survived Put: ok=%v got=%q", ok, got)
	}
}

func TestNegativeCacheCorruptEntry(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Purge the cached copy so the corrupted file is actually read.
	s.mem.invalidate("k")
	corrupt(t, entryPath(t, s, "k"), func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry hit")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry hit (negative path)")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// invalidate seeded one negative hit, the corrupt read seeded another.
	if st.NegativeHits < 1 {
		t.Fatalf("corrupt read not remembered: %+v", st)
	}
	// Put repairs the entry and clears the negative state.
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "payload" {
		t.Fatalf("repair: ok=%v got=%q", ok, got)
	}
}

// sameShardKeys returns n distinct keys that map to one shard of t, so
// LRU order within the shard is fully deterministic.
func sameShardKeys(tier *memTier, n int) []string {
	target := tier.shard("anchor")
	keys := []string{"anchor"}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if tier.shard(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestMemTierLRUEviction(t *testing.T) {
	tier := newMemTier(memShardCount * 3 * (memEntryOverhead + 16))
	keys := sameShardKeys(tier, 4)
	payload := bytes.Repeat([]byte("p"), 10)
	for _, k := range keys[:3] {
		tier.insert(k, payload, true)
	}
	// Touch keys[0] so keys[1] is the LRU victim when keys[3] arrives.
	if _, state := tier.lookup(keys[0]); state != memHit {
		t.Fatalf("lookup(%s) = %d", keys[0], state)
	}
	tier.insert(keys[3], payload, true)
	if _, state := tier.lookup(keys[1]); state == memHit {
		t.Fatal("LRU victim survived")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, state := tier.lookup(k); state != memHit {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if got := tier.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestMemTierByteBudget(t *testing.T) {
	budget := int64(memShardCount * 2 * (memEntryOverhead + 20))
	tier := newMemTier(budget)
	keys := sameShardKeys(tier, 8)
	for _, k := range keys {
		tier.insert(k, bytes.Repeat([]byte("x"), 12), true)
	}
	var st Stats
	tier.addStats(&st)
	if st.MemBytes > budget/memShardCount {
		t.Fatalf("shard over budget: %d > %d", st.MemBytes, budget/memShardCount)
	}
	if st.MemEvictions == 0 {
		t.Fatal("no evictions under byte pressure")
	}
}

func TestMemTierOversizedEntrySkipped(t *testing.T) {
	tier := newMemTier(memShardCount * 256)
	tier.insert("big", bytes.Repeat([]byte("x"), 4096), true)
	if _, state := tier.lookup("big"); state == memHit {
		t.Fatal("entry larger than a shard was cached")
	}
	var st Stats
	tier.addStats(&st)
	if st.MemEntries != 0 || st.MemBytes != 0 {
		t.Fatalf("oversized entry charged to the budget: %+v", st)
	}
}

func TestMemTierInsertSparesItself(t *testing.T) {
	// A shard budget below one entry must not evict the entry just
	// inserted (mirrors the disk tier's TestEvictionSparesFreshEntry).
	tier := newMemTier(memShardCount) // 1 byte per shard
	tier.insert("only", []byte("payload"), true)
	if _, state := tier.lookup("only"); state == memHit {
		// With a 1-byte shard the entry exceeds shardMax and is skipped;
		// either way it must not be half-inserted. Re-check with a budget
		// of exactly one entry.
		t.Skip("entry skipped as oversized")
	}
	size := int64(len("only")+len("payload")) + memEntryOverhead
	tier = newMemTier(memShardCount * size)
	tier.insert("only", []byte("payload"), true)
	if _, state := tier.lookup("only"); state != memHit {
		t.Fatal("fresh entry evicted by its own insert")
	}
}

func TestMemTierCopySemantics(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	buf := []byte("original")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	// The caller owns its buffer and may scribble on it; the tier serves
	// without re-verification, so Put must have copied.
	copy(buf, "mangled!")
	if got, ok := s.Get("k"); !ok || string(got) != "original" {
		t.Fatalf("tier aliases the caller's Put buffer: ok=%v got=%q", ok, got)
	}
}

func TestDiskEvictionInvalidatesMemTier(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1000)
	entrySize := int64(headerFixed + len("key-0") + len(payload))
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 2 * entrySize, MemBytes: 64 << 20})
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DiskEvictions == 0 {
		t.Fatal("no disk evictions under MaxBytes pressure")
	}
	// Every disk-evicted entry was invalidated from the tier too, so
	// memory occupancy never counts bytes the disk already reclaimed.
	if st.MemEntries != st.Entries {
		t.Fatalf("tier holds %d entries but disk holds %d: %+v", st.MemEntries, st.Entries, st)
	}
	// Split counters: budget evictions on disk are not memory evictions.
	if st.MemEvictions != 0 {
		t.Fatalf("disk eviction counted as memory eviction: %+v", st)
	}
}

// TestCrossProcessCoherence pins the multi-process contract from the
// package docs: two Store handles over one directory can never disagree
// about an entry's *content* (entries are immutable), only — briefly and
// benignly — about its *existence*.
func TestCrossProcessCoherence(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, memOpts) // "process A", tiered
	b := mustOpen(t, dir, Options{})

	payload := []byte("the one true payload")
	if err := a.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	// B sees A's write immediately (disk is the source of truth).
	if got, ok := b.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("b misses a's write: ok=%v", ok)
	}

	// Stale existence: B deletes; A's cached copy may still serve. That is
	// the documented tradeoff — and the bytes are still the one true
	// payload for the key, never stale content.
	if err := b.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("k"); ok && !bytes.Equal(got, payload) {
		t.Fatal("stale CONTENT served — contract violation")
	}

	// Foreign writes become visible: B puts a key A has never probed.
	if err := b.Put("foreign", []byte("from b")); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("foreign"); !ok || string(got) != "from b" {
		t.Fatalf("a misses b's write: ok=%v got=%q", ok, got)
	}

	// A negative entry may briefly hide a foreign write — but a LOCAL Put
	// of the key always clears it.
	if _, ok := a.Get("late"); ok {
		t.Fatal("phantom hit")
	}
	if err := b.Put("late", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("late", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("late"); !ok || string(got) != "v" {
		t.Fatalf("negative entry outlived local Put: ok=%v got=%q", ok, got)
	}
}

func TestMemTierConcurrent(t *testing.T) {
	// Hammer one tiered store from many goroutines mixing Put, Get,
	// Delete and Contains; -race is the assertion, plus payload integrity.
	s := mustOpen(t, t.TempDir(), Options{MemBytes: 8 * 1024})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%10)
				want := bytes.Repeat([]byte{byte(i % 10)}, 64)
				switch g % 4 {
				case 0:
					_ = s.Put(key, want)
				case 1:
					if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
						t.Errorf("%s: wrong payload", key)
					}
				case 2:
					s.Contains(key)
				case 3:
					if i%17 == 0 {
						_ = s.Delete(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMemTierClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), memOpts)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("closed store served from memory")
	}
}

// BenchmarkGetHitMem is the tier's reason to exist, gated in CI against
// BenchmarkGetHit (same payload, same key): a memory hit must be an
// order of magnitude cheaper than the disk read + checksum, with at most
// 2 allocs/op (it should be 0).
func BenchmarkGetHitMem(b *testing.B) {
	s := mustOpen(b, b.TempDir(), memOpts)
	payload := bytes.Repeat([]byte("r"), 4096)
	if err := s.Put("hot-key", payload); err != nil {
		b.Fatal(err)
	}
	if _, ok := s.Get("hot-key"); !ok {
		b.Fatal("warmup miss")
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("hot-key"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetMissNegative(b *testing.B) {
	s := mustOpen(b, b.TempDir(), memOpts)
	if _, ok := s.Get("absent"); ok {
		b.Fatal("hit")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("absent"); ok {
			b.Fatal("hit")
		}
	}
}
