// Package store is a content-addressed, on-disk result store: a durable
// memoization layer for pure computations keyed by a stable content hash.
// The runner persists simulation results through it, so a result computed
// once — by any process, at any time — is never computed again.
//
// # On-disk layout
//
// A store is a single directory. Every entry is one file named
// sha256(key) in hex with an ".sre" suffix ("slicc result entry"):
//
//	store/
//	  06b86b27…fb9e.sre
//	  4b227777…8a9d.sre
//	  .tmp-372067319        (in-flight publish, ignored by readers)
//
// Each entry file is self-describing:
//
//	offset  size  field
//	     0     4  magic "SLRS"
//	     4     4  format version, uint32 little-endian (currently 1)
//	     8     8  payload length, uint64 little-endian
//	    16    32  SHA-256 of the payload
//	    48     2  key length, uint16 little-endian
//	    50     K  key bytes (UTF-8, the caller's logical key)
//	  50+K     P  payload bytes
//
// A reader validates everything before trusting anything: file size, magic,
// version, stored key, and the payload checksum. Any mismatch — a truncated
// write, a forged header, a flipped bit, an entry from a future format —
// makes the entry a cache miss, never an error. Deleting arbitrary files
// from the directory is always safe.
//
// # Concurrency
//
// Multiple processes may share one store directory. Reads take no locks:
// an entry file is immutable once published. Writes are atomic: the payload
// is written to a hidden temp file and published with link(2) (an O_EXCL
// operation — the first writer of a key wins and later writers of the same
// key discard their identical bytes), falling back to rename(2) on
// filesystems without hard links. Readers therefore never observe a
// partially written entry under its final name.
//
// # Eviction
//
// Options.MaxBytes bounds the directory size. Eviction is LRU approximated
// by file modification time: Get touches the entry it hits (best effort),
// and Put evicts oldest-touched entries until the store fits the budget,
// never evicting the entry it just published.
//
// # Memory tier
//
// Options.MemBytes enables a sharded in-memory hot tier above the disk
// store (see memtier.go). A memory hit returns the verified payload with
// no disk I/O, no checksum work and no allocation; disk hits promote
// into the tier, Put inserts, and Delete or disk eviction invalidate. A
// small negative cache short-circuits repeated misses. Because entries
// are immutable, the tier can never serve stale *content*; the only
// cross-process staleness is about *existence* (another process's Delete
// or eviction is not seen by a key already cached here), which is benign
// and documented on Get.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FormatVersion is the current entry format. Bumping it invalidates every
// existing entry cleanly: old entries fail version validation and read as
// misses, then age out via eviction.
const FormatVersion = 1

const (
	magic       = "SLRS"
	suffix      = ".sre"
	tmpPattern  = ".tmp-*"
	headerFixed = 4 + 4 + 8 + 32 + 2 // magic + version + plen + sum + klen
	maxKeyLen   = 4096
)

// Options configures a store.
type Options struct {
	// MaxBytes bounds the total size of entry files (0 = unlimited).
	// Enforced after each Put by evicting least-recently-used entries.
	MaxBytes int64
	// MemBytes bounds an in-memory hot tier of verified payloads
	// (0 = disabled). Memory hits skip disk, checksum and allocation
	// entirely; see the package docs ("Memory tier") for the coherence
	// contract and Get for the returned slice's read-only contract.
	MemBytes int64
	// Sync fsyncs each entry before publishing it. Off by default: the
	// store is a cache of recomputable results, and a torn write after a
	// crash is detected by checksum and treated as a miss.
	Sync bool
	// Logger receives store lifecycle events (today: eviction passes).
	// Nil is silent.
	Logger *slog.Logger
}

// Store is a content-addressed result store rooted at one directory.
// A Store is safe for concurrent use by multiple goroutines, and one
// directory is safe for concurrent use by multiple Stores (including in
// different processes).
type Store struct {
	dir  string
	opts Options

	// evictMu serializes eviction scans within this process so concurrent
	// Puts do not stampede ReadDir; cross-process races at worst evict
	// slightly more than needed, which is safe (entries are recomputable).
	evictMu sync.Mutex

	// evictions counts disk entries this Store evicted under the
	// MaxBytes budget (process-local: other processes sharing the
	// directory keep their own count).
	evictions atomic.Int64

	// mem is the optional in-memory hot tier (nil when Options.MemBytes
	// is zero).
	mem *memTier

	closed atomic.Bool
}

// Stats snapshots a store directory and this Store's cache tiers.
type Stats struct {
	// Entries is the number of entry files on disk.
	Entries int
	// Bytes is their total size.
	Bytes int64
	// DiskEvictions counts entries evicted from disk under the MaxBytes
	// budget by this Store since it was opened (process-local, unlike
	// Entries/Bytes which describe the shared directory).
	DiskEvictions int64

	// The remaining fields describe the in-memory hot tier and are zero
	// when Options.MemBytes is unset. MemBytes/MemEntries are current
	// occupancy (never double-counting disk: a disk eviction invalidates
	// the corresponding memory entry); the counters are process-local
	// totals since open.
	MemEntries   int
	MemBytes     int64
	MemEvictions int64
	MemHits      int64
	MemMisses    int64
	// NegativeHits counts lookups answered "absent" by the negative
	// cache without touching the filesystem.
	NegativeHits int64
}

// EntryInfo describes one entry found by Scan.
type EntryInfo struct {
	// Key is the logical key the entry was stored under, recovered from
	// the entry header.
	Key string
	// Size is the entry file's size in bytes (header + payload).
	Size int64
	// ModTime is the entry's last-touched time (publish or last Get hit).
	ModTime time.Time
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if opts.MemBytes > 0 {
		s.mem = newMemTier(opts.MemBytes)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and releases the store. The directory remains valid; a
// closed Store rejects further operations.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Entries are published atomically as they are written, so there is no
	// buffered state to flush; syncing the directory makes the published
	// names themselves durable where supported (best effort elsewhere).
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (s *Store) isClosed() bool { return s.closed.Load() }

// path returns the entry file path for key. File names are the hash of the
// key, so arbitrary keys (any length, any bytes) stay filesystem-safe.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+suffix)
}

// Get returns the payload stored under key. ok is false on a miss — which
// includes every form of unreadable, truncated, corrupted, mismatched or
// future-format entry, by design: the store never surfaces corruption as an
// error, it just recomputes.
//
// With the memory tier enabled (Options.MemBytes > 0) the returned slice
// may be shared with other callers and with the tier itself, and must be
// treated as read-only; a memory hit may also briefly outlive another
// process's Delete or eviction of the key (stale existence, never stale
// content — entries are immutable).
func (s *Store) Get(key string) (payload []byte, ok bool) {
	return s.lookup(key, true)
}

// Contains reports whether key has a valid entry, without touching its
// disk LRU position. It shares Get's lookup path exactly — including the
// memory and negative tiers — so the two can never disagree about an
// entry (a corrupt disk entry is a miss for both).
func (s *Store) Contains(key string) bool {
	_, ok := s.lookup(key, false)
	return ok
}

// lookup is the single read path under Get and Contains: memory tier,
// negative cache, then disk read + full validation, promoting disk hits
// into the memory tier. touch refreshes the entry's disk LRU position on
// a disk hit (memory hits deliberately skip the touch — zero disk I/O is
// the tier's point — so a disk-tier eviction can target a memory-hot
// entry; that entry is invalidated from memory and recomputed or
// re-fetched on next miss, which is benign).
func (s *Store) lookup(key string, touch bool) (payload []byte, ok bool) {
	if s.isClosed() {
		return nil, false
	}
	if s.mem != nil {
		switch p, state := s.mem.lookup(key); state {
		case memHit:
			return p, true
		case memNegative:
			return nil, false
		}
	}
	p := s.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		if s.mem != nil {
			s.mem.negAdd(key)
		}
		return nil, false
	}
	payload, ok = decodeEntry(b, key)
	if !ok {
		// Corrupt entries read as misses; remember that too (a local Put
		// repairs the file and clears the negative entry).
		if s.mem != nil {
			s.mem.negAdd(key)
		}
		return nil, false
	}
	if s.mem != nil {
		// Promote without copying: payload already sub-slices the freshly
		// read buffer, which nothing else owns.
		s.mem.insert(key, payload, false)
	}
	if touch {
		// LRU touch, best effort: a failure (read-only store, concurrent
		// eviction) costs only eviction precision.
		now := time.Now()
		_ = os.Chtimes(p, now, now)
	}
	return payload, true
}

// decodeEntry validates one entry file's bytes against key and returns the
// payload. Any inconsistency returns ok=false.
func decodeEntry(b []byte, key string) (payload []byte, ok bool) {
	if len(b) < headerFixed {
		return nil, false
	}
	if string(b[:4]) != magic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(b[4:8]) != FormatVersion {
		return nil, false
	}
	plen := binary.LittleEndian.Uint64(b[8:16])
	var sum [32]byte
	copy(sum[:], b[16:48])
	klen := int(binary.LittleEndian.Uint16(b[48:50]))
	rest := b[headerFixed:]
	if len(rest) < klen {
		return nil, false
	}
	if string(rest[:klen]) != key {
		return nil, false
	}
	payload = rest[klen:]
	if uint64(len(payload)) != plen {
		return nil, false
	}
	if sha256.Sum256(payload) != sum {
		return nil, false
	}
	return payload, true
}

// encodeEntry builds the on-disk bytes for (key, payload).
func encodeEntry(key string, payload []byte) []byte {
	b := make([]byte, headerFixed+len(key)+len(payload))
	copy(b[:4], magic)
	binary.LittleEndian.PutUint32(b[4:8], FormatVersion)
	binary.LittleEndian.PutUint64(b[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(b[16:48], sum[:])
	binary.LittleEndian.PutUint16(b[48:50], uint16(len(key)))
	copy(b[headerFixed:], key)
	copy(b[headerFixed+len(key):], payload)
	return b
}

// Put stores payload under key, atomically and durably enough for a cache
// (see Options.Sync). Racing writers of the same key are safe: the first
// publish wins and the rest are discarded; by the store's contract a key's
// payload is a pure function of the key, so the winners are identical.
func (s *Store) Put(key string, payload []byte) error {
	if s.isClosed() {
		return errors.New("store: closed")
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1, %d]", len(key), maxKeyLen)
	}
	final := s.path(key)

	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	// The temp file is removed on every path out of here: publish via
	// link() leaves it behind deliberately, and failures must not litter.
	defer os.Remove(tmpName)

	if _, err := tmp.Write(encodeEntry(key, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// O_EXCL publish: link() fails with EEXIST if the entry already
	// exists. Usually that means a concurrent (or earlier) writer beat us
	// with identical content — success — but a *corrupt* file under the
	// final name (torn write from a crashed process) must not block the
	// key forever: validate it, and replace invalid entries atomically
	// with rename(). Filesystems without hard links also take the
	// rename() path.
	if err := os.Link(tmpName, final); err != nil {
		replace := !errors.Is(err, fs.ErrExist)
		if !replace {
			b, rerr := os.ReadFile(final)
			if rerr != nil {
				replace = true
			} else if _, ok := decodeEntry(b, key); !ok {
				replace = true // existing entry is corrupt; repair it
			}
		}
		if replace {
			if err := os.Rename(tmpName, final); err != nil {
				return fmt.Errorf("store: publish: %w", err)
			}
		}
	}
	if s.mem != nil {
		// Cache the payload (copied: the caller owns and may reuse its
		// buffer, and the memory tier serves without re-verification, so
		// it must be immune to later mutation) and clear any negative
		// entry for the key.
		s.mem.insert(key, payload, true)
	}
	if s.opts.MaxBytes > 0 {
		s.evict(final)
	}
	return nil
}

// Delete removes key's entry if present, from disk and the memory tier.
func (s *Store) Delete(key string) error {
	if s.isClosed() {
		return errors.New("store: closed")
	}
	err := os.Remove(s.path(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	if s.mem != nil {
		s.mem.invalidate(key)
	}
	return nil
}

// Stats scans the directory and reports entry count and total size, plus
// this Store's process-local tier counters.
func (s *Store) Stats() (Stats, error) {
	st := Stats{DiskEvictions: s.evictions.Load()}
	if s.mem != nil {
		s.mem.addStats(&st)
	}
	err := s.scanFiles(func(path string, de fs.DirEntry) error {
		info, err := de.Info()
		if err != nil {
			return nil // racing eviction; skip
		}
		st.Entries++
		st.Bytes += info.Size()
		return nil
	})
	return st, err
}

// Scan walks every valid entry in the store and reports its logical key,
// size and last-touched time, in no particular order. Invalid or foreign
// files are skipped. The callback may not modify the store.
func (s *Store) Scan(fn func(EntryInfo) error) error {
	return s.scanFiles(func(path string, de fs.DirEntry) error {
		info, err := de.Info()
		if err != nil {
			return nil
		}
		key, ok := readEntryKey(path)
		if !ok {
			return nil
		}
		return fn(EntryInfo{Key: key, Size: info.Size(), ModTime: info.ModTime()})
	})
}

// scanFiles iterates the directory's entry files (skipping temp files and
// anything foreign).
func (s *Store) scanFiles(fn func(path string, de fs.DirEntry) error) error {
	if s.isClosed() {
		return errors.New("store: closed")
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		if err := fn(filepath.Join(s.dir, name), de); err != nil {
			return err
		}
	}
	return nil
}

// readEntryKey recovers the logical key from an entry file's header,
// validating only as much as needed (magic, version, key length).
func readEntryKey(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	var hdr [headerFixed]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return "", false
	}
	if string(hdr[:4]) != magic || binary.LittleEndian.Uint32(hdr[4:8]) != FormatVersion {
		return "", false
	}
	klen := int(binary.LittleEndian.Uint16(hdr[48:50]))
	if klen == 0 || klen > maxKeyLen {
		return "", false
	}
	key := make([]byte, klen)
	if _, err := f.ReadAt(key, int64(headerFixed)); err != nil {
		return "", false
	}
	return string(key), true
}

// evict removes least-recently-touched entries until the store fits
// Options.MaxBytes, sparing the just-published file.
func (s *Store) evict(spare string) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()

	type fileAge struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileAge
	var total int64
	err := s.scanFiles(func(path string, de fs.DirEntry) error {
		info, err := de.Info()
		if err != nil {
			return nil
		}
		files = append(files, fileAge{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil || total <= s.opts.MaxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	var evicted int
	var freed int64
	for _, f := range files {
		if total <= s.opts.MaxBytes {
			break
		}
		if f.path == spare {
			continue
		}
		// Recover the logical key before the file disappears so the
		// memory tier can drop its copy too — otherwise Stats would keep
		// counting the evicted entry's bytes in the memory tier while the
		// disk tier has already reclaimed them.
		var key string
		var haveKey bool
		if s.mem != nil {
			key, haveKey = readEntryKey(f.path)
		}
		if os.Remove(f.path) == nil || !fileExists(f.path) {
			total -= f.size
			evicted++
			freed += f.size
			if haveKey {
				s.mem.invalidate(key)
			}
		}
	}
	if evicted > 0 {
		s.evictions.Add(int64(evicted))
		if s.opts.Logger != nil {
			s.opts.Logger.Info("store eviction",
				"evicted", evicted, "freed_bytes", freed,
				"remaining_bytes", total, "max_bytes", s.opts.MaxBytes)
		}
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
