package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustOpen(t testing.TB, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := []byte("the result bytes \x00\xff binary ok")
	if err := s.Put("job-key-1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("job-key-1")
	if !ok {
		t.Fatal("expected hit")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	if _, ok := s.Get("job-key-2"); ok {
		t.Fatal("unexpected hit for absent key")
	}
	if !s.Contains("job-key-1") || s.Contains("job-key-2") {
		t.Fatal("Contains disagrees with Get")
	}
}

func TestEmptyPayload(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("empty")
	if !ok || len(got) != 0 {
		t.Fatalf("want empty hit, got ok=%v len=%d", ok, len(got))
	}
}

func TestKeyValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(make([]byte, maxKeyLen+1)), []byte("x")); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// entryPath returns the on-disk file for key, verified to exist.
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p := s.path(key)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	for _, keep := range []int{0, 3, 10, headerFixed, headerFixed + 2} {
		t.Run(fmt.Sprint(keep), func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), Options{})
			if err := s.Put("k", []byte("payload-payload-payload")); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, s, "k")
			if err := os.Truncate(p, int64(keep)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); ok {
				t.Fatalf("truncated entry (%d bytes kept) served as hit", keep)
			}
		})
	}
}

// corrupt rewrites one entry file through fn.
func corrupt(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o666); err != nil {
		t.Fatal(err)
	}
}

func TestForgedEntryIsMiss(t *testing.T) {
	cases := map[string]func([]byte) []byte{
		"magic": func(b []byte) []byte { b[0] = 'X'; return b },
		"future-version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], FormatVersion+1)
			return b
		},
		"length-too-long": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			return b
		},
		"length-too-short": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1)
			return b
		},
		"payload-bitflip": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"checksum-forged": func(b []byte) []byte { b[16] ^= 0xff; return b },
		"key-swapped": func(b []byte) []byte {
			copy(b[headerFixed:], "KEY-x")
			return b
		},
		"garbage": func(b []byte) []byte { return []byte("not an entry at all") },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), Options{})
			if err := s.Put("KEY-a", []byte("some payload bytes")); err != nil {
				t.Fatal(err)
			}
			corrupt(t, entryPath(t, s, "KEY-a"), fn)
			if _, ok := s.Get("KEY-a"); ok {
				t.Fatalf("%s entry served as hit", name)
			}
		})
	}
}

// TestCorruptedEntryRepairedByPut: a corrupted entry reads as a miss, and
// the next Put of that key repairs it in place (the EEXIST path validates
// the existing file and atomically replaces an invalid one), so a torn
// write never permanently defeats the store for its key.
func TestCorruptedEntryRepairedByPut(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("good")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, entryPath(t, s, "k"), func(b []byte) []byte { return b[:len(b)-1] })
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry hit")
	}
	if err := s.Put("k", []byte("good")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "good" {
		t.Fatalf("repair failed: ok=%v got=%q", ok, got)
	}
	// A valid existing entry is NOT rewritten (first publish wins).
	before, err := os.Stat(entryPath(t, s, "k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("good")); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(entryPath(t, s, "k"))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("valid entry was needlessly republished")
	}
}

func TestConcurrentWritersOneKey(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := bytes.Repeat([]byte("deterministic-result"), 100)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put("shared-key", payload)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, ok := s.Get("shared-key")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("hit=%v, payload intact=%v", ok, bytes.Equal(got, payload))
	}
	// No temp litter.
	des, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name()[0] == '.' {
			t.Fatalf("leftover temp file %s", de.Name())
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("want 1 entry, have %d", st.Entries)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("key-%d", k)
		payload := bytes.Repeat([]byte{byte(k)}, 512)
		for i := 0; i < 4; i++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				_ = s.Put(key, payload)
			}()
			go func() {
				defer wg.Done()
				if got, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("%s: torn read", key)
				}
			}()
		}
	}
	wg.Wait()
}

func TestCrossProcessReuse(t *testing.T) {
	// Two independent Store handles over one directory model two
	// processes: written through one, read through a fresh one.
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	if err := w.Put("shared", []byte("result")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	got, ok := r.Get("shared")
	if !ok || string(got) != "result" {
		t.Fatalf("fresh handle: ok=%v got=%q", ok, got)
	}
}

func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	entrySize := int64(headerFixed + len("key-0") + len(payload))
	// Budget for three entries.
	s := mustOpen(t, dir, Options{MaxBytes: 3 * entrySize})

	now := time.Now()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so LRU order is unambiguous even on coarse
		// filesystem timestamps.
		age := now.Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(key), age, age); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key-0 (oldest mtime) via Get so key-1 becomes the LRU victim.
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("key-0 missing before eviction")
	}
	if err := s.Put("key-3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-1"); ok {
		t.Fatal("LRU victim key-1 survived")
	}
	for _, key := range []string{"key-0", "key-2", "key-3"} {
		if _, ok := s.Get(key); !ok {
			t.Fatalf("%s evicted out of LRU order", key)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes > 3*entrySize {
		t.Fatalf("store over budget after eviction: %d > %d", st.Bytes, 3*entrySize)
	}
}

func TestEvictionSparesFreshEntry(t *testing.T) {
	// A budget smaller than one entry must still keep the entry just
	// written (evicting it would make Put a no-op forever).
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 1})
	if err := s.Put("only", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("only"); !ok {
		t.Fatal("fresh entry evicted by its own Put")
	}
}

func TestScan(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	keys := map[string]bool{"alpha": false, "beta": false, "gamma": false}
	for k := range keys {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign and corrupt files are skipped.
	if err := os.WriteFile(filepath.Join(s.Dir(), "foreign.txt"), []byte("hi"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), strings64("a")+suffix), []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := s.Scan(func(e EntryInfo) error {
		seen, ok := keys[e.Key]
		if !ok || seen {
			t.Fatalf("unexpected or duplicate key %q", e.Key)
		}
		keys[e.Key] = true
		if e.Size <= 0 || e.ModTime.IsZero() {
			t.Fatalf("bad entry info %+v", e)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("scanned %d entries, want %d", n, len(keys))
	}
}

// strings64 builds a 64-char pseudo-hash filename stem.
func strings64(c string) string {
	b := make([]byte, 64)
	for i := range b {
		b[i] = c[0]
	}
	return string(b)
}

func TestClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get succeeded on closed store")
	}
	if err := s.Put("k2", []byte("v")); err == nil {
		t.Fatal("Put succeeded on closed store")
	}
}

// TestEntryEncoding pins the on-disk format documented in the package
// comment (and docs/SERVICE.md): any change here is a format break and
// must bump FormatVersion.
func TestEntryEncoding(t *testing.T) {
	key, payload := "k1", []byte("pay")
	b := encodeEntry(key, payload)
	if string(b[:4]) != "SLRS" {
		t.Fatalf("magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != 1 {
		t.Fatalf("version %d", v)
	}
	if l := binary.LittleEndian.Uint64(b[8:16]); l != uint64(len(payload)) {
		t.Fatalf("plen %d", l)
	}
	want := sha256.Sum256(payload)
	if !bytes.Equal(b[16:48], want[:]) {
		t.Fatal("checksum field mismatch")
	}
	if k := binary.LittleEndian.Uint16(b[48:50]); k != uint16(len(key)) {
		t.Fatalf("klen %d", k)
	}
	if string(b[50:52]) != key || string(b[52:]) != string(payload) {
		t.Fatal("key/payload bytes mismatch")
	}
	// File name is hex(sha256(key)).
	s := mustOpen(t, t.TempDir(), Options{})
	sum := sha256.Sum256([]byte(key))
	want64 := hex.EncodeToString(sum[:]) + suffix
	if got := filepath.Base(s.path(key)); got != want64 {
		t.Fatalf("entry name %q, want %q", got, want64)
	}
}

func BenchmarkPut(b *testing.B) {
	s := mustOpen(b, b.TempDir(), Options{})
	payload := bytes.Repeat([]byte("r"), 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutSameKey(b *testing.B) {
	s := mustOpen(b, b.TempDir(), Options{})
	payload := bytes.Repeat([]byte("r"), 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("hot-key", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHit(b *testing.B) {
	s := mustOpen(b, b.TempDir(), Options{})
	payload := bytes.Repeat([]byte("r"), 4096)
	if err := s.Put("hot-key", payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("hot-key"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetMiss(b *testing.B) {
	s := mustOpen(b, b.TempDir(), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("absent"); ok {
			b.Fatal("hit")
		}
	}
}
