package sweep

import (
	"encoding/json"
	"fmt"
)

// maxAxisValues bounds a single axis (a range with a tiny step must not
// allocate unbounded memory before the cell-count limit can catch it).
const maxAxisValues = 4096

// IntAxis is one integer sweep dimension. In JSON it is either an explicit
// list ([128, 256, 512]), a single number (256), or an inclusive range
// object ({"from": 128, "to": 512, "step": 128}); it always marshals back
// as the explicit list, which is the canonical form Key hashes.
type IntAxis struct {
	values []int
}

// Ints builds an axis from explicit values.
func Ints(vs ...int) IntAxis { return IntAxis{values: vs} }

// IntRange builds an axis covering from, from+step, ... up to and
// including to where the step lands on it. step must be positive and from
// <= to.
func IntRange(from, to, step int) (IntAxis, error) {
	if step <= 0 || from > to {
		return IntAxis{}, fmt.Errorf("sweep: bad range [%d,%d] step %d", from, to, step)
	}
	if (to-from)/step+1 > maxAxisValues {
		return IntAxis{}, fmt.Errorf("sweep: range [%d,%d] step %d exceeds %d values", from, to, step, maxAxisValues)
	}
	var vs []int
	for v := from; v <= to; v += step {
		vs = append(vs, v)
	}
	return IntAxis{values: vs}, nil
}

// Values returns the axis values in sweep order.
func (a IntAxis) Values() []int { return append([]int(nil), a.values...) }

// IsZero reports an unset axis (encoding/json's omitzero hook).
func (a IntAxis) IsZero() bool { return len(a.values) == 0 }

// MarshalJSON emits the canonical explicit-list form.
func (a IntAxis) MarshalJSON() ([]byte, error) {
	if a.values == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(a.values)
}

// intRangeJSON is the range-object spelling.
type intRangeJSON struct {
	From *int `json:"from"`
	To   *int `json:"to"`
	Step int  `json:"step"`
}

// UnmarshalJSON accepts a list, a bare number, or a range object.
func (a *IntAxis) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '[' {
		var vs []int
		if err := json.Unmarshal(b, &vs); err != nil {
			return err
		}
		if len(vs) > maxAxisValues {
			return fmt.Errorf("sweep: axis lists %d values, limit %d", len(vs), maxAxisValues)
		}
		a.values = vs
		return nil
	}
	if len(b) > 0 && b[0] == '{' {
		var r intRangeJSON
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		if r.From == nil || r.To == nil {
			return fmt.Errorf("sweep: range object needs \"from\" and \"to\"")
		}
		step := r.Step
		if step == 0 {
			step = 1
		}
		ax, err := IntRange(*r.From, *r.To, step)
		if err != nil {
			return err
		}
		*a = ax
		return nil
	}
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	a.values = []int{v}
	return nil
}

// FloatAxis is one float sweep dimension with the same JSON spellings as
// IntAxis ({"from": 0.5, "to": 2, "step": 0.5} for ranges).
type FloatAxis struct {
	values []float64
}

// Floats builds an axis from explicit values.
func Floats(vs ...float64) FloatAxis { return FloatAxis{values: vs} }

// Values returns the axis values in sweep order.
func (a FloatAxis) Values() []float64 { return append([]float64(nil), a.values...) }

// IsZero reports an unset axis.
func (a FloatAxis) IsZero() bool { return len(a.values) == 0 }

// MarshalJSON emits the canonical explicit-list form.
func (a FloatAxis) MarshalJSON() ([]byte, error) {
	if a.values == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(a.values)
}

// floatRangeJSON is the range-object spelling.
type floatRangeJSON struct {
	From *float64 `json:"from"`
	To   *float64 `json:"to"`
	Step float64  `json:"step"`
}

// UnmarshalJSON accepts a list, a bare number, or a range object.
func (a *FloatAxis) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '[' {
		var vs []float64
		if err := json.Unmarshal(b, &vs); err != nil {
			return err
		}
		if len(vs) > maxAxisValues {
			return fmt.Errorf("sweep: axis lists %d values, limit %d", len(vs), maxAxisValues)
		}
		a.values = vs
		return nil
	}
	if len(b) > 0 && b[0] == '{' {
		var r floatRangeJSON
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		if r.From == nil || r.To == nil {
			return fmt.Errorf("sweep: range object needs \"from\" and \"to\"")
		}
		if r.Step <= 0 || *r.From > *r.To {
			return fmt.Errorf("sweep: bad range [%g,%g] step %g", *r.From, *r.To, r.Step)
		}
		// Values are computed as from + i*step (not accumulated), with a
		// step-relative tolerance and endpoint snapping, so the documented
		// inclusive "to" endpoint is never lost to float drift (0.1+0.1+0.1
		// > 0.3 must still yield [0.1, 0.2, 0.3]).
		eps := r.Step * 1e-9
		var vs []float64
		for i := 0; ; i++ {
			v := *r.From + float64(i)*r.Step
			if v > *r.To+eps {
				break
			}
			if v > *r.To-eps {
				v = *r.To
			}
			vs = append(vs, v)
			if len(vs) > maxAxisValues {
				return fmt.Errorf("sweep: range [%g,%g] step %g exceeds %d values", *r.From, *r.To, r.Step, maxAxisValues)
			}
		}
		a.values = vs
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	a.values = []float64{v}
	return nil
}
