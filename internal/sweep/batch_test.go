package sweep

import (
	"context"
	"reflect"
	"testing"

	"slicc/internal/runner"
)

// TestSweepBatchedMatchesUnbatched is the end-to-end byte-identity check
// for lockstep batching at the sweep layer: Run (batched) and RunUnbatched
// must produce deeply equal aggregates, and the batched pool must actually
// have batched the same-workload families. This test is deliberately not
// skipped under -short so CI's -race job exercises a batched sweep.
func TestSweepBatchedMatchesUnbatched(t *testing.T) {
	scalar, err := RunUnbatched(context.Background(), runner.New(runner.Options{Workers: 4}), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(runner.Options{Workers: 4})
	batched, err := Run(context.Background(), pool, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatal("batched sweep result diverges from unbatched")
	}
	// tinySpec: 2 workloads x 2 policies; per workload the base cell dedups
	// against the baseline job, leaving a 2-cell family — both batched.
	if st := pool.Stats(); st.JobsBatched != 4 || st.BatchesExecuted != 2 {
		t.Fatalf("stats = %+v, want 4 batched cells in 2 batches", st)
	}
}
