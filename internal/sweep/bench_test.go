package sweep

// Sweep-throughput benchmark: cells/sec for a cold same-workload family,
// batched (lockstep, shared decoded op table) versus scalar (each cell
// decodes for itself). The batched/scalar cells-per-second ratio is the
// headline number lockstep batching is accountable for in BENCH_SIM.json,
// and the CI bench gate checks it stays above its floor.
//
// Regenerate the BENCH_SIM.json series with:
//
//	go test -run '^$' -bench BenchmarkSweepBatch -benchtime 3x ./internal/sweep/

import (
	"context"
	"testing"

	"slicc/internal/runner"
)

// benchSpec is a fig7-shaped single-workload family: one op stream, five
// SLICC-SW threshold cells plus the baseline reference, all cold.
func benchSpec() Spec {
	return Spec{
		Name:      "bench-batch",
		Workloads: []string{"tpcc1"},
		Policies:  []string{"slicc-sw"},
		Threads:   Ints(16),
		Scales:    Floats(0.1),
		FillUpT:   Ints(128, 256),
		MatchedT:  Ints(4, 8),
	}
}

func benchSweep(b *testing.B, run func(context.Context, *runner.Pool, Spec) (*Result, error)) {
	spec := benchSpec()
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh pool per iteration keeps every cell cold: no dedup memo,
		// no workload cache, no decoded tables surviving between runs.
		pool := runner.New(runner.Options{Workers: 1})
		res, err := run(context.Background(), pool, spec)
		if err != nil {
			b.Fatal(err)
		}
		cells += len(res.Cells) + len(res.Baselines)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	}
}

// BenchmarkSweepBatch measures cold sweep throughput on both paths; the
// batched/scalar ratio is the lockstep-batching win.
func BenchmarkSweepBatch(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchSweep(b, Run) })
	b.Run("scalar", func(b *testing.B) { benchSweep(b, RunUnbatched) })
}
