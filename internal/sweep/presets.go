package sweep

import "sort"

// mustIntRange is IntRange for the static preset table (arguments are
// compile-time constants, so the error path is unreachable).
func mustIntRange(from, to, step int) IntAxis {
	a, err := IntRange(from, to, step)
	if err != nil {
		panic(err)
	}
	return a
}

// presets are the named scenario presets. Each is a full Spec the user's
// explicit fields override, so `{"preset": "fig7-thresholds", "threads":
// [40], "scales": [0.35]}` is the quick-size version of the full study.
//
// The figure presets reproduce the paper's threshold explorations exactly:
// their cells expand to the same runner jobs the corresponding
// internal/experiments figure declares (full size, seed 1), so a store
// warmed by `experiments -run fig7` answers the fig7-thresholds sweep
// without executing a single simulation — and vice versa.
var presets = map[string]Spec{
	// Figure 7 (Section 5.2): fill-up_t x matched_t with the dilution gate
	// disabled and idealized (exact, uncharged) remote search.
	"fig7-thresholds": {
		Workloads:   []string{"tpcc1", "tpce"},
		Policies:    []string{"slicc-sw"},
		Threads:     Ints(160),
		Scales:      Floats(1),
		FillUpT:     Ints(128, 256, 384, 512),
		MatchedT:    Ints(2, 4, 6, 8, 10),
		DilutionT:   Ints(-1),
		ExactSearch: Bool(true),
		Objective:   "speedup",
	},
	// Figure 8 (Section 5.2): the dilution_t sweep at fill-up_t=256,
	// matched_t=4 (the threshold defaults).
	"fig8-dilution": {
		Workloads: []string{"tpcc1", "tpce"},
		Policies:  []string{"slicc-sw"},
		Threads:   Ints(160),
		Scales:    Floats(1),
		DilutionT: mustIntRange(2, 30, 2),
		Objective: "speedup",
	},
	// Figure 1's size axis as a sweep: baseline I-MPKI vs L1-I capacity.
	// (Unlike Figure 1 proper, hit latency stays at the 32KB machine's 3
	// cycles — this preset isolates the miss curve, not the speedup.)
	"cache-sizing": {
		Workloads: []string{"tpcc1", "tpce", "mapreduce"},
		Policies:  []string{"base"},
		L1IKB:     Ints(16, 32, 64, 128, 256, 512),
		Baseline:  "none",
		Objective: "impki",
	},
	// The scenario families (docs/WORKLOADS.md) under the main policies:
	// where does migration pay off beyond the paper's benchmarks?
	"scenario-families": {
		Workloads: []string{"phased", "skewed", "microservice"},
		Policies:  []string{"nextline", "slicc", "slicc-sw"},
		Objective: "speedup",
	},
	// The scaling extension as a sweep: SLICC-SW's benefit vs core count.
	"core-scaling": {
		Workloads: []string{"tpcc1"},
		Policies:  []string{"slicc-sw"},
		Cores:     Ints(4, 8, 16, 32),
		Objective: "speedup",
	},
}

// Presets lists the available preset names in sorted order.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
