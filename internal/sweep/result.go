package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"log/slog"
	"strconv"

	"slicc/internal/runner"
	"slicc/internal/telemetry"
)

// CellResult is one expanded cell with its measured metrics. Speedup is
// relative to the cell's (workload, machine) group baseline, 0 when the
// spec's Baseline is "none".
type CellResult struct {
	Cell
	Instructions uint64  `json:"instructions"`
	Cycles       float64 `json:"cycles"`
	IMPKI        float64 `json:"impki"`
	DMPKI        float64 `json:"dmpki"`
	Migrations   uint64  `json:"migrations"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// Result is a completed sweep: every cell in expansion order (deterministic
// for a given spec, independent of worker count), the baseline reference
// cells, and the objective-selected best cell.
type Result struct {
	Name      string       `json:"name,omitempty"`
	Objective string       `json:"objective"`
	Spec      Spec         `json:"spec"`
	Cells     []CellResult `json:"cells"`
	// Baselines holds one reference result per (workload, machine) group
	// (empty when Baseline is "none"). Their Speedup is 1 by definition.
	Baselines []CellResult `json:"baselines,omitempty"`
	// BestIndex is the objective-best cell's index into Cells, -1 when no
	// cell qualifies (e.g. objective "speedup" without a baseline).
	BestIndex int `json:"best_index"`
}

// Best returns the objective-best cell, or nil.
func (r *Result) Best() *CellResult {
	if r.BestIndex < 0 || r.BestIndex >= len(r.Cells) {
		return nil
	}
	return &r.Cells[r.BestIndex]
}

// Run expands the spec and executes it on the pool: one runner job per cell
// plus one baseline reference per (workload, machine) group, all submitted
// as a single batch so the pool's dedup and persistent store collapse
// repeats. Cells sharing a workload run as lockstep batches
// (runner.RunBatched): the op stream is decoded once per family instead of
// once per cell, with results byte-identical to scalar execution. Results
// are aggregated into a Result whose cell order — and therefore whose
// JSON/CSV/table output — depends only on the spec.
func Run(ctx context.Context, pool *runner.Pool, spec Spec) (*Result, error) {
	return run(ctx, pool, spec, true)
}

// RunUnbatched is Run on the scalar path: every cell simulates alone. It
// exists for measuring the batching win (BenchmarkSweepBatch) and for
// differential tests; results are byte-identical to Run's.
func RunUnbatched(ctx context.Context, pool *runner.Pool, spec Spec) (*Result, error) {
	return run(ctx, pool, spec, false)
}

func run(ctx context.Context, pool *runner.Pool, spec Spec, batched bool) (*Result, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	ex, err := norm.expand()
	if err != nil {
		return nil, err
	}
	jobs := make([]runner.Job, 0, len(ex.jobs)+len(ex.baseJobs))
	jobs = append(jobs, ex.jobs...)
	jobs = append(jobs, ex.baseJobs...)
	ctx, sp := telemetry.StartSpan(ctx, "sweep.run",
		slog.Int("cells", len(ex.cells)), slog.Int("jobs", len(jobs)))
	defer sp.End()
	var rs []runner.Result
	if batched {
		rs, err = pool.RunBatched(ctx, jobs)
	} else {
		rs, err = pool.Run(ctx, jobs)
	}
	if err != nil {
		return nil, err
	}
	return aggregate(norm, ex, rs), nil
}

// cellResult converts one runner result into a cell's metrics row (Speedup
// left for the caller, which knows the group baseline).
func cellResult(c Cell, rr runner.Result) CellResult {
	r := rr.Sim
	return CellResult{
		Cell:         c,
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		IMPKI:        r.IMPKI(),
		DMPKI:        r.DMPKI(),
		Migrations:   r.Migrations,
	}
}

// aggregate assembles the final Result from the full job results (cells
// first, then baseline references — the job order run and RunStream both
// submit). It is pure, so the batched, scalar, and streamed paths produce
// identical Results from identical runner results.
func aggregate(norm Spec, ex *expansion, rs []runner.Result) *Result {
	res := &Result{
		Name:      norm.Name,
		Objective: norm.Objective,
		Spec:      norm,
		Cells:     make([]CellResult, len(ex.cells)),
		BestIndex: -1,
	}
	for i, c := range ex.baseCells {
		cr := cellResult(c, rs[len(ex.cells)+i])
		cr.Speedup = 1
		res.Baselines = append(res.Baselines, cr)
	}
	for i, c := range ex.cells {
		cr := cellResult(c, rs[i])
		if bi := ex.baseIndex[i]; bi >= 0 && cr.Cycles > 0 {
			cr.Speedup = res.Baselines[bi].Cycles / cr.Cycles
		}
		res.Cells[i] = cr
		if better(norm.Objective, cr, res.Best()) {
			res.BestIndex = i
		}
	}
	return res
}

// better reports whether candidate beats the incumbent under the objective
// (nil incumbent loses to any qualifying candidate; ties keep the
// incumbent, so the first-expanded cell wins deterministically).
func better(objective string, candidate CellResult, incumbent *CellResult) bool {
	score := func(c CellResult) (v float64, max bool, ok bool) {
		switch objective {
		case "speedup":
			return c.Speedup, true, c.Speedup > 0
		case "cycles":
			return c.Cycles, false, c.Cycles > 0
		case "impki":
			return c.IMPKI, false, true
		default: // "dmpki"
			return c.DMPKI, false, true
		}
	}
	cv, max, ok := score(candidate)
	if !ok {
		return false
	}
	if incumbent == nil {
		return true
	}
	iv, _, _ := score(*incumbent)
	if max {
		return cv > iv
	}
	return cv < iv
}

// resultColumns is the shared column set of Rows and WriteCSV.
var resultColumns = []string{
	"workload", "threads", "seed", "scale", "cores", "l1i_kb", "l1d_kb",
	"policy", "fillup_t", "matched_t", "dilution_t",
	"instructions", "cycles", "impki", "dmpki", "migrations", "speedup",
}

// Header returns the per-cell table header.
func (r *Result) Header() []string { return append([]string(nil), resultColumns...) }

// row renders one cell. Threshold columns apply only to SLICC-family
// policies; raw mode (CSV) keeps the sentinel numbers, display mode shows
// "-" for not-applicable and "def"/"off" for the named settings.
func (c CellResult) row(raw bool) []string {
	sliccFam := policyDefs[c.Policy].slicc
	thr := func(v int) string {
		if raw {
			return strconv.Itoa(v)
		}
		switch {
		case !sliccFam:
			return "-"
		case v == 0:
			return "def"
		case v < 0:
			return "off"
		}
		return strconv.Itoa(v)
	}
	speedup := "-"
	if c.Speedup > 0 {
		speedup = fmt.Sprintf("%.3f", c.Speedup)
	} else if raw {
		speedup = "0"
	}
	return []string{
		c.Workload,
		strconv.Itoa(c.Threads),
		strconv.FormatInt(c.Seed, 10),
		strconv.FormatFloat(c.Scale, 'g', -1, 64),
		strconv.Itoa(c.Cores),
		strconv.Itoa(c.L1IKB),
		strconv.Itoa(c.L1DKB),
		c.Policy,
		thr(c.FillUpT), thr(c.MatchedT), thr(c.DilutionT),
		strconv.FormatUint(c.Instructions, 10),
		fmt.Sprintf("%.0f", c.Cycles),
		fmt.Sprintf("%.2f", c.IMPKI),
		fmt.Sprintf("%.2f", c.DMPKI),
		strconv.FormatUint(c.Migrations, 10),
		speedup,
	}
}

// Rows returns the per-cell table rows in expansion order.
func (r *Result) Rows() [][]string {
	rows := make([][]string, len(r.Cells))
	for i, c := range r.Cells {
		rows[i] = c.row(false)
	}
	return rows
}

// WriteCSV emits the result as RFC-4180 CSV: a header row, then one row
// per cell in expansion order (raw sentinel values preserved, so the file
// round-trips into analysis tools losslessly).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(resultColumns); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if err := cw.Write(c.row(true)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
