package sweep

// Streaming execution: RunStream is Run with a per-cell completion
// callback, the layer beneath sliccd's SSE endpoint and the SDK's sweep
// watcher. Cells complete in scheduling order, but every event's *content*
// is deterministic: a cell's event is held until its group baseline has
// landed, so the Speedup it carries is final, and the final Result is
// assembled by the same aggregation the batch paths use — byte-identical
// to Run's for the same spec.

import (
	"context"
	"log/slog"
	"sync"

	"slicc/internal/runner"
	"slicc/internal/telemetry"
)

// Event types.
const (
	// EventCell reports one completed result cell.
	EventCell = "cell"
	// EventBaseline reports one completed per-group baseline reference.
	EventBaseline = "baseline"
	// EventDone / EventError terminate a sweep's event stream. RunStream
	// never emits them itself (its return is the terminal signal); they
	// exist for transports — sliccd's SSE stream ends with one.
	EventDone  = "done"
	EventError = "error"
)

// Event is one streamed sweep happening. Cell events carry the finished
// cell with its final metrics (including Speedup, already resolved against
// the group baseline); terminal events carry Status and optionally Error.
type Event struct {
	// Seq numbers the event within its stream, assigned by the transport
	// (sliccd uses it as the SSE id for Last-Event-ID replay); 0 when the
	// event comes straight from RunStream.
	Seq int `json:"seq,omitempty"`
	// Type is EventCell, EventBaseline, EventDone or EventError.
	Type string `json:"type"`
	// Index is the cell's position in Result.Cells (EventCell) or
	// Result.Baselines (EventBaseline) — expansion order, spec-determined.
	Index int `json:"index"`
	// StoreHit reports that the cell was served by the persistent store
	// rather than executed — every replayed cell of a resumed sweep.
	StoreHit bool `json:"store_hit,omitempty"`
	// Completed counts result cells finished so far (baselines excluded);
	// Total is len(Result.Cells).
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Cell is the finished cell (EventCell/EventBaseline only).
	Cell *CellResult `json:"cell,omitempty"`
	// Status ("done" or "failed") and Error describe terminal events.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// RunStream executes the sweep like Run, invoking emit for each completed
// cell and baseline as it lands. Emission order is scheduling-dependent,
// but event content is not: a cell's event waits for its group baseline so
// the Speedup it reports is final, every index is emitted exactly once,
// and Completed increments 1..Total across cell events. emit is called
// serially. The returned Result is identical to Run's for the same spec.
//
// Cells run on the scalar path (no lockstep batching): post-PR 4 batching
// buys parity rather than speedup — the op stream is already memoized for
// scalar cells — and per-cell completion is the point here. Store keys are
// identical either way, so streamed and batched sweeps cross-warm.
func RunStream(ctx context.Context, pool *runner.Pool, spec Spec, emit func(Event)) (*Result, error) {
	return RunStreamVia(ctx, pool, spec, nil, emit)
}

// RunStreamVia is RunStream with an optional runner.Remote: cells (and
// baselines) that miss the persistent store are executed by the worker
// fleet instead of the local pool, with results carried back through the
// store. Events, aggregation and the final Result are identical to
// RunStream's — distribution changes where cells run, not what they
// produce.
func RunStreamVia(ctx context.Context, pool *runner.Pool, spec Spec, remote runner.Remote, emit func(Event)) (*Result, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	ex, err := norm.expand()
	if err != nil {
		return nil, err
	}
	jobs := make([]runner.Job, 0, len(ex.jobs)+len(ex.baseJobs))
	jobs = append(jobs, ex.jobs...)
	jobs = append(jobs, ex.baseJobs...)
	ctx, sp := telemetry.StartSpan(ctx, "sweep.run",
		slog.Int("cells", len(ex.cells)), slog.Int("jobs", len(jobs)))
	defer sp.End()

	var (
		mu        sync.Mutex
		completed int
		baseDone  = make([]bool, len(ex.baseCells))
		baseCyc   = make([]float64, len(ex.baseCells))
		// held buffers finished cells whose group baseline is still
		// running; the baseline's completion flushes them.
		held = make(map[int][]Event)
	)
	total := len(ex.cells)
	emitCell := func(ev Event) {
		completed++
		ev.Completed = completed
		emit(ev)
	}
	onDone := func(i int, rr runner.Result, storeHit bool) {
		mu.Lock()
		defer mu.Unlock()
		if i < len(ex.cells) {
			cr := cellResult(ex.cells[i], rr)
			ev := Event{Type: EventCell, Index: i, StoreHit: storeHit, Total: total, Cell: &cr}
			bi := ex.baseIndex[i]
			if bi >= 0 && !baseDone[bi] {
				held[bi] = append(held[bi], ev)
				return
			}
			if bi >= 0 && cr.Cycles > 0 {
				cr.Speedup = baseCyc[bi] / cr.Cycles
			}
			emitCell(ev)
			return
		}
		b := i - len(ex.cells)
		cr := cellResult(ex.baseCells[b], rr)
		cr.Speedup = 1
		baseDone[b], baseCyc[b] = true, cr.Cycles
		emit(Event{Type: EventBaseline, Index: b, StoreHit: storeHit, Completed: completed, Total: total, Cell: &cr})
		for _, ev := range held[b] {
			if ev.Cell.Cycles > 0 {
				ev.Cell.Speedup = cr.Cycles / ev.Cell.Cycles
			}
			emitCell(ev)
		}
		delete(held, b)
	}
	if emit == nil {
		onDone = nil
	}
	rs, err := pool.RunEachVia(ctx, jobs, remote, onDone)
	if err != nil {
		return nil, err
	}
	return aggregate(norm, ex, rs), nil
}
