package sweep

import (
	"context"
	"reflect"
	"testing"

	"slicc/internal/runner"
	"slicc/internal/store"
)

// collectStream runs tinySpec through RunStream on a fresh pool over dir
// (persistent when dir != "") and returns the result and events.
func collectStream(t *testing.T, dir string, workers int) (*Result, []Event) {
	t.Helper()
	opts := runner.Options{Workers: workers}
	if dir != "" {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		opts.Memo = runner.NewStoreMemo(st)
	}
	var events []Event
	res, err := RunStream(context.Background(), runner.New(opts), tinySpec(), func(ev Event) {
		events = append(events, ev) // RunStream serializes emit
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

func TestRunStreamMatchesRunAndEmitsEveryCellOnce(t *testing.T) {
	want, err := Run(context.Background(), runner.New(runner.Options{Workers: 2}), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, events := collectStream(t, dir, 4)
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("RunStream result diverges from Run:\n%+v\nvs\n%+v", res, want)
	}

	cells := map[int]int{}
	bases := map[int]int{}
	wantCompleted := 0
	for _, ev := range events {
		if ev.Total != len(res.Cells) {
			t.Fatalf("event total %d, want %d", ev.Total, len(res.Cells))
		}
		if ev.StoreHit {
			t.Fatalf("cold run event reported a store hit: %+v", ev)
		}
		switch ev.Type {
		case EventCell:
			cells[ev.Index]++
			wantCompleted++
			if ev.Completed != wantCompleted {
				t.Fatalf("cell event completed=%d, want %d", ev.Completed, wantCompleted)
			}
			// Content determinism: the event carries the cell's *final*
			// metrics, Speedup included, however scheduling interleaved.
			if !reflect.DeepEqual(*ev.Cell, res.Cells[ev.Index]) {
				t.Fatalf("cell %d event %+v != final %+v", ev.Index, *ev.Cell, res.Cells[ev.Index])
			}
		case EventBaseline:
			bases[ev.Index]++
			if !reflect.DeepEqual(*ev.Cell, res.Baselines[ev.Index]) {
				t.Fatalf("baseline %d event diverges from final result", ev.Index)
			}
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if len(cells) != len(res.Cells) || len(bases) != len(res.Baselines) {
		t.Fatalf("saw %d cells / %d baselines, want %d / %d",
			len(cells), len(bases), len(res.Cells), len(res.Baselines))
	}
	for i, n := range cells {
		if n != 1 {
			t.Fatalf("cell %d emitted %d times", i, n)
		}
	}

	// A fresh pool over the warmed store models a resumed sweep: identical
	// result, and every event flags its cell as store-served.
	warmRes, warmEvents := collectStream(t, dir, 4)
	if !reflect.DeepEqual(warmRes, want) {
		t.Fatal("warm RunStream result diverges")
	}
	if len(warmEvents) != len(events) {
		t.Fatalf("warm run emitted %d events, want %d", len(warmEvents), len(events))
	}
	for _, ev := range warmEvents {
		if !ev.StoreHit {
			t.Fatalf("warm run event not store-served: %+v", ev)
		}
	}
}

func TestRunStreamNilEmit(t *testing.T) {
	want, err := Run(context.Background(), runner.New(runner.Options{Workers: 2}), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(context.Background(), runner.New(runner.Options{Workers: 2}), tinySpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("nil-emit RunStream diverges from Run")
	}
}
