// Package sweep turns a declarative parameter-sweep specification into
// runner jobs and aggregates the results: the design-space-exploration
// layer over the experiment engine.
//
// A Spec names lists (or ranges) over the knobs a simulation has — workload
// kind, thread count, seed, scale, core count, L1 sizes, policy, and the
// SLICC thresholds — plus presentation choices (baseline policy, best-cell
// objective). Expansion takes the cross product in a fixed axis order and
// emits one runner.Job per cell, so everything the runner guarantees holds
// for sweeps too: identical cells (within a sweep, across sweeps, across
// processes via the store) simulate once, results come back in declaration
// order, and output is byte-identical at any worker count.
//
// Specs are JSON-first: the same document drives `experiments -sweep`,
// `POST /v1/sweeps` on sliccd, and the public slicc.Engine.Sweep. Named
// presets (Presets) cover the paper's threshold explorations and the
// scenario-family studies; an explicit field always overrides its preset
// value. See EXPERIMENTS.md ("Sweeps") for runnable examples.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"slicc/internal/prefetch"
	"slicc/internal/runner"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/workload"
)

// maxCells bounds one sweep's expansion. Sweeps run on shared engines
// (sliccd accepts them over the network); an accidental six-axis cross
// product must fail fast instead of queueing a year of simulation.
const maxCells = 4096

// Spec declares a parameter sweep. The zero value of every field means
// "default": a single-cell sweep of tpcc1 under slicc-sw on the Table 2
// machine. Fields holding several values multiply into the cross product.
type Spec struct {
	// Name labels the sweep in output; cosmetic, excluded from Key.
	Name string `json:"name,omitempty"`
	// Preset names a predefined spec (see Presets) merged underneath the
	// explicit fields: any field set here overrides the preset's value.
	Preset string `json:"preset,omitempty"`

	// Workloads lists workload kind tokens ("tpcc1", "tpce", "phased",
	// ...; default ["tpcc1"]).
	Workloads []string `json:"workloads,omitempty"`
	// Policies lists policy tokens ("base", "nextline", "slicc",
	// "slicc-pp", "slicc-sw", "pif", "stream", "steps"; default
	// ["slicc-sw"]).
	Policies []string `json:"policies,omitempty"`
	// Baseline is the policy every cell's speedup is measured against,
	// simulated once per distinct (workload, machine) group (default
	// "base"; "none" disables speedups).
	Baseline string `json:"baseline,omitempty"`
	// Objective selects the best cell: "speedup" (max), "cycles",
	// "impki" or "dmpki" (min). Default "speedup".
	Objective string `json:"objective,omitempty"`

	// Threads / Seeds / Scales sweep the workload axes. Threads 0 means
	// the per-workload default. Defaults: [0], [1], [1].
	Threads IntAxis   `json:"threads,omitzero"`
	Seeds   IntAxis   `json:"seeds,omitzero"`
	Scales  FloatAxis `json:"scales,omitzero"`

	// Cores / L1IKB / L1DKB sweep the machine axes. Defaults: [16], [32],
	// [32] (the Table 2 machine).
	Cores IntAxis `json:"cores,omitzero"`
	L1IKB IntAxis `json:"l1i_kb,omitzero"`
	L1DKB IntAxis `json:"l1d_kb,omitzero"`

	// FillUpT / MatchedT / DilutionT sweep the SLICC thresholds; they
	// expand only for SLICC-family policies (other policies get one cell).
	// 0 means the paper default; DilutionT -1 disables the dilution gate
	// (the Figure 7 setting). Defaults: [0].
	FillUpT   IntAxis `json:"fillup_t,omitzero"`
	MatchedT  IntAxis `json:"matched_t,omitzero"`
	DilutionT IntAxis `json:"dilution_t,omitzero"`

	// ExactSearch answers SLICC's remote-residency queries from actual
	// cache tags, uncharged (the Figure 7 idealized-search assumption).
	// Applies to SLICC-family cells only. A pointer so that an explicit
	// false can override a preset's true (nil = unset; default false).
	// In Go, set it with Bool.
	ExactSearch *bool `json:"exact_search,omitempty"`
}

// Bool is a convenience for Spec.ExactSearch-style optional booleans.
func Bool(v bool) *bool { return &v }

// policyDef maps a policy token onto the declarative pieces a job needs.
type policyDef struct {
	kind    runner.PolicyKind
	variant islicc.Variant
	slicc   bool
	pif     bool
}

var policyDefs = map[string]policyDef{
	"base":     {kind: runner.Baseline},
	"nextline": {kind: runner.NextLine},
	"slicc":    {slicc: true, variant: islicc.Oblivious},
	"slicc-pp": {slicc: true, variant: islicc.Pp},
	"slicc-sw": {slicc: true, variant: islicc.SW},
	"pif":      {kind: runner.Baseline, pif: true},
	"stream":   {kind: runner.Stream},
	"steps":    {kind: runner.STEPS},
}

// PolicyTokens lists the accepted policy tokens in stable order.
func PolicyTokens() []string {
	names := make([]string, 0, len(policyDefs))
	for tok := range policyDefs {
		names = append(names, tok)
	}
	sort.Strings(names)
	return names
}

var objectives = map[string]bool{"speedup": true, "cycles": true, "impki": true, "dmpki": true}

// Normalized returns the spec with its preset merged in, every unset field
// defaulted, and all tokens/values validated. It is idempotent; expansion,
// Key and the servers all normalize first, so a defaulted and an explicit
// spelling of the same sweep are the same sweep.
func (s Spec) Normalized() (Spec, error) {
	if s.Preset != "" {
		p, ok := presets[s.Preset]
		if !ok {
			return Spec{}, fmt.Errorf("sweep: unknown preset %q (have %s)", s.Preset, strings.Join(Presets(), ", "))
		}
		s = merge(s, p)
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"tpcc1"}
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"slicc-sw"}
	}
	if s.Baseline == "" {
		s.Baseline = "base"
	}
	if s.Objective == "" {
		s.Objective = "speedup"
	}
	if s.Threads.IsZero() {
		s.Threads = Ints(0)
	}
	if s.Seeds.IsZero() {
		s.Seeds = Ints(1)
	}
	if s.Scales.IsZero() {
		s.Scales = Floats(1)
	}
	if s.Cores.IsZero() {
		s.Cores = Ints(16)
	}
	if s.L1IKB.IsZero() {
		s.L1IKB = Ints(32)
	}
	if s.L1DKB.IsZero() {
		s.L1DKB = Ints(32)
	}
	if s.FillUpT.IsZero() {
		s.FillUpT = Ints(0)
	}
	if s.MatchedT.IsZero() {
		s.MatchedT = Ints(0)
	}
	if s.DilutionT.IsZero() {
		s.DilutionT = Ints(0)
	}
	if s.ExactSearch == nil {
		s.ExactSearch = Bool(false)
	}

	for _, w := range s.Workloads {
		if _, err := workload.ParseKind(w); err != nil {
			return Spec{}, fmt.Errorf("sweep: %w", err)
		}
	}
	for _, p := range s.Policies {
		if _, ok := policyDefs[p]; !ok {
			return Spec{}, fmt.Errorf("sweep: unknown policy %q (have %s)", p, strings.Join(PolicyTokens(), ", "))
		}
	}
	if s.Baseline != "none" {
		if _, ok := policyDefs[s.Baseline]; !ok {
			return Spec{}, fmt.Errorf("sweep: unknown baseline policy %q (have %s, or \"none\")", s.Baseline, strings.Join(PolicyTokens(), ", "))
		}
	}
	if !objectives[s.Objective] {
		return Spec{}, fmt.Errorf("sweep: unknown objective %q (have speedup, cycles, impki, dmpki)", s.Objective)
	}
	if err := s.validateValues(); err != nil {
		return Spec{}, err
	}
	if n := s.cellCount(); n > maxCells {
		return Spec{}, fmt.Errorf("sweep: %d cells exceeds the %d-cell limit; split the study", n, maxCells)
	}
	return s, nil
}

// merge fills s's zero fields from preset p (explicit fields win).
func merge(s, p Spec) Spec {
	if len(s.Workloads) == 0 {
		s.Workloads = p.Workloads
	}
	if len(s.Policies) == 0 {
		s.Policies = p.Policies
	}
	if s.Baseline == "" {
		s.Baseline = p.Baseline
	}
	if s.Objective == "" {
		s.Objective = p.Objective
	}
	if s.Threads.IsZero() {
		s.Threads = p.Threads
	}
	if s.Seeds.IsZero() {
		s.Seeds = p.Seeds
	}
	if s.Scales.IsZero() {
		s.Scales = p.Scales
	}
	if s.Cores.IsZero() {
		s.Cores = p.Cores
	}
	if s.L1IKB.IsZero() {
		s.L1IKB = p.L1IKB
	}
	if s.L1DKB.IsZero() {
		s.L1DKB = p.L1DKB
	}
	if s.FillUpT.IsZero() {
		s.FillUpT = p.FillUpT
	}
	if s.MatchedT.IsZero() {
		s.MatchedT = p.MatchedT
	}
	if s.DilutionT.IsZero() {
		s.DilutionT = p.DilutionT
	}
	if s.ExactSearch == nil {
		s.ExactSearch = p.ExactSearch
	}
	return s
}

// validateValues rejects axis values the simulator cannot run (a sweep may
// arrive over the network; nothing here is allowed to panic downstream).
func (s Spec) validateValues() error {
	for _, v := range s.Threads.values {
		if v < 0 {
			return fmt.Errorf("sweep: negative thread count %d", v)
		}
	}
	for _, v := range s.Scales.values {
		if v < 0 {
			return fmt.Errorf("sweep: negative scale %g", v)
		}
	}
	for _, v := range s.Cores.values {
		if v < 1 || v > 1024 {
			return fmt.Errorf("sweep: core count %d outside [1,1024]", v)
		}
	}
	for _, axis := range []struct {
		name string
		vals []int
	}{{"l1i_kb", s.L1IKB.values}, {"l1d_kb", s.L1DKB.values}} {
		for _, v := range axis.vals {
			if v < 1 || v > 1<<20 {
				return fmt.Errorf("sweep: %s value %d outside [1,1048576]", axis.name, v)
			}
		}
	}
	for _, v := range s.FillUpT.values {
		if v < 0 {
			return fmt.Errorf("sweep: negative fillup_t %d", v)
		}
	}
	for _, v := range s.MatchedT.values {
		if v < 0 {
			return fmt.Errorf("sweep: negative matched_t %d", v)
		}
	}
	for _, v := range s.DilutionT.values {
		if v < -1 {
			return fmt.Errorf("sweep: dilution_t %d below -1 (-1 disables the gate)", v)
		}
	}
	return nil
}

// cellCount is the expansion size of a normalized spec. Every multiply
// saturates at maxCells+1 — specs arrive over the network, and a product
// that wraps 64 bits must read as "past the limit", never as small.
func (s Spec) cellCount() int {
	mul := func(a, b int) int {
		if a == 0 || b == 0 {
			return 0
		}
		if a > maxCells || b > maxCells || a*b/b != a || a*b > maxCells {
			return maxCells + 1
		}
		return a * b
	}
	group := len(s.Workloads)
	for _, n := range []int{
		len(s.Threads.values), len(s.Seeds.values), len(s.Scales.values),
		len(s.Cores.values), len(s.L1IKB.values), len(s.L1DKB.values),
	} {
		group = mul(group, n)
	}
	thresholds := mul(mul(len(s.FillUpT.values), len(s.MatchedT.values)), len(s.DilutionT.values))
	perGroup := 0
	for _, p := range s.Policies {
		if policyDefs[p].slicc {
			perGroup += thresholds
		} else {
			perGroup++
		}
		if perGroup > maxCells {
			perGroup = maxCells + 1
			break
		}
	}
	return mul(group, perGroup)
}

// CellCount returns the number of result cells the spec expands to
// (baseline reference simulations not included).
func (s Spec) CellCount() (int, error) {
	n, err := s.Normalized()
	if err != nil {
		return 0, err
	}
	return n.cellCount(), nil
}

// specKeyVersion tags Key's hash input; bump on any change to the Spec
// schema or expansion semantics.
const specKeyVersion = "slicc-sweep-v1"

// Key returns the stable content key of the sweep this spec describes: a
// hex SHA-256 over a versioned canonical encoding of the normalized spec.
// Defaulted and explicit spellings share a key; Name (cosmetic) and Preset
// (already merged into the fields) are excluded. sliccd uses Key to
// coalesce identical sweep submissions.
func (s Spec) Key() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	n.Name, n.Preset = "", ""
	b, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("sweep: encoding spec key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(specKeyVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Cell is one point of the expanded sweep: the exact simulation
// configuration, with workload defaults resolved so the cell reads as what
// actually ran.
type Cell struct {
	Workload    string  `json:"workload"`
	Threads     int     `json:"threads"`
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Cores       int     `json:"cores"`
	L1IKB       int     `json:"l1i_kb"`
	L1DKB       int     `json:"l1d_kb"`
	Policy      string  `json:"policy"`
	FillUpT     int     `json:"fillup_t,omitempty"`
	MatchedT    int     `json:"matched_t,omitempty"`
	DilutionT   int     `json:"dilution_t,omitempty"`
	ExactSearch bool    `json:"exact_search,omitempty"`
}

// Job translates the cell into the declarative runner job it stands for.
// The mapping mirrors the public slicc.Config: thresholds of 0 mean the
// paper defaults, DilutionT -1 disables the gate, ExactSearch implies
// uncharged searches (Figure 7's idealization), and "pif" is the baseline
// scheduler on the transformed upper-bound L1-I.
func (c Cell) Job() (runner.Job, error) {
	kind, err := workload.ParseKind(c.Workload)
	if err != nil {
		return runner.Job{}, err
	}
	def, ok := policyDefs[c.Policy]
	if !ok {
		return runner.Job{}, fmt.Errorf("sweep: unknown policy %q", c.Policy)
	}
	wcfg := workload.Config{Kind: kind, Threads: c.Threads, Seed: c.Seed, Scale: c.Scale}
	mcfg := sim.Config{Cores: c.Cores}
	mcfg.L1I.SizeBytes = c.L1IKB * 1024
	mcfg.L1D.SizeBytes = c.L1DKB * 1024
	spec := runner.PolicySpec{Kind: def.kind}
	if def.slicc {
		scfg := islicc.DefaultConfig(def.variant)
		if c.FillUpT != 0 {
			scfg.FillUpT = c.FillUpT
		}
		if c.MatchedT != 0 {
			scfg.MatchedT = c.MatchedT
		}
		switch {
		case c.DilutionT < 0:
			scfg.DilutionT = 0
		case c.DilutionT > 0:
			scfg.DilutionT = c.DilutionT
		}
		if c.ExactSearch {
			scfg.ExactSearch = true
			scfg.CountSearchBroadcasts = false
		}
		spec = runner.PolicySpec{Kind: runner.SLICC, SLICC: scfg}
	}
	if def.pif {
		mcfg.L1I = prefetch.PIFUpperBoundL1I(mcfg.L1I)
	}
	return runner.Job{Workload: wcfg, Machine: mcfg, Policy: spec}, nil
}

// expansion is a fully expanded sweep: result cells, their jobs, and the
// per-group baseline reference jobs.
type expansion struct {
	cells []Cell
	jobs  []runner.Job

	baseCells []Cell
	baseJobs  []runner.Job
	// baseIndex maps each cell to its group's entry in baseCells (-1 when
	// Baseline is "none").
	baseIndex []int
}

// expand takes the cross product in fixed axis order: workload, threads,
// seed, scale, cores, l1i, l1d (the machine/workload group), then policy
// and — for SLICC-family policies — the three threshold axes. The order is
// part of the format: two expansions of equal specs produce identical cell
// and job sequences, which is what makes sweep output deterministic and
// store keys stable.
func (s Spec) expand() (*expansion, error) {
	ex := &expansion{}
	for _, wl := range s.Workloads {
		kind, err := workload.ParseKind(wl)
		if err != nil {
			return nil, err
		}
		for _, th := range s.Threads.values {
			for _, seed := range s.Seeds.values {
				for _, scale := range s.Scales.values {
					// Resolve workload defaults so cells read as what ran.
					wdef := workload.Config{Kind: kind, Threads: th, Seed: int64(seed), Scale: scale}.WithDefaults()
					for _, cores := range s.Cores.values {
						for _, l1i := range s.L1IKB.values {
							for _, l1d := range s.L1DKB.values {
								group := Cell{
									Workload: wl, Threads: wdef.Threads, Seed: wdef.Seed, Scale: wdef.Scale,
									Cores: cores, L1IKB: l1i, L1DKB: l1d,
								}
								if err := ex.addGroup(s, group); err != nil {
									return nil, err
								}
							}
						}
					}
				}
			}
		}
	}
	return ex, nil
}

// addGroup expands one (workload, machine) group: the baseline reference
// job plus each policy's cell(s).
func (ex *expansion) addGroup(s Spec, group Cell) error {
	bi := -1
	if s.Baseline != "none" {
		base := group
		base.Policy = s.Baseline
		job, err := base.Job()
		if err != nil {
			return err
		}
		bi = len(ex.baseCells)
		ex.baseCells = append(ex.baseCells, base)
		ex.baseJobs = append(ex.baseJobs, job)
	}
	add := func(c Cell) error {
		job, err := c.Job()
		if err != nil {
			return err
		}
		ex.cells = append(ex.cells, c)
		ex.jobs = append(ex.jobs, job)
		ex.baseIndex = append(ex.baseIndex, bi)
		return nil
	}
	for _, pol := range s.Policies {
		cell := group
		cell.Policy = pol
		if !policyDefs[pol].slicc {
			if err := add(cell); err != nil {
				return err
			}
			continue
		}
		cell.ExactSearch = s.ExactSearch != nil && *s.ExactSearch
		for _, fu := range s.FillUpT.values {
			for _, mt := range s.MatchedT.values {
				for _, dil := range s.DilutionT.values {
					c := cell
					c.FillUpT, c.MatchedT, c.DilutionT = fu, mt, dil
					if err := add(c); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
