package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"slicc/internal/runner"
	"slicc/internal/store"
)

// tinySpec is a fast 2-workload x 2-policy sweep for execution tests.
func tinySpec() Spec {
	return Spec{
		Name:      "tiny",
		Workloads: []string{"tpcc1", "phased"},
		Policies:  []string{"base", "slicc-sw"},
		Threads:   Ints(6),
		Scales:    Floats(0.05),
	}
}

func TestAxisJSON(t *testing.T) {
	var a IntAxis
	if err := json.Unmarshal([]byte(`[128, 256]`), &a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values(), []int{128, 256}) {
		t.Fatalf("list axis = %v", a.Values())
	}
	if err := json.Unmarshal([]byte(`{"from":2,"to":8,"step":2}`), &a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values(), []int{2, 4, 6, 8}) {
		t.Fatalf("range axis = %v", a.Values())
	}
	if err := json.Unmarshal([]byte(`16`), &a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values(), []int{16}) {
		t.Fatalf("scalar axis = %v", a.Values())
	}
	// Canonical marshal is the explicit list, so ranges and lists hash
	// identically in Key.
	b, err := json.Marshal(a)
	if err != nil || string(b) != "[16]" {
		t.Fatalf("marshal = %s, %v", b, err)
	}
	if err := json.Unmarshal([]byte(`{"from":8,"to":2,"step":2}`), &a); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := json.Unmarshal([]byte(`{"from":0,"to":1000000,"step":1}`), &a); err == nil {
		t.Fatal("unbounded range accepted")
	}

	var f FloatAxis
	if err := json.Unmarshal([]byte(`{"from":0.5,"to":1.5,"step":0.5}`), &f); err != nil {
		t.Fatal(err)
	}
	if got := f.Values(); len(got) != 3 || got[0] != 0.5 || got[2] != 1.5 {
		t.Fatalf("float range = %v", got)
	}
	// The inclusive endpoint must survive float drift (0.1*3 > 0.3) and
	// land exactly on "to", not on an accumulated approximation.
	if err := json.Unmarshal([]byte(`{"from":0.1,"to":0.3,"step":0.1}`), &f); err != nil {
		t.Fatal(err)
	}
	if got := f.Values(); len(got) != 3 || got[2] != 0.3 {
		t.Fatalf("drifting float range = %v, want [0.1 0.2 0.3]", got)
	}
}

func TestNormalizeValidates(t *testing.T) {
	for _, bad := range []Spec{
		{Workloads: []string{"nosuch"}},
		{Policies: []string{"nosuch"}},
		{Baseline: "nosuch"},
		{Objective: "nosuch"},
		{Preset: "nosuch"},
		{Cores: Ints(0)},
		{Cores: Ints(-4)},
		{L1IKB: Ints(0)},
		{Threads: Ints(-1)},
		{DilutionT: Ints(-2)},
	} {
		if _, err := bad.Normalized(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	// The cell limit must trip before expansion allocates.
	big := Spec{
		Workloads: []string{"tpcc1"},
		Policies:  []string{"slicc-sw"},
		FillUpT:   Ints(make([]int, 100)...),
		MatchedT:  Ints(make([]int, 100)...),
	}
	if _, err := big.Normalized(); err == nil || !strings.Contains(err.Error(), "cell") {
		t.Fatalf("oversized sweep error = %v", err)
	}
	// The cell count must saturate, not wrap: six 4096-value axes multiply
	// to 2^72, which would alias to 0 in 64-bit arithmetic and slip past
	// the limit (a remotely-triggerable unbounded expansion).
	wide := func() IntAxis { return Ints(make([]int, maxAxisValues)...) }
	huge := Spec{
		Threads: wide(), Seeds: wide(),
		Cores: Ints(repeatInt(16, maxAxisValues)...),
		L1IKB: Ints(repeatInt(32, maxAxisValues)...),
		L1DKB: Ints(repeatInt(32, maxAxisValues)...),
		Scales: func() FloatAxis {
			vs := make([]float64, maxAxisValues)
			for i := range vs {
				vs[i] = 1
			}
			return Floats(vs...)
		}(),
	}
	if _, err := huge.Normalized(); err == nil || !strings.Contains(err.Error(), "cell") {
		t.Fatalf("overflowing sweep error = %v", err)
	}
}

// repeatInt returns n copies of v.
func repeatInt(v, n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = v
	}
	return vs
}

// TestExpandDeterminism is the sweep acceptance contract: the same spec —
// whether spelled directly, defaulted, or round-tripped through JSON —
// expands to the identical ordered job-key list.
func TestExpandDeterminism(t *testing.T) {
	spec := Spec{
		Workloads: []string{"tpcc1", "tpce"},
		Policies:  []string{"base", "slicc-sw"},
		FillUpT:   Ints(128, 256),
		MatchedT:  Ints(2, 4),
	}
	keysOf := func(s Spec) []string {
		n, err := s.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		ex, err := n.expand()
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(ex.jobs)+len(ex.baseJobs))
		for _, j := range append(append([]runner.Job{}, ex.jobs...), ex.baseJobs...) {
			keys = append(keys, runner.JobKey(j))
		}
		return keys
	}
	a := keysOf(spec)
	b := keysOf(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of one spec differ")
	}
	// JSON round trip.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var rt Spec
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if c := keysOf(rt); !reflect.DeepEqual(a, c) {
		t.Fatal("JSON round-tripped spec expands differently")
	}
	// 2 workloads x (1 base + slicc-sw x 2x2 thresholds) = 10 cells.
	n, err := spec.CellCount()
	if err != nil || n != 10 {
		t.Fatalf("CellCount = %d, %v; want 10", n, err)
	}
}

func TestSpecKey(t *testing.T) {
	// Defaulted and explicit spellings share a key; Name is cosmetic.
	a, err := Spec{Name: "x"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Workloads: []string{"tpcc1"}, Policies: []string{"slicc-sw"}, Seeds: Ints(1)}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 64 {
		t.Fatalf("keys differ for one sweep: %s vs %s", a, b)
	}
	c, err := Spec{Workloads: []string{"tpce"}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different sweeps share a key")
	}
}

func TestPresets(t *testing.T) {
	if len(Presets()) == 0 {
		t.Fatal("no presets")
	}
	for _, name := range Presets() {
		s, err := Spec{Preset: name}.Normalized()
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if n := s.cellCount(); n < 2 {
			t.Fatalf("preset %s expands to %d cells", name, n)
		}
	}
	// The Figure 7 preset covers the paper's full 2x4x5 grid.
	n, err := Spec{Preset: "fig7-thresholds"}.CellCount()
	if err != nil || n != 40 {
		t.Fatalf("fig7-thresholds cells = %d, %v; want 40", n, err)
	}
	// Explicit fields override the preset.
	s, err := Spec{Preset: "fig7-thresholds", Threads: Ints(40), FillUpT: Ints(128)}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Threads.Values(); len(got) != 1 || got[0] != 40 {
		t.Fatalf("threads override lost: %v", got)
	}
	if got := s.FillUpT.Values(); len(got) != 1 || got[0] != 128 {
		t.Fatalf("fillup override lost: %v", got)
	}
	if s.ExactSearch == nil || !*s.ExactSearch {
		t.Fatal("preset exact_search not inherited")
	}
	// An explicit false must override the preset's true (and produce a
	// different content key than the idealized-search study).
	over, err := Spec{Preset: "fig7-thresholds", ExactSearch: Bool(false)}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if *over.ExactSearch {
		t.Fatal("explicit exact_search=false lost to the preset")
	}
	k1, err := Spec{Preset: "fig7-thresholds"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Spec{Preset: "fig7-thresholds", ExactSearch: Bool(false)}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("idealized and charged-search studies share a key")
	}
}

func TestRunAggregates(t *testing.T) {
	pool := runner.New(runner.Options{Workers: 2})
	res, err := Run(context.Background(), pool, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || len(res.Baselines) != 2 {
		t.Fatalf("cells %d baselines %d", len(res.Cells), len(res.Baselines))
	}
	for i, c := range res.Cells {
		if c.Instructions == 0 || c.Cycles == 0 {
			t.Fatalf("cell %d empty: %+v", i, c)
		}
		if c.Policy == "base" && (c.Speedup < 0.999 || c.Speedup > 1.001) {
			t.Fatalf("baseline-policy cell speedup %.3f != 1", c.Speedup)
		}
		if c.Speedup <= 0 {
			t.Fatalf("cell %d has no speedup", i)
		}
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no best cell")
	}
	for _, c := range res.Cells {
		if c.Speedup > best.Speedup {
			t.Fatalf("best %.3f not maximal (found %.3f)", best.Speedup, c.Speedup)
		}
	}
	// The base-policy cells dedup against the baseline reference jobs:
	// 4 cells + 2 baselines = 6 requested, but only 4 distinct simulations.
	if st := pool.Stats(); st.JobsExecuted != 4 || st.DedupHits != 2 {
		t.Fatalf("executed %d deduped %d; want 4/2", st.JobsExecuted, st.DedupHits)
	}

	// CSV: header + one line per cell.
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "workload,threads,seed,scale,cores") {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Rows align with the header.
	if h, rows := res.Header(), res.Rows(); len(rows) != len(res.Cells) || len(rows[0]) != len(h) {
		t.Fatalf("table shape %dx%d vs header %d", len(rows), len(rows[0]), len(h))
	}
}

// TestRunDeterministicAcrossWorkers pins the worker-count independence of
// the whole aggregate (the byte-identical-output contract).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	a, err := Run(context.Background(), runner.New(runner.Options{Workers: 1}), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), runner.New(runner.Options{Workers: 8}), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep results differ across worker counts")
	}
}

// TestStoreWarmedSweep is the acceptance check for store reuse: a second
// pool over the same store must serve the whole sweep from disk, executing
// zero simulations.
func TestStoreWarmedSweep(t *testing.T) {
	dir := t.TempDir()
	open := func() (*runner.Pool, *store.Store) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return runner.New(runner.Options{Workers: 2, Memo: runner.NewStoreMemo(st)}), st
	}
	pool1, st1 := open()
	cold, err := Run(context.Background(), pool1, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := pool1.Stats(); st.JobsExecuted == 0 {
		t.Fatal("cold sweep executed nothing")
	}
	pool1.Close()
	st1.Close()

	pool2, st2 := open()
	defer st2.Close()
	warm, err := Run(context.Background(), pool2, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if st := pool2.Stats(); st.JobsExecuted != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", st.JobsExecuted)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm sweep result differs from cold run")
	}
}
