package telemetry

// Structured logging: slog construction from the service's -log-format /
// -log-level flags, request-ID generation, and the context plumbing that
// carries a request-scoped logger and ID through handler → engine →
// runner job. Loggers are never nil in context: absent means discard, so
// instrumented code logs unconditionally without nil checks and library
// use without a server stays silent.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format is "text" or
// "json"; level is "debug", "info", "warn" or "error". These are the
// values of sliccd's -log-format and -log-level flags.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (have text, json)", format)
	}
}

// NopLogger returns a logger that discards everything — the stand-in
// wherever a logger is optional.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// NewRequestID returns a fresh 16-hex-character request ID. IDs double as
// trace IDs for the request's span tree.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID beats
		// a panic in a logging path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const (
	loggerKey ctxKey = iota
	requestIDKey
	tracerKey
	spanKey
)

// WithLogger returns ctx carrying logger.
func WithLogger(ctx context.Context, logger *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, logger)
}

// Logger returns the logger carried by ctx, or a discard logger — never
// nil, so callers log unconditionally.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// WithRequestID returns ctx carrying id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
