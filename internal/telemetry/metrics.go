// Package telemetry is the zero-dependency observability layer shared by
// sliccd and the engine: a Prometheus-text metrics registry, structured
// logging helpers over log/slog, and lightweight context-propagated spans.
//
// The repo is stdlib-only by design, so this package reimplements the
// small slice of the Prometheus client it needs instead of importing it:
// atomic counters and gauges, fixed-bucket histograms, callback-sampled
// metrics for bridging existing counters (runner.Stats, store.Stats), and
// text-format exposition. The exposition is deterministic — families and
// series are emitted in sorted order — so golden tests can diff it.
//
// Hot-path rule: nothing in this package may be called from the
// per-instruction simulation loop. Instrumentation happens at request,
// job and cell granularity only; the CI bench-gate enforces that the
// simulator's throughput floors hold.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, as exposed in `# TYPE` lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Label is one name=value metric dimension. Keep cardinality bounded:
// label values must come from small fixed sets (route patterns, methods,
// status codes) — never request IDs or arbitrary client input.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. Values are float64 on the
// wire but held as integral atomic counts internally.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. It holds a float64 behind
// atomic bit operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative buckets, plus a
// running sum and count. Observe is lock-free (one atomic add per bucket
// walk miss, one for count, a CAS loop for the float sum), cheap enough
// for request/job granularity.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets is the default latency bucket layout, in seconds: half a
// millisecond through one minute. Request handling spans five orders of
// magnitude here (a store-hit poll is ~100µs; a cold quick sweep is tens
// of seconds), hence the wide spread.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one labelled instance within a family.
type series struct {
	labels []Label
	sig    string // canonical label signature, the sort/dedup key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// sample, when set, is called at scrape time instead of reading a
	// stored value (CounterFunc/GaugeFunc bridges).
	sample func() float64
}

// family is one named metric with its help text, type, and series.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	series          map[string]*series
}

// Registry holds a process's metric families and renders them in
// Prometheus text exposition format. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; metric handles
// (Counter, Gauge, Histogram) are safe to update concurrently with
// scrapes.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating as needed) the series for name+labels,
// verifying type/help consistency. It panics on a name registered twice
// with conflicting type — always a programming error worth failing loud.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	sig := labelSignature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), sig: sig}
		switch typ {
		case typeCounter:
			s.counter = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = newHistogram(f.buckets)
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first
// use. Repeated calls with the same name and labels return the same
// counter, so call sites may look metrics up per event.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels).counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels).gauge
}

// Histogram returns the histogram for name+labels, registering it on
// first use. buckets apply on first registration of the family (nil =
// DefBuckets) and are shared by every series in it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, typeHistogram, buckets, labels).hist
}

// CounterFunc registers a counter whose value is sampled by fn at scrape
// time — the bridge for pre-existing monotonic counters (engine stats,
// store evictions) that are maintained elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, typeCounter, nil, labels).sample = fn
}

// GaugeFunc registers a gauge sampled by fn at scrape time (store entry
// counts, queue depths, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, typeGauge, nil, labels).sample = fn
}

// WritePrometheus renders every family in text exposition format, sorted
// by family name and series label signature so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sers := make([]*series, 0, len(f.series))
		r.mu.Lock()
		for _, s := range f.series {
			sers = append(sers, s)
		}
		r.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool { return sers[i].sig < sers[j].sig })
		for _, s := range sers {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.sample != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.sample()))
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels), s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.gauge.Value()))
	case s.hist != nil:
		// Cumulative buckets: each le bound reports observations at or
		// below it, ending with the implicit +Inf bucket == _count.
		var cum uint64
		for i, ub := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(append(append([]Label(nil), s.labels...), L("le", formatFloat(ub)))), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			labelString(append(append([]Label(nil), s.labels...), L("le", "+Inf"))), s.hist.Count())
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(s.labels), formatFloat(s.hist.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(s.labels), s.hist.Count())
	}
}

// Handler returns an http.Handler serving the registry in text exposition
// format — the body behind GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// labelSignature canonicalizes a label set for map keying and sort order.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// labelString renders {name="value",…} in caller order (the exposition
// format does not require sorted labels; determinism comes from series
// iteration order). %q escapes exactly what the format demands: backslash,
// double-quote, and newline.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(h string) string { return helpEscaper.Replace(h) }

// formatFloat renders a float the way the exposition format expects:
// integral values without exponent noise, minimal digits otherwise.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
