package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"slicc/internal/telemetry/telemetrytest"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("slicc_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("slicc_test_total", "a counter") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("slicc_test_gauge", "a gauge")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("slicc_conflict", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("slicc_conflict", "x")
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("slicc_reqs_total", "requests", L("route", "/healthz"), L("code", "200")).Add(3)
	r.Counter("slicc_reqs_total", "requests", L("route", "/metrics"), L("code", "200")).Inc()
	r.Gauge("slicc_in_flight", "in-flight requests").Set(2)
	h := r.Histogram("slicc_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("slicc_entries", "entries", func() float64 { return 7 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP slicc_entries entries
# TYPE slicc_entries gauge
slicc_entries 7
# HELP slicc_in_flight in-flight requests
# TYPE slicc_in_flight gauge
slicc_in_flight 2
# HELP slicc_latency_seconds latency
# TYPE slicc_latency_seconds histogram
slicc_latency_seconds_bucket{le="0.1"} 1
slicc_latency_seconds_bucket{le="1"} 2
slicc_latency_seconds_bucket{le="+Inf"} 3
slicc_latency_seconds_sum 5.55
slicc_latency_seconds_count 3
# HELP slicc_reqs_total requests
# TYPE slicc_reqs_total counter
slicc_reqs_total{route="/healthz",code="200"} 3
slicc_reqs_total{route="/metrics",code="200"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second render is byte-identical (deterministic ordering).
	var b2 bytes.Buffer
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Fatal("exposition not deterministic across renders")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("slicc_esc_total", "with \\ and\nnewline", L("v", "a\"b\\c\nd")).Inc()
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP slicc_esc_total with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `slicc_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("slicc_h_total", "h").Add(2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := telemetrytest.ParsePrometheus(t, rec.Body.String())
	if samples["slicc_h_total"] != 2 {
		t.Fatalf("samples %v", samples)
	}
}

// TestConcurrentRegistryUpdates exercises every metric kind from many
// goroutines while scrapes run — the -race test the issue calls for.
func TestConcurrentRegistryUpdates(t *testing.T) {
	r := NewRegistry()
	var workers sync.WaitGroup
	for i := 0; i < 8; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			c := r.Counter("slicc_conc_total", "c", L("w", fmt.Sprint(i%2)))
			g := r.Gauge("slicc_conc_gauge", "g")
			h := r.Histogram("slicc_conc_seconds", "h", nil)
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%7) / 100)
			}
		}(i)
	}
	// Scrape continuously while the writers run.
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-scraped

	total := r.Counter("slicc_conc_total", "c", L("w", "0")).Value() +
		r.Counter("slicc_conc_total", "c", L("w", "1")).Value()
	if total != 8*2000 {
		t.Fatalf("lost counter increments: %d != %d", total, 8*2000)
	}
	if got := r.Histogram("slicc_conc_seconds", "h", nil).Count(); got != 8*2000 {
		t.Fatalf("lost observations: %d", got)
	}
	if g := r.Gauge("slicc_conc_gauge", "g").Value(); g != 0 {
		t.Fatalf("gauge drifted: %v", g)
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON line: %q (%v)", b.String(), err)
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Fatalf("record %v", rec)
	}
	if strings.Contains(b.String(), "hidden") {
		t.Fatal("debug line leaked at info level")
	}
	if _, err := NewLogger(&b, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestRequestIDAndContext(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q %q", a, b)
	}
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty ctx has an id")
	}
	ctx = WithRequestID(ctx, a)
	if RequestID(ctx) != a {
		t.Fatal("id not carried")
	}
	if Logger(ctx) == nil {
		t.Fatal("Logger returned nil")
	}
	lg := NopLogger()
	if Logger(WithLogger(ctx, lg)) != lg {
		t.Fatal("logger not carried")
	}
}

func TestSpans(t *testing.T) {
	// No tracer: nil span, all methods inert.
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil || ctx2 != ctx {
		t.Fatal("span without tracer should be nil and ctx unchanged")
	}
	sp.SetAttrs(slog.String("k", "v"))
	sp.End()

	// Tracer: spans nest, log at debug, and feed OnSpan.
	var b bytes.Buffer
	lg, _ := NewLogger(&b, "json", "debug")
	var durations []time.Duration
	var names []string
	tr := &Tracer{Logger: lg, OnSpan: func(name string, d time.Duration) {
		names = append(names, name)
		durations = append(durations, d)
	}}
	ctx = WithTracer(WithRequestID(context.Background(), "req1234"), tr)
	ctx, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner", slog.Int("cells", 4))
	inner.End()
	outer.End()

	if len(names) != 2 || names[0] != "inner" || names[1] != "outer" {
		t.Fatalf("OnSpan order %v", names)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 span log lines, got %d:\n%s", len(lines), b.String())
	}
	var in, out map[string]any
	json.Unmarshal([]byte(lines[0]), &in)
	json.Unmarshal([]byte(lines[1]), &out)
	if in["trace_id"] != "req1234" || out["trace_id"] != "req1234" {
		t.Fatalf("trace ids: %v / %v", in["trace_id"], out["trace_id"])
	}
	if in["parent_id"] != out["span_id"] {
		t.Fatalf("inner parent %v != outer id %v", in["parent_id"], out["span_id"])
	}
	if in["cells"] != float64(4) {
		t.Fatalf("attr lost: %v", in)
	}
	if _, ok := out["parent_id"]; ok {
		t.Fatal("root span has a parent")
	}
}

func TestSpanWithoutRequestIDGetsOwnTrace(t *testing.T) {
	ctx := WithTracer(context.Background(), &Tracer{})
	_, sp := StartSpan(ctx, "solo")
	if sp.Trace == "" || sp.Trace != sp.ID {
		t.Fatalf("solo span trace %q id %q", sp.Trace, sp.ID)
	}
	sp.End()
}
