// Package telemetrytest holds test helpers for the telemetry package's
// Prometheus exposition: a strict little parser that both the registry's
// own golden tests and the server's /metrics tests share.
package telemetrytest

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// ParsePrometheus validates text-format exposition line shapes (HELP/TYPE
// headers, known types, one value per series, no stray comments) and
// returns sample key (name plus label block) -> value. Malformed input
// fails the test.
func ParsePrometheus(t testing.TB, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("malformed label block in %q", line)
			}
			base = base[:i]
		}
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if _, ok := types[fam]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}
