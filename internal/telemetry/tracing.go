package telemetry

// Lightweight request tracing. A Span is a named, timed unit of work with
// a trace ID (shared by every span of one request) and a span ID, carried
// through context so layers that know nothing about each other — HTTP
// handler, engine, runner job, sim run — end up in one tree. Spans are
// emitted as structured log events at debug level and their durations
// feed a histogram via the Tracer's OnSpan hook; there is no in-memory
// span store or export protocol, deliberately: the log stream *is* the
// trace sink, grep-able by trace ID.
//
// Cost model: StartSpan is two context lookups and a context allocation;
// End is a time.Since, a hook call and a debug log. That is fine at
// request/job/cell granularity and forbidden in the per-instruction loop.
// Without a Tracer in context, StartSpan returns a nil span whose methods
// are no-ops, so instrumented library code costs one context lookup when
// telemetry is off.

import (
	"context"
	"log/slog"
	"time"
)

// Tracer is the per-process span sink: where finished spans are logged
// and how their durations are aggregated. Attach one to a context root
// (sliccd does this once at startup) to activate the spans beneath it.
type Tracer struct {
	// Logger receives one debug event per finished span. Nil discards.
	Logger *slog.Logger
	// OnSpan, if set, is called with each finished span's name and
	// duration — the bridge into the span-duration histogram.
	OnSpan func(name string, d time.Duration)
}

// WithTracer returns ctx carrying t, activating StartSpan beneath it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// tracerFrom returns the Tracer carried by ctx, nil when absent.
func tracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Span is one timed unit of work. A nil *Span is valid and inert, so
// callers never branch on whether tracing is active.
type Span struct {
	tracer *Tracer
	// Trace is the trace ID shared by the request's whole span tree (the
	// request ID when one is in context); Parent is the enclosing span's
	// ID, "" at the root.
	Trace  string
	ID     string
	Parent string
	Name   string
	start  time.Time
	attrs  []slog.Attr
}

// StartSpan begins a span named name under any enclosing span in ctx and
// returns a context carrying it as the new parent. Without a Tracer in
// ctx it returns (ctx, nil) — and nil spans no-op — so instrumented code
// needs no telemetry-enabled check.
func StartSpan(ctx context.Context, name string, attrs ...slog.Attr) (context.Context, *Span) {
	t := tracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		Trace:  RequestID(ctx),
		ID:     NewRequestID(),
		Name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	if s.Trace == "" {
		s.Trace = s.ID
	}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.Parent = parent.ID
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttrs appends attributes emitted with the span's end event.
func (s *Span) SetAttrs(attrs ...slog.Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End finishes the span: duration into the tracer's OnSpan hook, one
// debug log event with the span's identity and attributes.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if s.tracer.OnSpan != nil {
		s.tracer.OnSpan(s.Name, d)
	}
	if s.tracer.Logger == nil {
		return
	}
	attrs := make([]slog.Attr, 0, len(s.attrs)+5)
	attrs = append(attrs,
		slog.String("span", s.Name),
		slog.String("trace_id", s.Trace),
		slog.String("span_id", s.ID),
	)
	if s.Parent != "" {
		attrs = append(attrs, slog.String("parent_id", s.Parent))
	}
	attrs = append(attrs, slog.Duration("duration", d))
	attrs = append(attrs, s.attrs...)
	s.tracer.Logger.LogAttrs(context.Background(), slog.LevelDebug, "span", attrs...)
}
