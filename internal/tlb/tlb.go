// Package tlb models instruction and data translation lookaside buffers.
// The paper reports SLICC's side effects on TLBs (Section 5.5: D-TLB misses
// rise ~8-11% with migration, I-TLB misses stay within ±0.5%), so the
// simulator carries a small fully-associative TLB per core and reference
// stream to reproduce that measurement.
//
// The model is a presence model: translations are not computed, only the
// reach and replacement behaviour matter.
package tlb

import "fmt"

// Config describes a TLB.
type Config struct {
	// Entries is the number of translations held (default 64).
	Entries int
	// PageBytes is the page size (default 4096; must be a power of two).
	PageBytes int
	// MissLatency is the page-walk cost in cycles (default 30).
	MissLatency int
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 64
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.MissLatency == 0 {
		c.MissLatency = 30
	}
	return c
}

// Stats counts TLB activity.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 for an untouched TLB).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TLB is a fully-associative, true-LRU translation buffer.
type TLB struct {
	cfg       Config
	pageShift uint
	nodes     map[uint64]*node
	head      *node // MRU
	tail      *node // LRU
	stats     Stats
}

type node struct {
	page       uint64
	prev, next *node
}

// New builds a TLB; it panics on a non-power-of-two page size.
func New(cfg Config) *TLB {
	cfg = cfg.withDefaults()
	if cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic(fmt.Sprintf("tlb: page size %d not a power of two", cfg.PageBytes))
	}
	if cfg.Entries <= 0 {
		panic("tlb: need at least one entry")
	}
	shift := uint(0)
	for 1<<shift < cfg.PageBytes {
		shift++
	}
	return &TLB{
		cfg:       cfg,
		pageShift: shift,
		nodes:     make(map[uint64]*node, cfg.Entries+1),
	}
}

// Config returns the configuration with defaults applied.
func (t *TLB) Config() Config { return t.cfg }

// Page returns the page number of a byte address.
func (t *TLB) Page(addr uint64) uint64 { return addr >> t.pageShift }

// Access translates addr, returning the added latency (0 on a hit,
// MissLatency on a page walk).
func (t *TLB) Access(addr uint64) int {
	t.stats.Accesses++
	page := t.Page(addr)
	if n, ok := t.nodes[page]; ok {
		t.unlink(n)
		t.pushFront(n)
		return 0
	}
	t.stats.Misses++
	n := &node{page: page}
	t.nodes[page] = n
	t.pushFront(n)
	if len(t.nodes) > t.cfg.Entries {
		lru := t.tail
		t.unlink(lru)
		delete(t.nodes, lru.page)
	}
	return t.cfg.MissLatency
}

// Contains probes for a page without side effects.
func (t *TLB) Contains(addr uint64) bool {
	_, ok := t.nodes[t.Page(addr)]
	return ok
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.nodes) }

// Flush empties the TLB (context-switch cost model hook). Statistics are
// preserved.
func (t *TLB) Flush() {
	t.nodes = make(map[uint64]*node, t.cfg.Entries+1)
	t.head, t.tail = nil, nil
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

func (t *TLB) pushFront(n *node) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *TLB) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
