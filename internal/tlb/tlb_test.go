package tlb

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	tl := New(Config{})
	if lat := tl.Access(0x1000); lat != 30 {
		t.Fatalf("first access latency = %d, want 30", lat)
	}
	if lat := tl.Access(0x1fff); lat != 0 {
		t.Fatalf("same-page access latency = %d, want 0", lat)
	}
	st := tl.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPageMapping(t *testing.T) {
	tl := New(Config{PageBytes: 4096})
	if tl.Page(0x1000) != 1 || tl.Page(0xfff) != 0 {
		t.Fatal("page mapping wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(Config{Entries: 2})
	tl.Access(0x1000)
	tl.Access(0x2000)
	tl.Access(0x1000) // 0x2000 is now LRU
	tl.Access(0x3000) // evicts 0x2000
	if tl.Contains(0x2000) {
		t.Fatal("LRU page survived")
	}
	if !tl.Contains(0x1000) || !tl.Contains(0x3000) {
		t.Fatal("resident pages missing")
	}
}

func TestFlush(t *testing.T) {
	tl := New(Config{})
	tl.Access(0x1000)
	tl.Flush()
	if tl.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if tl.Stats().Accesses != 1 {
		t.Fatal("flush cleared stats")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{{PageBytes: 1000}, {Entries: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate not 0")
	}
	if (Stats{Accesses: 4, Misses: 1}).MissRate() != 0.25 {
		t.Fatal("miss rate wrong")
	}
}

// Property: entry count never exceeds capacity; an access immediately
// followed by a same-page access always hits.
func TestPropBoundedAndSticky(t *testing.T) {
	f := func(addrs []uint32) bool {
		tl := New(Config{Entries: 8})
		for _, a := range addrs {
			tl.Access(uint64(a))
			if tl.Len() > 8 {
				return false
			}
			if tl.Access(uint64(a)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: stats are consistent (misses <= accesses) under any stream.
func TestPropStatsConsistent(t *testing.T) {
	f := func(addrs []uint16) bool {
		tl := New(Config{Entries: 4, PageBytes: 4096})
		for _, a := range addrs {
			tl.Access(uint64(a) << 8)
		}
		st := tl.Stats()
		return st.Misses <= st.Accesses && st.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
