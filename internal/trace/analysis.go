package trace

import (
	"fmt"
	"io"
	"sort"
)

// Analysis summarizes a trace the way Section 2 of the paper characterizes
// its workloads: instruction/data mix, store fraction, block footprints,
// and the LRU stack-distance (reuse-distance) profile of the instruction
// stream — the quantity that explains why OLTP code thrashes a 32KB L1-I
// ("reuse over regions that are larger than a typical L1 cache size").
type Analysis struct {
	Ops          int
	DataOps      int
	Stores       int
	IBlocks      int // distinct instruction blocks (64B)
	DBlocks      int // distinct data blocks
	IFootprintKB int
	DFootprintKB int

	// IReuseBuckets histograms instruction-block reuse distances into
	// power-of-two buckets: bucket i counts re-references with stack
	// distance in [2^i, 2^(i+1)). Cold (first) references are not counted.
	IReuseBuckets []int
	// ColdRefs counts first-touch block references.
	ColdRefs int
}

// Analyze consumes up to maxOps from src (0 = all) and computes the
// analysis. Reuse distances are exact Mattson stack distances over
// instruction blocks; cost is O(ops x footprint), so bound maxOps for large
// traces.
func Analyze(src Source, maxOps int) Analysis {
	const blockBytes = 64
	var a Analysis
	iSeen := map[uint64]bool{}
	dSeen := map[uint64]bool{}
	// Mattson stack: most recent block at the end.
	var stack []uint64
	touch := func(block uint64) (dist int, cold bool) {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i] == block {
				dist = len(stack) - 1 - i
				stack = append(stack[:i], stack[i+1:]...)
				stack = append(stack, block)
				return dist, false
			}
		}
		stack = append(stack, block)
		return 0, true
	}

	for maxOps <= 0 || a.Ops < maxOps {
		op, ok := src.Next()
		if !ok {
			break
		}
		a.Ops++
		iblock := op.PC / blockBytes
		if !iSeen[iblock] {
			iSeen[iblock] = true
		}
		if dist, cold := touch(iblock); cold {
			a.ColdRefs++
		} else {
			b := bucketOf(dist)
			for len(a.IReuseBuckets) <= b {
				a.IReuseBuckets = append(a.IReuseBuckets, 0)
			}
			a.IReuseBuckets[b]++
		}
		if op.HasData {
			a.DataOps++
			if op.IsWrite {
				a.Stores++
			}
			dSeen[op.DataAddr/blockBytes] = true
		}
	}
	a.IBlocks = len(iSeen)
	a.DBlocks = len(dSeen)
	a.IFootprintKB = a.IBlocks * blockBytes / 1024
	a.DFootprintKB = a.DBlocks * blockBytes / 1024
	return a
}

// bucketOf maps a stack distance to its power-of-two bucket.
func bucketOf(dist int) int {
	b := 0
	for dist > 1 {
		dist >>= 1
		b++
	}
	return b
}

// BucketLabel renders bucket i's distance range.
func BucketLabel(i int) string {
	lo := 1 << uint(i)
	hi := 1<<uint(i+1) - 1
	if i == 0 {
		return "0-1"
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// ReuseBeyond returns the fraction of re-references whose stack distance is
// at least blocks — i.e., the reuse an LRU cache of that many blocks would
// miss. For the paper's claim, a large share of TPC-C/TPC-E instruction
// reuse sits beyond 512 blocks (32KB).
func (a Analysis) ReuseBeyond(blocks int) float64 {
	total, beyond := 0, 0
	for i, n := range a.IReuseBuckets {
		total += n
		if 1<<uint(i) >= blocks {
			beyond += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(beyond) / float64(total)
}

// StoreFraction returns stores/dataOps.
func (a Analysis) StoreFraction() float64 {
	if a.DataOps == 0 {
		return 0
	}
	return float64(a.Stores) / float64(a.DataOps)
}

// DataRate returns dataOps/ops.
func (a Analysis) DataRate() float64 {
	if a.Ops == 0 {
		return 0
	}
	return float64(a.DataOps) / float64(a.Ops)
}

// Print renders the analysis.
func (a Analysis) Print(w io.Writer) {
	fmt.Fprintf(w, "ops              %d\n", a.Ops)
	fmt.Fprintf(w, "data ops         %d (%.1f%% of ops, %.1f%% stores)\n",
		a.DataOps, 100*a.DataRate(), 100*a.StoreFraction())
	fmt.Fprintf(w, "instr footprint  %d KB (%d blocks)\n", a.IFootprintKB, a.IBlocks)
	fmt.Fprintf(w, "data footprint   %d KB (%d blocks)\n", a.DFootprintKB, a.DBlocks)
	fmt.Fprintf(w, "cold refs        %d\n", a.ColdRefs)
	fmt.Fprintf(w, "reuse beyond 32KB-LRU: %.1f%%\n", 100*a.ReuseBeyond(512))
	fmt.Fprintln(w, "instruction reuse distance histogram (blocks):")
	maxCount := 0
	for _, n := range a.IReuseBuckets {
		if n > maxCount {
			maxCount = n
		}
	}
	for i, n := range a.IReuseBuckets {
		if n == 0 {
			continue
		}
		bar := ""
		if maxCount > 0 {
			width := n * 40 / maxCount
			for j := 0; j < width; j++ {
				bar += "#"
			}
		}
		fmt.Fprintf(w, "  %12s %8d %s\n", BucketLabel(i), n, bar)
	}
}

// TopBlocks returns the n most-touched instruction blocks with their access
// counts (diagnostic for hot-code identification).
func TopBlocks(src Source, maxOps, n int) []BlockCount {
	const blockBytes = 64
	counts := map[uint64]int{}
	ops := 0
	for maxOps <= 0 || ops < maxOps {
		op, ok := src.Next()
		if !ok {
			break
		}
		ops++
		counts[op.PC/blockBytes]++
	}
	list := make([]BlockCount, 0, len(counts))
	for b, c := range counts {
		list = append(list, BlockCount{Block: b, Count: c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Count != list[j].Count {
			return list[i].Count > list[j].Count
		}
		return list[i].Block < list[j].Block
	})
	if len(list) > n {
		list = list[:n]
	}
	return list
}

// BlockCount pairs a block address with its access count.
type BlockCount struct {
	Block uint64
	Count int
}
