package trace

import (
	"bytes"
	"strings"
	"testing"
)

func opsFor(pcs []uint64) []Op {
	ops := make([]Op, len(pcs))
	for i, pc := range pcs {
		ops[i] = Op{PC: pc}
	}
	return ops
}

func TestAnalyzeBasics(t *testing.T) {
	ops := []Op{
		{PC: 0},
		{PC: 64, HasData: true, DataAddr: 0x1000},
		{PC: 128, HasData: true, DataAddr: 0x2000, IsWrite: true},
		{PC: 0}, // reuse distance 2
	}
	a := Analyze(NewSliceSource(ops), 0)
	if a.Ops != 4 || a.DataOps != 2 || a.Stores != 1 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.IBlocks != 3 || a.ColdRefs != 3 {
		t.Fatalf("blocks = %d cold = %d", a.IBlocks, a.ColdRefs)
	}
	if a.StoreFraction() != 0.5 || a.DataRate() != 0.5 {
		t.Fatalf("fractions wrong: %+v", a)
	}
	// The single re-reference had stack distance 2: bucket 1.
	if len(a.IReuseBuckets) < 2 || a.IReuseBuckets[1] != 1 {
		t.Fatalf("reuse buckets = %v", a.IReuseBuckets)
	}
}

func TestAnalyzeMaxOps(t *testing.T) {
	ops := opsFor([]uint64{0, 64, 128, 192})
	a := Analyze(NewSliceSource(ops), 2)
	if a.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", a.Ops)
	}
}

func TestReuseBeyond(t *testing.T) {
	// Loop over 1024 distinct blocks twice: every re-reference has stack
	// distance 1023, beyond a 512-block cache.
	var pcs []uint64
	for pass := 0; pass < 2; pass++ {
		for b := uint64(0); b < 1024; b++ {
			pcs = append(pcs, b*64)
		}
	}
	a := Analyze(NewSliceSource(opsFor(pcs)), 0)
	if got := a.ReuseBeyond(512); got != 1 {
		t.Fatalf("ReuseBeyond(512) = %f, want 1", got)
	}
	if got := a.ReuseBeyond(2048); got != 0 {
		t.Fatalf("ReuseBeyond(2048) = %f, want 0", got)
	}
}

func TestReuseWithin(t *testing.T) {
	// Tight loop over 4 blocks: distances 3 << 512.
	var pcs []uint64
	for pass := 0; pass < 10; pass++ {
		for b := uint64(0); b < 4; b++ {
			pcs = append(pcs, b*64)
		}
	}
	a := Analyze(NewSliceSource(opsFor(pcs)), 0)
	if got := a.ReuseBeyond(512); got != 0 {
		t.Fatalf("ReuseBeyond(512) = %f, want 0", got)
	}
}

func TestBucketLabel(t *testing.T) {
	if BucketLabel(0) != "0-1" {
		t.Fatal(BucketLabel(0))
	}
	if BucketLabel(3) != "8-15" {
		t.Fatal(BucketLabel(3))
	}
}

func TestPrint(t *testing.T) {
	a := Analyze(NewSliceSource(opsFor([]uint64{0, 64, 0, 64})), 0)
	var buf bytes.Buffer
	a.Print(&buf)
	out := buf.String()
	for _, want := range []string{"ops", "instr footprint", "reuse distance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestTopBlocks(t *testing.T) {
	pcs := []uint64{0, 0, 0, 64, 64, 128}
	top := TopBlocks(NewSliceSource(opsFor(pcs)), 0, 2)
	if len(top) != 2 {
		t.Fatalf("got %d entries", len(top))
	}
	if top[0].Block != 0 || top[0].Count != 3 {
		t.Fatalf("top block = %+v", top[0])
	}
	if top[1].Block != 1 || top[1].Count != 2 {
		t.Fatalf("second block = %+v", top[1])
	}
}

func TestEmptyAnalysis(t *testing.T) {
	a := Analyze(NewSliceSource(nil), 0)
	if a.Ops != 0 || a.ReuseBeyond(1) != 0 || a.DataRate() != 0 || a.StoreFraction() != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}
