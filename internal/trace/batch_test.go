package trace

// Equivalence tests for the BatchSource fast paths: draining a source
// through NextBatch (at assorted batch sizes, and mixed with Next calls)
// must yield exactly the ops, count and error state of a plain Next loop.

import (
	"bytes"
	"math/rand"
	"testing"
)

// batchTestOps builds a mixed op stream with data accesses and writes.
func batchTestOps(n int) []Op {
	rng := rand.New(rand.NewSource(9))
	ops := make([]Op, n)
	pc := uint64(0x40_0000)
	for i := range ops {
		op := Op{PC: pc}
		pc += 4
		if rng.Intn(8) == 0 {
			pc = 0x40_0000 + uint64(rng.Intn(1<<18))
		}
		if rng.Intn(3) == 0 {
			op.HasData = true
			op.DataAddr = 0x5000_0000_0000 + uint64(rng.Intn(1<<24))
			op.IsWrite = rng.Intn(2) == 0
		}
		ops[i] = op
	}
	return ops
}

// drainNext fully drains a source via Next.
func drainNext(s Source) []Op {
	var out []Op
	for {
		op, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, op)
	}
}

// drainBatch fully drains a BatchSource via NextBatch with the given
// buffer size.
func drainBatch(s BatchSource, size int) []Op {
	var out []Op
	buf := make([]Op, size)
	for {
		n := s.NextBatch(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func equalOps(t *testing.T, label string, got, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ops, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: op %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestSliceSourceNextBatch(t *testing.T) {
	ops := batchTestOps(1000)
	for _, size := range []int{1, 7, 256, 2000} {
		equalOps(t, "slice", drainBatch(NewSliceSource(ops), size), ops)
	}
	// NextSpan must agree too.
	s := NewSliceSource(ops)
	var out []Op
	for {
		sp := s.NextSpan(33)
		if len(sp) == 0 {
			break
		}
		out = append(out, sp...)
	}
	equalOps(t, "span", out, ops)
}

// containerFor writes ops as a one-thread v2 container and reopens it.
func containerFor(t *testing.T, ops []Op) *File {
	t.Helper()
	var m memFile
	if err := WriteWorkload(&m, "batch", []Thread{sliceThread(0, 0, "T", ops)}); err != nil {
		t.Fatal(err)
	}
	c, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFileSourceNextBatchV2(t *testing.T) {
	ops := batchTestOps(2000)
	c := containerFor(t, ops)
	equalOps(t, "v2 next", drainNext(c.Source(0)), ops)
	for _, size := range []int{1, 3, 64, 256, 4096} {
		src := c.Source(0)
		equalOps(t, "v2 batch", drainBatch(src, size), ops)
		if src.Err() != nil {
			t.Fatalf("batch drain errored: %v", src.Err())
		}
	}
	// Mixed consumption: alternate Next and NextBatch.
	src := c.Source(0)
	var out []Op
	buf := make([]Op, 17)
	for {
		if len(out)%2 == 0 {
			op, ok := src.Next()
			if !ok {
				break
			}
			out = append(out, op)
			continue
		}
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	equalOps(t, "v2 mixed", out, ops)
	if src.Err() != nil {
		t.Fatalf("mixed drain errored: %v", src.Err())
	}
}

func TestFileSourceNextBatchV1(t *testing.T) {
	ops := batchTestOps(500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	c, err := NewFileReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Version() != 1 {
		t.Fatalf("version = %d, want 1", c.Version())
	}
	for _, size := range []int{1, 11, 256} {
		src := c.Source(0)
		equalOps(t, "v1 batch", drainBatch(src, size), ops)
		if src.Err() != nil {
			t.Fatalf("v1 batch drain errored: %v", src.Err())
		}
	}
}

// TestFileSourceNextBatchCorrupt checks that a corrupted stream behaves
// identically under Next and NextBatch: same decoded prefix, same error
// state. Every byte of the stream span is flipped in turn.
func TestFileSourceNextBatchCorrupt(t *testing.T) {
	ops := batchTestOps(40)
	var m memFile
	if err := WriteWorkload(&m, "corrupt", []Thread{sliceThread(0, 0, "T", ops)}); err != nil {
		t.Fatal(err)
	}
	c, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	meta := c.Meta(0)
	for i := int(meta.offset); i < int(meta.offset+meta.length); i++ {
		corrupt := append([]byte(nil), m.buf...)
		corrupt[i] ^= 0xff
		cc, err := NewFileReader(bytes.NewReader(corrupt), int64(len(corrupt)))
		if err != nil {
			continue
		}
		nextSrc := cc.Source(0)
		nextOps := drainNext(nextSrc)
		batchSrc := cc.Source(0)
		batchOps := drainBatch(batchSrc, 7)
		equalOps(t, "corrupt", batchOps, nextOps)
		if (nextSrc.Err() == nil) != (batchSrc.Err() == nil) {
			t.Fatalf("flip at %d: error state diverges: next=%v batch=%v", i, nextSrc.Err(), batchSrc.Err())
		}
	}
}
