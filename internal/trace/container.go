package trace

// This file implements the v2 whole-workload trace container: a single
// binary file holding every thread of a workload, replayable with constant
// memory. The v1 format (trace.go) serializes one thread and is decoded
// fully into memory; v2 adds a thread table with per-thread metadata and
// per-thread delta-encoded op streams addressable by byte offset, so a
// FileSource can stream any thread straight off the file. docs/TRACES.md is
// the byte-level specification of both versions.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// containerVersion identifies the v2 multi-thread container format.
const containerVersion = 2

// Sanity bounds enforced when decoding container headers. They reject
// forged headers early instead of letting a hostile file drive huge
// allocations; real workloads sit orders of magnitude below all of them.
const (
	maxNameLen   = 1 << 12 // workload and type names
	maxThreads   = 1 << 22 // threads per container
	maxThreadID  = 1 << 31 // per-thread id values
	maxTypeIndex = 1 << 16 // transaction type indices (index slices downstream)
	minOpBytes   = 2       // flags byte + at least a 1-byte PC delta
	sourceBufKB  = 64      // FileSource read-ahead buffer
	threadFixedW = 24      // bytes of fixed-width (ops, offset, length) per thread
	// minTableEntry is the smallest on-disk thread-table entry: 1-byte id,
	// 1-byte type, 1-byte empty name, and the fixed-width triple. Bounding
	// the declared thread count by file size / minTableEntry rejects forged
	// counts before the table is allocated.
	minTableEntry = 3 + threadFixedW
)

// ThreadMeta is the per-thread header record of a v2 container: the
// thread's identity plus the size and location of its op stream.
type ThreadMeta struct {
	// ID is the thread id recorded at capture time.
	ID int
	// Type is the transaction type index within the captured workload.
	Type int
	// TypeName is the human-readable transaction type.
	TypeName string
	// Ops is the number of ops in the thread's stream.
	Ops uint64

	// offset/length locate the encoded op stream within the container.
	offset, length int64
}

// countingWriter tracks the absolute file offset of everything written
// through it, which is how WriteWorkload learns the patch positions and
// stream offsets it writes into the thread table.
type countingWriter struct {
	w   io.Writer
	off int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.off += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// WriteWorkload writes every thread of a workload to w as a v2 container.
// Threads are drained via their New sources in slice order, one at a time,
// so memory stays constant no matter how large the capture is. The writer
// must be an io.WriteSeeker because per-thread op counts and stream sizes
// are known only after each stream is drained: the thread table is laid
// down first with zeroed fixed-width fields and patched at the end.
func WriteWorkload(w io.WriteSeeker, name string, threads []Thread) error {
	// Enforce the reader's bounds at write time too: a capture that the
	// format's own reader would reject must fail here, not at replay.
	if len(threads) > maxThreads {
		return fmt.Errorf("%w: %d threads exceeds container limit", ErrBadTrace, len(threads))
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("%w: workload name of %d bytes exceeds limit %d", ErrBadTrace, len(name), maxNameLen)
	}
	for i, th := range threads {
		if len(th.TypeName) > maxNameLen {
			return fmt.Errorf("%w: thread %d type name of %d bytes exceeds limit %d", ErrBadTrace, i, len(th.TypeName), maxNameLen)
		}
		if th.ID < 0 || th.ID > maxThreadID {
			return fmt.Errorf("%w: thread %d id %d out of range", ErrBadTrace, i, th.ID)
		}
		if th.Type < 0 || th.Type > maxTypeIndex {
			return fmt.Errorf("%w: thread %d type index %d out of range", ErrBadTrace, i, th.Type)
		}
	}
	cw := &countingWriter{w: w}
	if _, err := cw.Write(traceMagic[:]); err != nil {
		return err
	}
	if _, err := cw.Write([]byte{containerVersion}); err != nil {
		return err
	}
	if err := writeString(cw, name); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(len(threads))); err != nil {
		return err
	}

	// Thread table. The variable-width identity fields are final; the
	// fixed-width (ops, offset, length) triple of each entry is zeroed now
	// and patched once the thread's stream has been written.
	patchAt := make([]int64, len(threads))
	var zero [threadFixedW]byte
	for i, th := range threads {
		if err := writeUvarint(cw, uint64(th.ID)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(th.Type)); err != nil {
			return err
		}
		if err := writeString(cw, th.TypeName); err != nil {
			return err
		}
		patchAt[i] = cw.off
		if _, err := cw.Write(zero[:]); err != nil {
			return err
		}
	}

	// Op streams: drain each thread's source through a buffered
	// delta-encoder. Only one source is live at a time and nothing is
	// retained, so writing a multi-GB container uses constant memory.
	metas := make([]ThreadMeta, len(threads))
	bw := bufio.NewWriterSize(cw, sourceBufKB<<10)
	for i, th := range threads {
		start := cw.off
		var (
			prevPC, prevData uint64
			count            uint64
			buf              [binary.MaxVarintLen64]byte
		)
		src := th.New()
		for {
			op, ok := src.Next()
			if !ok {
				break
			}
			var flags byte
			if op.HasData {
				flags |= 1
			}
			if op.IsWrite {
				flags |= 2
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			n := binary.PutVarint(buf[:], int64(op.PC-prevPC))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prevPC = op.PC
			if op.HasData {
				n = binary.PutVarint(buf[:], int64(op.DataAddr-prevData))
				if _, err := bw.Write(buf[:n]); err != nil {
					return err
				}
				prevData = op.DataAddr
			}
			count++
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		metas[i] = ThreadMeta{Ops: count, offset: start, length: cw.off - start}
	}
	end := cw.off

	// Patch the fixed-width fields, then restore the write position so a
	// caller appending after WriteWorkload lands past the container.
	var fixed [threadFixedW]byte
	for i, at := range patchAt {
		binary.LittleEndian.PutUint64(fixed[0:], metas[i].Ops)
		binary.LittleEndian.PutUint64(fixed[8:], uint64(metas[i].offset))
		binary.LittleEndian.PutUint64(fixed[16:], uint64(metas[i].length))
		if _, err := w.Seek(at, io.SeekStart); err != nil {
			return err
		}
		if _, err := w.Write(fixed[:]); err != nil {
			return err
		}
	}
	_, err := w.Seek(end, io.SeekStart)
	return err
}

// File is an open trace container. It supports both the v2 multi-thread
// format and, for interoperability with single-thread dumps, the v1 format
// (exposed as a one-thread container). A File only holds the decoded header;
// op streams stay on disk and are streamed on demand by FileSource, so an
// arbitrarily large container costs header-sized memory. A File is safe for
// concurrent use: sources read through io.ReaderAt and share no state.
type File struct {
	r       io.ReaderAt
	closer  io.Closer
	version int
	name    string
	metas   []ThreadMeta
}

// OpenWorkload opens the trace container at path. Close the returned File
// when no source derived from it is in use anymore.
func OpenWorkload(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c, err := NewFileReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	c.closer = f
	return c, nil
}

// NewFileReader parses a container header from r (of the given total size)
// and returns a File streaming from it. It validates the header fully —
// versions, string and table bounds, and that every thread's stream span
// and op count are consistent with the file size — so later streaming hits
// no surprises a well-formed header could have caught.
func NewFileReader(r io.ReaderAt, size int64) (*File, error) {
	hr := &posReader{r: io.NewSectionReader(r, 0, size)}
	br := bufio.NewReader(hr)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w", errTruncated(err))
	}
	if magic != traceMagic {
		return nil, ErrBadTrace
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, errTruncated(err)
	}
	switch ver {
	case traceVersion:
		return newV1Reader(r, size, br, hr)
	case containerVersion:
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}

	name, err := readString(br, maxNameLen)
	if err != nil {
		return nil, fmt.Errorf("workload name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, errTruncated(err)
	}
	if count > maxThreads {
		return nil, fmt.Errorf("%w: absurd thread count %d", ErrBadTrace, count)
	}
	// The remaining bytes must at least hold the declared table; checking
	// before allocating keeps a forged count in a tiny file from driving a
	// huge ThreadMeta allocation.
	if consumed := hr.pos - int64(br.Buffered()); count > uint64(size-consumed)/minTableEntry {
		return nil, fmt.Errorf("%w: thread count %d cannot fit in %d bytes", ErrBadTrace, count, size)
	}
	metas := make([]ThreadMeta, count)
	var fixed [threadFixedW]byte
	for i := range metas {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("thread %d id: %w", i, errTruncated(err))
		}
		if id > maxThreadID {
			return nil, fmt.Errorf("%w: thread %d absurd id %d", ErrBadTrace, i, id)
		}
		ty, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("thread %d type: %w", i, errTruncated(err))
		}
		if ty > maxTypeIndex {
			return nil, fmt.Errorf("%w: thread %d absurd type index %d", ErrBadTrace, i, ty)
		}
		tn, err := readString(br, maxNameLen)
		if err != nil {
			return nil, fmt.Errorf("thread %d type name: %w", i, err)
		}
		if _, err := io.ReadFull(br, fixed[:]); err != nil {
			return nil, fmt.Errorf("thread %d table entry: %w", i, errTruncated(err))
		}
		metas[i] = ThreadMeta{
			ID:       int(id),
			Type:     int(ty),
			TypeName: tn,
			Ops:      binary.LittleEndian.Uint64(fixed[0:]),
			offset:   int64(binary.LittleEndian.Uint64(fixed[8:])),
			length:   int64(binary.LittleEndian.Uint64(fixed[16:])),
		}
	}
	tableEnd := hr.pos - int64(br.Buffered())
	for i, m := range metas {
		// Streams must lie between the thread table and end-of-file, and a
		// declared op count must be achievable in the declared byte length
		// (every op occupies at least minOpBytes); this rejects forged
		// counts at open time instead of mid-replay.
		if m.offset < tableEnd || m.length < 0 || m.offset > size || m.length > size-m.offset {
			return nil, fmt.Errorf("%w: thread %d stream [%d,+%d) outside file", ErrBadTrace, i, m.offset, m.length)
		}
		if m.Ops > uint64(m.length)/minOpBytes {
			return nil, fmt.Errorf("%w: thread %d claims %d ops in %d bytes", ErrBadTrace, i, m.Ops, m.length)
		}
	}
	return &File{r: r, version: containerVersion, name: name, metas: metas}, nil
}

// newV1Reader adapts a v1 single-thread trace (magic and version already
// consumed from br) as a one-thread container. The remaining layout is the
// declared op count followed by the op records; their byte span is the rest
// of the file.
func newV1Reader(r io.ReaderAt, size int64, br *bufio.Reader, hr *posReader) (*File, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, errTruncated(err)
	}
	bodyStart := hr.pos - int64(br.Buffered())
	bodyLen := size - bodyStart
	if count > uint64(bodyLen)/minOpBytes {
		return nil, fmt.Errorf("%w: v1 trace claims %d ops in %d bytes", ErrBadTrace, count, bodyLen)
	}
	meta := ThreadMeta{TypeName: "recorded", Ops: count, offset: bodyStart, length: bodyLen}
	return &File{r: r, version: traceVersion, name: "v1 trace", metas: []ThreadMeta{meta}}, nil
}

// posReader counts bytes consumed from an io.Reader so header parsing can
// locate where the buffered reader's underlying position is.
type posReader struct {
	r   io.Reader
	pos int64
}

func (p *posReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	p.pos += int64(n)
	return n, err
}

func readString(br *bufio.Reader, max int) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", errTruncated(err)
	}
	if n > uint64(max) {
		return "", fmt.Errorf("%w: string length %d exceeds limit %d", ErrBadTrace, n, max)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", errTruncated(err)
	}
	return string(b), nil
}

// errTruncated maps io.EOF (a clean end mid-structure) to ErrUnexpectedEOF
// so truncation is always reported as an error, never as success.
func errTruncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Version reports the container's format version (1 or 2).
func (f *File) Version() int { return f.version }

// Name returns the workload name recorded in the container ("v1 trace" for
// adapted v1 files).
func (f *File) Name() string { return f.name }

// NumThreads returns the number of threads in the container.
func (f *File) NumThreads() int { return len(f.metas) }

// Meta returns thread i's header record.
func (f *File) Meta(i int) ThreadMeta { return f.metas[i] }

// Ops returns the total op count across all threads.
func (f *File) Ops() uint64 {
	var n uint64
	for _, m := range f.metas {
		n += m.Ops
	}
	return n
}

// Source returns a fresh streaming source over thread i's ops. Every call
// yields an independent source starting at the thread's first op; sources
// from one File may be consumed concurrently.
func (f *File) Source(i int) *FileSource {
	m := f.metas[i]
	return &FileSource{
		r:    bufio.NewReaderSize(io.NewSectionReader(f.r, m.offset, m.length), sourceBufKB<<10),
		want: m.Ops,
		v1:   f.version == traceVersion,
	}
}

// Threads returns the container's threads in recorded order, each with a
// New that streams its ops from the file. The returned threads remain valid
// only while the File is open.
func (f *File) Threads() []Thread {
	ths := make([]Thread, len(f.metas))
	for i, m := range f.metas {
		i := i
		ths[i] = Thread{
			ID:       m.ID,
			Type:     m.Type,
			TypeName: m.TypeName,
			New:      func() Source { return f.Source(i) },
		}
	}
	return ths
}

// Close releases the underlying file. Sources created from the File must
// not be used afterwards.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	return f.closer.Close()
}

// FileSource streams one thread's ops from an open container. It implements
// Source with constant memory: one fixed read-ahead buffer, no retained
// ops. A malformed stream (truncation inside an op, trailing garbage, or a
// record that disagrees with the header) ends the stream early; Err reports
// what happened.
type FileSource struct {
	r        *bufio.Reader
	want     uint64 // ops the header promised
	read     uint64
	prevPC   uint64
	prevData uint64
	v1       bool // absolute uvarint addresses (v1) vs zigzag deltas (v2)
	err      error
}

// Next implements Source.
func (s *FileSource) Next() (Op, bool) {
	if s.err != nil || s.read >= s.want {
		s.checkTrailer()
		return Op{}, false
	}
	flags, err := s.r.ReadByte()
	if err != nil {
		s.fail("flags", err)
		return Op{}, false
	}
	if flags&^3 != 0 {
		s.err = fmt.Errorf("%w: op %d has invalid flags %#x", ErrBadTrace, s.read, flags)
		return Op{}, false
	}
	var op Op
	op.HasData = flags&1 != 0
	op.IsWrite = flags&2 != 0
	if s.v1 {
		if op.PC, err = binary.ReadUvarint(s.r); err != nil {
			s.fail("pc", err)
			return Op{}, false
		}
		if op.HasData {
			if op.DataAddr, err = binary.ReadUvarint(s.r); err != nil {
				s.fail("data", err)
				return Op{}, false
			}
		}
	} else {
		d, err := binary.ReadVarint(s.r)
		if err != nil {
			s.fail("pc delta", err)
			return Op{}, false
		}
		op.PC = s.prevPC + uint64(d)
		s.prevPC = op.PC
		if op.HasData {
			if d, err = binary.ReadVarint(s.r); err != nil {
				s.fail("data delta", err)
				return Op{}, false
			}
			op.DataAddr = s.prevData + uint64(d)
			s.prevData = op.DataAddr
		}
	}
	s.read++
	return op, true
}

// maxOpEnc is the largest possible encoded op record: a flags byte plus two
// maximum-width varints.
const maxOpEnc = 1 + 2*binary.MaxVarintLen64

// NextBatch implements BatchSource: it decodes records straight out of the
// buffered reader's lookahead window (one Peek/Discard pair and slice-based
// varint decodes per op, instead of a ReadByte plus byte-at-a-time varint
// round trip through the reader's state). Any record that is not plainly
// well-formed inside a full window — truncation near the stream's end,
// invalid flags, an overlong varint — is re-decoded by Next, so error
// reporting is byte-for-byte the same as a pure Next loop.
func (s *FileSource) NextBatch(dst []Op) int {
	n := 0
	for n < len(dst) {
		if s.err != nil || s.read >= s.want {
			s.checkTrailer()
			break
		}
		window, _ := s.r.Peek(maxOpEnc)
		if len(window) < maxOpEnc || window[0]&^3 != 0 {
			op, ok := s.Next()
			if !ok {
				break
			}
			dst[n] = op
			n++
			continue
		}
		flags := window[0]
		var op Op
		op.HasData = flags&1 != 0
		op.IsWrite = flags&2 != 0
		k := 1
		ok := true
		if s.v1 {
			v, w := binary.Uvarint(window[k:])
			if w <= 0 {
				ok = false
			} else {
				op.PC = v
				k += w
				if op.HasData {
					if v, w = binary.Uvarint(window[k:]); w <= 0 {
						ok = false
					} else {
						op.DataAddr = v
						k += w
					}
				}
			}
		} else {
			d, w := binary.Varint(window[k:])
			if w <= 0 {
				ok = false
			} else {
				op.PC = s.prevPC + uint64(d)
				k += w
				if op.HasData {
					if d, w = binary.Varint(window[k:]); w <= 0 {
						ok = false
					} else {
						op.DataAddr = s.prevData + uint64(d)
						k += w
					}
				}
			}
		}
		if !ok {
			// Malformed varint: let Next consume it and set the exact error.
			op, okNext := s.Next()
			if !okNext {
				break
			}
			dst[n] = op
			n++
			continue
		}
		s.prevPC = op.PC
		if op.HasData {
			s.prevData = op.DataAddr
		}
		if _, err := s.r.Discard(k); err != nil {
			s.fail("discard", err)
			break
		}
		s.read++
		dst[n] = op
		n++
	}
	return n
}

// checkTrailer runs once the declared op count has been delivered: any
// bytes left in the stream span mean the header and body disagree.
func (s *FileSource) checkTrailer() {
	if s.err != nil || s.read != s.want {
		return
	}
	s.read = s.want + 1 // read > want marks the check as done
	if _, err := s.r.ReadByte(); err == nil {
		s.err = fmt.Errorf("%w: trailing bytes after op %d", ErrBadTrace, s.want)
	}
}

func (s *FileSource) fail(what string, err error) {
	s.err = fmt.Errorf("trace: op %d %s: %w", s.read, what, errTruncated(err))
}

// Err returns the first error the stream hit, or nil after a clean replay.
// A non-nil Err means Next stopped early: the container is corrupt or
// truncated and the replay is incomplete.
func (s *FileSource) Err() error { return s.err }

// FileDigest returns the hex SHA-256 of the file at path. The runner keys
// its dedup/memoization cache on this digest for trace-backed jobs, so two
// jobs naming different paths with identical contents simulate once, and
// re-recording a file under the same name does not replay stale results.
func FileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
