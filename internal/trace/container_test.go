package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// memFile is an in-memory io.WriteSeeker for container round-trip tests.
type memFile struct {
	buf []byte
	pos int64
}

func (m *memFile) Write(p []byte) (int, error) {
	if need := m.pos + int64(len(p)); need > int64(len(m.buf)) {
		m.buf = append(m.buf, make([]byte, need-int64(len(m.buf)))...)
	}
	copy(m.buf[m.pos:], p)
	m.pos += int64(len(p))
	return len(p), nil
}

func (m *memFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = off
	case io.SeekCurrent:
		m.pos += off
	case io.SeekEnd:
		m.pos = int64(len(m.buf)) + off
	}
	return m.pos, nil
}

// sliceThread wraps an op slice as a Thread whose New replays it.
func sliceThread(id, ty int, name string, ops []Op) Thread {
	return Thread{ID: id, Type: ty, TypeName: name, New: func() Source { return NewSliceSource(ops) }}
}

// testThreads builds a small three-thread workload exercising deltas in
// both directions, data ops, stores, and an empty thread.
func testThreads() ([]Thread, [][]Op) {
	streams := [][]Op{
		{
			{PC: 0x400000},
			{PC: 0x400004, HasData: true, DataAddr: 0x7000_0000_0000},
			{PC: 0x400008, HasData: true, IsWrite: true, DataAddr: 0x6000_0000_0000},
			{PC: 0x3ff000}, // backwards PC jump
		},
		{}, // a thread with no ops at all
		{
			{PC: 1 << 62, HasData: true, DataAddr: ^uint64(0)}, // extreme addresses
			{PC: 0, HasData: true, DataAddr: 0},
		},
	}
	threads := []Thread{
		sliceThread(0, 0, "NewOrder", streams[0]),
		sliceThread(7, 1, "Payment", streams[1]),
		sliceThread(2, 0, "NewOrder", streams[2]),
	}
	return threads, streams
}

func writeTestContainer(t *testing.T) (*memFile, [][]Op) {
	t.Helper()
	threads, streams := testThreads()
	var m memFile
	if err := WriteWorkload(&m, "test-wl", threads); err != nil {
		t.Fatal(err)
	}
	return &m, streams
}

func drain(t *testing.T, s *FileSource) []Op {
	t.Helper()
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

func TestContainerRoundTrip(t *testing.T) {
	m, streams := writeTestContainer(t)
	f, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version() != 2 {
		t.Fatalf("Version = %d, want 2", f.Version())
	}
	if f.Name() != "test-wl" {
		t.Fatalf("Name = %q", f.Name())
	}
	if f.NumThreads() != 3 {
		t.Fatalf("NumThreads = %d", f.NumThreads())
	}
	wantMeta := []ThreadMeta{
		{ID: 0, Type: 0, TypeName: "NewOrder", Ops: 4},
		{ID: 7, Type: 1, TypeName: "Payment", Ops: 0},
		{ID: 2, Type: 0, TypeName: "NewOrder", Ops: 2},
	}
	var total uint64
	for i, want := range wantMeta {
		got := f.Meta(i)
		if got.ID != want.ID || got.Type != want.Type || got.TypeName != want.TypeName || got.Ops != want.Ops {
			t.Fatalf("Meta(%d) = %+v, want %+v", i, got, want)
		}
		total += want.Ops
	}
	if f.Ops() != total {
		t.Fatalf("Ops() = %d, want %d", f.Ops(), total)
	}
	for i, want := range streams {
		src := f.Source(i)
		got := drain(t, src)
		if err := src.Err(); err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("thread %d: %d ops, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("thread %d op %d = %+v, want %+v", i, k, got[k], want[k])
			}
		}
	}
}

func TestContainerThreadsIndependentSources(t *testing.T) {
	m, streams := writeTestContainer(t)
	f, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	ths := f.Threads()
	// Two sources of the same thread must replay independently from the top.
	a, b := ths[0].New(), ths[0].New()
	opA, _ := a.Next()
	for range streams[0] {
		b.Next()
	}
	opA2, _ := a.Next()
	if opA != streams[0][0] || opA2 != streams[0][1] {
		t.Fatal("draining one source advanced another")
	}
	if ths[1].ID != 7 || ths[2].TypeName != "NewOrder" {
		t.Fatal("thread metadata not propagated")
	}
}

func TestOpenWorkloadV1(t *testing.T) {
	ops := []Op{
		{PC: 0x400000},
		{PC: 0x400004, HasData: true, DataAddr: 0x1234, IsWrite: true},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.trace")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(w, ops); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, err := OpenWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Version() != 1 || f.NumThreads() != 1 || f.Meta(0).Ops != 2 {
		t.Fatalf("v1 adapter: version=%d threads=%d ops=%d", f.Version(), f.NumThreads(), f.Meta(0).Ops)
	}
	src := f.Source(0)
	got := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("v1 replay = %+v, want %+v", got, ops)
	}
}

func TestOpenWorkloadErrors(t *testing.T) {
	m, _ := writeTestContainer(t)
	valid := m.buf

	t.Run("corrupt magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] = 'X'
		if _, err := NewFileReader(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("err = %v, want ErrBadTrace", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = 99
		if _, err := NewFileReader(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("err = %v, want ErrBadTrace", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		// Every prefix that ends inside the header must be rejected with an
		// error, never accepted or panicked on.
		hdrEnd := int(valid[5]) + 6 // past magic+version+name; table follows
		for cut := 0; cut < hdrEnd+8; cut++ {
			_, err := NewFileReader(bytes.NewReader(valid[:cut]), int64(cut))
			if err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("stream outside file", func(t *testing.T) {
		// Chop the file just before the last thread's stream ends: the
		// header now points past EOF.
		cut := len(valid) - 1
		if _, err := NewFileReader(bytes.NewReader(valid[:cut]), int64(cut)); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("err = %v, want ErrBadTrace", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := NewFileReader(bytes.NewReader(nil), 0); err == nil {
			t.Fatal("empty file accepted")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := OpenWorkload(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("missing file accepted")
		}
	})
}

// patchFixed overwrites thread i's fixed-width table entry. Entries sit at
// ascending positions; locate them by re-parsing the variable-width prefix.
func patchFixed(t *testing.T, buf []byte, thread int, ops, offset, length uint64) {
	t.Helper()
	pos := 5 // magic + version
	skipString := func() {
		n, w := binary.Uvarint(buf[pos:])
		pos += w + int(n)
	}
	skipUvarint := func() uint64 {
		n, w := binary.Uvarint(buf[pos:])
		pos += w
		return n
	}
	skipString()                // workload name
	count := int(skipUvarint()) // thread count
	if thread >= count {
		t.Fatalf("thread %d out of range", thread)
	}
	for i := 0; ; i++ {
		skipUvarint() // id
		skipUvarint() // type
		skipString()  // type name
		if i == thread {
			break
		}
		pos += threadFixedW
	}
	binary.LittleEndian.PutUint64(buf[pos:], ops)
	binary.LittleEndian.PutUint64(buf[pos+8:], offset)
	binary.LittleEndian.PutUint64(buf[pos+16:], length)
}

func TestForgedOpCount(t *testing.T) {
	m, _ := writeTestContainer(t)
	f, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	meta0 := f.Meta(0)

	// A count that cannot fit the stream's byte length is rejected at open.
	b := append([]byte(nil), m.buf...)
	patchFixed(t, b, 0, 1<<40, uint64(meta0.offset), uint64(meta0.length))
	if _, err := NewFileReader(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("absurd op count: err = %v, want ErrBadTrace", err)
	}

	// A modestly inflated count passes the header check but must surface as
	// a stream error during replay, after the genuine ops were delivered.
	b = append([]byte(nil), m.buf...)
	patchFixed(t, b, 0, meta0.Ops+1, uint64(meta0.offset), uint64(meta0.length))
	f2, err := NewFileReader(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	src := f2.Source(0)
	got := drain(t, src)
	if uint64(len(got)) != meta0.Ops {
		t.Fatalf("replayed %d ops, want the %d genuine ones", len(got), meta0.Ops)
	}
	if src.Err() == nil {
		t.Fatal("forged op count replayed without error")
	}

	// A deflated count leaves trailing bytes in the span: also an error.
	b = append([]byte(nil), m.buf...)
	patchFixed(t, b, 0, meta0.Ops-1, uint64(meta0.offset), uint64(meta0.length))
	f3, err := NewFileReader(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	src = f3.Source(0)
	drain(t, src)
	if err := src.Err(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("trailing bytes: err = %v, want ErrBadTrace", err)
	}
}

func TestFileSourceInvalidFlags(t *testing.T) {
	m, _ := writeTestContainer(t)
	f, err := NewFileReader(bytes.NewReader(m.buf), int64(len(m.buf)))
	if err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), m.buf...)
	b[f.Meta(0).offset] |= 0x80 // set a reserved flag bit on op 0
	f2, err := NewFileReader(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	src := f2.Source(0)
	if _, ok := src.Next(); ok {
		t.Fatal("op with reserved flags accepted")
	}
	if !errors.Is(src.Err(), ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", src.Err())
	}
}

// patternReaderAt synthesizes an arbitrarily large container on the fly: a
// real header followed by an endless repetition of the 2-byte op
// {flags=0, pc delta=+4}. It stands in for a multi-GB on-disk file, so the
// test below can prove FileSource streams with constant memory without
// writing gigabytes to disk.
type patternReaderAt struct {
	header []byte
	size   int64
}

func (p *patternReaderAt) ReadAt(b []byte, off int64) (int, error) {
	for i := range b {
		pos := off + int64(i)
		if pos >= p.size {
			return i, io.EOF
		}
		if pos < int64(len(p.header)) {
			b[i] = p.header[pos]
		} else if (pos-int64(len(p.header)))%2 == 0 {
			b[i] = 0 // flags: no data access
		} else {
			b[i] = 8 // zigzag varint for +4
		}
	}
	return len(b), nil
}

// TestFileSourceConstantMemory replays the head of a synthetic 4GB-scale
// container and checks that per-op work allocates nothing: all state is the
// fixed read-ahead buffer created at Source time, so container size cannot
// affect replay memory.
func TestFileSourceConstantMemory(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{'S', 'L', 'T', 'R', 2})
	writeString(&hdr, "huge")
	writeUvarint(&hdr, 1)
	writeUvarint(&hdr, 0) // id
	writeUvarint(&hdr, 0) // type
	writeString(&hdr, "BigTxn")
	const bodyBytes = int64(4) << 30 // 4 GiB of op stream
	var fixed [threadFixedW]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(bodyBytes/2)) // 2 bytes/op
	binary.LittleEndian.PutUint64(fixed[8:], uint64(hdr.Len()+threadFixedW))
	binary.LittleEndian.PutUint64(fixed[16:], uint64(bodyBytes))
	hdr.Write(fixed[:])

	r := &patternReaderAt{header: hdr.Bytes(), size: int64(hdr.Len()) + bodyBytes}
	f, err := NewFileReader(r, r.size)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ops() != uint64(bodyBytes/2) {
		t.Fatalf("Ops = %d", f.Ops())
	}
	src := f.Source(0)
	var pc uint64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10_000; i++ {
			op, ok := src.Next()
			if !ok {
				t.Fatal("stream ended early")
			}
			pc = op.PC
		}
	})
	if allocs > 0 {
		t.Fatalf("replay allocates %.1f objects per 10k ops; FileSource must stream with constant memory", allocs)
	}
	if want := uint64(4 * 101 * 10_000); pc != want {
		t.Fatalf("pc after replay = %d, want %d", pc, want)
	}
}

func TestWriteWorkloadSeekRestore(t *testing.T) {
	threads, _ := testThreads()
	var m memFile
	if err := WriteWorkload(&m, "wl", threads); err != nil {
		t.Fatal(err)
	}
	if m.pos != int64(len(m.buf)) {
		t.Fatalf("write position %d after WriteWorkload, want end of container %d", m.pos, len(m.buf))
	}
}

func TestFileDigest(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	c := filepath.Join(dir, "c")
	if err := os.WriteFile(a, []byte("same"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("same"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c, []byte("different"), 0o644); err != nil {
		t.Fatal(err)
	}
	da, err := FileDigest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := FileDigest(b)
	dc, _ := FileDigest(c)
	if da != db {
		t.Fatal("identical contents, different digests")
	}
	if da == dc {
		t.Fatal("different contents, same digest")
	}
	if _, err := FileDigest(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file digested")
	}
}

// TestHostileHeaders covers the open-time bounds added for hostile files:
// forged thread counts, oversized id/type values, and oversized names must
// all fail cleanly before any large allocation or panic.
func TestHostileHeaders(t *testing.T) {
	mk := func(build func(h *bytes.Buffer)) []byte {
		var h bytes.Buffer
		h.Write([]byte{'S', 'L', 'T', 'R', 2})
		build(&h)
		return h.Bytes()
	}
	cases := map[string][]byte{
		"forged thread count in tiny file": mk(func(h *bytes.Buffer) {
			writeString(h, "wl")
			writeUvarint(h, maxThreads) // claims 4M threads in ~10 bytes
		}),
		"absurd thread id": mk(func(h *bytes.Buffer) {
			writeString(h, "wl")
			writeUvarint(h, 1)
			writeUvarint(h, uint64(maxThreadID)+1)
			writeUvarint(h, 0)
			writeString(h, "t")
			h.Write(make([]byte, threadFixedW))
		}),
		"huge type uvarint decoding to negative int": mk(func(h *bytes.Buffer) {
			writeString(h, "wl")
			writeUvarint(h, 1)
			writeUvarint(h, 0)
			writeUvarint(h, 1<<63) // int(ty) would be negative
			writeString(h, "t")
			h.Write(make([]byte, threadFixedW))
		}),
		"oversized name": mk(func(h *bytes.Buffer) {
			writeUvarint(h, maxNameLen+1)
			h.Write(make([]byte, maxNameLen+1))
			writeUvarint(h, 0)
		}),
	}
	for name, b := range cases {
		if _, err := NewFileReader(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWriteWorkloadRejectsUnreadableInputs checks write-time enforcement of
// the reader's bounds: WriteWorkload must never produce a container its own
// reader rejects.
func TestWriteWorkloadRejectsUnreadableInputs(t *testing.T) {
	longName := string(make([]byte, maxNameLen+1))
	var m memFile
	if err := WriteWorkload(&m, longName, nil); err == nil {
		t.Error("oversized workload name accepted")
	}
	for name, th := range map[string]Thread{
		"oversized type name": sliceThread(0, 0, longName, nil),
		"negative id":         sliceThread(-1, 0, "t", nil),
		"oversized type":      sliceThread(0, maxTypeIndex+1, "t", nil),
	} {
		var m memFile
		if err := WriteWorkload(&m, "wl", []Thread{th}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
