package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hammers the binary trace decoder with arbitrary inputs: it
// must never panic, and any stream it accepts must round-trip back to
// identical bytes' worth of ops.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid stream and a few corruptions of it.
	var valid bytes.Buffer
	if err := WriteTrace(&valid, []Op{
		{PC: 0x400000},
		{PC: 0x400004, HasData: true, DataAddr: 0x1234, IsWrite: true},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("SLTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: must re-encode and re-decode to the same ops.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ops) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops), len(again))
		}
		for i := range ops {
			if ops[i] != again[i] {
				t.Fatalf("op %d changed in round trip", i)
			}
		}
	})
}

// FuzzFileReader hammers the v2 container decoder with arbitrary inputs:
// header parsing must never panic, every thread an accepted container
// exposes must replay without panicking, and a cleanly replayed container
// must survive a write/read round trip with identical metadata and ops.
func FuzzFileReader(f *testing.F) {
	// Seed with a valid two-thread container and corruptions of it.
	var m memFile
	threads := []Thread{
		sliceThread(0, 0, "A", []Op{{PC: 0x400000}, {PC: 0x400004, HasData: true, DataAddr: 0x99, IsWrite: true}}),
		sliceThread(1, 1, "B", []Op{{PC: 0x800000}}),
	}
	if err := WriteWorkload(&m, "fuzz", threads); err != nil {
		f.Fatal(err)
	}
	f.Add(m.buf)
	for _, i := range []int{0, 4, 6, len(m.buf) / 2, len(m.buf) - 1} {
		corrupt := append([]byte(nil), m.buf...)
		corrupt[i] ^= 0xff
		f.Add(corrupt)
	}
	f.Add(m.buf[:len(m.buf)-3])
	f.Add([]byte("SLTR\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := NewFileReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Replay every thread; corrupt streams must end with Err, not panic.
		all := make([][]Op, c.NumThreads())
		clean := true
		for i := 0; i < c.NumThreads(); i++ {
			src := c.Source(i)
			for {
				op, ok := src.Next()
				if !ok {
					break
				}
				all[i] = append(all[i], op)
			}
			if src.Err() != nil {
				clean = false
			}
			// The bulk decoder must agree with the plain one on every
			// accepted container — ops and error state — whatever the
			// bytes look like.
			bsrc := c.Source(i)
			var batched []Op
			buf := make([]Op, 13)
			for {
				n := bsrc.NextBatch(buf)
				if n == 0 {
					break
				}
				batched = append(batched, buf[:n]...)
			}
			if len(batched) != len(all[i]) {
				t.Fatalf("thread %d: NextBatch drained %d ops, Next drained %d", i, len(batched), len(all[i]))
			}
			for k := range batched {
				if batched[k] != all[i][k] {
					t.Fatalf("thread %d op %d: NextBatch %+v != Next %+v", i, k, batched[k], all[i][k])
				}
			}
			if (bsrc.Err() == nil) != (src.Err() == nil) {
				t.Fatalf("thread %d: error state diverges: next=%v batch=%v", i, src.Err(), bsrc.Err())
			}
		}
		if !clean || c.Version() != containerVersion {
			return
		}
		// A cleanly replayed v2 container must round-trip.
		ths := make([]Thread, c.NumThreads())
		for i := range ths {
			meta := c.Meta(i)
			ths[i] = sliceThread(meta.ID, meta.Type, meta.TypeName, all[i])
		}
		var again memFile
		if err := WriteWorkload(&again, c.Name(), ths); err != nil {
			t.Fatalf("re-encode of accepted container failed: %v", err)
		}
		c2, err := NewFileReader(bytes.NewReader(again.buf), int64(len(again.buf)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c2.Name() != c.Name() || c2.NumThreads() != c.NumThreads() {
			t.Fatal("round trip changed container identity")
		}
		for i := 0; i < c2.NumThreads(); i++ {
			ma, mb := c.Meta(i), c2.Meta(i)
			if ma.ID != mb.ID || ma.Type != mb.Type || ma.TypeName != mb.TypeName || uint64(len(all[i])) != mb.Ops {
				t.Fatalf("thread %d metadata changed in round trip", i)
			}
			src := c2.Source(i)
			for k, want := range all[i] {
				got, ok := src.Next()
				if !ok || got != want {
					t.Fatalf("thread %d op %d changed in round trip", i, k)
				}
			}
			if _, ok := src.Next(); ok || src.Err() != nil {
				t.Fatalf("thread %d round trip gained ops or errored: %v", i, src.Err())
			}
		}
	})
}
