package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hammers the binary trace decoder with arbitrary inputs: it
// must never panic, and any stream it accepts must round-trip back to
// identical bytes' worth of ops.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid stream and a few corruptions of it.
	var valid bytes.Buffer
	if err := WriteTrace(&valid, []Op{
		{PC: 0x400000},
		{PC: 0x400004, HasData: true, DataAddr: 0x1234, IsWrite: true},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("SLTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: must re-encode and re-decode to the same ops.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ops) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops), len(again))
		}
		for i := range ops {
			if ops[i] != again[i] {
				t.Fatalf("op %d changed in round trip", i)
			}
		}
	})
}
