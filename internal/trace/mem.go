package trace

// In-memory encoded op streams: a compact private record format applied to
// a byte slice. At ~4 bytes per op the encoded form is ~6x smaller than
// []Op, which is what makes memoizing whole op streams cheap enough to
// matter — a workload's threads fit in the last-level cache instead of
// streaming tens of megabytes of 24-byte structs past it — while
// MemSource.NextBatch decodes straight from the slice with no reader
// state.
//
// The record layout is tuned for decode speed, not portability (the
// format never leaves the process; on-disk streams use the v2 container
// format in container.go):
//
//	flags byte: bit0 HasData, bit1 IsWrite, bit2 wide data address
//	zigzag-varint PC delta (sequential fetch = one byte)
//	absolute data address, 6 bytes little-endian (8 when bit2 is set),
//	  present only with bit0 — fixed width decodes with one load instead
//	  of a byte-serial varint chain
import "encoding/binary"

const (
	memFlagData  = 1 << 0
	memFlagWrite = 1 << 1
	memFlagWide  = 1 << 2

	// memNarrowBits is the data-address width bit2 avoids encoding.
	memNarrowBits = 48
	// memMaxOpEnc is the largest record: flags + max varint + wide data.
	memMaxOpEnc = 1 + binary.MaxVarintLen64 + 8
)

// OpEncoder accumulates an op stream in encoded form. The zero value is
// ready to use; Append ops in order, then replay them any number of times
// with Source.
type OpEncoder struct {
	buf    []byte
	n      uint64
	prevPC uint64
}

// Append encodes one op.
func (e *OpEncoder) Append(op Op) {
	var flags byte
	if op.HasData {
		flags |= memFlagData
	}
	if op.IsWrite {
		flags |= memFlagWrite
	}
	wide := op.DataAddr >= 1<<memNarrowBits
	if wide {
		flags |= memFlagWide
	}
	e.buf = append(e.buf, flags)
	e.buf = binary.AppendVarint(e.buf, int64(op.PC-e.prevPC))
	e.prevPC = op.PC
	if op.HasData {
		if wide {
			e.buf = binary.LittleEndian.AppendUint64(e.buf, op.DataAddr)
		} else {
			e.buf = append(e.buf,
				byte(op.DataAddr), byte(op.DataAddr>>8), byte(op.DataAddr>>16),
				byte(op.DataAddr>>24), byte(op.DataAddr>>32), byte(op.DataAddr>>40))
		}
	}
	e.n++
}

// Ops returns the number of ops encoded so far.
func (e *OpEncoder) Ops() uint64 { return e.n }

// Bytes returns the encoded size so far.
func (e *OpEncoder) Bytes() int { return len(e.buf) }

// Source returns a fresh source replaying the encoded stream from the
// start. Sources are independent; the encoder must not be appended to
// while sources from it are live.
func (e *OpEncoder) Source() *MemSource {
	return &MemSource{buf: e.buf, want: e.n}
}

// MemSource replays an OpEncoder's stream. It implements BatchSource;
// decoding is pure slice indexing. A malformed buffer (impossible for
// encoder-produced streams) ends the stream early.
type MemSource struct {
	buf        []byte
	pos        int
	read, want uint64
	prevPC     uint64
}

// Next implements Source.
func (s *MemSource) Next() (Op, bool) {
	if s.read >= s.want || s.pos >= len(s.buf) {
		return Op{}, false
	}
	flags := s.buf[s.pos]
	s.pos++
	var op Op
	op.HasData = flags&memFlagData != 0
	op.IsWrite = flags&memFlagWrite != 0
	d, w := binary.Varint(s.buf[s.pos:])
	if w <= 0 {
		s.read = s.want
		return Op{}, false
	}
	s.pos += w
	op.PC = s.prevPC + uint64(d)
	s.prevPC = op.PC
	if op.HasData {
		width := 6
		if flags&memFlagWide != 0 {
			width = 8
		}
		if s.pos+width > len(s.buf) {
			s.read = s.want
			return Op{}, false
		}
		for i := 0; i < width; i++ {
			op.DataAddr |= uint64(s.buf[s.pos+i]) << (8 * i)
		}
		s.pos += width
	}
	s.read++
	return op, true
}

// NextBatch implements BatchSource. Records that provably fit in the
// remaining buffer are decoded with an inlined zigzag-varint PC reader and
// wide loads for the data address; the last few records near the buffer's
// end go through Next's bounds-checked decoder.
func (s *MemSource) NextBatch(dst []Op) int {
	n := 0
	buf := s.buf
	pos := s.pos
	prevPC := s.prevPC
	for n < len(dst) && s.read < s.want {
		if pos+memMaxOpEnc > len(buf) {
			// Tail: sync state and take the careful path.
			s.pos, s.prevPC = pos, prevPC
			op, ok := s.Next()
			if !ok {
				return n
			}
			dst[n] = op
			n++
			pos, prevPC = s.pos, s.prevPC
			continue
		}
		flags := buf[pos]
		pos++
		u := uint64(buf[pos])
		pos++
		if u >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				b := buf[pos]
				pos++
				u |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		prevPC += uint64(int64(u>>1) ^ -int64(u&1))
		op := Op{PC: prevPC, HasData: flags&memFlagData != 0, IsWrite: flags&memFlagWrite != 0}
		if op.HasData {
			if flags&memFlagWide != 0 {
				op.DataAddr = binary.LittleEndian.Uint64(buf[pos:])
				pos += 8
			} else {
				op.DataAddr = uint64(binary.LittleEndian.Uint32(buf[pos:])) |
					uint64(binary.LittleEndian.Uint16(buf[pos+4:]))<<32
				pos += 6
			}
		}
		dst[n] = op
		n++
		s.read++
	}
	s.pos, s.prevPC = pos, prevPC
	return n
}
