package trace

import (
	"math/rand"
	"testing"
)

// encTestOps builds a representative op mix: sequential PCs with
// occasional jumps, ~35% data references across distant regions.
func encTestOps(n int) []Op {
	rng := rand.New(rand.NewSource(7))
	ops := make([]Op, n)
	pc := uint64(0x1000_0000)
	for i := range ops {
		if rng.Intn(16) == 0 {
			pc = 0x1000_0000 + uint64(rng.Intn(1<<20))*4
		}
		op := Op{PC: pc}
		pc += 4
		if rng.Intn(100) < 35 {
			op.HasData = true
			op.DataAddr = 0x7000_0000_0000 + uint64(rng.Intn(1<<30))
			if rng.Intn(50) == 0 {
				// Exercise the wide-address record (>= 2^48).
				op.DataAddr = 1<<60 + uint64(rng.Intn(1<<20))
			}
			op.IsWrite = rng.Intn(100) < 13
		}
		ops[i] = op
	}
	return ops
}

func encodeAll(ops []Op) *OpEncoder {
	var e OpEncoder
	for _, op := range ops {
		e.Append(op)
	}
	return &e
}

// TestMemSourceRoundTrip checks Next and NextBatch against the original
// ops, including mixed consumption.
func TestMemSourceRoundTrip(t *testing.T) {
	ops := encTestOps(10_000)
	e := encodeAll(ops)
	if e.Ops() != uint64(len(ops)) {
		t.Fatalf("encoder counted %d ops, want %d", e.Ops(), len(ops))
	}

	// Pure Next drain.
	s := e.Source()
	for i, want := range ops {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("Next op %d = %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next past end returned ok")
	}

	// Mixed Next/NextBatch drain with odd batch sizes.
	s = e.Source()
	var got []Op
	buf := make([]Op, 37)
	for turn := 0; ; turn++ {
		if turn%3 == 2 {
			op, ok := s.Next()
			if !ok {
				break
			}
			got = append(got, op)
			continue
		}
		n := s.NextBatch(buf)
		if n == 0 {
			if _, ok := s.Next(); ok {
				t.Fatal("NextBatch returned 0 but Next produced an op")
			}
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(ops) {
		t.Fatalf("mixed drain produced %d ops, want %d", len(got), len(ops))
	}
	for i := range got {
		if got[i] != ops[i] {
			t.Fatalf("mixed drain op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

// TestMemSourceEncodingDensity pins the encoding's size envelope so a
// regression back toward fat records is caught (the op cache's value is
// that whole workloads stay cache-resident).
func TestMemSourceEncodingDensity(t *testing.T) {
	ops := encTestOps(100_000)
	e := encodeAll(ops)
	perOp := float64(e.Bytes()) / float64(len(ops))
	if perOp > 6 {
		t.Fatalf("encoding density %.2f bytes/op, want <= 6", perOp)
	}
}

// BenchmarkMemSourceNextBatch measures the in-memory bulk decode rate —
// the op-supply side of the simulator's hot loop.
func BenchmarkMemSourceNextBatch(b *testing.B) {
	ops := encTestOps(1 << 20)
	e := encodeAll(ops)
	buf := make([]Op, 256)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		s := e.Source()
		for {
			n := s.NextBatch(buf)
			if n == 0 {
				break
			}
			total += n
		}
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "ops/s")
	}
}
