// Package trace defines the execution-trace model the simulator consumes
// and the binary formats that persist it. The paper extracts annotated x86
// traces with PIN and replays them; here a trace is a per-thread stream of
// Op records produced lazily by a Source — synthetic generators in
// internal/workload, or recorded streams replayed from trace files.
//
// Two on-disk formats exist, specified byte-by-byte in docs/TRACES.md:
// the v1 single-thread format (WriteTrace/ReadTrace, decoded fully into
// memory) and the v2 whole-workload container (WriteWorkload/OpenWorkload,
// one file holding every thread with per-thread metadata), whose
// FileSource streams ops with constant memory so containers larger than
// RAM replay fine. OpenWorkload reads both versions.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is one dynamic instruction: an instruction fetch at PC, optionally
// paired with one data access.
type Op struct {
	// PC is the instruction byte address.
	PC uint64
	// DataAddr is the byte address of the data access, meaningful only
	// when HasData is set.
	DataAddr uint64
	// HasData marks ops that perform a data access.
	HasData bool
	// IsWrite marks the data access as a store.
	IsWrite bool
}

// Source produces a thread's ops in order. Next returns ok=false when the
// thread has completed; the Op value is then meaningless.
type Source interface {
	Next() (op Op, ok bool)
}

// BatchSource is an optional Source fast path: NextBatch fills dst from the
// front with the stream's next ops and returns how many it produced (0 when
// the stream has completed, like Next's ok=false). The batch is drawn from
// the same stream position Next reads, so the two may be mixed freely; a
// full drain via NextBatch yields exactly the ops a Next loop would. The
// simulator's hot loop uses it to amortize the per-op interface call and
// decoder state round-trip over a few hundred ops at a time; SliceSource
// and FileSource implement it.
type BatchSource interface {
	Source
	NextBatch(dst []Op) int
}

// SliceSource replays a pre-recorded op slice.
type SliceSource struct {
	ops []Op
	pos int
}

// NewSliceSource wraps ops in a Source.
func NewSliceSource(ops []Op) *SliceSource { return &SliceSource{ops: ops} }

// Next implements Source.
func (s *SliceSource) Next() (Op, bool) {
	if s.pos >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.pos]
	s.pos++
	return op, true
}

// NextBatch implements BatchSource: one bulk copy from the backing slice.
func (s *SliceSource) NextBatch(dst []Op) int {
	n := copy(dst, s.ops[s.pos:])
	s.pos += n
	return n
}

// SpanSource is the zero-copy refinement of BatchSource for sources whose
// ops already sit in memory: NextSpan returns up to max next ops as a view
// of the backing storage (valid until the next call) and advances the
// stream. An empty span means the stream is done.
type SpanSource interface {
	BatchSource
	NextSpan(max int) []Op
}

// NextSpan implements SpanSource: a subslice of the backing ops, no copy.
func (s *SliceSource) NextSpan(max int) []Op {
	n := len(s.ops) - s.pos
	if n > max {
		n = max
	}
	sp := s.ops[s.pos : s.pos+n]
	s.pos += n
	return sp
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of ops.
func (s *SliceSource) Len() int { return len(s.ops) }

// Record drains src (up to max ops; max<=0 means unbounded) into a slice.
func Record(src Source, max int) []Op {
	var ops []Op
	for max <= 0 || len(ops) < max {
		op, ok := src.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

// Thread pairs a thread's identity with its op stream. Transactions map 1:1
// to worker threads in the modeled OLTP system, so a Thread is one
// transaction instance.
type Thread struct {
	// ID is a unique numerical thread id.
	ID int
	// Type is the transaction type index within the workload; SLICC-SW
	// receives it, plain SLICC must not look at it.
	Type int
	// TypeName is the human-readable transaction type.
	TypeName string
	// New constructs the op stream. Calling New multiple times yields
	// identical, independent streams (generators are deterministic), which
	// lets one workload definition be replayed under many machine
	// configurations.
	New func() Source
}

// --- binary trace serialization (v1, single thread) --------------------------

// v1 format: magic, version, op count, then one varint-encoded record per
// op (flags bit0 = HasData, bit1 = IsWrite, absolute addresses). The v2
// multi-thread container in container.go shares the magic; docs/TRACES.md
// specifies both layouts.
var traceMagic = [4]byte{'S', 'L', 'T', 'R'}

// traceVersion identifies the v1 single-thread format.
const traceVersion = 1

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// WriteTrace encodes ops to w in the v1 single-thread format. For whole
// workloads use WriteWorkload, which writes the streamable v2 container.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(ops)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, op := range ops {
		var flags byte
		if op.HasData {
			flags |= 1
		}
		if op.IsWrite {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], op.PC)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if op.HasData {
			n = binary.PutUvarint(buf[:], op.DataAddr)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a trace written by WriteTrace, fully into memory. To
// stream a trace (or read a v2 container) use OpenWorkload, which accepts
// v1 files too.
func ReadTrace(r io.Reader) ([]Op, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadTrace
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: absurd op count %d", ErrBadTrace, count)
	}
	// Never trust the declared count for allocation: a forged header must
	// not make us reserve gigabytes. Start small; append grows as records
	// actually decode, and truncated streams fail fast below.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	ops := make([]Op, 0, capHint)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		var op Op
		op.HasData = flags&1 != 0
		op.IsWrite = flags&2 != 0
		if op.PC, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: op %d pc: %w", i, err)
		}
		if op.HasData {
			if op.DataAddr, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: op %d data: %w", i, err)
			}
		}
		ops = append(ops, op)
	}
	return ops, nil
}
