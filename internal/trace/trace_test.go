package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSliceSource(t *testing.T) {
	ops := []Op{{PC: 1}, {PC: 2, HasData: true, DataAddr: 100}, {PC: 3}}
	s := NewSliceSource(ops)
	for i, want := range ops {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("op %d = %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("source did not terminate")
	}
	s.Reset()
	if got, ok := s.Next(); !ok || got != ops[0] {
		t.Fatal("reset did not rewind")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestRecord(t *testing.T) {
	ops := []Op{{PC: 1}, {PC: 2}, {PC: 3}}
	if got := Record(NewSliceSource(ops), 0); len(got) != 3 {
		t.Fatalf("unbounded Record got %d ops", len(got))
	}
	if got := Record(NewSliceSource(ops), 2); len(got) != 2 {
		t.Fatalf("bounded Record got %d ops", len(got))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ops := []Op{
		{PC: 0x400000},
		{PC: 0x400004, HasData: true, DataAddr: 0x7fff0000},
		{PC: 0x400008, HasData: true, IsWrite: true, DataAddr: 0x12345678},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("SLTR\x63"))); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	ops := []Op{{PC: 1, HasData: true, DataAddr: 2}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 5; cut < len(full); cut++ {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: any op slice survives a serialize/deserialize round trip.
func TestPropRoundTrip(t *testing.T) {
	f := func(pcs []uint32, dataBits uint64) bool {
		ops := make([]Op, len(pcs))
		for i, pc := range pcs {
			ops[i].PC = uint64(pc)
			if dataBits&(1<<(uint(i)%64)) != 0 {
				ops[i].HasData = true
				ops[i].DataAddr = uint64(pc) * 3
				ops[i].IsWrite = i%3 == 0
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
