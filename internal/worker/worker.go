// Package worker implements the sliccworker fleet member: lease a job
// from the control plane's queue API, run it through the ordinary
// engine machinery (runner pool over the shared content-addressed
// store), publish the result as a store Put, and acknowledge the lease.
// The store is the result transport — complete/fail acks carry no data —
// so a worker that crashes mid-job loses nothing: its lease expires, the
// cell is re-leased, and if the crash happened after the Put the retry
// resolves instantly as a store hit.
//
// The package exists (rather than living inside cmd/sliccworker) so
// tests can run whole fleets in-process under the race detector; the
// binary is a flag-parsing shell around Options + Run.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slicc/internal/queue"
	"slicc/internal/runner"
	"slicc/internal/store"
)

// Options configures a Worker.
type Options struct {
	// Server is the control plane's base URL (e.g. http://127.0.0.1:8080).
	Server string
	// StoreDir is the shared result store directory — the same directory
	// (or filesystem view of it) the control plane serves results from.
	StoreDir string
	// StoreMaxBytes / StoreMemBytes mirror the engine's store knobs.
	StoreMaxBytes int64
	StoreMemBytes int64
	// Workers bounds concurrently leased jobs (default GOMAXPROCS).
	Workers int
	// Poll is the lease long-poll wait per request (default 10s).
	Poll time.Duration
	// Heartbeat is the lease renewal interval; 0 derives a third of the
	// lease window from each lease's expiry.
	Heartbeat time.Duration
	// Name labels this worker's leases (default worker-<pid>).
	Name string
	// FailSubstr is deterministic fault injection for the test harness:
	// a leased job whose id or payload contains the substring fails
	// without executing. Empty disables it.
	FailSubstr string
	// Logger receives worker lifecycle events. Nil is silent.
	Logger *slog.Logger
	// Client overrides the HTTP client (default: a fresh http.Client).
	Client *http.Client
}

// Stats counts a worker's lifetime outcomes.
type Stats struct {
	// Completed / Failed count acknowledged jobs by outcome; Abandoned
	// counts jobs dropped without an ack (lost lease or shutdown mid-job
	// — the lease expiry retries them).
	Completed int64
	Failed    int64
	Abandoned int64
}

// Worker leases jobs from one control plane and executes them against
// one shared store.
type Worker struct {
	opts   Options
	client *http.Client
	logger *slog.Logger
	st     *store.Store
	pool   *runner.Pool

	completed atomic.Int64
	failed    atomic.Int64
	abandoned atomic.Int64
}

// New builds a Worker: opens the shared store and the local runner pool.
// Callers own the Worker and must Close it after Run returns.
func New(o Options) (*Worker, error) {
	if o.Server == "" {
		return nil, errors.New("worker: Server is required")
	}
	if o.StoreDir == "" {
		return nil, errors.New("worker: StoreDir is required (the shared store carries results)")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Poll <= 0 {
		o.Poll = 10 * time.Second
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	o.Server = strings.TrimRight(o.Server, "/")
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	st, err := store.Open(o.StoreDir, store.Options{MaxBytes: o.StoreMaxBytes, MemBytes: o.StoreMemBytes, Logger: o.Logger})
	if err != nil {
		return nil, fmt.Errorf("worker: opening result store: %w", err)
	}
	pool := runner.New(runner.Options{Workers: o.Workers, Memo: runner.NewStoreMemo(st)})
	return &Worker{opts: o, client: client, logger: o.Logger, st: st, pool: pool}, nil
}

// Close releases the worker's store and pool resources. Call after Run
// has returned.
func (w *Worker) Close() error {
	err := w.pool.Close()
	if serr := w.st.Close(); err == nil {
		err = serr
	}
	return err
}

// Stats snapshots the worker's outcome counters.
func (w *Worker) Stats() Stats {
	return Stats{
		Completed: w.completed.Load(),
		Failed:    w.failed.Load(),
		Abandoned: w.abandoned.Load(),
	}
}

// Run leases and executes jobs until ctx ends, on Options.Workers
// concurrent lease loops, then waits for in-flight jobs to finish or
// abandon. It returns nil on cancellation — the lease protocol makes
// shutdown mid-job safe, not an error.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < w.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

// loop is one lease-execute-ack cycle runner.
func (w *Worker) loop(ctx context.Context) {
	for ctx.Err() == nil {
		job, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Control plane down or restarting: back off and retry. The
			// queue is durable, so nothing is lost while we wait.
			w.logger.Warn("worker: lease failed", "error", err.Error())
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				return
			}
			continue
		}
		if job == nil {
			continue // empty long poll
		}
		w.process(ctx, job)
	}
}

// process executes one leased job and acknowledges it.
func (w *Worker) process(ctx context.Context, job *queue.LeaseJob) {
	log := w.logger.With("id", shortID(job.ID), "holder", job.Holder)
	log.Debug("worker: leased", "attempts", job.Attempts)

	// Deterministic fault injection (test harness): fail before decoding
	// so even malformed payloads can be forced down the fail path. The
	// payload is compacted first so substrings like `"Threads":9` match
	// regardless of how the transport indented the JSON.
	if s := w.opts.FailSubstr; s != "" &&
		(strings.Contains(job.ID, s) || bytes.Contains(compactJSON(job.Payload), []byte(s))) {
		w.ack(ctx, job, fmt.Sprintf("injected failure: payload matches -fail-substr %q", s))
		return
	}

	var j runner.Job
	if err := json.Unmarshal(job.Payload, &j); err != nil {
		w.ack(ctx, job, "decoding job payload: "+err.Error())
		return
	}
	// The id is the result's store key; a payload that hashes differently
	// would publish under the wrong key. Refuse rather than corrupt.
	if key := runner.JobKey(j); key != job.ID {
		w.ack(ctx, job, fmt.Sprintf("job key mismatch: payload hashes to %s", shortID(key)))
		return
	}

	// jobCtx is cancelled when the lease is lost (heartbeat rejected):
	// past that point another worker may be executing the same cell, and
	// finishing here would only duplicate work the store already absorbs.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopHB := w.startHeartbeat(jobCtx, cancel, job)
	rs, err := w.pool.Run(jobCtx, []runner.Job{j})
	stopHB()

	switch {
	case err == nil && len(rs) == 1 && rs[0].Err == nil:
		// The pool's store memo already published the result (or served
		// it as a hit on a retried cell); the ack is all that is left.
		w.ack(ctx, job, "")
	case jobCtx.Err() != nil:
		// Shutdown or lost lease: no ack. The visibility timeout returns
		// the cell to the queue.
		w.abandoned.Add(1)
		log.Debug("worker: abandoned", "reason", context.Cause(jobCtx).Error())
	default:
		if err == nil {
			err = rs[0].Err
		}
		w.ack(ctx, job, err.Error())
	}
}

// ack acknowledges a processed job: complete on empty cause, fail
// otherwise. Rejected acks (expired/re-issued lease) are benign — the
// retry resolves through the store — so they are logged, not retried.
func (w *Worker) ack(ctx context.Context, job *queue.LeaseJob, cause string) {
	log := w.logger.With("id", shortID(job.ID), "holder", job.Holder)
	if cause == "" {
		if err := w.complete(ctx, job.ID, job.Holder); err != nil {
			w.abandoned.Add(1)
			log.Warn("worker: complete rejected", "error", err.Error())
			return
		}
		w.completed.Add(1)
		log.Debug("worker: completed")
		return
	}
	if err := w.fail(ctx, job.ID, job.Holder, cause); err != nil {
		w.abandoned.Add(1)
		log.Warn("worker: fail rejected", "error", err.Error())
		return
	}
	w.failed.Add(1)
	log.Debug("worker: failed", "cause", cause)
}

// startHeartbeat renews job's lease until the returned stop function is
// called. A rejected renewal (the lease expired and may be held by
// another worker now) cancels the job via cancel; transient errors (the
// control plane restarting) are retried on the next tick.
func (w *Worker) startHeartbeat(ctx context.Context, cancel context.CancelFunc, job *queue.LeaseJob) (stop func()) {
	interval := w.opts.Heartbeat
	if interval <= 0 {
		interval = time.Until(job.LeaseExpires) / 3
	}
	if interval < 200*time.Millisecond {
		interval = 200 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.heartbeat(ctx, job.ID, job.Holder); err != nil {
					if errors.Is(err, queue.ErrNotHolder) || errors.Is(err, queue.ErrUnknown) {
						w.logger.Warn("worker: lease lost", "id", shortID(job.ID), "error", err.Error())
						cancel()
						return
					}
					w.logger.Warn("worker: heartbeat failed", "id", shortID(job.ID), "error", err.Error())
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// lease requests one job, long-polling Options.Poll.
func (w *Worker) lease(ctx context.Context) (*queue.LeaseJob, error) {
	req := queue.LeaseRequest{Worker: w.opts.Name, WaitSeconds: int(w.opts.Poll / time.Second)}
	var resp queue.LeaseResponse
	if err := w.do(ctx, "/v1/queue/lease", req, &resp); err != nil {
		return nil, err
	}
	return resp.Job, nil
}

func (w *Worker) heartbeat(ctx context.Context, id, holder string) error {
	var resp queue.HeartbeatResponse
	return w.do(ctx, "/v1/queue/"+id+"/heartbeat", queue.HeartbeatRequest{Holder: holder}, &resp)
}

func (w *Worker) complete(ctx context.Context, id, holder string) error {
	return w.do(ctx, "/v1/queue/"+id+"/complete", queue.CompleteRequest{Holder: holder}, nil)
}

func (w *Worker) fail(ctx context.Context, id, holder, cause string) error {
	var resp queue.FailResponse
	return w.do(ctx, "/v1/queue/"+id+"/fail", queue.FailRequest{Holder: holder, Error: cause}, &resp)
}

// do POSTs body as JSON to path and decodes the response into out (when
// non-nil). Protocol rejections map onto the queue's sentinel errors: 404
// is ErrUnknown, 409 is ErrNotHolder.
func (w *Worker) do(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", queue.ErrUnknown, errText(raw))
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", queue.ErrNotHolder, errText(raw))
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("worker: %s: %s: %s", path, resp.Status, errText(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// errText extracts the server's error message from a JSON error body,
// falling back to the raw bytes.
func errText(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// compactJSON strips insignificant whitespace from b, returning b itself
// when it is not valid JSON (the fail-substr check still sees the bytes).
func compactJSON(b []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return b
	}
	return buf.Bytes()
}

// shortID abbreviates content keys for logs.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
