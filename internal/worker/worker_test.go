package worker_test

// In-process fleet-member tests against a real control plane: the
// heartbeat loop keeps a job leased for longer than the visibility
// timeout, and -fail-substr fault injection drives a poison cell through
// the retry budget into the dead-letter queue while healthy cells are
// untouched. Both run whole HTTP round trips under the race detector.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slicc"
	"slicc/internal/queue"
	"slicc/internal/server"
	"slicc/internal/worker"
)

// plane is an in-process distributed control plane.
type plane struct {
	url      string
	q        *queue.Queue
	storeDir string
}

func newPlane(t *testing.T, qopts queue.Options) plane {
	t.Helper()
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	q, err := queue.Open(filepath.Join(dir, "queue"), qopts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slicc.NewEngine(slicc.EngineOptions{
		Workers: 2, StoreDir: storeDir, Remote: &queue.Dispatcher{Q: q},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Options{Timeout: time.Minute, Queue: q})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
		q.Close()
	})
	return plane{url: ts.URL, q: q, storeDir: storeDir}
}

func startWorker(t *testing.T, o worker.Options) *worker.Worker {
	t.Helper()
	w, err := worker.New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		w.Close()
	})
	return w
}

// runSweep POSTs a sweep spec with wait=1 and returns its terminal state.
func runSweep(t *testing.T, base, spec string) (status, errText string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sw struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	return sw.Status, sw.Error
}

// TestWorkerHeartbeatOutlivesLeaseTTL proves the renewal loop: one cell
// runs for several visibility timeouts, and because the worker heartbeats
// under the TTL the lease never expires and the cell is never re-issued.
func TestWorkerHeartbeatOutlivesLeaseTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second simulation cell")
	}
	p := newPlane(t, queue.Options{
		LeaseTTL: 700 * time.Millisecond, SweepInterval: 50 * time.Millisecond,
	})
	w := startWorker(t, worker.Options{
		Server: p.url, StoreDir: p.storeDir, Workers: 1,
		Poll: time.Second, Heartbeat: 200 * time.Millisecond, Name: "hb",
	})

	// One cell long enough to span several TTLs of wall time.
	spec := `{"name":"hb","baseline":"none","workloads":["tpcc1"],"policies":["slicc-sw"],"threads":[8],"scales":[3]}`
	if status, errText := runSweep(t, p.url, spec); status != "done" {
		t.Fatalf("sweep status %q (%s)", status, errText)
	}

	qs := p.q.Stats()
	if qs.Expirations != 0 {
		t.Fatalf("lease expired %d times under an active heartbeat", qs.Expirations)
	}
	if qs.Heartbeats == 0 {
		t.Fatal("no heartbeats recorded for a job spanning multiple TTLs")
	}
	if qs.Leases != 1 || qs.Completions != 1 {
		t.Fatalf("queue stats %+v, want the one cell leased and completed once", qs)
	}
	// The worker bumps its counter after its complete call returns, which
	// can trail the sweep's own completion by one HTTP round trip.
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Completed != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ws := w.Stats(); ws.Completed != 1 || ws.Abandoned != 0 {
		t.Fatalf("worker stats %+v", ws)
	}
}

// TestWorkerFailSubstrDeadLetters drives the poison path end to end in
// process: the injected failure exhausts the retry budget, the cell
// dead-letters with its error chain, the sweep reports the failure, and
// the poison is sticky for re-submissions.
func TestWorkerFailSubstrDeadLetters(t *testing.T) {
	p := newPlane(t, queue.Options{
		MaxAttempts: 2, Backoff: 10 * time.Millisecond,
		LeaseTTL: 30 * time.Second, SweepInterval: 20 * time.Millisecond,
	})
	startWorker(t, worker.Options{
		Server: p.url, StoreDir: p.storeDir, Workers: 2,
		Poll: time.Second, Name: "poisoned", FailSubstr: `"Threads":9`,
	})

	// Two cells; the injected substring matches exactly one payload.
	spec := `{"name":"poison","baseline":"none","workloads":["tpcc1"],"policies":["base"],"threads":[4,9],"scales":[0.1]}`
	status, errText := runSweep(t, p.url, spec)
	if status != "failed" {
		t.Fatalf("sweep status %q, want failed", status)
	}
	for _, want := range []string{"dead after 2 attempts", "injected failure", "-fail-substr"} {
		if !strings.Contains(errText, want) {
			t.Fatalf("sweep error %q missing %q", errText, want)
		}
	}

	// The DLQ names the cell with the whole attempt chain.
	dead := p.q.Dead()
	if len(dead) != 1 || dead[0].Attempts != 2 {
		t.Fatalf("DLQ %+v, want the one poison cell after 2 attempts", dead)
	}
	for i, line := range dead[0].Errors {
		if !strings.Contains(line, "injected failure") {
			t.Fatalf("DLQ error %d = %q", i, line)
		}
	}

	// Re-submitting (fresh sweep id, same cells) fails fast off the DLQ:
	// deterministic poison stays poison, with no new failed attempts.
	status, errText = runSweep(t, p.url, strings.Replace(spec, `"poison"`, `"poison-again"`, 1))
	if status != "failed" || !strings.Contains(errText, "dead after 2 attempts") {
		t.Fatalf("re-submitted sweep: status %q error %q", status, errText)
	}
	if qs := p.q.Stats(); qs.Dead != 1 || qs.Failures != 2 {
		t.Fatalf("re-submission touched the DLQ: %+v", qs)
	}
}
