package workload

// Shared decoded op tables for lockstep batching. A sweep family runs N
// machine configurations over the *same* workload; on the scalar path each
// of the N simulations decodes (or regenerates) every thread's op stream
// for itself. BatchThreads instead decodes each thread once into a plain
// []trace.Op and hands every machine a SliceSource view of it — the
// simulator's span fast path then consumes the table with zero copies, so
// a family of N cells decodes each op exactly once.

import (
	"sync"
	"sync/atomic"

	"slicc/internal/trace"
)

// decodedOpBytes is the in-memory size of one decoded trace.Op (two
// 8-byte addresses plus two flag bytes, padded to 8-byte alignment).
const decodedOpBytes = 24

// batchTableBudget bounds the decoded ops one workload's batch table
// retains, in bytes. Decoded ops are ~6x larger than the opCache's
// encoded form, so the table gets its own, larger budget; threads that
// do not fit stay on their original sources (each batched machine then
// decodes that thread itself — slower, still byte-identical). It is a
// var so tests can shrink it.
var batchTableBudget = int64(1) << 29 // 512MB

// batchTable holds a workload's decoded-op thread list, built at most
// once per workload (the build drains every thread's stream, which is as
// expensive as one scalar simulation's decode work).
type batchTable struct {
	once    sync.Once
	threads []trace.Thread
	// fresh counts ops the build decoded into the table; BatchThreads
	// consumes it once so callers can report decode work actually done by
	// their batch (reuse of a built table reports zero).
	fresh uint64
}

// BatchThreads returns the workload's threads backed by the shared
// decoded-op table, for machines that will run in a lockstep batch
// (sim.RunBatch). The thread list matches Threads() — same IDs, types and
// order, and each New() yields the byte-identical op stream — but
// materialized threads replay from one []trace.Op all machines share.
// The second result is the number of ops this call newly decoded into
// the table (zero when an earlier call already built it); callers use it
// for decode-amortization accounting.
func (w *Workload) BatchThreads() ([]trace.Thread, uint64) {
	w.bt.once.Do(w.buildBatchTable)
	return w.bt.threads, atomic.SwapUint64(&w.bt.fresh, 0)
}

func (w *Workload) buildBatchTable() {
	limit := batchTableBudget / decodedOpBytes
	threads := make([]trace.Thread, len(w.threads))
	copy(threads, w.threads)
	var fresh uint64
	for i := range threads {
		ops, ok := drainOps(threads[i].New(), limit)
		if !ok {
			// Out of budget. Threads are near-uniform in size, so later ones
			// would overflow too — stop materializing rather than paying a
			// doomed drain per remaining thread. The rest keep their
			// original sources.
			break
		}
		limit -= int64(len(ops))
		fresh += uint64(len(ops))
		view := ops
		threads[i].New = func() trace.Source { return trace.NewSliceSource(view) }
	}
	w.bt.threads = threads
	w.bt.fresh = fresh
}

// drainOps materializes src into a slice, refusing (nil, false) once the
// stream exceeds limit ops.
func drainOps(src trace.Source, limit int64) ([]trace.Op, bool) {
	var ops []trace.Op
	if bs, ok := src.(trace.BatchSource); ok {
		buf := make([]trace.Op, 4096)
		for {
			n := bs.NextBatch(buf)
			if n == 0 {
				return ops, true
			}
			if int64(len(ops))+int64(n) > limit {
				return nil, false
			}
			ops = append(ops, buf[:n]...)
		}
	}
	for {
		op, ok := src.Next()
		if !ok {
			return ops, true
		}
		if int64(len(ops)) >= limit {
			return nil, false
		}
		ops = append(ops, op)
	}
}
