package workload

// This file defines the three benchmarks of Table 1. Segment sizes are
// 4KB (64 blocks): an OLTP transaction's loop body spans many segments so
// its footprint thrashes a single 32KB L1-I but fits in a few; SLICC's job
// is to spread those segments over neighbouring caches.
//
// Calibration targets (paper, 32KB L1, LRU):
//   TPC-C  I-MPKI ~ 37, TPC-E ~ 30, MapReduce small;
//   D-MPKI ~ 10 and compulsory-dominated;
//   TPC-C stray-thread share ~12%, TPC-E ~3%;
//   TPC-C type footprints larger than TPC-E's.

const segBlocks = 64 // 4KB code segments

// profile returns the per-kind data-region parameters (database sizes from
// Table 1).
func (w *Workload) profile() dataProfile {
	oltp := dataProfile{
		hotBytes: 16 << 10, privBytes: 8 << 10, rowRun: 16,
		rowWrite: 0.60, hotWrite: 0.005, privWrite: 0.50, privSkew: 2,
	}
	switch w.Kind {
	case TPCC1:
		oltp.dbBytes = 84 << 20
		return oltp
	case TPCC10:
		oltp.dbBytes = 1 << 30
		return oltp
	case TPCE:
		oltp.dbBytes = 20 << 30
		return oltp
	case MapReduce:
		return dataProfile{
			dbBytes: 12 << 30, hotBytes: 8 << 10, privBytes: 4 << 10, rowRun: 16,
			rowWrite: 0.20, hotWrite: 0.005, privWrite: 0.40, privSkew: 2,
		}
	case Phased:
		// Phase changes touch fresh working sets, so row streaming dominates
		// and the reusable private set is modest.
		oltp.dbBytes = 8 << 30
		return oltp
	case Skewed:
		// Multi-tenant hot keys: a larger, more contended shared hot set
		// (lock words, tenant metadata) with a visible store fraction.
		return dataProfile{
			dbBytes: 50 << 30, hotBytes: 32 << 10, privBytes: 8 << 10, rowRun: 16,
			rowWrite: 0.60, hotWrite: 0.10, privWrite: 0.50, privSkew: 2,
		}
	case Microservice:
		// Small per-request payloads: short row runs (deserialized fields),
		// a hot set of connection/session state, shallow private frames.
		return dataProfile{
			dbBytes: 2 << 30, hotBytes: 8 << 10, privBytes: 4 << 10, rowRun: 8,
			rowWrite: 0.30, hotWrite: 0.02, privWrite: 0.50, privSkew: 1.5,
		}
	}
	panic("workload: unknown kind")
}

// buildTPCC synthesizes the five-transaction-type TPC-C wholesale-supplier
// workload. Type weights follow the TPC-C mix; the three 4%-weight types are
// the paper's ~12% stray threads.
func buildTPCC(cfg Config) *Workload {
	a := newSegAlloc()
	// Shared DB-engine/OS pool: B-tree, lock manager, log manager, buffer
	// pool, catalog, allocator, syscall, utility (8 x 4KB = 32KB).
	common := a.allocN(8, segBlocks, true)
	btree, lock, logm, buf := common[0], common[1], common[2], common[3]
	catalog, alloc, syscall, util := common[4], common[5], common[6], common[7]

	mk := func(name string, weight float64, bodySegs, optSegs, minItems, maxItems int, entrySegs int) TxnType {
		t := TxnType{
			Name:        name,
			Weight:      weight,
			Entry:       a.allocN(entrySegs, segBlocks, false),
			Preamble:    []int{lock, buf, catalog},
			LoopBody:    append(a.allocN(bodySegs, segBlocks, false), btree, buf),
			Epilogue:    []int{logm, alloc, syscall, util},
			MinItems:    minItems,
			MaxItems:    maxItems,
			BlockRepeat: 0.65,
			DataRate:    0.30,
			RowFrac:     0.55,
			SharedFrac:  0.20,
		}
		for _, seg := range a.allocN(optSegs, segBlocks, false) {
			t.Optional = append(t.Optional, optionalSeg{seg: seg, prob: 0.25})
		}
		return t
	}

	types := []TxnType{
		// NewOrder: the largest footprint (~300KB: the paper observes
		// TPC-C transactions spreading across up to 14 32KB caches).
		mk("NewOrder", 0.45, 60, 8, 2, 4, 3),
		// Payment: medium footprint, few items.
		mk("Payment", 0.43, 40, 6, 2, 4, 2),
		// The three low-weight types supply stray threads (~12%).
		mk("OrderStatus", 0.04, 14, 2, 2, 4, 1),
		mk("Delivery", 0.04, 34, 4, 2, 4, 1),
		mk("StockLevel", 0.04, 18, 2, 2, 4, 1),
	}

	name := "TPC-C-1"
	if cfg.Kind == TPCC10 {
		name = "TPC-C-10"
	}
	return &Workload{Name: name, Kind: cfg.Kind, Config: cfg, Segments: a.segs, Types: types}
}

// buildTPCE synthesizes the TPC-E brokerage workload: ten transaction
// types with a more even mix (stray share ~3%) and somewhat smaller
// footprints than TPC-C, but a larger shared pool (the paper notes TPC-E
// spreads across 8-10 cores vs TPC-C's up to 14).
func buildTPCE(cfg Config) *Workload {
	a := newSegAlloc()
	common := a.allocN(10, segBlocks, true) // transaction frame + engine
	// The brokerage library: a large shared pool the per-type loop bodies
	// draw overlapping windows from. This cross-type code overlap is why
	// the paper finds SLICC's collectives especially effective on TPC-E
	// (and why it beats PIF there: one cached copy serves many types,
	// while a per-core prefetcher re-fetches it per core).
	lib := a.allocN(30, segBlocks, true)

	nextLib := 0
	mk := func(name string, weight float64, bodySegs, optSegs, minItems, maxItems int) TxnType {
		body := a.allocN(bodySegs, segBlocks, false)
		for j := 0; j < 12; j++ {
			body = append(body, lib[(nextLib+j)%len(lib)])
		}
		nextLib += 3
		t := TxnType{
			Name:        name,
			Weight:      weight,
			Entry:       a.allocN(1, segBlocks, false),
			Preamble:    []int{common[0], common[1], common[2]},
			LoopBody:    body,
			Epilogue:    []int{common[5], common[6], common[7]},
			MinItems:    minItems,
			MaxItems:    maxItems,
			BlockRepeat: 0.70,
			DataRate:    0.30,
			RowFrac:     0.50,
			SharedFrac:  0.25,
		}
		for _, seg := range a.allocN(optSegs, segBlocks, false) {
			t.Optional = append(t.Optional, optionalSeg{seg: seg, prob: 0.2})
		}
		return t
	}

	types := []TxnType{
		mk("BrokerVolume", 0.049, 10, 1, 3, 6),
		mk("CustomerPosition", 0.13, 12, 1, 3, 6),
		mk("MarketWatch", 0.18, 9, 1, 3, 6),
		mk("SecurityDetail", 0.14, 13, 2, 3, 6),
		mk("TradeLookup", 0.08, 11, 1, 3, 6),
		mk("TradeOrder", 0.105, 14, 2, 3, 7),
		mk("TradeResult", 0.10, 13, 2, 3, 7),
		mk("TradeStatus", 0.19, 8, 1, 3, 6),
		// The two rare types are TPC-E's ~3% stray share.
		mk("MarketFeed", 0.01, 9, 1, 2, 4),
		mk("TradeUpdate", 0.02, 11, 1, 3, 5),
	}
	return &Workload{Name: "TPC-E", Kind: TPCE, Config: cfg, Segments: a.segs, Types: types}
}

// buildMapReduce synthesizes the CloudSuite text-analytics MapReduce
// workload: 300 single-task threads whose instruction footprint fits in one
// 32KB L1-I (the paper's robustness control), streaming a 12GB input.
func buildMapReduce(cfg Config) *Workload {
	a := newSegAlloc()
	// Smaller segments: the whole per-task footprint (~12.5KB) must stay
	// under fill-up_t (256 blocks) so SLICC never even arms migration.
	const mrSegBlocks = 40
	common := a.allocN(2, mrSegBlocks, true) // JVM/runtime-ish shared code

	mapBody := a.allocN(2, mrSegBlocks, false)
	reduceBody := a.allocN(2, mrSegBlocks, false)
	types := []TxnType{
		{
			Name:        "MapTask",
			Weight:      0.8,
			Entry:       a.allocN(1, mrSegBlocks, false),
			Preamble:    []int{common[0]},
			LoopBody:    append(mapBody, common[1]),
			Epilogue:    []int{common[0]},
			MinItems:    10,
			MaxItems:    20,
			BlockRepeat: 0.70,
			DataRate:    0.30,
			RowFrac:     0.80,
			SharedFrac:  0.05,
		},
		{
			Name:        "ReduceTask",
			Weight:      0.2,
			Entry:       a.allocN(1, mrSegBlocks, false),
			Preamble:    []int{common[0]},
			LoopBody:    append(reduceBody, common[1]),
			Epilogue:    []int{common[0]},
			MinItems:    10,
			MaxItems:    20,
			BlockRepeat: 0.70,
			DataRate:    0.30,
			RowFrac:     0.75,
			SharedFrac:  0.05,
		},
	}
	return &Workload{Name: "MapReduce", Kind: MapReduce, Config: cfg, Segments: a.segs, Types: types}
}
