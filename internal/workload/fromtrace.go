package workload

import (
	"fmt"

	"slicc/internal/trace"
)

// maxRecordedType bounds the transaction type indices accepted from a
// container: type indices index slices downstream, so a forged sparse index
// must not drive a huge allocation.
const maxRecordedType = 1 << 16

// FromTraceFile opens the trace container at path and wraps it as a
// Workload, making recorded and synthetic workloads interchangeable
// everywhere downstream: the simulator, the runner and the experiment
// harness all consume Threads() and never ask how the ops were produced.
//
// The returned workload streams ops straight from the file — each call to a
// thread's New opens an independent constant-memory trace.FileSource — so
// replaying a container much larger than RAM is fine. Transaction types are
// reconstructed from the container's per-thread metadata (name per type
// index, weight from the recorded mix); code-layout queries that only make
// sense for synthetic workloads (segment footprints, shared ranges) report
// empty results.
//
// The workload holds the container open for its lifetime. Workloads are
// cached and shared by the runner for the pool's lifetime; long-lived
// callers release the descriptors via Close (the runner's Pool.Close does
// this for every cached workload), while one-shot CLIs may simply let the
// OS reclaim them on exit.
func FromTraceFile(path string) (*Workload, error) {
	f, err := trace.OpenWorkload(path)
	if err != nil {
		return nil, err
	}
	maxType := 0
	for i := 0; i < f.NumThreads(); i++ {
		if t := f.Meta(i).Type; t > maxType {
			maxType = t
		}
	}
	if maxType > maxRecordedType {
		f.Close()
		return nil, fmt.Errorf("workload: %s: absurd transaction type index %d", path, maxType)
	}
	types := make([]TxnType, maxType+1)
	counts := make([]int, maxType+1)
	for i := 0; i < f.NumThreads(); i++ {
		m := f.Meta(i)
		counts[m.Type]++
		if types[m.Type].Name == "" {
			types[m.Type].Name = m.TypeName
		}
	}
	for ti := range types {
		if types[ti].Name == "" {
			types[ti].Name = fmt.Sprintf("type%d", ti)
		}
		if n := f.NumThreads(); n > 0 {
			types[ti].Weight = float64(counts[ti]) / float64(n)
		}
	}
	return &Workload{
		Name:      f.Name(),
		Kind:      Recorded,
		Config:    Config{TracePath: path},
		Types:     types,
		threads:   f.Threads(),
		container: f,
	}, nil
}

// Container returns the trace file backing a Recorded workload, or nil for
// synthetic workloads.
func (w *Workload) Container() *trace.File { return w.container }

// Close releases the trace container backing a Recorded workload (a no-op
// for synthetic workloads). Sources created from the workload's threads
// must not be used after Close.
func (w *Workload) Close() error {
	if w.container == nil {
		return nil
	}
	return w.container.Close()
}
