package workload

import (
	"os"
	"path/filepath"
	"testing"

	"slicc/internal/trace"
)

// captureWorkload writes w's threads to a v2 container and returns its path.
func captureWorkload(t *testing.T, w *Workload) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFromTraceFileReplaysWorkload(t *testing.T) {
	syn := New(Config{Kind: TPCC1, Threads: 6, Seed: 3, Scale: 0.1})
	path := captureWorkload(t, syn)

	rec, err := FromTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != Recorded {
		t.Fatalf("Kind = %v, want Recorded", rec.Kind)
	}
	if rec.Name != syn.Name {
		t.Fatalf("Name = %q, want %q", rec.Name, syn.Name)
	}
	if rec.Container() == nil {
		t.Fatal("recorded workload has no container")
	}
	gen, rep := syn.Threads(), rec.Threads()
	if len(rep) != len(gen) {
		t.Fatalf("%d threads, want %d", len(rep), len(gen))
	}
	for i := range gen {
		if rep[i].ID != gen[i].ID || rep[i].Type != gen[i].Type || rep[i].TypeName != gen[i].TypeName {
			t.Fatalf("thread %d identity mismatch: %+v vs %+v", i, rep[i], gen[i])
		}
		a, b := gen[i].New(), rep[i].New()
		for k := 0; ; k++ {
			wantOp, wantOK := a.Next()
			gotOp, gotOK := b.Next()
			if wantOK != gotOK {
				t.Fatalf("thread %d: stream lengths diverge at op %d", i, k)
			}
			if !wantOK {
				break
			}
			if gotOp != wantOp {
				t.Fatalf("thread %d op %d = %+v, want %+v", i, k, gotOp, wantOp)
			}
		}
	}

	// Reconstructed types carry names and the recorded mix.
	counts := map[int]int{}
	for _, th := range gen {
		counts[th.Type]++
	}
	for ti, ty := range rec.Types {
		if ty.Name != syn.Types[ti].Name {
			t.Fatalf("type %d name %q, want %q", ti, ty.Name, syn.Types[ti].Name)
		}
		want := float64(counts[ti]) / float64(len(gen))
		if ty.Weight != want {
			t.Fatalf("type %d weight %v, want recorded share %v", ti, ty.Weight, want)
		}
	}

	// Recorded workloads answer op-count queries from the container.
	for ti := range rec.Types {
		if counts[ti] > 0 && rec.EstimateInstructions(ti) == 0 {
			t.Fatalf("EstimateInstructions(%d) = 0 for a populated type", ti)
		}
	}
	// Code-layout queries have nothing to report but must not panic.
	if got := rec.SharedRanges(); len(got) != 0 {
		t.Fatalf("SharedRanges on a recorded workload = %v", got)
	}
}

func TestFromTraceFileErrors(t *testing.T) {
	if _, err := FromTraceFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromTraceFile(bad); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConfigWithDefaultsCanonicalizesTraceConfigs(t *testing.T) {
	a := Config{TracePath: "x.trace", TraceDigest: "d"}.WithDefaults()
	b := Config{TracePath: "x.trace", TraceDigest: "d", Kind: TPCE, Threads: 99, Seed: 7, Scale: 2}.WithDefaults()
	if a != b {
		t.Fatalf("trace configs did not canonicalize: %+v vs %+v", a, b)
	}
	if a.Threads != 0 || a.Kind != TPCC1 {
		t.Fatalf("synthetic fields leaked into canonical trace config: %+v", a)
	}
}

func TestNewRejectsTraceConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a trace config")
		}
	}()
	New(Config{TracePath: "x.trace"})
}
