package workload

import (
	"math/rand"

	"slicc/internal/trace"
)

// Geometry of the modeled ISA/memory: 64-byte blocks, fixed 4-byte
// instructions (16 per block).
const (
	blockBytes    = 64
	instrBytes    = 4
	instrPerBlock = blockBytes / instrBytes
)

// Address-space layout (byte addresses). Code, database rows, the shared
// hot set and per-thread private data live in disjoint regions so traces
// are easy to inspect and misses are attributable.
const (
	codeBaseBlock = 0x0040_0000 // block address of the first code segment
	rowRegionBase = 0x6000_0000_0000
	hotRegionBase = 0x5000_0000_0000
	privBase      = 0x7000_0000_0000
	privStride    = 1 << 20 // per-thread private region spacing
)

// segAlloc hands out non-overlapping code segments.
type segAlloc struct {
	nextBlock uint64
	segs      []Segment
}

func newSegAlloc() *segAlloc {
	return &segAlloc{nextBlock: codeBaseBlock}
}

// alloc reserves a code segment of the given block count and returns its
// index.
func (a *segAlloc) alloc(blocks int, shared bool) int {
	id := len(a.segs)
	a.segs = append(a.segs, Segment{ID: id, Base: a.nextBlock, Blocks: blocks, Shared: shared})
	a.nextBlock += uint64(blocks)
	return id
}

// allocN reserves n segments and returns their indices.
func (a *segAlloc) allocN(n, blocks int, shared bool) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = a.alloc(blocks, shared)
	}
	return ids
}

// dataProfile captures the per-workload data-region parameters. Stores are
// assigned per region: row updates and private (stack/local) writes carry
// most stores, while the shared hot set (catalog, metadata, lock table
// reads) is read-mostly — which is what keeps OLTP data misses compulsory-
// dominated (Figure 1) rather than invalidation-dominated.
type dataProfile struct {
	dbBytes   uint64 // database size (Table 1); row addresses draw from here
	hotBytes  uint64 // shared hot-set size (locks, catalog, stats)
	privBytes uint64 // per-thread private working set
	rowRun    int    // consecutive 8-byte word accesses per row operation

	rowWrite  float64 // store probability for row accesses
	hotWrite  float64 // store probability for hot-set accesses
	privWrite float64 // store probability for private accesses
	privSkew  float64 // exponential skew of private accesses (mean blocks)
}

// threadSource generates one transaction's op stream. It is a lazy state
// machine over (visit list) x (blocks) x (instructions), attaching data
// accesses per the type's data profile. All randomness comes from its own
// rng, so the stream is independent of simulation order.
type threadSource struct {
	w   *Workload
	ty  *TxnType
	rng *rand.Rand

	visits []int // segment indices in execution order
	vi     int   // current visit
	bi     int   // current block within segment
	ii     int   // current instruction within block pass
	repeat bool  // currently in the repeat pass of this block

	// data-access state
	prof      dataProfile
	privLo    uint64
	rowAddr   uint64
	rowLeft   int
	dbBlocks  uint64
	hotBlocks uint64

	done bool
}

func newThreadSource(w *Workload, id, ti int, seed int64) *threadSource {
	ty := &w.Types[ti]
	rng := rand.New(rand.NewSource(seed))
	s := &threadSource{
		w:    w,
		ty:   ty,
		rng:  rng,
		prof: w.profile(),
	}
	s.privLo = privBase + uint64(id+1)*privStride
	s.dbBlocks = s.prof.dbBytes / blockBytes
	s.hotBlocks = s.prof.hotBytes / blockBytes
	s.visits = buildVisits(w, ty, rng)
	s.startBlock()
	return s
}

// buildVisits lays out the transaction's segment visit order: entry and
// preamble once, then the loop body per item with probabilistic optional
// segments (control-flow divergence), then the epilogue. This produces the
// A-B-C-A revisit pattern of Figure 4.
func buildVisits(w *Workload, ty *TxnType, rng *rand.Rand) []int {
	items := ty.MinItems
	if ty.MaxItems > ty.MinItems {
		items += rng.Intn(ty.MaxItems - ty.MinItems + 1)
	}
	items = int(float64(items) * w.Config.Scale)
	if items < 1 {
		items = 1
	}
	visits := make([]int, 0, len(ty.Entry)+len(ty.Preamble)+items*(len(ty.LoopBody)+len(ty.Optional))+len(ty.Epilogue))
	visits = append(visits, ty.Entry...)
	visits = append(visits, ty.Preamble...)
	for it := 0; it < items; it++ {
		half := len(ty.LoopBody) / 2
		visits = append(visits, ty.LoopBody[:half]...)
		for _, opt := range ty.Optional {
			if rng.Float64() < opt.prob {
				visits = append(visits, opt.seg)
			}
		}
		visits = append(visits, ty.LoopBody[half:]...)
	}
	visits = append(visits, ty.Epilogue...)
	return visits
}

// startBlock decides whether the block about to execute will run its repeat
// pass (a short loop that re-executes the block's instructions).
func (s *threadSource) startBlock() {
	s.ii = 0
	s.repeat = false
}

// Next implements trace.Source.
func (s *threadSource) Next() (trace.Op, bool) {
	if s.done {
		return trace.Op{}, false
	}
	segIdx := s.visits[s.vi]
	seg := &s.w.Segments[segIdx]
	blockOff := uint64(s.w.orders[segIdx][s.bi])
	pc := (seg.Base+blockOff)*blockBytes + uint64(s.ii)*instrBytes
	op := trace.Op{PC: pc}
	s.attachData(&op)
	s.advance(seg)
	return op, true
}

func (s *threadSource) advance(seg *Segment) {
	s.ii++
	if s.ii < instrPerBlock {
		return
	}
	// End of a block pass: maybe run the repeat pass, else next block.
	// Entry (dispatch) segments are straight-line code: same-type threads
	// execute an identical instruction prefix, which is the property
	// SLICC-Pp's scout-core fingerprinting depends on (Section 4.3.1).
	inEntry := s.vi < len(s.ty.Entry)
	if !inEntry && !s.repeat && s.rng.Float64() < s.ty.BlockRepeat {
		s.repeat = true
		s.ii = 0
		return
	}
	s.bi++
	s.startBlock()
	if s.bi < seg.Blocks {
		return
	}
	s.bi = 0
	s.vi++
	if s.vi >= len(s.visits) {
		s.done = true
	}
}

// attachData optionally adds a data access to op.
func (s *threadSource) attachData(op *trace.Op) {
	if s.rng.Float64() >= s.ty.DataRate {
		return
	}
	op.HasData = true
	r := s.rng.Float64()
	switch {
	case r < s.ty.RowFrac:
		op.DataAddr = s.nextRowAddr()
		op.IsWrite = s.rng.Float64() < s.prof.rowWrite
	case r < s.ty.RowFrac+s.ty.SharedFrac:
		op.DataAddr = hotRegionBase + uint64(s.rng.Int63n(int64(s.hotBlocks)))*blockBytes +
			uint64(s.rng.Intn(instrPerBlock))*8
		op.IsWrite = s.rng.Float64() < s.prof.hotWrite
	default:
		// Private accesses are skewed towards the top of the stack frame:
		// only a handful of blocks are hot, so a migration re-fetches few
		// private blocks (the paper's D-MPKI rises only ~1-11%).
		blocks := s.prof.privBytes / blockBytes
		b := uint64(s.rng.ExpFloat64() * s.prof.privSkew)
		if b >= blocks {
			b = blocks - 1
		}
		op.DataAddr = s.privLo + b*blockBytes + uint64(s.rng.Intn(8))*8
		op.IsWrite = s.rng.Float64() < s.prof.privWrite
	}
}

// nextRowAddr streams through database rows: each row operation touches
// rowRun consecutive 8-byte words starting at a random block of the
// database region. With a database much larger than the aggregate cache,
// these are the compulsory-dominated data misses of Figure 1.
func (s *threadSource) nextRowAddr() uint64 {
	if s.rowLeft == 0 {
		s.rowAddr = rowRegionBase + uint64(s.rng.Int63n(int64(s.dbBlocks)))*blockBytes
		s.rowLeft = s.prof.rowRun
	}
	a := s.rowAddr
	s.rowAddr += 4 // field-by-field scan within the row's block
	s.rowLeft--
	return a
}

// EstimateInstructions returns the expected op count of a thread of type ti
// (used by tests and the tracegen tool; it re-derives a stream and counts).
// For recorded workloads the container's exact per-thread counts are
// averaged over the type's instances instead.
func (w *Workload) EstimateInstructions(ti int) uint64 {
	if w.container != nil {
		var sum, n uint64
		for i := 0; i < w.container.NumThreads(); i++ {
			if m := w.container.Meta(i); m.Type == ti {
				sum += m.Ops
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	src := newThreadSource(w, 0, ti, threadSeed(w.Config.Seed, -1))
	var n uint64
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}
