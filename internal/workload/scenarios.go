package workload

import (
	"fmt"
	"math"
)

// This file defines the synthetic scenario families beyond the paper's
// Table 1 benchmarks. Each family is built on the same segment allocator /
// TxnType / threadSource machinery as the benchmarks, so every property the
// rest of the system relies on holds automatically: streams are
// deterministic per (seed, thread id), workloads are immutable after New,
// and a recorded container replays byte-identically. The families are
// designed to stress SLICC along axes the paper's benchmarks do not:
//
//   - Phased: large disjoint code phases with bursty excursions, churning
//     the learned per-cache signatures faster than SLICC amortizes them.
//   - Skewed: a Zipfian multi-tenant transaction mix — one dominant team
//     plus a long stray-thread tail, the regime between TPC-C's ~12% and
//     TPC-E's ~3% stray shares.
//   - Microservice: many services with small individual footprints but
//     RPC-like fan-out into each other's stubs and a shared runtime, so
//     aggregate code pressure comes from breadth, not per-thread depth.
//
// docs/WORKLOADS.md documents every parameter and the recipe for adding
// another family.

// buildPhased synthesizes the bursty phase-change scenario: three
// transaction types, each a distinct ~190KB phase of code. A transaction's
// loop body walks its own phase pool, but per iteration it bursts into the
// *next* phase's pool with high probability (optional segments), so the
// segment population of each cache keeps shifting under SLICC — the learned
// bloom signatures dilute faster than in the steady A-B-C-A OLTP loop.
func buildPhased(cfg Config) *Workload {
	a := newSegAlloc()
	// Shared runtime/OS pool (dispatch, allocator, syscall, logging).
	common := a.allocN(6, segBlocks, true)

	// Three disjoint phase pools. Allocated up front so each type can
	// reference its successor phase's segments as burst targets.
	const phases = 3
	pools := make([][]int, phases)
	for p := range pools {
		pools[p] = a.allocN(36, segBlocks, false)
	}
	bursts := make([][]int, phases)
	for p := range bursts {
		bursts[p] = a.allocN(8, segBlocks, false)
	}

	types := make([]TxnType, phases)
	for p := 0; p < phases; p++ {
		t := TxnType{
			Name:     "Phase" + string(rune('A'+p)),
			Weight:   1.0 / phases,
			Entry:    a.allocN(2, segBlocks, false),
			Preamble: []int{common[0], common[1]},
			LoopBody: append(append([]int{}, pools[p]...), common[2]),
			Epilogue: []int{common[3], common[4], common[5]},
			MinItems: 2,
			MaxItems: 5,
			// Lower repeat rate than OLTP: phase code streams through
			// blocks quickly, which is what makes the churn bursty.
			BlockRepeat: 0.45,
			DataRate:    0.30,
			RowFrac:     0.55,
			SharedFrac:  0.15,
		}
		// Bursty excursions into the next phase's private burst pool: at
		// prob 0.35 per iteration each burst segment fires, dragging the
		// thread's footprint across phase boundaries mid-transaction.
		for _, seg := range bursts[(p+1)%phases] {
			t.Optional = append(t.Optional, optionalSeg{seg: seg, prob: 0.35})
		}
		types[p] = t
	}
	return &Workload{Name: "Phased", Kind: Phased, Config: cfg, Segments: a.segs, Types: types}
}

// skewedTenants is the number of tenant transaction types in the Skewed
// scenario; skewedZipfS is the Zipf exponent of their mix weights.
const (
	skewedTenants = 12
	skewedZipfS   = 1.1
)

// buildSkewed synthesizes the multi-tenant hot-key scenario: skewedTenants
// transaction types whose mix weights follow a Zipf(s=1.1) law, so the top
// tenant takes ~30% of threads while the tail tenants each contribute a
// percent or two — stray threads SLICC's team scheduling must tolerate.
// All tenants share the engine pool plus a hot-path library (the code that
// serves the hot keys), so collectives still pay off on the shared half.
func buildSkewed(cfg Config) *Workload {
	a := newSegAlloc()
	common := a.allocN(8, segBlocks, true)  // DB engine: btree, lock, log, buffer...
	hotLib := a.allocN(10, segBlocks, true) // hot-key path: point lookup + update

	// Zipf weights, normalized below by assignThreads' weight sum.
	types := make([]TxnType, skewedTenants)
	for i := 0; i < skewedTenants; i++ {
		body := a.allocN(20, segBlocks, false)
		// Every tenant runs the hot-key library inside its loop, offset so
		// adjacent tenants overlap on most of it (multi-tenant code reuse).
		for j := 0; j < 6; j++ {
			body = append(body, hotLib[(i+j)%len(hotLib)])
		}
		t := TxnType{
			Name:        fmt.Sprintf("Tenant%02d", i+1),
			Weight:      1 / math.Pow(float64(i+1), skewedZipfS),
			Entry:       a.allocN(1, segBlocks, false),
			Preamble:    []int{common[0], common[1], common[2]},
			LoopBody:    append(body, common[3]),
			Epilogue:    []int{common[4], common[5], common[6], common[7]},
			MinItems:    2,
			MaxItems:    5,
			BlockRepeat: 0.65,
			DataRate:    0.30,
			RowFrac:     0.45,
			SharedFrac:  0.35, // hot keys: heavier shared-set traffic than TPC-C
		}
		for _, seg := range a.allocN(3, segBlocks, false) {
			t.Optional = append(t.Optional, optionalSeg{seg: seg, prob: 0.2})
		}
		types[i] = t
	}
	return &Workload{Name: "Skewed", Kind: Skewed, Config: cfg, Segments: a.segs, Types: types}
}

// msSegBlocks sizes Microservice code segments: 2KB, matching the small
// handler functions of RPC services.
const msSegBlocks = 32

// microserviceCount is the number of services (transaction types).
const microserviceCount = 16

// buildMicroservice synthesizes the RPC fan-out scenario: microserviceCount
// services, each with a small own footprint (entry + handler body ≈ 14KB)
// that would fit a single L1-I — but every request also executes the stubs
// of three downstream services and the shared serialization/transport
// runtime, pushing the per-request footprint just past one cache while
// keeping every individual segment small. SLICC sees many small segments
// with high cross-type sharing: the regime where migration must pay for
// itself on breadth rather than on one large segment chain.
func buildMicroservice(cfg Config) *Workload {
	a := newSegAlloc()
	// Shared runtime: RPC framing, serialization, connection pool, metrics,
	// allocator, syscall (6 x 2KB).
	runtime := a.allocN(6, msSegBlocks, true)

	// Per-service stubs allocated up front so services can fan out into
	// each other's stubs (the client-side half of a downstream call).
	stubs := make([][]int, microserviceCount)
	for i := range stubs {
		stubs[i] = a.allocN(2, msSegBlocks, false)
	}

	serviceNames := [microserviceCount]string{
		"Auth", "Users", "Catalog", "Cart", "Orders", "Payments", "Pricing", "Stock",
		"Search", "Recs", "Ship", "Notify", "Audit", "Geo", "Rates", "Media",
	}
	types := make([]TxnType, microserviceCount)
	for i := 0; i < microserviceCount; i++ {
		body := a.allocN(6, msSegBlocks, false) // the service's own handler
		// RPC fan-out: call the stubs of three downstream services at
		// spreading strides, so the call graph is connected but no pair of
		// services shares its whole downstream set.
		for _, d := range [...]int{1, 3, 7} {
			body = append(body, stubs[(i+d)%microserviceCount]...)
		}
		body = append(body, runtime[0], runtime[1]) // serialize the reply
		types[i] = TxnType{
			Name:        "Svc" + serviceNames[i],
			Weight:      1.0 / microserviceCount,
			Entry:       a.allocN(1, msSegBlocks, false),
			Preamble:    []int{runtime[2], runtime[3]}, // accept + decode
			LoopBody:    body,
			Epilogue:    []int{runtime[4], runtime[5]}, // metrics + flush
			MinItems:    4,
			MaxItems:    8,
			BlockRepeat: 0.50,
			DataRate:    0.25,
			RowFrac:     0.35,
			SharedFrac:  0.35, // session/connection state in the hot set
		}
	}
	return &Workload{Name: "Microservice", Kind: Microservice, Config: cfg, Segments: a.segs, Types: types}
}
