package workload

import (
	"testing"

	"slicc/internal/trace"
)

func TestKindTokens(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.Token())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.Token(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.Token(), got, k)
		}
		// Display names parse too, case-insensitively.
		if got, err := ParseKind(k.String()); err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nosuch"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if len(KindTokens()) != len(AllKinds()) {
		t.Fatalf("KindTokens has %d entries, want %d", len(KindTokens()), len(AllKinds()))
	}
}

// TestScenarioStructure pins each scenario family's designed shape: segment
// disjointness and stream determinism are covered by the general tests in
// workload_test.go (which iterate AllKinds); here the family-specific
// properties are asserted.
func TestScenarioStructure(t *testing.T) {
	maxFootprint := func(w *Workload) int {
		max := 0
		for ti := range w.Types {
			if b := w.TypeFootprintBytes(ti); b > max {
				max = b
			}
		}
		return max
	}
	minFootprint := func(w *Workload) int {
		min := 1 << 30
		for ti := range w.Types {
			if b := w.TypeFootprintBytes(ti); b < min {
				min = b
			}
		}
		return min
	}

	// Phased: every phase is a large multi-cache footprint, and each type's
	// optional (burst) segments are disjoint from its own loop body.
	ph := New(Config{Kind: Phased, Threads: 8, Seed: 1})
	if got := minFootprint(ph); got <= 64*1024 {
		t.Errorf("Phased min footprint %dKB; want well over one 32KB cache", got/1024)
	}
	for ti := range ph.Types {
		ty := &ph.Types[ti]
		own := map[int]bool{}
		for _, s := range ty.LoopBody {
			own[s] = true
		}
		for _, o := range ty.Optional {
			if own[o.seg] {
				t.Errorf("Phased type %d bursts into its own phase pool", ti)
			}
		}
	}

	// Skewed: Zipfian mix — the dominant tenant must take far more threads
	// than a tail tenant; with 12 tenants the top weight is ~30%.
	sk := New(Config{Kind: Skewed, Threads: 512, Seed: 1})
	if len(sk.Types) != skewedTenants {
		t.Fatalf("Skewed has %d types, want %d", len(sk.Types), skewedTenants)
	}
	counts := make([]int, len(sk.Types))
	for _, th := range sk.Threads() {
		counts[th.Type]++
	}
	if counts[0] < 100 {
		t.Errorf("hot tenant got %d/512 threads; Zipf head missing", counts[0])
	}
	tail := 0
	for _, c := range counts[len(counts)/2:] {
		tail += c
	}
	if tail == 0 || tail > 512/4 {
		t.Errorf("tail tenants got %d/512 threads; want a thin but present tail", tail)
	}

	// Microservice: small per-service own footprints (every type fits a few
	// caches, none anywhere near TPC-C scale), but cross-service overlap:
	// two services must share stub/runtime segments.
	ms := New(Config{Kind: Microservice, Threads: 8, Seed: 1})
	if got := maxFootprint(ms); got > 64*1024 {
		t.Errorf("Microservice max footprint %dKB; want small services", got/1024)
	}
	if got := maxFootprint(ms); got <= 32*1024 {
		t.Errorf("Microservice max footprint %dKB; fan-out should push past one cache", got/1024)
	}
	segsOf := func(ty *TxnType) map[int]bool {
		set := map[int]bool{}
		for _, s := range ty.LoopBody {
			set[s] = true
		}
		return set
	}
	a, b := segsOf(&ms.Types[0]), segsOf(&ms.Types[1])
	shared := 0
	for s := range a {
		if b[s] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("Microservice services share no loop-body segments; RPC fan-out missing")
	}
}

// TestScenarioRecordReplay captures each scenario family to a v2 container
// and replays it op-for-op against regeneration: the byte-identity contract
// every workload family must honor (the simulator-level equivalent lives in
// the root package's TestScenarioTraceReplayMatchesSynthetic).
func TestScenarioRecordReplay(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		w := New(Config{Kind: kind, Threads: 4, Seed: 5, Scale: 0.1})
		for _, th := range w.Threads() {
			a := trace.Record(th.New(), 0)
			b := trace.Record(th.New(), 0)
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("%v thread %d: lengths %d vs %d", kind, th.ID, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v thread %d op %d differs", kind, th.ID, i)
				}
			}
		}
	}
}
