// Package workload synthesizes the transaction traces the paper drives its
// simulator with. The real system traced Shore-MT running TPC-C and TPC-E
// (plus a Hadoop MapReduce job) under PIN; those traces are not available,
// so each benchmark is modeled as a *segment-structured* instruction stream
// calibrated to the properties Section 2 of the paper measures:
//
//   - Transaction instruction footprints span several 32KB L1-I caches
//     (TPC-C larger than TPC-E; MapReduce fits in one cache).
//   - Execution loops over a multi-segment body (the A-B-C-A pattern of
//     Figure 4), so L1-I misses are capacity misses with long-period reuse.
//   - Threads of the same transaction type share ~98% of their instruction
//     blocks but diverge on optional segments (Figure 3).
//   - Data accesses are dominated by compulsory misses (fresh row data)
//     with a reusable private working set and a small shared hot set with
//     ~45% stores (Section 5.5).
//
// All generation is deterministic per (workload seed, thread id): a thread's
// Source can be re-created any number of times and always replays the same
// stream, which is how one workload is compared across machine configs.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"slicc/internal/trace"
)

// Kind selects a benchmark.
type Kind int

// Benchmarks from Table 1, followed by the synthetic scenario families that
// extend the paper's workload set (see docs/WORKLOADS.md).
const (
	TPCC1     Kind = iota // TPC-C, 1 warehouse
	TPCC10                // TPC-C, 10 warehouses (larger data footprint)
	TPCE                  // TPC-E, 1000 customers
	MapReduce             // Hadoop/Mahout text analytics

	// Phased is a bursty phase-changing scenario: each transaction
	// alternates between large disjoint code phases, churning the cache
	// signatures SLICC learns (extension; scenarios.go).
	Phased
	// Skewed is a multi-tenant scenario with a Zipfian transaction mix:
	// one hot tenant dominates, a long tail supplies stray threads
	// (extension; scenarios.go).
	Skewed
	// Microservice is an RPC-fan-out scenario: many services with small
	// individual footprints that call into each other's stubs and a shared
	// runtime (extension; scenarios.go).
	Microservice

	// Recorded marks a workload replayed from a trace container rather
	// than synthesized; it is the Kind of workloads built by FromTraceFile.
	Recorded Kind = -1
)

var kindNames = [...]string{"TPC-C-1", "TPC-C-10", "TPC-E", "MapReduce", "Phased", "Skewed", "Microservice"}

func (k Kind) String() string {
	if k == Recorded {
		return "Recorded"
	}
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns the paper's benchmark kinds in Table 1 / Figure 10 order.
// The experiment harness iterates these, so the paper's figures keep their
// exact shape; AllKinds adds the scenario extensions.
func Kinds() []Kind { return []Kind{TPCC1, TPCC10, TPCE, MapReduce} }

// ScenarioKinds returns the synthetic scenario families beyond the paper's
// benchmark set, in declaration order.
func ScenarioKinds() []Kind { return []Kind{Phased, Skewed, Microservice} }

// AllKinds returns every synthesizable workload kind: Table 1 first, then
// the scenario extensions.
func AllKinds() []Kind { return append(Kinds(), ScenarioKinds()...) }

// kindTokens are the canonical machine-readable kind names used by the
// CLIs, the sweep subsystem and the public slicc package (which keeps its
// Benchmark tokens in lockstep).
var kindTokens = map[string]Kind{
	"tpcc1":        TPCC1,
	"tpcc10":       TPCC10,
	"tpce":         TPCE,
	"mapreduce":    MapReduce,
	"phased":       Phased,
	"skewed":       Skewed,
	"microservice": Microservice,
}

// Token returns the kind's canonical machine-readable name (String returns
// the display name).
func (k Kind) Token() string {
	for tok, v := range kindTokens {
		if v == k {
			return tok
		}
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a workload kind from its canonical token ("tpcc1",
// "phased", ...) or display name ("TPC-C-1"), case-insensitively.
func ParseKind(s string) (Kind, error) {
	ls := strings.ToLower(s)
	if k, ok := kindTokens[ls]; ok {
		return k, nil
	}
	for _, k := range AllKinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown kind %q (have %s)", s, strings.Join(KindTokens(), ", "))
}

// KindTokens lists the canonical kind tokens in AllKinds order.
func KindTokens() []string {
	names := make([]string, 0, len(kindTokens))
	for _, k := range AllKinds() {
		names = append(names, k.Token())
	}
	return names
}

// Config parameterizes workload synthesis.
type Config struct {
	// Kind is the benchmark.
	Kind Kind
	// Threads is the number of tasks (transactions / map-reduce tasks).
	// The paper simulates 1K tasks; tests use fewer. Defaults per kind.
	Threads int
	// Seed drives all randomness (transaction mix, control-flow
	// divergence, data addresses).
	Seed int64
	// Scale multiplies per-transaction work (loop iterations). 1.0
	// reproduces the default calibration; tests may shrink it.
	Scale float64

	// TracePath, when non-empty, replays the recorded trace container at
	// this path instead of synthesizing anything; Kind, Threads, Seed and
	// Scale are ignored (the container fixes all of them). Build such
	// workloads with FromTraceFile.
	TracePath string
	// TraceDigest is the content digest (trace.FileDigest) of the file at
	// TracePath. The runner fills it in before using a Config as a cache
	// key, so memoization keys on the trace's *contents*: renaming a file
	// does not defeat dedup, and re-recording a file under the same name
	// does not replay stale results. Leave empty when declaring jobs.
	TraceDigest string
}

// WithDefaults returns the configuration with zero fields replaced by their
// defaults. It is idempotent; the runner's workload cache normalizes configs
// with it so that explicit and defaulted spellings of the same workload
// share one synthesis.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.TracePath != "" {
		// A recorded workload is fully determined by the container, so the
		// canonical spelling zeroes every synthetic-only field: differently
		// spelled configs of the same replay share one cache entry.
		return Config{TracePath: c.TracePath, TraceDigest: c.TraceDigest}
	}
	if c.Threads == 0 {
		switch c.Kind {
		case MapReduce:
			c.Threads = 300 // the paper's 300 map/reduce tasks
		case Microservice:
			c.Threads = 256 // many small RPC handlers in flight
		default:
			c.Threads = 128
		}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// Segment is a contiguous run of instruction blocks, the unit SLICC spreads
// across caches. Base is a block address (not byte address).
type Segment struct {
	ID     int
	Base   uint64 // block address of first block
	Blocks int
	Shared bool // part of the cross-type common pool (DB engine / OS code)
}

// optionalSeg is a segment executed with some probability per loop
// iteration; it produces the control-flow divergence of Figure 4's
// segment D.
type optionalSeg struct {
	seg  int
	prob float64
}

// TxnType models one transaction type: its code segments and the program
// shape that visits them.
type TxnType struct {
	Name   string
	Weight float64 // share of the transaction mix

	// Program shape, all values are indices into Workload.Segments.
	// Entry is the type-specific dispatch code executed first; SLICC-Pp
	// relies on it to fingerprint the type.
	Entry    []int
	Preamble []int // begin-transaction work (mostly shared pool)
	LoopBody []int // per-item work; this is the footprint SLICC spreads
	Optional []optionalSeg
	Epilogue []int // commit/log (mostly shared pool)

	// MinItems/MaxItems bound the per-transaction loop count.
	MinItems, MaxItems int

	// BlockRepeat is the probability that a block's instructions are
	// re-executed immediately (models short loops within basic blocks);
	// it calibrates baseline I-MPKI without changing the footprint.
	BlockRepeat float64

	// Data behaviour. Per-region store probabilities live in the
	// workload's dataProfile; the global store fraction lands near the
	// paper's 45% for the OLTP benchmarks.
	DataRate   float64 // fraction of instructions with a data access
	RowFrac    float64 // data accesses streaming fresh row data (compulsory)
	SharedFrac float64 // data accesses to the global hot set
	// the remainder hits the thread-private working set
}

// FootprintBlocks returns the static instruction footprint of the type in
// blocks (entry + preamble + loop + optional + epilogue, deduplicated).
func (t *TxnType) footprintBlocks(w *Workload) int {
	seen := map[int]struct{}{}
	add := func(idx int) {
		seen[idx] = struct{}{}
	}
	for _, s := range t.Entry {
		add(s)
	}
	for _, s := range t.Preamble {
		add(s)
	}
	for _, s := range t.LoopBody {
		add(s)
	}
	for _, o := range t.Optional {
		add(o.seg)
	}
	for _, s := range t.Epilogue {
		add(s)
	}
	total := 0
	for idx := range seen {
		total += w.Segments[idx].Blocks
	}
	return total
}

// Workload is a fully-specified benchmark instance.
type Workload struct {
	Name     string
	Kind     Kind
	Config   Config
	Segments []Segment
	Types    []TxnType

	// orders holds, per segment, the block execution order: the segment's
	// control-flow structure. Real code is not laid out in execution
	// order — basic blocks end in taken branches — so a segment is
	// executed as short sequential runs stitched together by jumps.
	// The order is part of the *code*, identical for every thread, and
	// independent of the workload seed (the binary doesn't change when
	// the transaction mix does).
	orders [][]uint16

	threads []trace.Thread

	// oc memoizes thread op streams that are replayed repeatedly (see
	// sourceFor).
	oc opCache

	// bt is the fully-decoded op table lockstep batches replay from (see
	// BatchThreads in batch.go), built once on first use.
	bt batchTable

	// container is the open trace file backing a Recorded workload (nil
	// for synthetic workloads). It is held for the workload's lifetime:
	// every thread's New streams from it.
	container *trace.File
}

// opCache memoizes synthetic threads' op streams once they prove hot. A
// thread's first New() replay runs the generator directly — so single-pass
// consumers (trace capture, a lone simulation) keep the generator's
// constant memory — but the *second* New() of the same thread marks it as
// repeatedly replayed: its stream is recorded once into a delta-encoded
// buffer (trace.OpEncoder, ~3.5 bytes/op) and every later replay decodes
// from memory through the trace.BatchSource bulk path. That is the
// experiment-harness shape (one pool-cached workload feeding dozens of
// simulations), where regenerating identical streams — two rand draws per
// op — dominated the cold simulation loop; the compact encoding keeps a
// whole quick-size workload within the last-level cache, so replays do not
// evict the simulator's own model state. Replays are byte-identical by
// construction: the recording is the generator's own output.
type opCache struct {
	mu sync.Mutex
	// budget is the remaining op count the cache may retain. Quick
	// experiment workloads fit whole; oversized threads simply stay on
	// the generator path. Concurrent recorders may transiently overshoot
	// by one thread's stream each.
	budget int64
	// state is the per-thread ladder: 0 = never replayed, 1 = replayed
	// once (record on next replay), 2 = recording in flight or rejected.
	state []uint8
	enc   []*trace.OpEncoder
}

// opCacheBudget bounds the op streams one workload retains (2^26 ops ≈
// 230MB encoded worst case). It is a var so tests can shrink it.
var opCacheBudget = int64(1) << 26

// sourceFor returns thread id's op stream: the memoized recording when one
// exists, the deterministic generator otherwise (recording it on the way
// through when this is a repeat replay and the budget allows).
func (w *Workload) sourceFor(id, ti int, seed int64) trace.Source {
	oc := &w.oc
	oc.mu.Lock()
	if e := oc.enc[id]; e != nil {
		oc.mu.Unlock()
		return e.Source()
	}
	record := false
	limit := oc.budget
	switch oc.state[id] {
	case 0:
		oc.state[id] = 1
	case 1:
		oc.state[id] = 2
		record = limit > 0
	}
	oc.mu.Unlock()

	gen := newThreadSource(w, id, ti, seed)
	if !record {
		return gen
	}
	var enc trace.OpEncoder
	for {
		op, ok := gen.Next()
		if !ok {
			// Complete recording (exact budget fits count as complete).
			oc.mu.Lock()
			if oc.budget >= int64(enc.Ops()) {
				oc.budget -= int64(enc.Ops())
				oc.enc[id] = &enc
			}
			oc.mu.Unlock()
			return enc.Source()
		}
		if int64(enc.Ops()) >= limit {
			// The stream does not fit in the remaining budget: drop the
			// prefix and leave the thread on the generator path for good.
			return newThreadSource(w, id, ti, seed)
		}
		enc.Append(op)
	}
}

// New synthesizes a workload. Trace-backed configs (TracePath set) have no
// synthesis step; build them with FromTraceFile instead.
func New(cfg Config) *Workload {
	if cfg.TracePath != "" {
		panic("workload: New called with a trace config; use FromTraceFile")
	}
	cfg = cfg.withDefaults()
	var w *Workload
	switch cfg.Kind {
	case TPCC1, TPCC10:
		w = buildTPCC(cfg)
	case TPCE:
		w = buildTPCE(cfg)
	case MapReduce:
		w = buildMapReduce(cfg)
	case Phased:
		w = buildPhased(cfg)
	case Skewed:
		w = buildSkewed(cfg)
	case Microservice:
		w = buildMicroservice(cfg)
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", cfg.Kind))
	}
	w.computeOrders()
	w.assignThreads()
	return w
}

// computeOrders derives each segment's block execution order: sequential
// fall-through runs with geometric length (mean ~1.4 blocks, so a next-line
// prefetcher covers only the paper's modest fraction of fetches), shuffled
// by a per-segment deterministic source.
func (w *Workload) computeOrders() {
	const fallThrough = 0.15 // probability the next block is spatially next
	w.orders = make([][]uint16, len(w.Segments))
	for i, seg := range w.Segments {
		rng := rand.New(rand.NewSource(0xC0DE + int64(seg.ID)*7919))
		// Split [0..Blocks) into sequential runs.
		var runs [][]uint16
		var run []uint16
		for b := 0; b < seg.Blocks; b++ {
			run = append(run, uint16(b))
			if rng.Float64() >= fallThrough {
				runs = append(runs, run)
				run = nil
			}
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
		rng.Shuffle(len(runs), func(a, b int) { runs[a], runs[b] = runs[b], runs[a] })
		order := make([]uint16, 0, seg.Blocks)
		for _, r := range runs {
			order = append(order, r...)
		}
		w.orders[i] = order
	}
}

// Threads returns the workload's thread (transaction) list in arrival order.
func (w *Workload) Threads() []trace.Thread { return w.threads }

// TypeFootprintBytes returns the instruction footprint of type ti in bytes.
func (w *Workload) TypeFootprintBytes(ti int) int {
	return w.Types[ti].footprintBlocks(w) * blockBytes
}

// SharedRanges returns the [lo,hi) block-address ranges of the shared
// (DB-engine/OS) code pool, merged into maximal runs. CSP-style policies
// use these as their system-code classification.
func (w *Workload) SharedRanges() [][2]uint64 {
	var ranges [][2]uint64
	for _, seg := range w.Segments {
		if !seg.Shared {
			continue
		}
		lo, hi := seg.Base, seg.Base+uint64(seg.Blocks)
		if n := len(ranges); n > 0 && ranges[n-1][1] == lo {
			ranges[n-1][1] = hi
			continue
		}
		ranges = append(ranges, [2]uint64{lo, hi})
	}
	return ranges
}

// assignThreads draws the transaction mix and builds thread descriptors.
func (w *Workload) assignThreads() {
	rng := rand.New(rand.NewSource(w.Config.Seed))
	total := 0.0
	for i := range w.Types {
		total += w.Types[i].Weight
	}
	w.threads = make([]trace.Thread, w.Config.Threads)
	for id := 0; id < w.Config.Threads; id++ {
		r := rng.Float64() * total
		ti := 0
		for acc := 0.0; ti < len(w.Types); ti++ {
			acc += w.Types[ti].Weight
			if r < acc {
				break
			}
		}
		if ti == len(w.Types) {
			ti--
		}
		seed := threadSeed(w.Config.Seed, id)
		wi, typ, tid := w, ti, id
		w.threads[id] = trace.Thread{
			ID:       id,
			Type:     ti,
			TypeName: w.Types[ti].Name,
			New: func() trace.Source {
				return wi.sourceFor(tid, typ, seed)
			},
		}
	}
	w.oc.budget = opCacheBudget
	w.oc.state = make([]uint8, len(w.threads))
	w.oc.enc = make([]*trace.OpEncoder, len(w.threads))
}

// threadSeed decorrelates per-thread streams (splitmix64-style).
func threadSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
