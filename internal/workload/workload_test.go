package workload

import (
	"testing"
	"testing/quick"

	"slicc/internal/cache"
	"slicc/internal/trace"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{TPCC1: "TPC-C-1", TPCC10: "TPC-C-10", TPCE: "TPC-E", MapReduce: "MapReduce"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("out-of-range Kind String")
	}
}

func TestThreadsCountAndTypes(t *testing.T) {
	w := New(Config{Kind: TPCC1, Threads: 50, Seed: 1, Scale: 0.5})
	threads := w.Threads()
	if len(threads) != 50 {
		t.Fatalf("got %d threads", len(threads))
	}
	seenTypes := map[int]int{}
	for i, th := range threads {
		if th.ID != i {
			t.Fatalf("thread %d has ID %d", i, th.ID)
		}
		if th.Type < 0 || th.Type >= len(w.Types) {
			t.Fatalf("thread %d type %d out of range", i, th.Type)
		}
		if th.TypeName != w.Types[th.Type].Name {
			t.Fatalf("thread %d name mismatch", i)
		}
		seenTypes[th.Type]++
	}
	// The two dominant TPC-C types must dominate the mix.
	if seenTypes[0]+seenTypes[1] < 30 {
		t.Fatalf("NewOrder+Payment only %d/50", seenTypes[0]+seenTypes[1])
	}
}

func TestDeterministicStreams(t *testing.T) {
	w := New(Config{Kind: TPCE, Threads: 4, Seed: 42, Scale: 0.3})
	for _, th := range w.Threads() {
		a := trace.Record(th.New(), 0)
		b := trace.Record(th.New(), 0)
		if len(a) == 0 {
			t.Fatalf("thread %d empty stream", th.ID)
		}
		if len(a) != len(b) {
			t.Fatalf("thread %d lengths differ: %d vs %d", th.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("thread %d op %d differs", th.ID, i)
			}
		}
	}
}

func TestSameSeedSameWorkload(t *testing.T) {
	w1 := New(Config{Kind: TPCC1, Threads: 20, Seed: 7, Scale: 0.2})
	w2 := New(Config{Kind: TPCC1, Threads: 20, Seed: 7, Scale: 0.2})
	for i := range w1.Threads() {
		if w1.Threads()[i].Type != w2.Threads()[i].Type {
			t.Fatalf("thread %d type differs across identical configs", i)
		}
	}
}

func TestEntryDistinguishesTypes(t *testing.T) {
	// SLICC-Pp fingerprinting requires: same-type threads start with the
	// same instruction sequence; different types differ.
	w := New(Config{Kind: TPCC1, Threads: 64, Seed: 3, Scale: 0.2})
	const preLen = 32
	prefixByType := map[int][]trace.Op{}
	for _, th := range w.Threads() {
		ops := trace.Record(th.New(), preLen)
		if prev, ok := prefixByType[th.Type]; ok {
			for i := range prev {
				if prev[i].PC != ops[i].PC {
					t.Fatalf("type %d threads diverge at instruction %d", th.Type, i)
				}
			}
		} else {
			prefixByType[th.Type] = ops
		}
	}
	// Cross-type prefixes must differ (compare first PCs).
	firsts := map[uint64]int{}
	for ty, ops := range prefixByType {
		if other, dup := firsts[ops[0].PC]; dup {
			t.Fatalf("types %d and %d share the same entry PC", ty, other)
		}
		firsts[ops[0].PC] = ty
	}
}

func TestFootprintOrdering(t *testing.T) {
	// TPC-C footprints must exceed a 32KB cache and be larger than TPC-E's
	// biggest; MapReduce must fit in 32KB.
	tpcc := New(Config{Kind: TPCC1, Threads: 1, Seed: 1})
	tpce := New(Config{Kind: TPCE, Threads: 1, Seed: 1})
	mr := New(Config{Kind: MapReduce, Threads: 1, Seed: 1})

	maxBytes := func(w *Workload) int {
		max := 0
		for ti := range w.Types {
			if b := w.TypeFootprintBytes(ti); b > max {
				max = b
			}
		}
		return max
	}
	if got := maxBytes(tpcc); got <= 64*1024 {
		t.Fatalf("TPC-C max footprint %d bytes; want well over one cache", got)
	}
	if maxBytes(tpcc) <= maxBytes(tpce) {
		t.Fatalf("TPC-C footprint (%d) not larger than TPC-E (%d)", maxBytes(tpcc), maxBytes(tpce))
	}
	if got := maxBytes(mr); got > 32*1024 {
		t.Fatalf("MapReduce footprint %d bytes does not fit in 32KB", got)
	}
}

func TestSegmentsDisjoint(t *testing.T) {
	for _, kind := range AllKinds() {
		w := New(Config{Kind: kind, Threads: 1, Seed: 1})
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for _, s := range w.Segments {
			ivs = append(ivs, iv{s.Base, s.Base + uint64(s.Blocks)})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					t.Fatalf("%v: segments %d and %d overlap", kind, i, j)
				}
			}
		}
	}
}

func TestDataAccessProperties(t *testing.T) {
	w := New(Config{Kind: TPCC1, Threads: 2, Seed: 9, Scale: 0.3})
	ops := trace.Record(w.Threads()[0].New(), 0)
	data, stores := 0, 0
	for _, op := range ops {
		if !op.HasData {
			continue
		}
		data++
		if op.IsWrite {
			stores++
		}
		switch {
		case op.DataAddr >= privBase:
		case op.DataAddr >= rowRegionBase:
		case op.DataAddr >= hotRegionBase:
		default:
			t.Fatalf("data address %#x in no known region", op.DataAddr)
		}
	}
	frac := float64(data) / float64(len(ops))
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("data access fraction %.3f outside [0.25,0.35]", frac)
	}
	sf := float64(stores) / float64(data)
	if sf < 0.38 || sf > 0.52 {
		t.Fatalf("store fraction %.3f not ~0.45", sf)
	}
}

func TestInstructionFootprintMatchesSegments(t *testing.T) {
	w := New(Config{Kind: TPCE, Threads: 4, Seed: 5, Scale: 0.3})
	th := w.Threads()[0]
	ty := &w.Types[th.Type]
	allowed := map[uint64]bool{}
	mark := func(idx int) {
		s := w.Segments[idx]
		for b := uint64(0); b < uint64(s.Blocks); b++ {
			allowed[s.Base+b] = true
		}
	}
	for _, idx := range ty.Entry {
		mark(idx)
	}
	for _, idx := range ty.Preamble {
		mark(idx)
	}
	for _, idx := range ty.LoopBody {
		mark(idx)
	}
	for _, o := range ty.Optional {
		mark(o.seg)
	}
	for _, idx := range ty.Epilogue {
		mark(idx)
	}
	for _, op := range trace.Record(th.New(), 0) {
		if !allowed[op.PC/blockBytes] {
			t.Fatalf("PC %#x outside the type's declared footprint", op.PC)
		}
	}
}

// TestBaselineMPKICalibration checks the headline Section 2 property: a
// single 32KB L1-I thrashes on a TPC-C transaction (I-MPKI in the paper's
// ~25-45 range) while MapReduce's footprint fits (small I-MPKI).
func TestBaselineMPKICalibration(t *testing.T) {
	mpki := func(kind Kind) float64 {
		w := New(Config{Kind: kind, Threads: 3, Seed: 11, Scale: 0.5})
		c := cache.New(cache.Config{SizeBytes: 32 * 1024, BlockBytes: 64, Ways: 8})
		var instr, misses uint64
		// One thread at a time on one core: pure intra-thread behaviour.
		for _, th := range w.Threads() {
			src := th.New()
			for {
				op, ok := src.Next()
				if !ok {
					break
				}
				instr++
				if !c.Access(op.PC, false).Hit {
					misses++
				}
			}
		}
		return 1000 * float64(misses) / float64(instr)
	}
	if m := mpki(TPCC1); m < 20 || m > 50 {
		t.Errorf("TPC-C baseline I-MPKI %.1f outside [20,50]", m)
	}
	if m := mpki(TPCE); m < 15 || m > 45 {
		t.Errorf("TPC-E baseline I-MPKI %.1f outside [15,45]", m)
	}
	if m := mpki(MapReduce); m > 6 {
		t.Errorf("MapReduce baseline I-MPKI %.1f; footprint should fit", m)
	}
}

// TestCrossThreadCodeSharing verifies the Figure 3 property: same-type
// threads touch nearly identical instruction blocks.
func TestCrossThreadCodeSharing(t *testing.T) {
	w := New(Config{Kind: TPCC1, Threads: 40, Seed: 13, Scale: 0.3})
	blocksOf := func(th trace.Thread) map[uint64]bool {
		set := map[uint64]bool{}
		src := th.New()
		for {
			op, ok := src.Next()
			if !ok {
				return set
			}
			set[op.PC/blockBytes] = true
		}
	}
	var a, b *trace.Thread
	threads := w.Threads()
	for i := range threads {
		if threads[i].Type == 0 {
			if a == nil {
				a = &threads[i]
			} else {
				b = &threads[i]
				break
			}
		}
	}
	if b == nil {
		t.Skip("not enough same-type threads in sample")
	}
	sa, sb := blocksOf(*a), blocksOf(*b)
	inter := 0
	for blk := range sa {
		if sb[blk] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if sim := float64(inter) / float64(union); sim < 0.85 {
		t.Fatalf("same-type block overlap %.2f < 0.85", sim)
	}
}

func TestEstimateInstructions(t *testing.T) {
	w := New(Config{Kind: MapReduce, Threads: 1, Seed: 2, Scale: 0.2})
	if n := w.EstimateInstructions(0); n == 0 {
		t.Fatal("zero estimated instructions")
	}
}

// Property: thread seeds are unique across ids for any base seed.
func TestPropThreadSeedsDistinct(t *testing.T) {
	f := func(seed int64) bool {
		seen := map[int64]bool{}
		for id := 0; id < 256; id++ {
			s := threadSeed(seed, id)
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every generated op has a PC inside some declared segment.
func TestPropPCsInSegments(t *testing.T) {
	f := func(seed int64) bool {
		w := New(Config{Kind: TPCE, Threads: 2, Seed: seed, Scale: 0.1})
		lo := w.Segments[0].Base * blockBytes
		last := w.Segments[len(w.Segments)-1]
		hi := (last.Base + uint64(last.Blocks)) * blockBytes
		for _, th := range w.Threads() {
			src := th.New()
			for i := 0; i < 2000; i++ {
				op, ok := src.Next()
				if !ok {
					break
				}
				if op.PC < lo || op.PC >= hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSharedRanges(t *testing.T) {
	w := New(Config{Kind: TPCC1, Threads: 1, Seed: 1})
	ranges := w.SharedRanges()
	if len(ranges) == 0 {
		t.Fatal("no shared ranges")
	}
	// Every shared segment must be covered; no unshared block may be.
	covered := func(block uint64) bool {
		for _, r := range ranges {
			if block >= r[0] && block < r[1] {
				return true
			}
		}
		return false
	}
	for _, seg := range w.Segments {
		if covered(seg.Base) != seg.Shared {
			t.Fatalf("segment %d shared=%v but coverage=%v", seg.ID, seg.Shared, covered(seg.Base))
		}
	}
}
